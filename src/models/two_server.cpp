#include "models/two_server.hpp"

#include "pomdp/transforms.hpp"
#include "util/check.hpp"

namespace recoverd::models {

Pomdp make_two_server(const TwoServerParams& params) {
  RD_EXPECTS(params.coverage >= 0.0 && params.coverage <= 1.0,
             "two_server: coverage must lie in [0,1]");
  RD_EXPECTS(params.false_positive >= 0.0 && params.false_positive <= 0.5,
             "two_server: false positive must lie in [0,0.5]");
  RD_EXPECTS(params.action_duration > 0.0, "two_server: duration must be positive");
  RD_EXPECTS(params.per_server_load > 0.0, "two_server: load must be positive");

  const double load = params.per_server_load;

  PomdpBuilder b;
  const StateId null_state = b.add_state("Null", 0.0);
  const StateId fault_a = b.add_state("Fault(a)", -load);
  const StateId fault_b = b.add_state("Fault(b)", -load);
  b.mark_goal(null_state);

  const ActionId restart_a = b.add_action("Restart(a)", params.action_duration);
  const ActionId restart_b = b.add_action("Restart(b)", params.action_duration);
  const ActionId observe = b.add_action("Observe", params.action_duration);

  // Transitions: the correct restart recovers deterministically; everything
  // else leaves the state unchanged.
  b.set_transition(fault_a, restart_a, null_state, 1.0);
  b.set_transition(fault_a, restart_b, fault_a, 1.0);
  b.set_transition(fault_a, observe, fault_a, 1.0);
  b.set_transition(fault_b, restart_b, null_state, 1.0);
  b.set_transition(fault_b, restart_a, fault_b, 1.0);
  b.set_transition(fault_b, observe, fault_b, 1.0);
  for (ActionId a : {restart_a, restart_b, observe}) {
    b.set_transition(null_state, a, null_state, 1.0);
  }

  // Rate rewards. Default is the ambient fault rate; restarting a server
  // additionally takes its half of the load down for the duration.
  b.set_rate_reward(fault_a, restart_a, -load);        // -0.5: fault(a)'s load lost
  b.set_rate_reward(fault_a, restart_b, -2.0 * load);  // -1.0: fault + healthy b down
  b.set_rate_reward(fault_b, restart_b, -load);
  b.set_rate_reward(fault_b, restart_a, -2.0 * load);
  b.set_rate_reward(null_state, restart_a, -load);     // -0.5: healthy server down
  b.set_rate_reward(null_state, restart_b, -load);
  // Observe keeps the ambient rates (0 in Null, -load in fault states).

  // Monitor observations, identical after every action.
  const ObsId alarm_a = b.add_observation("alarm(a)");
  const ObsId alarm_b = b.add_observation("alarm(b)");
  const ObsId clear = b.add_observation("clear");

  const double c = params.coverage;
  const double f = params.false_positive;
  b.set_observation_all_actions(fault_a, alarm_a, c);
  b.set_observation_all_actions(fault_a, clear, 1.0 - c);
  b.set_observation_all_actions(fault_b, alarm_b, c);
  b.set_observation_all_actions(fault_b, clear, 1.0 - c);
  b.set_observation_all_actions(null_state, alarm_a, f);
  b.set_observation_all_actions(null_state, alarm_b, f);
  b.set_observation_all_actions(null_state, clear, 1.0 - 2.0 * f);

  return b.build();
}

Pomdp make_two_server_with_notification(const TwoServerParams& params) {
  return with_recovery_notification(make_two_server(params));
}

Pomdp make_two_server_without_notification(double t_op, const TwoServerParams& params) {
  return add_termination(make_two_server(params), t_op);
}

TwoServerIds two_server_ids(const Pomdp& pomdp) {
  const Mdp& mdp = pomdp.mdp();
  TwoServerIds ids{};
  ids.null_state = mdp.find_state("Null");
  ids.fault_a = mdp.find_state("Fault(a)");
  ids.fault_b = mdp.find_state("Fault(b)");
  ids.restart_a = mdp.find_action("Restart(a)");
  ids.restart_b = mdp.find_action("Restart(b)");
  ids.observe = mdp.find_action("Observe");
  ids.alarm_a = pomdp.find_observation("alarm(a)");
  ids.alarm_b = pomdp.find_observation("alarm(b)");
  ids.clear = pomdp.find_observation("clear");
  RD_ENSURES(ids.null_state != kInvalidId && ids.fault_a != kInvalidId &&
                 ids.fault_b != kInvalidId,
             "two_server_ids: model is not a two-server model");
  return ids;
}

}  // namespace recoverd::models
