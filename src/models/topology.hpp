// Generic distributed-system topology DSL.
//
// Describes a system the way §5 describes the EMN deployment: hosts running
// components, request paths flowing through alternative components with
// routing weights, and two monitor families — component (ping) monitors and
// end-to-end path monitors. build_recovery_pomdp() compiles the description
// into the recovery POMDP of §2/§5:
//
//  states       null fault, crash(c), crash(h), zombie(c)
//  actions      restart(c), reboot(h), observe
//  observations the joint outcome bit-vector of all monitors (|O| = 2^M)
//  rewards      rate = −(fraction of requests dropped), where a request is
//               dropped when its sampled route crosses a faulty component or
//               one made unavailable by the in-flight recovery action
//
// Fault semantics: crashes are detected by ping monitors (with coverage /
// false-positive noise); zombies answer pings but corrupt requests, so only
// the path monitors can (statistically) see them — and cannot localise them,
// because routing picks alternatives by chance. This is exactly the
// diagnosability gap the paper's controllers must handle.
#pragma once

#include <string>
#include <vector>

#include "pomdp/pomdp.hpp"

namespace recoverd::models {

using HostId = std::size_t;
using ComponentId = std::size_t;
using PathId = std::size_t;
using MonitorId = std::size_t;

/// System description. Populate, then compile with build_recovery_pomdp().
class Topology {
 public:
  /// Adds a host; `reboot_duration` is the reboot action's execution time.
  HostId add_host(std::string name, double reboot_duration);

  /// Adds a component running on `host`; `restart_duration` is its restart
  /// action's execution time.
  ComponentId add_component(std::string name, HostId host, double restart_duration);

  /// Adds a request path carrying `traffic_fraction` of the load (fractions
  /// across paths must sum to 1 at build time). Stages are added in order
  /// with add_path_stage().
  PathId add_path(std::string name, double traffic_fraction);

  /// Appends one stage to a path: the request passes through exactly one of
  /// the alternatives, chosen with probability proportional to its weight.
  void add_path_stage(PathId path,
                      std::vector<std::pair<ComponentId, double>> alternatives);

  /// Ping monitor on one component: detects crashes with probability
  /// `coverage`, reports a spurious failure with probability
  /// `false_positive`; zombies always ping OK (modulo false positives).
  MonitorId add_ping_monitor(std::string name, ComponentId target, double coverage,
                             double false_positive);

  /// End-to-end path monitor: sends one probe down the path (sampling stage
  /// alternatives by weight); a probe crossing any faulty component is
  /// detected with probability `coverage`; otherwise a false alarm fires
  /// with probability `false_positive`.
  MonitorId add_path_monitor(std::string name, PathId path, double coverage,
                             double false_positive);

  std::size_t num_hosts() const { return hosts_.size(); }
  std::size_t num_components() const { return components_.size(); }
  std::size_t num_paths() const { return paths_.size(); }
  std::size_t num_monitors() const { return monitors_.size(); }

  const std::string& host_name(HostId h) const;
  const std::string& component_name(ComponentId c) const;
  HostId component_host(ComponentId c) const;

  /// Fraction of requests dropped when exactly the components in
  /// `faulty` (a bitmask by ComponentId) are unable to serve.
  double drop_fraction(const std::vector<bool>& faulty) const;

  /// Probability that a single probe of `path` crosses a faulty component.
  double path_hit_probability(PathId path, const std::vector<bool>& faulty) const;

 private:
  friend Pomdp build_recovery_pomdp(const Topology&, const struct TopologyModelConfig&);

  struct Host {
    std::string name;
    double reboot_duration;
  };
  struct Component {
    std::string name;
    HostId host;
    double restart_duration;
  };
  struct Stage {
    std::vector<std::pair<ComponentId, double>> alternatives;  // weights normalised lazily
  };
  struct Path {
    std::string name;
    double traffic_fraction;
    std::vector<Stage> stages;
  };
  enum class MonitorKind { Ping, PathProbe };
  struct Monitor {
    std::string name;
    MonitorKind kind;
    std::size_t target;  // ComponentId or PathId
    double coverage;
    double false_positive;
  };

  std::vector<Host> hosts_;
  std::vector<Component> components_;
  std::vector<Path> paths_;
  std::vector<Monitor> monitors_;
};

/// Compilation options.
struct TopologyModelConfig {
  double observe_duration = 5.0;    ///< monitors' execution time, seconds
  /// Fixed cost of one monitor sweep, in request-seconds (path probes are
  /// real requests and pings consume capacity). A strictly positive value
  /// satisfies Property 1(a)'s "no free actions" assumption and gives the
  /// bounded controller a principled termination point.
  double observe_impulse_cost = 0.0;
  bool include_zombie_faults = true;
  bool include_host_faults = true;
  /// Joint observations with probability below this are dropped and the row
  /// renormalised (keeps |O| rows sparse for many-monitor systems).
  double observation_floor = 1e-12;
};

/// Well-known ids of the compiled model.
struct TopologyIds {
  StateId null_state = kInvalidId;
  std::vector<StateId> crash_states;   ///< by ComponentId
  std::vector<StateId> host_states;    ///< by HostId (empty if disabled)
  std::vector<StateId> zombie_states;  ///< by ComponentId (empty if disabled)
  std::vector<ActionId> restart_actions;  ///< by ComponentId
  std::vector<ActionId> reboot_actions;   ///< by HostId (empty if disabled)
  ActionId observe_action = kInvalidId;
};

/// Compiles the topology into the recovery POMDP (untransformed: apply
/// with_recovery_notification or add_termination afterwards as appropriate).
/// Throws ModelError on inconsistent descriptions (traffic fractions not
/// summing to 1, empty paths, too many monitors for joint enumeration, ...).
Pomdp build_recovery_pomdp(const Topology& topology,
                           const TopologyModelConfig& config = {});

/// Resolves the well-known ids in a compiled model (by name lookup).
TopologyIds resolve_topology_ids(const Pomdp& pomdp, const Topology& topology);

}  // namespace recoverd::models
