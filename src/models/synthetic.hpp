// Synthetic large recovery MDPs for the §4.3 scaling claim ("models with up
// to hundreds of thousands of states" solvable by the RA-Bound linear
// system). Observations are deliberately omitted: Eq. 5 is defined on the
// underlying MDP, which is where the scaling claim lives.
#pragma once

#include <cstdint>

#include "pomdp/mdp.hpp"

namespace recoverd::models {

struct SyntheticMdpParams {
  std::size_t num_states = 1000;   ///< including the goal state (id 0)
  std::size_t num_actions = 10;
  /// Expected number of next states per (state, action) row.
  std::size_t branching = 4;
  /// Probability that a row includes a direct repair edge toward the goal
  /// region (guarantees Condition 1 together with the backbone edge).
  double repair_probability = 0.3;
  /// Target window for the random filler edges. 0 (the default) keeps the
  /// legacy behaviour — targets uniform over all states, which couples the
  /// whole model into one giant strongly connected component. A positive
  /// value restricts targets to [s - locality, s + locality], producing the
  /// near-DAG topology real recovery models have (progress flows toward the
  /// goal; Condition 1): cross-window edges all point downward, so the
  /// random-action chain decomposes into many small SCCs that the
  /// topology-aware solver handles in closed form.
  std::size_t locality = 0;
  /// With locality > 0: probability that a random filler edge points
  /// *forward* (to a higher-numbered state inside the window) instead of
  /// backward. Forward edges create local cycles, so this tunes SCC size —
  /// 0 yields a pure DAG (every component a singleton), small values yield
  /// scattered small SCCs. Ignored when locality == 0.
  double forward_probability = 0.0;
  std::uint64_t seed = 1;
};

/// Generates a random recovery MDP satisfying Conditions 1 and 2 with an
/// absorbing zero-reward goal (state 0):
///  - every state keeps a "backbone" edge to a strictly lower-numbered state
///    under action 0, so the goal is reachable from everywhere;
///  - other actions get `branching` random outgoing edges, plus a repair
///    edge with probability `repair_probability`;
///  - rewards are uniform in [-1, 0) (ambient rates scaled by unit
///    durations).
Mdp make_synthetic_recovery_mdp(const SyntheticMdpParams& params = {});

}  // namespace recoverd::models
