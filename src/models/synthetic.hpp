// Synthetic large recovery MDPs for the §4.3 scaling claim ("models with up
// to hundreds of thousands of states" solvable by the RA-Bound linear
// system). Observations are deliberately omitted: Eq. 5 is defined on the
// underlying MDP, which is where the scaling claim lives.
#pragma once

#include <cstdint>

#include "pomdp/mdp.hpp"

namespace recoverd::models {

struct SyntheticMdpParams {
  std::size_t num_states = 1000;   ///< including the goal state (id 0)
  std::size_t num_actions = 10;
  /// Expected number of next states per (state, action) row.
  std::size_t branching = 4;
  /// Probability that a row includes a direct repair edge toward the goal
  /// region (guarantees Condition 1 together with the backbone edge).
  double repair_probability = 0.3;
  std::uint64_t seed = 1;
};

/// Generates a random recovery MDP satisfying Conditions 1 and 2 with an
/// absorbing zero-reward goal (state 0):
///  - every state keeps a "backbone" edge to a strictly lower-numbered state
///    under action 0, so the goal is reachable from everywhere;
///  - other actions get `branching` random outgoing edges, plus a repair
///    edge with probability `repair_probability`;
///  - rewards are uniform in [-1, 0) (ambient rates scaled by unit
///    durations).
Mdp make_synthetic_recovery_mdp(const SyntheticMdpParams& params = {});

}  // namespace recoverd::models
