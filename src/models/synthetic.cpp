#include "models/synthetic.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace recoverd::models {

Mdp make_synthetic_recovery_mdp(const SyntheticMdpParams& params) {
  RD_EXPECTS(params.num_states >= 2, "make_synthetic_recovery_mdp: need >= 2 states");
  RD_EXPECTS(params.num_actions >= 1, "make_synthetic_recovery_mdp: need >= 1 action");
  RD_EXPECTS(params.branching >= 1, "make_synthetic_recovery_mdp: branching must be >= 1");
  RD_EXPECTS(params.repair_probability >= 0.0 && params.repair_probability <= 1.0,
             "make_synthetic_recovery_mdp: repair probability must lie in [0,1]");
  RD_EXPECTS(params.forward_probability >= 0.0 && params.forward_probability <= 1.0,
             "make_synthetic_recovery_mdp: forward probability must lie in [0,1]");

  Rng rng(params.seed);
  MdpBuilder b;
  b.add_state("goal", 0.0);
  for (std::size_t s = 1; s < params.num_states; ++s) {
    b.add_state("fault" + std::to_string(s), -rng.uniform(0.05, 1.0));
  }
  for (std::size_t a = 0; a < params.num_actions; ++a) {
    b.add_action("action" + std::to_string(a), 1.0);
  }
  b.mark_goal(0);

  for (StateId s = 0; s < params.num_states; ++s) {
    for (ActionId a = 0; a < params.num_actions; ++a) {
      if (s == 0) {
        // Absorbing zero-reward goal (the recovery-notification transform
        // applied by construction).
        b.set_transition(0, a, 0, 1.0);
        b.set_rate_reward(0, a, 0.0);
        continue;
      }
      // Collect target states and split probability mass evenly.
      std::vector<StateId> targets;
      if (a == 0) {
        targets.push_back(rng.uniform_index(s));  // backbone: strictly lower id
      }
      if (rng.bernoulli(params.repair_probability)) {
        targets.push_back(rng.uniform_index(std::min<std::size_t>(s, 8)));
      }
      while (targets.size() < params.branching) {
        if (params.locality == 0) {
          targets.push_back(rng.uniform_index(params.num_states));
        } else {
          // Windowed filler edge: backward edges [lo, s] keep progress
          // flowing toward the goal; a forward edge (s, hi] appears with
          // probability forward_probability and seeds a local cycle.
          const std::size_t lo = s > params.locality ? s - params.locality : 0;
          const std::size_t hi = std::min(params.num_states - 1, s + params.locality);
          if (hi > s && rng.bernoulli(params.forward_probability)) {
            targets.push_back(s + 1 + rng.uniform_index(hi - s));
          } else {
            targets.push_back(lo + rng.uniform_index(s - lo + 1));
          }
        }
      }
      const double p = 1.0 / static_cast<double>(targets.size());
      // Accumulate duplicate targets by summing (builder overwrites, so
      // pre-merge here).
      std::vector<std::pair<StateId, double>> merged;
      for (StateId t : targets) {
        bool found = false;
        for (auto& [state, prob] : merged) {
          if (state == t) {
            prob += p;
            found = true;
            break;
          }
        }
        if (!found) merged.emplace_back(t, p);
      }
      for (const auto& [state, prob] : merged) b.set_transition(s, a, state, prob);
    }
  }
  return b.build();
}

}  // namespace recoverd::models
