#include "models/topology.hpp"

#include <cmath>

#include "util/check.hpp"

namespace recoverd::models {

HostId Topology::add_host(std::string name, double reboot_duration) {
  RD_EXPECTS(!name.empty(), "Topology::add_host: name must be non-empty");
  RD_EXPECTS(reboot_duration > 0.0, "Topology::add_host: reboot duration must be positive");
  hosts_.push_back({std::move(name), reboot_duration});
  return hosts_.size() - 1;
}

ComponentId Topology::add_component(std::string name, HostId host,
                                    double restart_duration) {
  RD_EXPECTS(!name.empty(), "Topology::add_component: name must be non-empty");
  RD_EXPECTS(host < hosts_.size(), "Topology::add_component: host out of range");
  RD_EXPECTS(restart_duration > 0.0,
             "Topology::add_component: restart duration must be positive");
  components_.push_back({std::move(name), host, restart_duration});
  return components_.size() - 1;
}

PathId Topology::add_path(std::string name, double traffic_fraction) {
  RD_EXPECTS(!name.empty(), "Topology::add_path: name must be non-empty");
  RD_EXPECTS(traffic_fraction > 0.0 && traffic_fraction <= 1.0,
             "Topology::add_path: traffic fraction must lie in (0,1]");
  paths_.push_back({std::move(name), traffic_fraction, {}});
  return paths_.size() - 1;
}

void Topology::add_path_stage(PathId path,
                              std::vector<std::pair<ComponentId, double>> alternatives) {
  RD_EXPECTS(path < paths_.size(), "Topology::add_path_stage: path out of range");
  RD_EXPECTS(!alternatives.empty(), "Topology::add_path_stage: stage must be non-empty");
  double total = 0.0;
  for (const auto& [component, weight] : alternatives) {
    RD_EXPECTS(component < components_.size(),
               "Topology::add_path_stage: component out of range");
    RD_EXPECTS(weight > 0.0 && std::isfinite(weight),
               "Topology::add_path_stage: weights must be positive");
    total += weight;
  }
  RD_EXPECTS(total > 0.0, "Topology::add_path_stage: weights must have positive sum");
  paths_[path].stages.push_back({std::move(alternatives)});
}

MonitorId Topology::add_ping_monitor(std::string name, ComponentId target,
                                     double coverage, double false_positive) {
  RD_EXPECTS(!name.empty(), "Topology::add_ping_monitor: name must be non-empty");
  RD_EXPECTS(target < components_.size(), "Topology::add_ping_monitor: target out of range");
  RD_EXPECTS(coverage >= 0.0 && coverage <= 1.0,
             "Topology::add_ping_monitor: coverage must lie in [0,1]");
  RD_EXPECTS(false_positive >= 0.0 && false_positive < 1.0,
             "Topology::add_ping_monitor: false positive must lie in [0,1)");
  monitors_.push_back({std::move(name), MonitorKind::Ping, target, coverage, false_positive});
  return monitors_.size() - 1;
}

MonitorId Topology::add_path_monitor(std::string name, PathId path, double coverage,
                                     double false_positive) {
  RD_EXPECTS(!name.empty(), "Topology::add_path_monitor: name must be non-empty");
  RD_EXPECTS(path < paths_.size(), "Topology::add_path_monitor: path out of range");
  RD_EXPECTS(coverage >= 0.0 && coverage <= 1.0,
             "Topology::add_path_monitor: coverage must lie in [0,1]");
  RD_EXPECTS(false_positive >= 0.0 && false_positive < 1.0,
             "Topology::add_path_monitor: false positive must lie in [0,1)");
  monitors_.push_back(
      {std::move(name), MonitorKind::PathProbe, path, coverage, false_positive});
  return monitors_.size() - 1;
}

const std::string& Topology::host_name(HostId h) const {
  RD_EXPECTS(h < hosts_.size(), "Topology::host_name: out of range");
  return hosts_[h].name;
}

const std::string& Topology::component_name(ComponentId c) const {
  RD_EXPECTS(c < components_.size(), "Topology::component_name: out of range");
  return components_[c].name;
}

HostId Topology::component_host(ComponentId c) const {
  RD_EXPECTS(c < components_.size(), "Topology::component_host: out of range");
  return components_[c].host;
}

double Topology::path_hit_probability(PathId path, const std::vector<bool>& faulty) const {
  RD_EXPECTS(path < paths_.size(), "Topology::path_hit_probability: path out of range");
  RD_EXPECTS(faulty.size() == components_.size(),
             "Topology::path_hit_probability: faulty mask size mismatch");
  double survive = 1.0;
  for (const auto& stage : paths_[path].stages) {
    double total = 0.0;
    double healthy = 0.0;
    for (const auto& [component, weight] : stage.alternatives) {
      total += weight;
      if (!faulty[component]) healthy += weight;
    }
    survive *= healthy / total;
  }
  return 1.0 - survive;
}

double Topology::drop_fraction(const std::vector<bool>& faulty) const {
  double dropped = 0.0;
  for (PathId p = 0; p < paths_.size(); ++p) {
    dropped += paths_[p].traffic_fraction * path_hit_probability(p, faulty);
  }
  return dropped;
}

namespace {

// Per-state fault annotations used during compilation.
struct StateInfo {
  std::string name;
  std::vector<bool> faulty;  // components unable to serve in this state
};

std::string crash_name(const std::string& component) { return "Crash(" + component + ")"; }
std::string host_crash_name(const std::string& host) { return "HostCrash(" + host + ")"; }
std::string zombie_name(const std::string& component) { return "Zombie(" + component + ")"; }

}  // namespace

Pomdp build_recovery_pomdp(const Topology& topology, const TopologyModelConfig& config) {
  const auto& hosts = topology.hosts_;
  const auto& components = topology.components_;
  const auto& paths = topology.paths_;
  const auto& monitors = topology.monitors_;

  if (components.empty()) throw ModelError("build_recovery_pomdp: no components");
  if (paths.empty()) throw ModelError("build_recovery_pomdp: no paths");
  if (monitors.empty()) throw ModelError("build_recovery_pomdp: no monitors");
  if (monitors.size() > 20) {
    throw ModelError("build_recovery_pomdp: joint observation enumeration supports at "
                     "most 20 monitors (|O| = 2^M)");
  }
  double traffic = 0.0;
  for (const auto& path : paths) {
    if (path.stages.empty()) {
      throw ModelError("build_recovery_pomdp: path '" + path.name + "' has no stages");
    }
    traffic += path.traffic_fraction;
  }
  if (std::abs(traffic - 1.0) > 1e-9) {
    throw ModelError("build_recovery_pomdp: traffic fractions sum to " +
                     std::to_string(traffic) + " (expected 1)");
  }

  const std::size_t num_components = components.size();

  // --- state enumeration ---
  std::vector<StateInfo> states;
  states.push_back({"Null", std::vector<bool>(num_components, false)});
  std::vector<std::size_t> crash_index(num_components);
  for (ComponentId c = 0; c < num_components; ++c) {
    StateInfo info{crash_name(components[c].name), std::vector<bool>(num_components, false)};
    info.faulty[c] = true;
    crash_index[c] = states.size();
    states.push_back(std::move(info));
  }
  std::vector<std::size_t> host_index(hosts.size(), kInvalidId);
  if (config.include_host_faults) {
    for (HostId h = 0; h < hosts.size(); ++h) {
      StateInfo info{host_crash_name(hosts[h].name),
                     std::vector<bool>(num_components, false)};
      for (ComponentId c = 0; c < num_components; ++c) {
        if (components[c].host == h) info.faulty[c] = true;
      }
      host_index[h] = states.size();
      states.push_back(std::move(info));
    }
  }
  std::vector<std::size_t> zombie_index(num_components, kInvalidId);
  if (config.include_zombie_faults) {
    for (ComponentId c = 0; c < num_components; ++c) {
      StateInfo info{zombie_name(components[c].name),
                     std::vector<bool>(num_components, false)};
      info.faulty[c] = true;
      zombie_index[c] = states.size();
      states.push_back(std::move(info));
    }
  }

  PomdpBuilder b;
  for (const auto& info : states) {
    b.add_state(info.name, -topology.drop_fraction(info.faulty));
  }
  b.mark_goal(0);

  // --- actions ---
  std::vector<ActionId> restart_actions(num_components);
  for (ComponentId c = 0; c < num_components; ++c) {
    restart_actions[c] =
        b.add_action("Restart(" + components[c].name + ")", components[c].restart_duration);
  }
  std::vector<ActionId> reboot_actions;
  if (config.include_host_faults) {
    reboot_actions.resize(hosts.size());
    for (HostId h = 0; h < hosts.size(); ++h) {
      reboot_actions[h] = b.add_action("Reboot(" + hosts[h].name + ")",
                                       hosts[h].reboot_duration);
    }
  }
  const ActionId observe_action = b.add_action("Observe", config.observe_duration);

  // Components made unavailable while each action runs.
  const std::size_t num_actions = b.num_actions();
  std::vector<std::vector<bool>> action_down(num_actions,
                                             std::vector<bool>(num_components, false));
  for (ComponentId c = 0; c < num_components; ++c) action_down[restart_actions[c]][c] = true;
  if (config.include_host_faults) {
    for (HostId h = 0; h < hosts.size(); ++h) {
      for (ComponentId c = 0; c < num_components; ++c) {
        if (components[c].host == h) action_down[reboot_actions[h]][c] = true;
      }
    }
  }

  // --- transitions: which state does each (state, action) lead to? ---
  auto next_state = [&](std::size_t s, ActionId a) -> std::size_t {
    if (s == 0) return 0;  // Null is unaffected by any action
    // Crash of a component: fixed by its restart or its host's reboot.
    for (ComponentId c = 0; c < num_components; ++c) {
      if (s == crash_index[c] || (config.include_zombie_faults && s == zombie_index[c])) {
        if (a == restart_actions[c]) return 0;
        if (config.include_host_faults && a == reboot_actions[components[c].host]) return 0;
        return s;
      }
    }
    if (config.include_host_faults) {
      for (HostId h = 0; h < hosts.size(); ++h) {
        if (s == host_index[h]) {
          // Only a reboot of the crashed host helps; restarting components
          // on a dead host does nothing.
          return a == reboot_actions[h] ? 0 : s;
        }
      }
    }
    return s;
  };

  for (std::size_t s = 0; s < states.size(); ++s) {
    for (ActionId a = 0; a < num_actions; ++a) {
      b.set_transition(s, a, next_state(s, a), 1.0);
      // Cost rate while the action runs: the fault's drop fraction plus the
      // components the action itself takes down.
      std::vector<bool> effective = states[s].faulty;
      for (ComponentId c = 0; c < num_components; ++c) {
        if (action_down[a][c]) effective[c] = true;
      }
      b.set_rate_reward(s, a, -topology.drop_fraction(effective));
      if (a == observe_action && config.observe_impulse_cost > 0.0) {
        b.set_impulse_reward(s, a, -config.observe_impulse_cost);
      }
    }
  }

  // --- observations: joint outcome of all monitors ---
  const std::size_t num_obs = std::size_t{1} << monitors.size();
  for (std::size_t bits = 0; bits < num_obs; ++bits) {
    std::string name = "obs[";
    for (std::size_t m = 0; m < monitors.size(); ++m) {
      name += (bits >> m) & 1 ? '1' : '0';
    }
    name += ']';
    b.add_observation(name);
  }

  for (std::size_t s = 0; s < states.size(); ++s) {
    // Per-monitor failure-reading probability in this state.
    std::vector<double> fail(monitors.size());
    for (std::size_t m = 0; m < monitors.size(); ++m) {
      const auto& monitor = monitors[m];
      if (monitor.kind == Topology::MonitorKind::Ping) {
        const ComponentId c = monitor.target;
        const bool ping_dead =
            s == crash_index[c] ||
            (config.include_host_faults && host_index[components[c].host] != kInvalidId &&
             s == host_index[components[c].host]);
        // Zombies answer pings, so only real crashes are covered.
        fail[m] = ping_dead ? monitor.coverage : monitor.false_positive;
      } else {
        const double hit = topology.path_hit_probability(monitor.target, states[s].faulty);
        fail[m] = hit * monitor.coverage + (1.0 - hit) * monitor.false_positive;
      }
    }

    // Enumerate joint outcomes with pruning, then renormalise the row.
    std::vector<std::pair<std::size_t, double>> row;
    std::vector<std::pair<std::size_t, double>> frontier{{0, 1.0}};
    for (std::size_t m = 0; m < monitors.size(); ++m) {
      std::vector<std::pair<std::size_t, double>> next;
      next.reserve(frontier.size() * 2);
      for (const auto& [bits, prob] : frontier) {
        const double p_fail = prob * fail[m];
        const double p_ok = prob * (1.0 - fail[m]);
        if (p_fail > config.observation_floor) {
          next.emplace_back(bits | (std::size_t{1} << m), p_fail);
        }
        if (p_ok > config.observation_floor) next.emplace_back(bits, p_ok);
      }
      frontier = std::move(next);
    }
    row = std::move(frontier);
    if (row.empty()) {
      throw ModelError("build_recovery_pomdp: observation row pruned to nothing for "
                       "state '" + states[s].name + "' (floor too aggressive)");
    }
    double total = 0.0;
    for (const auto& entry : row) total += entry.second;
    for (const auto& [bits, prob] : row) {
      b.set_observation_all_actions(s, bits, prob / total);
    }
  }

  return b.build();
}

TopologyIds resolve_topology_ids(const Pomdp& pomdp, const Topology& topology) {
  const Mdp& mdp = pomdp.mdp();
  TopologyIds ids;
  ids.null_state = mdp.find_state("Null");
  RD_EXPECTS(ids.null_state != kInvalidId, "resolve_topology_ids: not a topology model");
  for (ComponentId c = 0; c < topology.num_components(); ++c) {
    ids.crash_states.push_back(mdp.find_state(crash_name(topology.component_name(c))));
    const StateId zombie = mdp.find_state(zombie_name(topology.component_name(c)));
    if (zombie != kInvalidId) ids.zombie_states.push_back(zombie);
    ids.restart_actions.push_back(
        mdp.find_action("Restart(" + topology.component_name(c) + ")"));
  }
  for (HostId h = 0; h < topology.num_hosts(); ++h) {
    const StateId crash = mdp.find_state(host_crash_name(topology.host_name(h)));
    if (crash != kInvalidId) ids.host_states.push_back(crash);
    const ActionId reboot = mdp.find_action("Reboot(" + topology.host_name(h) + ")");
    if (reboot != kInvalidId) ids.reboot_actions.push_back(reboot);
  }
  ids.observe_action = mdp.find_action("Observe");
  return ids;
}

}  // namespace recoverd::models
