// The paper's running example (Fig. 1(a) / Fig. 2): two redundant servers a
// and b, each serving half the request load.
//
// States:   Null (no fault), Fault(a), Fault(b).
// Actions:  Restart(a), Restart(b), Observe — all of unit duration.
//           Restarting the faulty server recovers with probability 1 at cost
//           0.5 (the fault keeps dropping its half of the load during the
//           restart); restarting the healthy one costs an extra 0.5 of
//           availability, for −1 total in a fault state and −0.5 in Null;
//           Observe costs the ambient fault rate (−0.5 in fault states, 0 in
//           Null).
// Monitors: one noisy failure detector emitting "alarm(a)", "alarm(b)", or
//           "clear" after every action, with configurable coverage and
//           false-positive probability.
#pragma once

#include "pomdp/pomdp.hpp"

namespace recoverd::models {

struct TwoServerParams {
  /// P(monitor raises the right alarm | that server is faulty).
  double coverage = 0.9;
  /// P(monitor raises a given spurious alarm | system in Null).
  double false_positive = 0.05;
  /// Duration of every action, seconds (the paper uses unit time).
  double action_duration = 1.0;
  /// Per-unit-time cost of one server's lost load.
  double per_server_load = 0.5;
};

/// Observation/state/action names used by the model (also usable as lookup
/// keys through Mdp::find_state / Mdp::find_action / Pomdp::find_observation).
struct TwoServerIds {
  StateId null_state;
  StateId fault_a;
  StateId fault_b;
  ActionId restart_a;
  ActionId restart_b;
  ActionId observe;
  ObsId alarm_a;
  ObsId alarm_b;
  ObsId clear;
};

/// The untransformed recovery model of Fig. 1(a).
Pomdp make_two_server(const TwoServerParams& params = {});

/// Fig. 2(a): the same model under the recovery-notification transform
/// (Null absorbing with zero reward).
Pomdp make_two_server_with_notification(const TwoServerParams& params = {});

/// Fig. 2(b): the same model under the terminate transform with operator
/// response time `t_op`.
Pomdp make_two_server_without_notification(double t_op,
                                           const TwoServerParams& params = {});

/// Resolves the well-known ids in any of the three variants above.
TwoServerIds two_server_ids(const Pomdp& pomdp);

}  // namespace recoverd::models
