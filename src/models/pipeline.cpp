#include "models/pipeline.hpp"

#include "pomdp/transforms.hpp"
#include "util/check.hpp"

namespace recoverd::models {

Topology make_pipeline_topology(const PipelineConfig& config) {
  RD_EXPECTS(config.stages >= 2, "make_pipeline_topology: need at least 2 stages");
  RD_EXPECTS(config.stages <= 9,
             "make_pipeline_topology: joint observation enumeration caps monitors at 20 "
             "(stages + 1 path monitor); keep stages <= 9");

  Topology t;
  std::vector<HostId> hosts;
  for (std::size_t h = 0; h < (config.stages + 1) / 2; ++h) {
    std::string name = "Host";
    name += std::to_string(h + 1);
    hosts.push_back(t.add_host(name, config.host_reboot));
  }

  std::vector<ComponentId> stages;
  for (std::size_t i = 0; i < config.stages; ++i) {
    std::string name = "Stage";
    name += std::to_string(i + 1);
    stages.push_back(t.add_component(name, hosts[i / 2], config.restart_duration));
  }

  const PathId path = t.add_path("pipeline", 1.0);
  for (const ComponentId c : stages) t.add_path_stage(path, {{c, 1.0}});

  for (std::size_t i = 0; i < stages.size(); ++i) {
    std::string name = "Stage";
    name += std::to_string(i + 1);
    name += "Mon";
    t.add_ping_monitor(name, stages[i], config.ping_coverage,
                       config.ping_false_positive);
  }
  t.add_path_monitor("PipelineMon", path, config.path_coverage,
                     config.path_false_positive);
  return t;
}

Pomdp make_pipeline_base(const PipelineConfig& config) {
  TopologyModelConfig model_config;
  model_config.observe_duration = config.monitor_duration;
  model_config.observe_impulse_cost = config.monitor_impulse_cost;
  return build_recovery_pomdp(make_pipeline_topology(config), model_config);
}

Pomdp make_pipeline_recovery_model(const PipelineConfig& config) {
  return add_termination(make_pipeline_base(config), config.operator_response_time);
}

}  // namespace recoverd::models
