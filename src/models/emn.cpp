#include "models/emn.hpp"

#include "pomdp/transforms.hpp"
#include "util/check.hpp"

namespace recoverd::models {

Topology make_emn_topology(const EmnConfig& config) {
  RD_EXPECTS(config.http_fraction > 0.0 && config.http_fraction < 1.0,
             "make_emn_topology: http fraction must lie in (0,1)");

  Topology t;
  const HostId host_a = t.add_host("HostA", config.host_reboot);
  const HostId host_b = t.add_host("HostB", config.host_reboot);
  const HostId host_c = t.add_host("HostC", config.host_reboot);

  const ComponentId hg = t.add_component("HG", host_a, config.hg_restart);
  const ComponentId vg = t.add_component("VG", host_a, config.vg_restart);
  const ComponentId s1 = t.add_component("S1", host_b, config.emn_restart);
  const ComponentId s2 = t.add_component("S2", host_b, config.emn_restart);
  const ComponentId db = t.add_component("DB", host_c, config.db_restart);

  const PathId http = t.add_path("HTTP", config.http_fraction);
  t.add_path_stage(http, {{hg, 1.0}});
  t.add_path_stage(http, {{s1, 0.5}, {s2, 0.5}});
  t.add_path_stage(http, {{db, 1.0}});

  const PathId voice = t.add_path("Voice", 1.0 - config.http_fraction);
  t.add_path_stage(voice, {{vg, 1.0}});
  t.add_path_stage(voice, {{s1, 0.5}, {s2, 0.5}});
  t.add_path_stage(voice, {{db, 1.0}});

  t.add_ping_monitor("HGMon", hg, config.ping_coverage, config.ping_false_positive);
  t.add_ping_monitor("VGMon", vg, config.ping_coverage, config.ping_false_positive);
  t.add_ping_monitor("S1Mon", s1, config.ping_coverage, config.ping_false_positive);
  t.add_ping_monitor("S2Mon", s2, config.ping_coverage, config.ping_false_positive);
  t.add_ping_monitor("DBMon", db, config.ping_coverage, config.ping_false_positive);
  t.add_path_monitor("HPathMon", http, config.path_coverage, config.path_false_positive);
  t.add_path_monitor("VPathMon", voice, config.path_coverage, config.path_false_positive);
  return t;
}

Pomdp make_emn_base(const EmnConfig& config) {
  TopologyModelConfig model_config;
  model_config.observe_duration = config.monitor_duration;
  model_config.observe_impulse_cost = config.monitor_impulse_cost;
  return build_recovery_pomdp(make_emn_topology(config), model_config);
}

Pomdp make_emn_recovery_model(const EmnConfig& config) {
  return add_termination(make_emn_base(config), config.operator_response_time);
}

EmnIds emn_ids(const Pomdp& pomdp, const EmnConfig& config) {
  EmnIds ids;
  ids.topo = resolve_topology_ids(pomdp, make_emn_topology(config));
  return ids;
}

}  // namespace recoverd::models
