// A second built-in evaluation system: a linear N-stage processing pipeline
// (one component per stage, no redundancy) across ceil(N/2) hosts.
//
// Its diagnosability profile is the opposite of the EMN system: with no
// routing alternatives a path probe crosses *every* stage, so a path alarm
// says "something is wrong" with no localisation at all, while ping
// monitors localise crashes exactly. Zombie faults are therefore maximally
// ambiguous — a stress case for belief-space planning that complements the
// EMN model's 50/50 routing ambiguity.
#pragma once

#include "models/topology.hpp"
#include "pomdp/pomdp.hpp"

namespace recoverd::models {

struct PipelineConfig {
  std::size_t stages = 4;
  double restart_duration = 60.0;
  double host_reboot = 300.0;
  double monitor_duration = 5.0;
  double monitor_impulse_cost = 2.0;
  double ping_coverage = 0.95;
  double ping_false_positive = 0.01;
  double path_coverage = 0.95;
  double path_false_positive = 0.01;
  double operator_response_time = 21600.0;
};

/// The pipeline topology: stages named "Stage1".."StageN", hosts "Host1"..,
/// one end-to-end path monitor plus one ping monitor per stage.
Topology make_pipeline_topology(const PipelineConfig& config = {});

/// Untransformed recovery POMDP of the pipeline.
Pomdp make_pipeline_base(const PipelineConfig& config = {});

/// Terminate-transformed controller model.
Pomdp make_pipeline_recovery_model(const PipelineConfig& config = {});

}  // namespace recoverd::models
