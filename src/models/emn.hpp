// The paper's evaluation system (§5, Fig. 4): a simple deployment of AT&T's
// Enterprise Messaging Network platform — a classic 3-tier e-commerce
// system.
//
//   HostA: HTTP Gateway (HG), Voice Gateway (VG)
//   HostB: EMN Server 1 (S1), EMN Server 2 (S2)
//   HostC: Oracle DB (DB)
//
// Requests (80 % HTTP, 20 % voice) flow gateway → {S1|S2, 50/50} → DB.
// Monitoring: one ping monitor per component (HGMon, VGMon, S1Mon, S2Mon,
// DBMon) and two path monitors (HPathMon, VPathMon). The model has 14
// states — Null, 5 component crashes, 3 host crashes, and 5 "zombie" faults
// that answer pings but drop requests — and lacks recovery notification, so
// the terminate transform applies with an operator response time of 6 hours.
//
// Action durations from §5: host reboot 5 min, DB restart 4 min, VG restart
// 2 min, HG/S1/S2 restart 1 min, monitor execution 5 s.
#pragma once

#include "models/topology.hpp"
#include "pomdp/pomdp.hpp"

namespace recoverd::models {

struct EmnConfig {
  // Traffic mix.
  double http_fraction = 0.8;
  // Action durations, seconds.
  double host_reboot = 300.0;
  double db_restart = 240.0;
  double vg_restart = 120.0;
  double hg_restart = 60.0;
  double emn_restart = 60.0;
  double monitor_duration = 5.0;
  /// Fixed capacity consumed by one monitor sweep (request-seconds): path
  /// probes are real requests. Keeps Property 1(a)'s no-free-actions
  /// assumption satisfied in the Null state.
  double monitor_impulse_cost = 2.0;
  // Monitor quality.
  double ping_coverage = 0.95;
  double ping_false_positive = 0.01;
  double path_coverage = 0.95;
  double path_false_positive = 0.01;
  // Operator response time for the terminate transform (§5 uses 6 h).
  double operator_response_time = 21600.0;
};

/// Builds the Fig. 4 topology (hosts, components, paths, monitors).
Topology make_emn_topology(const EmnConfig& config = {});

/// The untransformed EMN recovery POMDP (14 states, 9 actions, 128 joint
/// observations). This is the environment model for fault injection.
Pomdp make_emn_base(const EmnConfig& config = {});

/// The controller's model: the same POMDP with the terminate transform
/// applied (the EMN system lacks recovery notification, §5).
Pomdp make_emn_recovery_model(const EmnConfig& config = {});

/// Well-known ids of an EMN model (works on both variants).
struct EmnIds {
  TopologyIds topo;
  /// Component order: HG, VG, S1, S2, DB.
  enum Component { HG = 0, VG = 1, S1 = 2, S2 = 3, DB = 4 };
  /// Host order: HostA, HostB, HostC.
  enum Host { HostA = 0, HostB = 1, HostC = 2 };
};

EmnIds emn_ids(const Pomdp& pomdp, const EmnConfig& config = {});

}  // namespace recoverd::models
