#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace recoverd::obs {

namespace {
// Lock-free running min/max: CAS loop that only writes when the sample
// actually extends the range, so the common case is a single relaxed load.
void atomic_min(std::atomic<double>& target, double x) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (x < cur &&
         !target.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double x) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (x > cur &&
         !target.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}
}  // namespace

Histogram::Histogram(std::vector<double> uppers)
    : uppers_(std::move(uppers)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  RD_EXPECTS(!uppers_.empty(), "Histogram: at least one bucket bound required");
  for (std::size_t i = 0; i < uppers_.size(); ++i) {
    RD_EXPECTS(std::isfinite(uppers_[i]), "Histogram: bucket bounds must be finite");
    RD_EXPECTS(i == 0 || uppers_[i - 1] < uppers_[i],
               "Histogram: bucket bounds must be strictly increasing");
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(buckets());
  for (std::size_t i = 0; i < buckets(); ++i) counts_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double x) noexcept {
  const auto it = std::lower_bound(uppers_.begin(), uppers_.end(), x);
  const auto bucket = static_cast<std::size_t>(it - uppers_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
  atomic_min(min_, x);
  atomic_max(max_, x);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  RD_EXPECTS(i < buckets(), "Histogram::bucket_count: index out of range");
  return counts_[i].load(std::memory_order_relaxed);
}

double Histogram::min() const noexcept {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::max() const noexcept {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i < buckets(); ++i) counts_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

std::vector<double> exponential_buckets(double start, double factor, std::size_t count) {
  RD_EXPECTS(start > 0.0, "exponential_buckets: start must be positive");
  RD_EXPECTS(factor > 1.0, "exponential_buckets: factor must exceed 1");
  RD_EXPECTS(count > 0, "exponential_buckets: count must be positive");
  std::vector<double> uppers(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i, bound *= factor) uppers[i] = bound;
  return uppers;
}

std::vector<double> linear_buckets(double start, double width, std::size_t count) {
  RD_EXPECTS(width > 0.0, "linear_buckets: width must be positive");
  RD_EXPECTS(count > 0, "linear_buckets: count must be positive");
  std::vector<double> uppers(count);
  for (std::size_t i = 0; i < count; ++i) uppers[i] = start + width * static_cast<double>(i);
  return uppers;
}

double histogram_quantile(const HistogramSample& sample, double q) {
  RD_EXPECTS(q >= 0.0 && q <= 1.0, "histogram_quantile: q must be in [0, 1]");
  if (sample.count == 0) return 0.0;
  // Rank of the target observation (1-based, ceil so q=1 hits the last).
  const double rank =
      std::max(1.0, std::ceil(q * static_cast<double>(sample.count)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < sample.counts.size(); ++i) {
    const std::uint64_t in_bucket = sample.counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) < rank) {
      cumulative += in_bucket;
      continue;
    }
    // Interpolate linearly within [lower, upper): the bucket below the
    // first bound starts at `min`, and the overflow bucket (no upper
    // bound) spans up to `max`.
    const double lower = i == 0 ? sample.min : sample.uppers[i - 1];
    const double upper = i < sample.uppers.size() ? sample.uppers[i] : sample.max;
    const double fraction =
        (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
    const double value = lower + (upper - lower) * fraction;
    // Bucket edges can overshoot the observed range (e.g. every sample in
    // one wide bucket); the true quantile always lies within [min, max].
    return std::clamp(value, sample.min, sample.max);
  }
  return sample.max;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  RD_EXPECTS(gauges_.count(name) == 0 && histograms_.count(name) == 0,
             "MetricsRegistry: '" + name + "' is already registered as another kind");
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  RD_EXPECTS(counters_.count(name) == 0 && histograms_.count(name) == 0,
             "MetricsRegistry: '" + name + "' is already registered as another kind");
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> uppers) {
  std::lock_guard<std::mutex> lock(mutex_);
  RD_EXPECTS(counters_.count(name) == 0 && gauges_.count(name) == 0,
             "MetricsRegistry: '" + name + "' is already registered as another kind");
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(uppers));
  } else {
    RD_EXPECTS(uppers.empty() || uppers == slot->uppers(),
               "MetricsRegistry: histogram '" + name +
                   "' re-registered with different buckets");
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.push_back({name, c->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.push_back({name, g->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.uppers = h->uppers();
    s.counts.resize(h->buckets());
    for (std::size_t i = 0; i < h->buckets(); ++i) s.counts[i] = h->bucket_count(i);
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    s.p50 = histogram_quantile(s, 0.50);
    s.p90 = histogram_quantile(s, 0.90);
    s.p99 = histogram_quantile(s, 0.99);
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : counters_) entry.second->reset();
  for (auto& entry : gauges_) entry.second->reset();
  for (auto& entry : histograms_) entry.second->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace recoverd::obs
