// Thread-safe metrics registry: the observability spine of the library.
//
// Three instrument kinds, matching what the paper's evaluation reports:
//  - Counter:   monotonically increasing event count (Eq. 7 updates, sweeps);
//  - Gauge:     last-written value (hyperplane-set size, SOR factor);
//  - Histogram: fixed-bucket distribution (decide() latency, residuals).
//
// Registration (looking an instrument up by name) takes a mutex once;
// call sites cache the returned reference — typically in a function-local
// static — after which every update is a lock-free relaxed atomic, cheap
// enough to leave enabled on the hot paths the benches measure.
//
// Naming scheme (see DESIGN.md §7): dotted lowercase `module.component.metric`,
// e.g. `linalg.gauss_seidel.sweeps`; histograms recording milliseconds end in
// `_ms`. Values are process-global via `metrics()`; tests construct private
// registries or call `reset()` to zero the global one (instruments are never
// unregistered, so cached references stay valid forever).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace recoverd::obs {

/// Monotonically increasing event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written scalar.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept { value_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts samples x ≤ uppers[i] (first
/// matching bound); an implicit overflow bucket catches x > uppers.back().
/// Tracks count/sum/min/max alongside the buckets.
class Histogram {
 public:
  /// `uppers` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> uppers);

  void observe(double x) noexcept;

  const std::vector<double>& uppers() const { return uppers_; }
  /// Number of buckets including the overflow bucket (uppers().size() + 1).
  std::size_t buckets() const { return uppers_.size() + 1; }
  std::uint64_t bucket_count(std::size_t i) const;
  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// Min/max of observed samples; 0 when no samples were recorded.
  double min() const noexcept;
  double max() const noexcept;
  double mean() const noexcept;

  void reset() noexcept;

 private:
  std::vector<double> uppers_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// `count` upper bounds start, start·factor, start·factor², …
std::vector<double> exponential_buckets(double start, double factor, std::size_t count);
/// `count` upper bounds start, start+width, start+2·width, …
std::vector<double> linear_buckets(double start, double width, std::size_t count);

/// Point-in-time copy of every instrument, ordered by name — the unit the
/// exporters (obs/export.hpp) serialise.
struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};
struct GaugeSample {
  std::string name;
  double value = 0.0;
};
struct HistogramSample {
  std::string name;
  std::vector<double> uppers;
  std::vector<std::uint64_t> counts;  ///< uppers.size() + 1 entries (overflow last)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Quantile estimates by linear interpolation within the cumulative
  /// bucket counts (clamped to [min, max]); 0 when the histogram is empty.
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Estimates the q-quantile (q in [0, 1]) of `sample` from its bucket
/// counts: finds the bucket holding the q·count-th observation, linearly
/// interpolates within it, and clamps to the observed [min, max]. Exposed
/// for tests; snapshot() fills p50/p90/p99 with it.
double histogram_quantile(const HistogramSample& sample, double q);
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Thread-safe instrument registry. Instruments live as long as the
/// registry; lookup interns by name, so repeated calls return the same
/// instance and references may be cached freely.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it on first use.
  /// Throws PreconditionError when `name` is already a gauge or histogram.
  Counter& counter(const std::string& name);

  /// Returns the gauge registered under `name`, creating it on first use.
  Gauge& gauge(const std::string& name);

  /// Returns the histogram registered under `name`, creating it with the
  /// given bucket bounds on first use. Re-registration must pass identical
  /// bounds (or an empty vector to mean "whatever was registered").
  Histogram& histogram(const std::string& name, std::vector<double> uppers);

  /// Copies every instrument's current value.
  MetricsSnapshot snapshot() const;

  /// Zeroes every instrument's value. Registrations (and thus cached
  /// references) survive — only the recorded values are cleared.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-global registry every instrumented module reports into.
MetricsRegistry& metrics();

}  // namespace recoverd::obs
