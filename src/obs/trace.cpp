#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>

#include "util/check.hpp"

namespace recoverd::obs {

namespace detail {

std::atomic<int> g_trace_level{static_cast<int>(TraceLevel::Off)};

std::uint64_t trace_now_ns() {
  // One process-wide epoch keeps timestamps small and directly comparable
  // across threads (steady_clock is a single monotonic clock per process).
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

/// One thread's flight recorder. `events` is sized once (power of two) at
/// construction; `head` counts recorded events forever, so the live window
/// is [max(0, head - capacity), head) and `dropped = head - size` once the
/// ring wraps. The mutex serialises the owning thread's record_event()
/// against the drain — uncontended in steady state, so ~a CAS per span.
struct ThreadTraceBuffer {
  explicit ThreadTraceBuffer(std::size_t capacity, std::uint32_t tid_)
      : events(capacity), tid(tid_) {}

  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint64_t head = 0;
  std::uint32_t tid = 0;
  bool thread_exited = false;
};

/// Process-wide registry of every thread's buffer. Buffers are owned here
/// (shared_ptr) so a thread may exit while its events are still pending a
/// drain; the thread-local handle below only marks `thread_exited`.
struct TraceCollector {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  std::size_t ring_capacity = 1 << 16;
  std::uint32_t next_tid = 0;
  std::uint64_t retired_dropped = 0;  ///< drops from buffers freed by reset
};

TraceCollector& collector() {
  static TraceCollector* instance = new TraceCollector();  // never destroyed
  return *instance;
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1024;
  while (p < n) p <<= 1;
  return p;
}

/// Thread-local handle: registers the buffer on first use, marks it exited
/// on thread death so the collector can recycle it after the next reset.
struct ThreadTraceHandle {
  std::shared_ptr<ThreadTraceBuffer> buffer;

  ThreadTraceHandle() {
    auto& c = collector();
    std::lock_guard<std::mutex> lock(c.mutex);
    buffer = std::make_shared<ThreadTraceBuffer>(c.ring_capacity, c.next_tid++);
    c.buffers.push_back(buffer);
  }

  ~ThreadTraceHandle() {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->thread_exited = true;
  }
};

}  // namespace

ThreadTraceBuffer* local_trace_buffer() {
  thread_local ThreadTraceHandle handle;
  return handle.buffer.get();
}

void record_event(ThreadTraceBuffer* buffer, const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(buffer->mutex);
  TraceEvent& slot = buffer->events[buffer->head & (buffer->events.size() - 1)];
  slot = event;
  slot.tid = buffer->tid;
  ++buffer->head;
}

}  // namespace detail

TraceLevel parse_trace_level(const std::string& name) {
  if (name == "off") return TraceLevel::Off;
  if (name == "decide") return TraceLevel::Decide;
  if (name == "full") return TraceLevel::Full;
  throw PreconditionError("unknown trace level '" + name +
                          "' (expected off|decide|full)");
}

const char* trace_level_name(TraceLevel level) {
  switch (level) {
    case TraceLevel::Off:
      return "off";
    case TraceLevel::Decide:
      return "decide";
    case TraceLevel::Full:
      return "full";
  }
  return "off";
}

void enable_tracing(TraceLevel level, std::size_t ring_capacity) {
  auto& c = detail::collector();
  {
    // Applies to buffers allocated from here on; buffers that already exist
    // keep their size (they are never reallocated while a thread may be
    // mid-record).
    std::lock_guard<std::mutex> lock(c.mutex);
    c.ring_capacity = detail::round_up_pow2(ring_capacity);
  }
  detail::g_trace_level.store(static_cast<int>(level),
                              std::memory_order_relaxed);
}

void disable_tracing() {
  detail::g_trace_level.store(static_cast<int>(TraceLevel::Off),
                              std::memory_order_relaxed);
}

TraceLevel trace_level() {
  return static_cast<TraceLevel>(
      detail::g_trace_level.load(std::memory_order_relaxed));
}

void trace_instant(const char* name, TraceLevel level, const char* category) {
  if (!trace_enabled(level)) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.start_ns = detail::trace_now_ns();
  event.instant = true;
  detail::record_event(detail::local_trace_buffer(), event);
}

TraceSnapshot drain_trace() {
  auto& c = detail::collector();
  std::vector<std::shared_ptr<detail::ThreadTraceBuffer>> buffers;
  TraceSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    buffers = c.buffers;
    snapshot.dropped = c.retired_dropped;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    const std::size_t size = buffer->events.size();
    const std::uint64_t head = buffer->head;
    const std::uint64_t first = head > size ? head - size : 0;
    snapshot.dropped += first;
    for (std::uint64_t i = first; i < head; ++i) {
      snapshot.events.push_back(buffer->events[i & (size - 1)]);
    }
  }
  std::stable_sort(snapshot.events.begin(), snapshot.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.start_ns < b.start_ns;
                   });
  return snapshot;
}

void reset_tracing() {
  auto& c = detail::collector();
  std::lock_guard<std::mutex> lock(c.mutex);
  c.retired_dropped = 0;
  auto keep = c.buffers.end();
  keep = std::remove_if(c.buffers.begin(), c.buffers.end(),
                        [](const std::shared_ptr<detail::ThreadTraceBuffer>& b) {
                          std::lock_guard<std::mutex> inner(b->mutex);
                          if (b->thread_exited) return true;
                          b->head = 0;
                          return false;
                        });
  c.buffers.erase(keep, c.buffers.end());
}

namespace {

/// Span names are string literals from our own call sites, but escape
/// defensively anyway so the file is always valid JSON.
void write_escaped_name(std::ostream& os, const char* text) {
  os << '"';
  for (const char* p = text; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    if (c == '"' || c == '\\') {
      os << '\\' << *p;
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << *p;
    }
  }
  os << '"';
}

void write_number(std::ostream& os, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  os << buf;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const TraceSnapshot& snapshot) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : snapshot.events) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":";
    write_escaped_name(os, event.name != nullptr ? event.name : "(null)");
    os << ",\"cat\":";
    write_escaped_name(os,
                       event.category != nullptr ? event.category : "recoverd");
    os << ",\"ph\":\"" << (event.instant ? 'i' : 'X') << "\"";
    os << ",\"ts\":";
    write_number(os, static_cast<double>(event.start_ns) / 1000.0);
    if (!event.instant) {
      os << ",\"dur\":";
      write_number(os, static_cast<double>(event.dur_ns) / 1000.0);
    } else {
      os << ",\"s\":\"t\"";  // instant scope: thread
    }
    os << ",\"pid\":1,\"tid\":" << event.tid;
    if (event.num_args > 0) {
      os << ",\"args\":{";
      for (std::uint8_t a = 0; a < event.num_args; ++a) {
        if (a > 0) os << ",";
        write_escaped_name(os, event.arg_names[a]);
        os << ":";
        write_number(os, event.arg_values[a]);
      }
      os << "}";
    }
    os << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
     << "\"schema\":\"recoverd.trace.v1\",\"dropped_events\":"
     << snapshot.dropped << "}}\n";
}

void write_trace_file(const std::string& path) {
  disable_tracing();
  const TraceSnapshot snapshot = drain_trace();
  std::ofstream os(path);
  if (!os) {
    throw ModelError("cannot open trace output file '" + path + "'");
  }
  write_chrome_trace(os, snapshot);
}

}  // namespace recoverd::obs
