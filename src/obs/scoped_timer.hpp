// RAII latency measurement feeding an obs::Histogram, so a hot path can be
// timed with one declaration:
//
//   static obs::Histogram& lat = obs::metrics().histogram(
//       "controller.bounded.decide_ms", obs::exponential_buckets(0.001, 2.0, 24));
//   obs::ScopedTimer timer(lat);   // records elapsed ms on scope exit
#pragma once

#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace recoverd::obs {

/// Records the scope's wall-clock duration, in milliseconds, into a
/// histogram when destroyed (or when stop() is called explicitly).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram) : histogram_(&histogram) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { stop(); }

  /// Flushes the measurement early; the destructor then records nothing.
  /// Returns the elapsed milliseconds that were recorded.
  double stop() {
    if (histogram_ == nullptr) return 0.0;
    const double ms = timer_.elapsed_ms();
    histogram_->observe(ms);
    histogram_ = nullptr;
    return ms;
  }

 private:
  Histogram* histogram_;
  Timer timer_;
};

}  // namespace recoverd::obs
