#include "obs/export.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/work_pool.hpp"

namespace recoverd::obs {

namespace {
constexpr const char* kSchema = "recoverd.metrics.v1";

Json histogram_to_json(const HistogramSample& h) {
  Json::Object obj;
  Json::Array uppers;
  for (const double u : h.uppers) uppers.emplace_back(u);
  Json::Array counts;
  for (const std::uint64_t c : h.counts) counts.emplace_back(c);
  obj["uppers"] = Json(std::move(uppers));
  obj["counts"] = Json(std::move(counts));
  obj["count"] = Json(h.count);
  obj["sum"] = Json(h.sum);
  obj["min"] = Json(h.min);
  obj["max"] = Json(h.max);
  obj["p50"] = Json(h.p50);
  obj["p90"] = Json(h.p90);
  obj["p99"] = Json(h.p99);
  return Json(std::move(obj));
}
}  // namespace

void write_json(std::ostream& os, const MetricsSnapshot& snapshot) {
  Json::Object root;
  root["schema"] = Json(kSchema);
  Json::Object counters;
  for (const auto& c : snapshot.counters) counters[c.name] = Json(c.value);
  Json::Object gauges;
  for (const auto& g : snapshot.gauges) gauges[g.name] = Json(g.value);
  Json::Object histograms;
  for (const auto& h : snapshot.histograms) histograms[h.name] = histogram_to_json(h);
  root["counters"] = Json(std::move(counters));
  root["gauges"] = Json(std::move(gauges));
  root["histograms"] = Json(std::move(histograms));
  Json(std::move(root)).write(os);
}

MetricsSnapshot read_json_text(const std::string& text) {
  const Json root = Json::parse(text);
  RD_EXPECTS(root.is_object(), "read_json: document must be an object");
  if (!root.contains("schema") || root.at("schema").as_string() != kSchema) {
    throw ModelError("read_json: not a " + std::string(kSchema) + " document");
  }
  MetricsSnapshot snap;
  for (const auto& [name, value] : root.at("counters").as_object()) {
    snap.counters.push_back({name, static_cast<std::uint64_t>(value.as_number())});
  }
  for (const auto& [name, value] : root.at("gauges").as_object()) {
    snap.gauges.push_back({name, value.as_number()});
  }
  for (const auto& [name, value] : root.at("histograms").as_object()) {
    HistogramSample h;
    h.name = name;
    for (const auto& u : value.at("uppers").as_array()) h.uppers.push_back(u.as_number());
    for (const auto& c : value.at("counts").as_array()) {
      h.counts.push_back(static_cast<std::uint64_t>(c.as_number()));
    }
    RD_EXPECTS(h.counts.size() == h.uppers.size() + 1,
               "read_json: histogram '" + name + "' bucket/bound count mismatch");
    h.count = static_cast<std::uint64_t>(value.at("count").as_number());
    h.sum = value.at("sum").as_number();
    h.min = value.at("min").as_number();
    h.max = value.at("max").as_number();
    // Quantiles are recomputed when absent so pre-quantile documents
    // (earlier schema revisions) still round-trip.
    h.p50 = value.contains("p50") ? value.at("p50").as_number()
                                  : histogram_quantile(h, 0.50);
    h.p90 = value.contains("p90") ? value.at("p90").as_number()
                                  : histogram_quantile(h, 0.90);
    h.p99 = value.contains("p99") ? value.at("p99").as_number()
                                  : histogram_quantile(h, 0.99);
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

MetricsSnapshot read_json(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return read_json_text(buffer.str());
}

void write_csv(std::ostream& os, const MetricsSnapshot& snapshot) {
  CsvWriter csv(os);
  csv.write_row(std::vector<std::string>{"metric", "kind", "field", "value"});
  auto number = [](double v) {
    std::ostringstream tmp;
    tmp.precision(17);
    tmp << v;
    return tmp.str();
  };
  for (const auto& c : snapshot.counters) {
    csv.write_row({c.name, "counter", "value", std::to_string(c.value)});
  }
  for (const auto& g : snapshot.gauges) {
    csv.write_row({g.name, "gauge", "value", number(g.value)});
  }
  for (const auto& h : snapshot.histograms) {
    csv.write_row({h.name, "histogram", "count", std::to_string(h.count)});
    csv.write_row({h.name, "histogram", "sum", number(h.sum)});
    csv.write_row({h.name, "histogram", "min", number(h.min)});
    csv.write_row({h.name, "histogram", "max", number(h.max)});
    csv.write_row({h.name, "histogram", "p50", number(h.p50)});
    csv.write_row({h.name, "histogram", "p90", number(h.p90)});
    csv.write_row({h.name, "histogram", "p99", number(h.p99)});
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      const std::string bound = i < h.uppers.size() ? number(h.uppers[i]) : "inf";
      csv.write_row({h.name, "histogram", "le_" + bound, std::to_string(h.counts[i])});
    }
  }
}

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_';
    out.push_back(valid ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), '_');
  return out;
}

void write_prometheus(std::ostream& os, const MetricsSnapshot& snapshot) {
  auto number = [](double v) {
    std::ostringstream tmp;
    tmp.precision(17);
    tmp << v;
    return tmp.str();
  };
  for (const auto& c : snapshot.counters) {
    const std::string name = prometheus_name(c.name);
    os << "# TYPE " << name << " counter\n";
    os << name << " " << c.value << "\n";
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = prometheus_name(g.name);
    os << "# TYPE " << name << " gauge\n";
    os << name << " " << number(g.value) << "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = prometheus_name(h.name);
    os << "# TYPE " << name << " histogram\n";
    // Prometheus buckets are cumulative and always end with le="+Inf".
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      const std::string le =
          i < h.uppers.size() ? number(h.uppers[i]) : std::string("+Inf");
      os << name << "_bucket{le=\"" << le << "\"} " << cumulative << "\n";
    }
    os << name << "_sum " << number(h.sum) << "\n";
    os << name << "_count " << h.count << "\n";
    // Quantile estimates ride along as a summary-style companion series so
    // dashboards get p50/p90/p99 without running histogram_quantile() in
    // PromQL.
    os << "# TYPE " << name << "_quantile gauge\n";
    os << name << "_quantile{quantile=\"0.5\"} " << number(h.p50) << "\n";
    os << name << "_quantile{quantile=\"0.9\"} " << number(h.p90) << "\n";
    os << name << "_quantile{quantile=\"0.99\"} " << number(h.p99) << "\n";
  }
}

void write_metrics_file(const std::string& path, const MetricsSnapshot& snapshot) {
  std::ofstream out(path);
  if (!out) throw ModelError("write_metrics_file: cannot open '" + path + "'");
  auto has_extension = [&path](const char* ext) {
    const std::size_t len = std::string(ext).size();
    return path.size() >= len && path.compare(path.size() - len, len, ext) == 0;
  };
  if (has_extension(".csv")) {
    write_csv(out, snapshot);
  } else if (has_extension(".prom")) {
    write_prometheus(out, snapshot);
  } else {
    write_json(out, snapshot);
    out << '\n';
  }
  if (!out.good()) throw ModelError("write_metrics_file: write to '" + path + "' failed");
}

void publish_work_pool_metrics(MetricsRegistry& registry) {
  // util sits below obs in the layer graph, so the shared WorkPool cannot
  // report into the registry itself; the exporter mirrors its cumulative
  // tallies into gauges whenever a snapshot is about to be taken.
  const util::WorkPool::Stats s = util::WorkPool::instance().stats();
  registry.gauge("pool.dispatches").set(static_cast<double>(s.dispatches));
  registry.gauge("pool.tasks").set(static_cast<double>(s.tasks));
  registry.gauge("pool.inline_tasks").set(static_cast<double>(s.inline_tasks));
  registry.gauge("pool.spawns_avoided").set(static_cast<double>(s.spawns_avoided));
  registry.gauge("pool.threads_created").set(static_cast<double>(s.threads_created));
  registry.gauge("pool.threads_live").set(static_cast<double>(s.threads_live));
}

bool dump_metrics_if_requested(const CliArgs& args, MetricsRegistry& registry) {
  const std::string path = args.get_string("metrics-out", "");
  if (path.empty()) return false;
  publish_work_pool_metrics(registry);
  write_metrics_file(path, registry.snapshot());
  log_info("metrics snapshot written to ", path);
  return true;
}

std::vector<std::string> obs_flag_names() {
  return {"metrics-out", "trace-out", "trace-level", "provenance-out"};
}

void init_observability(const CliArgs& args) {
  const std::string trace_out = args.get_string("trace-out", "");
  const std::string level_name = args.get_string("trace-level", "");
  if (!trace_out.empty()) {
    // --trace-out without an explicit level records everything: the flag
    // is only passed when someone wants to look at the trace.
    const TraceLevel level =
        level_name.empty() ? TraceLevel::Full : parse_trace_level(level_name);
    enable_tracing(level);
  } else if (!level_name.empty() && parse_trace_level(level_name) != TraceLevel::Off) {
    throw PreconditionError("--trace-level requires --trace-out");
  }
  const std::string provenance_out = args.get_string("provenance-out", "");
  if (!provenance_out.empty()) open_provenance(provenance_out);
}

void finish_observability(const CliArgs& args, MetricsRegistry& registry) {
  const std::string trace_out = args.get_string("trace-out", "");
  if (!trace_out.empty()) {
    write_trace_file(trace_out);
    log_info("span trace written to ", trace_out);
  }
  if (provenance_enabled()) {
    close_provenance();
    log_info("provenance records written to ", args.get_string("provenance-out", ""));
  }
  dump_metrics_if_requested(args, registry);
}

}  // namespace recoverd::obs
