#include "obs/export.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"

namespace recoverd::obs {

namespace {
constexpr const char* kSchema = "recoverd.metrics.v1";

Json histogram_to_json(const HistogramSample& h) {
  Json::Object obj;
  Json::Array uppers;
  for (const double u : h.uppers) uppers.emplace_back(u);
  Json::Array counts;
  for (const std::uint64_t c : h.counts) counts.emplace_back(c);
  obj["uppers"] = Json(std::move(uppers));
  obj["counts"] = Json(std::move(counts));
  obj["count"] = Json(h.count);
  obj["sum"] = Json(h.sum);
  obj["min"] = Json(h.min);
  obj["max"] = Json(h.max);
  return Json(std::move(obj));
}
}  // namespace

void write_json(std::ostream& os, const MetricsSnapshot& snapshot) {
  Json::Object root;
  root["schema"] = Json(kSchema);
  Json::Object counters;
  for (const auto& c : snapshot.counters) counters[c.name] = Json(c.value);
  Json::Object gauges;
  for (const auto& g : snapshot.gauges) gauges[g.name] = Json(g.value);
  Json::Object histograms;
  for (const auto& h : snapshot.histograms) histograms[h.name] = histogram_to_json(h);
  root["counters"] = Json(std::move(counters));
  root["gauges"] = Json(std::move(gauges));
  root["histograms"] = Json(std::move(histograms));
  Json(std::move(root)).write(os);
}

MetricsSnapshot read_json_text(const std::string& text) {
  const Json root = Json::parse(text);
  RD_EXPECTS(root.is_object(), "read_json: document must be an object");
  if (!root.contains("schema") || root.at("schema").as_string() != kSchema) {
    throw ModelError("read_json: not a " + std::string(kSchema) + " document");
  }
  MetricsSnapshot snap;
  for (const auto& [name, value] : root.at("counters").as_object()) {
    snap.counters.push_back({name, static_cast<std::uint64_t>(value.as_number())});
  }
  for (const auto& [name, value] : root.at("gauges").as_object()) {
    snap.gauges.push_back({name, value.as_number()});
  }
  for (const auto& [name, value] : root.at("histograms").as_object()) {
    HistogramSample h;
    h.name = name;
    for (const auto& u : value.at("uppers").as_array()) h.uppers.push_back(u.as_number());
    for (const auto& c : value.at("counts").as_array()) {
      h.counts.push_back(static_cast<std::uint64_t>(c.as_number()));
    }
    RD_EXPECTS(h.counts.size() == h.uppers.size() + 1,
               "read_json: histogram '" + name + "' bucket/bound count mismatch");
    h.count = static_cast<std::uint64_t>(value.at("count").as_number());
    h.sum = value.at("sum").as_number();
    h.min = value.at("min").as_number();
    h.max = value.at("max").as_number();
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

MetricsSnapshot read_json(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return read_json_text(buffer.str());
}

void write_csv(std::ostream& os, const MetricsSnapshot& snapshot) {
  CsvWriter csv(os);
  csv.write_row(std::vector<std::string>{"metric", "kind", "field", "value"});
  auto number = [](double v) {
    std::ostringstream tmp;
    tmp.precision(17);
    tmp << v;
    return tmp.str();
  };
  for (const auto& c : snapshot.counters) {
    csv.write_row({c.name, "counter", "value", std::to_string(c.value)});
  }
  for (const auto& g : snapshot.gauges) {
    csv.write_row({g.name, "gauge", "value", number(g.value)});
  }
  for (const auto& h : snapshot.histograms) {
    csv.write_row({h.name, "histogram", "count", std::to_string(h.count)});
    csv.write_row({h.name, "histogram", "sum", number(h.sum)});
    csv.write_row({h.name, "histogram", "min", number(h.min)});
    csv.write_row({h.name, "histogram", "max", number(h.max)});
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      const std::string bound = i < h.uppers.size() ? number(h.uppers[i]) : "inf";
      csv.write_row({h.name, "histogram", "le_" + bound, std::to_string(h.counts[i])});
    }
  }
}

void write_metrics_file(const std::string& path, const MetricsSnapshot& snapshot) {
  std::ofstream out(path);
  if (!out) throw ModelError("write_metrics_file: cannot open '" + path + "'");
  const bool csv = path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    write_csv(out, snapshot);
  } else {
    write_json(out, snapshot);
    out << '\n';
  }
  if (!out.good()) throw ModelError("write_metrics_file: write to '" + path + "' failed");
}

bool dump_metrics_if_requested(const CliArgs& args, MetricsRegistry& registry) {
  const std::string path = args.get_string("metrics-out", "");
  if (path.empty()) return false;
  write_metrics_file(path, registry.snapshot());
  log_info("metrics snapshot written to ", path);
  return true;
}

}  // namespace recoverd::obs
