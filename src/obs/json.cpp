#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace recoverd::obs {

bool Json::as_bool() const {
  RD_EXPECTS(is_bool(), "Json: not a bool");
  return bool_;
}

double Json::as_number() const {
  RD_EXPECTS(is_number(), "Json: not a number");
  return number_;
}

const std::string& Json::as_string() const {
  RD_EXPECTS(is_string(), "Json: not a string");
  return string_;
}

const Json::Array& Json::as_array() const {
  RD_EXPECTS(is_array(), "Json: not an array");
  return array_;
}

const Json::Object& Json::as_object() const {
  RD_EXPECTS(is_object(), "Json: not an object");
  return object_;
}

Json::Array& Json::as_array() {
  RD_EXPECTS(is_array(), "Json: not an array");
  return array_;
}

Json::Object& Json::as_object() {
  RD_EXPECTS(is_object(), "Json: not an object");
  return object_;
}

const Json& Json::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  RD_EXPECTS(it != obj.end(), "Json: missing object key '" + key + "'");
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return is_object() && object_.count(key) > 0;
}

namespace {
void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_number(std::ostream& os, double v) {
  // NaN/inf have no JSON representation; emit null so the document stays
  // parseable (the exporters avoid producing them in the first place).
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  constexpr double kMaxExact = 9007199254740992.0;  // 2^53
  if (v == std::floor(v) && std::abs(v) < kMaxExact) {
    os << static_cast<std::int64_t>(v);
    return;
  }
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  os << tmp.str();
}
}  // namespace

void Json::write(std::ostream& os) const {
  switch (kind_) {
    case Kind::Null: os << "null"; break;
    case Kind::Bool: os << (bool_ ? "true" : "false"); break;
    case Kind::Number: write_number(os, number_); break;
    case Kind::String: write_escaped(os, string_); break;
    case Kind::Array: {
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) os << ',';
        array_[i].write(os);
      }
      os << ']';
      break;
    }
    case Kind::Object: {
      os << '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) os << ',';
        first = false;
        write_escaped(os, key);
        os << ':';
        value.write(os);
      }
      os << '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

namespace {
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ModelError("Json::parse: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object obj;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') return Json(std::move(obj));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array arr;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') return Json(std::move(arr));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    return code;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    // JSON encodes supplementary-plane characters (emoji, rare CJK, ...)
    // as UTF-16 surrogate pairs: \uD800-\uDBFF followed by \uDC00-\uDFFF.
    // The pair must be combined into one code point and emitted as a
    // single 4-byte UTF-8 sequence — encoding each half separately yields
    // invalid CESU-8. A lone surrogate (no valid partner following) is
    // still encoded as-is rather than rejected, matching the lenient
    // posture of the pre-pair code.
    if (code >= 0xD800 && code <= 0xDBFF && pos_ + 2 <= text_.size() &&
        text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
      const std::size_t rewind = pos_;
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low >= 0xDC00 && low <= 0xDFFF) {
        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
      } else {
        pos_ = rewind;  // not a low surrogate; re-parse it on its own
      }
    }
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) fail("invalid number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("invalid number '" + token + "'");
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};
}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace recoverd::obs
