#include "obs/provenance.hpp"

#include <fstream>
#include <mutex>
#include <utility>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace recoverd::obs {

namespace detail {
std::atomic<bool> g_provenance_enabled{false};
}

namespace {

struct ProvenanceSink {
  std::mutex mutex;
  std::ofstream stream;
  std::uint64_t next_sequence = 0;
};

ProvenanceSink& sink() {
  static ProvenanceSink* instance = new ProvenanceSink();  // never destroyed
  return *instance;
}

}  // namespace

std::string provenance_to_json(const DecisionProvenance& record) {
  Json::Object obj;
  obj["schema"] = Json(std::string("recoverd.provenance.v1"));
  obj["sequence"] = Json(record.sequence);
  obj["controller"] = Json(record.controller);
  obj["chosen_action"] = Json(record.chosen_action);
  obj["terminate"] = Json(record.terminate);
  obj["stage"] = Json(record.stage);
  obj["configured_depth"] = Json(record.configured_depth);
  obj["achieved_depth"] = Json(record.achieved_depth);
  obj["decide_ms"] = Json(record.decide_ms);
  obj["bound_generation"] = Json(record.bound_generation);
  obj["bound_size"] = Json(record.bound_size);
  // Anytime fields only appear when the feature did work, so records from
  // builds/runs without --anytime stay byte-identical.
  if (record.anytime_backups > 0 || record.anytime_added > 0) {
    obj["anytime_backups"] = Json(record.anytime_backups);
    obj["anytime_added"] = Json(record.anytime_added);
  }

  Json::Object expansion;
  expansion["nodes"] = Json(record.expansion.nodes);
  expansion["leaf_evaluations"] = Json(record.expansion.leaf_evaluations);
  expansion["memo_hits"] = Json(record.expansion.memo_hits);
  expansion["memo_misses"] = Json(record.expansion.memo_misses);
  expansion["memo_insertions"] = Json(record.expansion.memo_insertions);
  // Carry tallies likewise appear only under --memo-carry.
  if (record.expansion.memo_carry_hits > 0 ||
      record.expansion.memo_carry_misses > 0 ||
      record.expansion.memo_carry_invalidations > 0) {
    expansion["memo_carry_hits"] = Json(record.expansion.memo_carry_hits);
    expansion["memo_carry_misses"] = Json(record.expansion.memo_carry_misses);
    expansion["memo_carry_invalidations"] =
        Json(record.expansion.memo_carry_invalidations);
  }
  Json::Array levels;
  for (std::uint64_t n : record.expansion.nodes_per_level) levels.emplace_back(n);
  expansion["nodes_per_level"] = Json(std::move(levels));
  obj["expansion"] = Json(std::move(expansion));

  Json::Array actions;
  for (const ActionProvenance& a : record.actions) {
    Json::Object entry;
    entry["action"] = Json(static_cast<std::uint64_t>(a.action));
    entry["lower"] = Json(a.lower);
    if (a.has_upper) entry["upper"] = Json(a.upper);
    if (a.pruned) entry["pruned"] = Json(true);
    actions.emplace_back(std::move(entry));
  }
  obj["actions"] = Json(std::move(actions));
  return Json(std::move(obj)).dump();
}

DecisionProvenance provenance_from_json(const std::string& line) {
  Json doc;
  try {
    doc = Json::parse(line);
  } catch (const std::exception& e) {
    throw ModelError(std::string("provenance line is not valid JSON: ") + e.what());
  }
  if (!doc.is_object() || !doc.contains("schema") ||
      doc.at("schema").as_string() != "recoverd.provenance.v1") {
    throw ModelError("provenance line is missing schema 'recoverd.provenance.v1'");
  }
  DecisionProvenance record;
  record.sequence = static_cast<std::uint64_t>(doc.at("sequence").as_number());
  record.controller = doc.at("controller").as_string();
  record.chosen_action =
      static_cast<std::int64_t>(doc.at("chosen_action").as_number());
  record.terminate = doc.at("terminate").as_bool();
  record.stage = doc.at("stage").as_string();
  record.configured_depth =
      static_cast<int>(doc.at("configured_depth").as_number());
  record.achieved_depth = static_cast<int>(doc.at("achieved_depth").as_number());
  record.decide_ms = doc.at("decide_ms").as_number();
  record.bound_generation =
      static_cast<std::uint64_t>(doc.at("bound_generation").as_number());
  record.bound_size = static_cast<std::uint64_t>(doc.at("bound_size").as_number());
  if (doc.contains("anytime_backups")) {
    record.anytime_backups =
        static_cast<std::uint64_t>(doc.at("anytime_backups").as_number());
    record.anytime_added =
        static_cast<std::uint64_t>(doc.at("anytime_added").as_number());
  }

  const Json& expansion = doc.at("expansion");
  record.expansion.nodes =
      static_cast<std::uint64_t>(expansion.at("nodes").as_number());
  record.expansion.leaf_evaluations =
      static_cast<std::uint64_t>(expansion.at("leaf_evaluations").as_number());
  record.expansion.memo_hits =
      static_cast<std::uint64_t>(expansion.at("memo_hits").as_number());
  record.expansion.memo_misses =
      static_cast<std::uint64_t>(expansion.at("memo_misses").as_number());
  record.expansion.memo_insertions =
      static_cast<std::uint64_t>(expansion.at("memo_insertions").as_number());
  if (expansion.contains("memo_carry_hits")) {
    record.expansion.memo_carry_hits =
        static_cast<std::uint64_t>(expansion.at("memo_carry_hits").as_number());
    record.expansion.memo_carry_misses =
        static_cast<std::uint64_t>(expansion.at("memo_carry_misses").as_number());
    record.expansion.memo_carry_invalidations = static_cast<std::uint64_t>(
        expansion.at("memo_carry_invalidations").as_number());
  }
  for (const Json& level : expansion.at("nodes_per_level").as_array()) {
    record.expansion.nodes_per_level.push_back(
        static_cast<std::uint64_t>(level.as_number()));
  }

  for (const Json& entry : doc.at("actions").as_array()) {
    ActionProvenance a;
    a.action = static_cast<std::uint32_t>(entry.at("action").as_number());
    a.lower = entry.at("lower").as_number();
    if (entry.contains("upper")) {
      a.upper = entry.at("upper").as_number();
      a.has_upper = true;
    }
    if (entry.contains("pruned")) a.pruned = entry.at("pruned").as_bool();
    record.actions.push_back(a);
  }
  return record;
}

void open_provenance(const std::string& path) {
  ProvenanceSink& s = sink();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.stream.open(path, std::ios::trunc);
  if (!s.stream) {
    throw ModelError("cannot open provenance output file '" + path + "'");
  }
  s.next_sequence = 0;
  detail::g_provenance_enabled.store(true, std::memory_order_relaxed);
}

void emit_provenance(DecisionProvenance record) {
  if (!provenance_enabled()) return;
  ProvenanceSink& s = sink();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (!s.stream.is_open()) return;
  record.sequence = s.next_sequence++;
  s.stream << provenance_to_json(record) << '\n';
}

void close_provenance() {
  ProvenanceSink& s = sink();
  std::lock_guard<std::mutex> lock(s.mutex);
  detail::g_provenance_enabled.store(false, std::memory_order_relaxed);
  if (s.stream.is_open()) {
    s.stream.flush();
    s.stream.close();
  }
}

}  // namespace recoverd::obs
