// Minimal JSON value: just enough to write metrics snapshots / episode
// traces and to parse them back in tests — no external dependency, no
// clever performance, strict (throws ModelError) on malformed input.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace recoverd::obs {

/// A JSON document node. Numbers are stored as double (integral values
/// within 2^53 round-trip exactly and are printed without a fraction).
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : kind_(Kind::Null) {}
  Json(std::nullptr_t) : kind_(Kind::Null) {}
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}
  Json(double v) : kind_(Kind::Number), number_(v) {}
  Json(int v) : kind_(Kind::Number), number_(v) {}
  Json(std::int64_t v) : kind_(Kind::Number), number_(static_cast<double>(v)) {}
  Json(std::uint64_t v) : kind_(Kind::Number), number_(static_cast<double>(v)) {}
  Json(const char* s) : kind_(Kind::String), string_(s) {}
  Json(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
  Json(Array a) : kind_(Kind::Array), array_(std::move(a)) {}
  Json(Object o) : kind_(Kind::Object), object_(std::move(o)) {}

  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  /// Typed accessors; throw PreconditionError on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object member lookup; throws PreconditionError when absent or when
  /// this value is not an object. `contains` is the non-throwing probe.
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  /// Serialises compactly (no whitespace). Stable: object keys are sorted.
  void write(std::ostream& os) const;
  std::string dump() const;

  /// Strict parser; throws ModelError with a byte offset on malformed text.
  /// Trailing non-whitespace after the document is an error.
  static Json parse(std::string_view text);

 private:
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace recoverd::obs
