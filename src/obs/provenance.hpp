// Decision-provenance records: one JSONL line per controller decide()
// answering "*why* was this action chosen" — the certification view that
// complements the span trace's "*where* did the time go" (DESIGN.md §12).
//
// Each record carries the chosen action, every candidate action's bound
// interval (lower always; upper when the controller maintains a sawtooth
// upper bound), the expansion work that produced them (nodes per level up
// to a capped depth, leaf evaluations, memo hit/miss/insert tallies), the
// deadline-ladder stage the guard settled on, and the bound-set generation
// — enough to replay or audit a single decision offline.
//
// The recorder is process-global and off by default; `emit()` behind a
// relaxed atomic costs one load when disabled. Records are serialised with
// obs::Json (doubles at 17 significant digits), so the written lower/upper
// values round-trip bit-exactly — the acceptance check compares them
// against the controller's in-memory return values with operator==.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace recoverd::obs {

/// One candidate action's bound interval at decision time.
struct ActionProvenance {
  std::uint32_t action = 0;
  double lower = 0.0;
  double upper = 0.0;     ///< meaningful only when has_upper
  bool has_upper = false;
  bool pruned = false;    ///< skipped by branch-and-bound (interval controller)
};

/// Expansion-tree work behind one decide(), tallied per root-distance level
/// up to kMaxProvenanceLevels (deeper nodes fold into the last slot).
inline constexpr std::size_t kMaxProvenanceLevels = 8;

struct ExpansionProvenance {
  std::uint64_t nodes = 0;
  std::uint64_t leaf_evaluations = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  std::uint64_t memo_insertions = 0;
  /// Cross-decide carry-over tallies (zero unless --memo-carry): hits served
  /// by an earlier expansion, misses while carrying, and whole-cache
  /// invalidations (bound-set generation bump or option change).
  std::uint64_t memo_carry_hits = 0;
  std::uint64_t memo_carry_misses = 0;
  std::uint64_t memo_carry_invalidations = 0;
  std::vector<std::uint64_t> nodes_per_level;  ///< size <= kMaxProvenanceLevels
};

/// Everything recorded about one decide() call.
struct DecisionProvenance {
  std::uint64_t sequence = 0;    ///< assigned by the recorder at emit()
  std::string controller;        ///< "bounded" | "interval" | ...
  std::int64_t chosen_action = -1;  ///< -1 when the decision was terminate
  bool terminate = false;
  std::string stage;             ///< deadline-ladder outcome: "full",
                                 ///< "degraded", "goal-certain", "escalated"
  int configured_depth = 0;
  int achieved_depth = 0;
  double decide_ms = 0.0;
  std::uint64_t bound_generation = 0;  ///< BoundSet::generation() snapshot
  std::uint64_t bound_size = 0;        ///< hyperplanes in the set
  /// Anytime deepening work after the decision (zero unless --anytime):
  /// Eq. 7 backups attempted and how many grew the bound set.
  std::uint64_t anytime_backups = 0;
  std::uint64_t anytime_added = 0;
  ExpansionProvenance expansion;
  std::vector<ActionProvenance> actions;
};

/// Serialises one record as a compact single-line JSON object
/// (schema "recoverd.provenance.v1"; keys sorted by obs::Json).
std::string provenance_to_json(const DecisionProvenance& record);

/// Parses one JSONL line back (tests / offline tooling). Throws ModelError
/// on malformed input.
DecisionProvenance provenance_from_json(const std::string& line);

namespace detail {
extern std::atomic<bool> g_provenance_enabled;
}

/// True when a recorder sink is open — controllers skip all provenance
/// bookkeeping (stats plumbing included) when this is false, keeping the
/// default decide() path untouched.
inline bool provenance_enabled() {
  return detail::g_provenance_enabled.load(std::memory_order_relaxed);
}

/// Opens `path` (truncating) as the process-wide JSONL sink and enables
/// recording. Throws ModelError when the file cannot be opened.
void open_provenance(const std::string& path);

/// Assigns the next sequence number and appends one line to the sink.
/// No-op when disabled. Thread-safe (one mutex-guarded append per decide —
/// decide() granularity, far off any hot path).
void emit_provenance(DecisionProvenance record);

/// Flushes and closes the sink; disables recording. Idempotent.
void close_provenance();

}  // namespace recoverd::obs
