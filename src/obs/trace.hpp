// recoverd::obs::trace — thread-local ring-buffer span tracing (DESIGN.md §12).
//
// The metrics registry (metrics.hpp) answers "how many / how long on
// average"; this module answers "*where* did this particular decide() spend
// its 92 ms budget". Instrumented scopes declare a TraceSpan; every thread
// records completed spans into a private pre-allocated ring buffer, and at
// exit the binary drains all buffers into one Chrome-trace-event / Perfetto
// compatible JSON file (`--trace-out`).
//
// Design constraints, in order:
//  1. ~zero cost when disabled: the TraceSpan constructor is one relaxed
//     atomic load and a compare — tracing off is the default, and the
//     parity suite holds decisions and metric aggregates bitwise identical
//     with tracing on or off (spans never touch the metrics registry and
//     never perturb any arithmetic).
//  2. allocation-free on hot paths: each thread's ring buffer is allocated
//     once, on that thread's first recorded span; recording afterwards is a
//     mutex-guarded struct write (uncontended: the mutex is only shared
//     with the end-of-run drain). When the ring wraps, the *oldest* events
//     are overwritten — a flight recorder keeping the most recent window —
//     and the drop count is reported in the trace file metadata (not as a
//     metric, which must stay identical with tracing on/off).
//  3. static names only: span/arg names must be string literals (or
//     otherwise outlive the drain); the buffer stores `const char*`.
//
// Span nesting is conveyed by timestamp containment per thread — Chrome
// "X" (complete) events nest automatically in Perfetto/chrome://tracing —
// so begin/end pairing never needs to cross the buffer.
//
// Levels gate instrumentation density:
//  - Decide: one span per decide()/episode/solve — cheap enough to leave on
//    for whole campaigns;
//  - Full: adds per-expansion-level, per-leaf-batch, and per-SCC-level
//    spans — the "profile one slow decide()" setting.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace recoverd::obs {

/// Instrumentation density. Order matters: a span tagged `Decide` records
/// whenever tracing is on; a span tagged `Full` records only at Full.
enum class TraceLevel : int {
  Off = 0,
  Decide = 1,
  Full = 2,
};

/// Parses "off" | "decide" | "full"; throws PreconditionError otherwise.
TraceLevel parse_trace_level(const std::string& name);
const char* trace_level_name(TraceLevel level);

/// One completed span (or instant event). Name/category/arg-name pointers
/// must reference static storage — TraceSpan's contract.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  std::uint64_t start_ns = 0;  ///< since trace_epoch(), steady clock
  std::uint64_t dur_ns = 0;    ///< 0 and instant=true for instant events
  std::uint32_t tid = 0;       ///< small per-process thread index
  bool instant = false;
  std::uint8_t num_args = 0;
  const char* arg_names[2] = {nullptr, nullptr};
  double arg_values[2] = {0.0, 0.0};
};

/// Everything one drain returns: the events of every thread (live and
/// exited), sorted by (tid, start), plus how many events the flight
/// recorder overwrote.
struct TraceSnapshot {
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
};

/// Turns collection on at `level` with the given per-thread ring capacity
/// (events; rounded up to a power of two, min 1024). Idempotent; a second
/// call adjusts the level and the capacity used for buffers allocated from
/// then on — buffers that already exist are never resized.
void enable_tracing(TraceLevel level, std::size_t ring_capacity = 1 << 16);

/// Turns collection off (spans become no-ops again). Buffered events are
/// kept until drain_trace() or reset_tracing().
void disable_tracing();

/// The current level (Off when collection is disabled).
TraceLevel trace_level();

/// True when a span at `level` would record — the TraceSpan fast path.
inline bool trace_enabled(TraceLevel level);

/// Copies every thread's buffered events out (oldest to newest per thread,
/// sorted by thread then start time). Collection state is unchanged; call
/// disable_tracing() first when draining at process exit so no thread is
/// mid-record. Safe against threads that have already exited.
TraceSnapshot drain_trace();

/// Drops all buffered events and drop counts (tests).
void reset_tracing();

namespace detail {
struct ThreadTraceBuffer;
ThreadTraceBuffer* local_trace_buffer();
void record_event(ThreadTraceBuffer* buffer, const TraceEvent& event);
std::uint64_t trace_now_ns();
extern std::atomic<int> g_trace_level;
}  // namespace detail

inline bool trace_enabled(TraceLevel level) {
  return detail::g_trace_level.load(std::memory_order_relaxed) >=
         static_cast<int>(level);
}

/// RAII span: records [construction, destruction) of the enclosing scope
/// into the calling thread's ring buffer. `name` and `category` must be
/// string literals. Inactive (a couple of instructions) when tracing is
/// off or below `level`.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, TraceLevel level = TraceLevel::Decide,
                     const char* category = "recoverd") {
    if (!trace_enabled(level)) {
      buffer_ = nullptr;
      return;
    }
    buffer_ = detail::local_trace_buffer();
    event_.name = name;
    event_.category = category;
    event_.start_ns = detail::trace_now_ns();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { end(); }

  bool active() const { return buffer_ != nullptr; }

  /// Attaches a numeric argument (shown in the Perfetto side panel). At
  /// most two; further calls are ignored, as is every call when inactive.
  void arg(const char* name, double value) {
    if (buffer_ == nullptr || event_.num_args >= 2) return;
    event_.arg_names[event_.num_args] = name;
    event_.arg_values[event_.num_args] = value;
    ++event_.num_args;
  }

  /// Ends the span now (the destructor then records nothing).
  void end() {
    if (buffer_ == nullptr) return;
    event_.dur_ns = detail::trace_now_ns() - event_.start_ns;
    detail::record_event(buffer_, event_);
    buffer_ = nullptr;
  }

 private:
  detail::ThreadTraceBuffer* buffer_;
  TraceEvent event_;
};

/// Records a zero-duration instant event ("something happened here") —
/// guard escalations, cache cap hits, and similar point occurrences.
void trace_instant(const char* name, TraceLevel level = TraceLevel::Decide,
                   const char* category = "recoverd");

/// Serialises a snapshot in Chrome trace-event JSON ("traceEvents" array of
/// "X"/"i" phase events, timestamps in microseconds) — loadable in Perfetto
/// and chrome://tracing. Dropped-event counts land in "otherData".
void write_chrome_trace(std::ostream& os, const TraceSnapshot& snapshot);

/// Drains and writes to `path`. Throws ModelError when the file cannot be
/// opened. Disables collection first so the drain sees quiescent buffers.
void write_trace_file(const std::string& path);

}  // namespace recoverd::obs
