// Metrics snapshot exporters: JSON (schema `recoverd.metrics.v1`, the
// machine-readable dump behind `--metrics-out` and the bench perf
// trajectories) and CSV (one row per scalar, matching util/csv.hpp
// conventions so the existing plotting scripts can ingest it).
//
// JSON schema:
//   {
//     "schema": "recoverd.metrics.v1",
//     "counters":   { "<name>": <uint>, ... },
//     "gauges":     { "<name>": <double>, ... },
//     "histograms": { "<name>": { "uppers": [..], "counts": [..],
//                                 "count": N, "sum": S, "min": m, "max": M } }
//   }
// `counts` has uppers.size() + 1 entries; the last is the overflow bucket.
//
// CSV schema: header `metric,kind,field,value`; counters/gauges emit one
// `value` row, histograms emit `count`/`sum`/`min`/`max` rows plus one
// `le_<upper>` row per bucket (`le_inf` for the overflow bucket).
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"
#include "util/cli.hpp"

namespace recoverd::obs {

/// Serialises a snapshot as a single JSON object (no trailing newline).
void write_json(std::ostream& os, const MetricsSnapshot& snapshot);

/// Parses a `recoverd.metrics.v1` document back into a snapshot (test
/// round-trips, offline analysis). Throws ModelError on schema mismatch.
MetricsSnapshot read_json(std::istream& is);
MetricsSnapshot read_json_text(const std::string& text);

/// Serialises a snapshot as CSV with a header row.
void write_csv(std::ostream& os, const MetricsSnapshot& snapshot);

/// Writes the snapshot to `path`, picking the format from the extension:
/// `.csv` → CSV, anything else → JSON. Throws ModelError when the file
/// cannot be opened.
void write_metrics_file(const std::string& path, const MetricsSnapshot& snapshot);

/// The standard `--metrics-out=<path>` hook for binaries: when the flag is
/// present, snapshots the given registry (the process-global one by
/// default) into the file and returns true. Call once, at exit.
bool dump_metrics_if_requested(const CliArgs& args,
                               MetricsRegistry& registry = metrics());

}  // namespace recoverd::obs
