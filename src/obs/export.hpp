// Metrics snapshot exporters: JSON (schema `recoverd.metrics.v1`, the
// machine-readable dump behind `--metrics-out` and the bench perf
// trajectories) and CSV (one row per scalar, matching util/csv.hpp
// conventions so the existing plotting scripts can ingest it).
//
// JSON schema:
//   {
//     "schema": "recoverd.metrics.v1",
//     "counters":   { "<name>": <uint>, ... },
//     "gauges":     { "<name>": <double>, ... },
//     "histograms": { "<name>": { "uppers": [..], "counts": [..],
//                                 "count": N, "sum": S, "min": m, "max": M } }
//   }
// `counts` has uppers.size() + 1 entries; the last is the overflow bucket.
//
// CSV schema: header `metric,kind,field,value`; counters/gauges emit one
// `value` row, histograms emit `count`/`sum`/`min`/`max`/`p50`/`p90`/`p99`
// rows plus one `le_<upper>` row per bucket (`le_inf` for the overflow
// bucket).
//
// Prometheus text exposition format is also supported (`.prom` extension
// or write_prometheus): names are sanitised (non-[a-zA-Z0-9_] → `_`),
// histograms emit cumulative `_bucket{le="..."}` series plus `_sum` and
// `_count`, and the quantile estimates become `{quantile="0.5"}` gauges.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"
#include "util/cli.hpp"

namespace recoverd::obs {

/// Serialises a snapshot as a single JSON object (no trailing newline).
void write_json(std::ostream& os, const MetricsSnapshot& snapshot);

/// Parses a `recoverd.metrics.v1` document back into a snapshot (test
/// round-trips, offline analysis). Throws ModelError on schema mismatch.
MetricsSnapshot read_json(std::istream& is);
MetricsSnapshot read_json_text(const std::string& text);

/// Serialises a snapshot as CSV with a header row.
void write_csv(std::ostream& os, const MetricsSnapshot& snapshot);

/// Serialises a snapshot in the Prometheus text exposition format (v0.0.4)
/// — the payload a future daemon `/metrics` endpoint would serve.
void write_prometheus(std::ostream& os, const MetricsSnapshot& snapshot);

/// Maps an instrument name onto a valid Prometheus metric name: every
/// character outside [a-zA-Z0-9_] becomes `_`, and a leading digit gets a
/// `_` prefix ("pomdp.decide.ms" → "pomdp_decide_ms").
std::string prometheus_name(const std::string& name);

/// Writes the snapshot to `path`, picking the format from the extension:
/// `.csv` → CSV, `.prom` → Prometheus text, anything else → JSON. Throws
/// ModelError when the file cannot be opened.
void write_metrics_file(const std::string& path, const MetricsSnapshot& snapshot);

/// Mirrors the shared util::WorkPool's cumulative tallies into `pool.*`
/// gauges (`pool.tasks`, `pool.spawns_avoided`, …). The pool lives below
/// the obs layer and cannot report into the registry itself;
/// dump_metrics_if_requested() calls this before every snapshot, and tests
/// or long-running exporters may call it directly.
void publish_work_pool_metrics(MetricsRegistry& registry = metrics());

/// The standard `--metrics-out=<path>` hook for binaries: when the flag is
/// present, snapshots the given registry (the process-global one by
/// default) into the file and returns true. Call once, at exit.
bool dump_metrics_if_requested(const CliArgs& args,
                               MetricsRegistry& registry = metrics());

/// The observability flags every binary accepts — append to the
/// require_known() list: `metrics-out`, `trace-out`, `trace-level`,
/// `provenance-out`.
std::vector<std::string> obs_flag_names();

/// Applies the observability flags at startup: enables span tracing when
/// `--trace-out` is given (at `--trace-level`, default `full`) and opens
/// the provenance sink when `--provenance-out` is given. Call before any
/// decide()/episode work. No-op when none of the flags are present, so
/// default runs stay byte-identical.
void init_observability(const CliArgs& args);

/// Counterpart at exit: drains the trace into `--trace-out`, closes the
/// provenance sink, and dumps `--metrics-out`. Safe to call always.
void finish_observability(const CliArgs& args,
                          MetricsRegistry& registry = metrics());

}  // namespace recoverd::obs
