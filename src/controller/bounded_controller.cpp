#include "controller/bounded_controller.hpp"

#include "bounds/incremental_update.hpp"
#include "pomdp/bellman.hpp"
#include "util/check.hpp"

namespace recoverd::controller {

BoundedController::BoundedController(const Pomdp& model, bounds::BoundSet& set,
                                     BoundedControllerOptions options)
    : BeliefTrackingController(model),
      name_("Bounded(d=" + std::to_string(options.tree_depth) + ")"),
      set_(set),
      options_(options) {
  RD_EXPECTS(options.tree_depth >= 1, "BoundedController: tree depth must be >= 1");
  RD_EXPECTS(set.dimension() == model.num_states(),
             "BoundedController: bound set dimension mismatch");
  RD_EXPECTS(set.size() > 0, "BoundedController: bound set must be seeded (RA-Bound)");
}

Decision BoundedController::decide() {
  const Pomdp& pomdp = model();
  const Belief& pi = belief();

  // Models with recovery notification: stop once the belief is (numerically)
  // certain the system recovered.
  if (!pomdp.has_terminate_action() &&
      pomdp.mdp().goal_probability(pi.probabilities()) >= options_.goal_certainty) {
    return {kInvalidId, true};
  }

  if (options_.online_improvement) {
    double fault_mass = 1.0 - pomdp.mdp().goal_probability(pi.probabilities());
    if (pomdp.has_terminate_action()) fault_mass -= pi[pomdp.terminate_state()];
    if (fault_mass >= options_.improvement_min_fault_mass) {
      bounds::improve_at(pomdp, set_, pi);
    }
  }

  const LeafEvaluator leaf = [this](const Belief& b) {
    return set_.evaluate(b.probabilities());
  };
  const auto values = bellman_action_values(pomdp, pi, options_.tree_depth, leaf, 1.0,
                                            kInvalidId, options_.branch_floor);
  ActionValue best = values.front();
  for (const auto& av : values) {
    if (av.value > best.value) best = av;
  }

  if (pomdp.has_terminate_action()) {
    // Property 1(a) assumes no free actions; real models often have a
    // zero-cost Observe in null-fault states, which can tie with aT once
    // recovery is (almost) certain. Prefer termination on (near-)ties —
    // continuing offers no strictly positive benefit.
    const ActionId at = pomdp.terminate_action();
    if (values[at].value >= best.value - options_.terminate_tie_epsilon) {
      best = values[at];
    }
    if (best.action == at) return {best.action, true};
  }
  return {best.action, false};
}

}  // namespace recoverd::controller
