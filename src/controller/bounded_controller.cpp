#include "controller/bounded_controller.hpp"

#include "bounds/incremental_update.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/trace.hpp"
#include "pomdp/bellman.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace recoverd::controller {

namespace {
// Per-decide instruments. Nodes-per-decide is derived by differencing the
// global Max-Avg node counter around the tree expansion, so the histogram
// stays correct whichever depth/branch-floor the controller runs with.
struct DecideInstruments {
  obs::Counter& decides;
  obs::Counter& terminate_ties;
  obs::Counter& nodes_expanded;
  obs::Counter& anytime_backups;
  obs::Counter& anytime_added;
  obs::Histogram& decide_ms;
  obs::Histogram& nodes_per_decide;

  static DecideInstruments& get() {
    static DecideInstruments instruments{
        obs::metrics().counter("controller.bounded.decides"),
        obs::metrics().counter("controller.bounded.terminate_ties"),
        obs::metrics().counter("pomdp.bellman.nodes_expanded"),
        obs::metrics().counter("controller.bounded.anytime_backups"),
        obs::metrics().counter("controller.bounded.anytime_added"),
        obs::metrics().histogram("controller.bounded.decide_ms",
                                 obs::exponential_buckets(0.001, 2.0, 26)),
        obs::metrics().histogram("controller.bounded.nodes_per_decide",
                                 obs::exponential_buckets(1.0, 2.0, 24)),
    };
    return instruments;
  }
};

// Skeleton of a provenance record shared by every exit path of decide();
// the caller fills decision-specific fields before emitting.
obs::DecisionProvenance provenance_base(const char* stage, double decide_ms,
                                        const bounds::BoundSet& set,
                                        int configured_depth, int achieved_depth) {
  obs::DecisionProvenance record;
  record.controller = "bounded";
  record.stage = stage;
  record.decide_ms = decide_ms;
  record.bound_generation = set.generation();
  record.bound_size = set.size();
  record.configured_depth = configured_depth;
  record.achieved_depth = achieved_depth;
  return record;
}

void fill_expansion_provenance(obs::DecisionProvenance& record,
                               const ExpansionNodeStats& stats) {
  record.expansion.nodes = stats.nodes;
  record.expansion.leaf_evaluations = stats.leaf_evaluations;
  record.expansion.memo_hits = stats.memo_hits;
  record.expansion.memo_misses = stats.memo_misses;
  record.expansion.memo_insertions = stats.memo_insertions;
  record.expansion.memo_carry_hits = stats.memo_carry_hits;
  record.expansion.memo_carry_misses = stats.memo_carry_misses;
  record.expansion.memo_carry_invalidations = stats.memo_carry_invalidations;
  // Trim trailing all-zero levels so shallow trees emit short arrays.
  std::size_t levels = ExpansionNodeStats::kMaxLevels;
  while (levels > 0 && stats.nodes_per_level[levels - 1] == 0) --levels;
  record.expansion.nodes_per_level.assign(stats.nodes_per_level.begin(),
                                          stats.nodes_per_level.begin() + levels);
}
}  // namespace

BoundedController::BoundedController(const Pomdp& model, bounds::BoundSet& set,
                                     BoundedControllerOptions options)
    : BeliefTrackingController(model),
      name_("Bounded(d=" + std::to_string(options.tree_depth) + ")"),
      set_(set),
      options_(options),
      engine_(model),
      batch_one_(model.num_states()) {
  RD_EXPECTS(options.tree_depth >= 1, "BoundedController: tree depth must be >= 1");
  RD_EXPECTS(options.root_jobs >= 1, "BoundedController: root_jobs must be >= 1");
  RD_EXPECTS(set.dimension() == model.num_states(),
             "BoundedController: bound set dimension mismatch");
  RD_EXPECTS(set.size() > 0, "BoundedController: bound set must be seeded (RA-Bound)");
}

std::unique_ptr<BoundedController> BoundedController::make_owning(
    const Pomdp& model, bounds::BoundSet set, BoundedControllerOptions options) {
  auto owned = std::make_unique<bounds::BoundSet>(std::move(set));
  // The reference member binds to the heap copy, whose address is stable;
  // adopting the unique_ptr afterwards ties the lifetimes together.
  std::unique_ptr<BoundedController> controller(
      new BoundedController(model, *owned, options));
  controller->owned_set_ = std::move(owned);
  return controller;
}

Decision BoundedController::decide() {
  obs::TraceSpan decide_span("controller.decide", obs::TraceLevel::Decide);
  // Provenance is opt-in (--provenance-out); when off, every extra
  // bookkeeping below is skipped and decide() runs its original path.
  const bool provenance = obs::provenance_enabled();
  Timer provenance_timer;

  if (const auto escalated = guard_decision()) {
    if (provenance) {
      obs::DecisionProvenance record = provenance_base(
          "escalated", provenance_timer.elapsed_ms(), set_, options_.tree_depth,
          guard().last_achieved_depth());
      record.chosen_action = escalated->action == kInvalidId
                                 ? -1
                                 : static_cast<std::int64_t>(escalated->action);
      record.terminate = escalated->terminate;
      obs::emit_provenance(std::move(record));
    }
    return *escalated;
  }

  DecideInstruments& instruments = DecideInstruments::get();
  instruments.decides.add();
  obs::ScopedTimer latency(instruments.decide_ms);

  const Pomdp& pomdp = model();
  const Belief& pi = belief();

  // Models with recovery notification: stop once the belief is (numerically)
  // certain the system recovered.
  if (!pomdp.has_terminate_action() &&
      pomdp.mdp().goal_probability(pi.probabilities()) >= options_.goal_certainty) {
    if (provenance) {
      obs::DecisionProvenance record =
          provenance_base("goal-certain", provenance_timer.elapsed_ms(), set_,
                          options_.tree_depth, 0);
      record.terminate = true;
      obs::emit_provenance(std::move(record));
    }
    return {kInvalidId, true};
  }

  if (options_.online_improvement) {
    double fault_mass = 1.0 - pomdp.mdp().goal_probability(pi.probabilities());
    if (pomdp.has_terminate_action()) fault_mass -= pi[pomdp.terminate_state()];
    if (fault_mass >= options_.improvement_min_fault_mass) {
      bounds::improve_at(pomdp, set_, pi);
    }
  }

  ExpansionOptions expansion;
  expansion.branch_floor = options_.branch_floor;
  expansion.root_jobs = options_.root_jobs;
  expansion.memo = options_.memo;
  expansion.memo_max_bytes = options_.memo_max_mb << 20;
  // Carry-over context: the bound-set generation identifies the leaf
  // evaluator exactly — sampled here, after the improve_at() above may have
  // bumped it, so stale values can never survive a set mutation.
  expansion.memo_carry = options_.memo_carry;
  expansion.memo_context = set_.generation();
  ExpansionNodeStats node_stats;
  if (provenance) expansion.stats = &node_stats;

  // Devirtualized, slot-aware leaf: the engine hands already-normalised
  // posterior spans (single beliefs or whole frontiers) straight to the
  // pruned hyperplane max. Each leaf slot owns an EvalScratch — a private
  // warm start plus locally accumulated use-counter wins — sized here, after
  // improve_at() froze the set for the rest of the decision, and flushed
  // once per decide() in fixed order so use counts stay deterministic.
  const std::size_t slots = ExpansionEngine::leaf_slots(expansion);
  if (eval_scratch_.size() < slots) eval_scratch_.resize(slots);
  for (std::size_t s = 0; s < slots; ++s) set_.begin_eval(eval_scratch_[s]);
  const bounds::ScratchBoundLeaf leaf{&set_, eval_scratch_.data()};
  const SpanLeaf span_leaf = SpanLeaf::of_batched(leaf, set_.size() + 1);

  // Batch-of-one: decide() rides the same action_values_batch() entry point
  // the fleet driver uses, so the single-session path and the batch path
  // are one code path (a single lane is its own equivalence class — values
  // are bit-identical to calling action_values() directly).
  batch_one_.clear();
  batch_one_.push_back(pi.probabilities(), 0);
  const auto batch_values = [&](int depth) {
    engine_.action_values_batch(batch_one_, depth, span_leaf, expansion, batch_values_);
    values_.assign(batch_values_.begin(), batch_values_.end());
  };

  const std::uint64_t nodes_before = instruments.nodes_expanded.value();
  GuardRuntime& runtime = guard();
  int achieved_depth = options_.tree_depth;
  double expansion_ms = 0.0;  // ladder time, charged against the anytime budget
  if (runtime.deadline_enabled()) {
    // Degradation ladder: iterative deepening under the per-decide budget.
    // Depth 1 (the greedy lower-bound action) always completes, then each
    // deeper tree runs only while budget remains — the deepest finished
    // tree's values stand. Per-action subtrees at depth d strictly contain
    // the depth-(d-1) work, so the ladder costs at most ~2x the final depth.
    Timer deadline;
    int achieved = 0;
    for (int depth = 1; depth <= options_.tree_depth; ++depth) {
      obs::TraceSpan ladder_span("controller.ladder_depth", obs::TraceLevel::Decide);
      ladder_span.arg("depth", static_cast<double>(depth));
      batch_values(depth);
      achieved = depth;
      if (deadline.elapsed_ms() >= runtime.options().decide_deadline_ms) break;
    }
    runtime.note_decide(deadline.elapsed_ms(), achieved, options_.tree_depth);
    expansion_ms = deadline.elapsed_ms();
    achieved_depth = achieved;
  } else {
    batch_values(options_.tree_depth);
  }
  for (std::size_t s = 0; s < slots; ++s) set_.flush_eval(eval_scratch_[s]);
  instruments.nodes_per_decide.observe(
      static_cast<double>(instruments.nodes_expanded.value() - nodes_before));
  const std::vector<ActionValue>& values = values_;
  ActionValue best = values.front();
  for (const auto& av : values) {
    if (av.value > best.value) best = av;
  }

  Decision decision{best.action, false};
  if (pomdp.has_terminate_action()) {
    // Property 1(a) assumes no free actions; real models often have a
    // zero-cost Observe in null-fault states, which can tie with aT once
    // recovery is (almost) certain. Prefer termination on (near-)ties —
    // continuing offers no strictly positive benefit.
    const ActionId at = pomdp.terminate_action();
    if (values[at].value >= best.value - options_.terminate_tie_epsilon) {
      if (best.action != at) instruments.terminate_ties.add();
      best = values[at];
    }
    if (best.action == at) decision = {at, true};
  }

  const char* stage = runtime.deadline_enabled() ? runtime.last_decide_stage() : "full";
  if (!decision.terminate) {
    // Property 1 livelock monitor: under a faithful model the expected
    // bound strictly improves each step; a stall over the configured window
    // (model mismatch breaking the improvement guarantee) escalates to aT
    // now.
    runtime.note_expected_bound(best.value);
    if (const auto escalated = guard_decision()) {
      decision = *escalated;
      stage = "escalated";
    }
  }

  // Anytime deepening: leftover deadline budget goes into Eq. 7 point
  // backups at this belief and the chosen action's successor beliefs, so
  // the bound arrives tighter at the *next* decide(). The decision above is
  // already final — this only mutates set_, which bumps its generation and
  // thereby invalidates any carried memo exactly. With no deadline
  // configured the loop runs to the backup cap (deterministic).
  std::uint64_t anytime_backups = 0;
  std::uint64_t anytime_added = 0;
  if (options_.anytime && !decision.terminate && decision.action != kInvalidId) {
    obs::TraceSpan anytime_span("controller.anytime", obs::TraceLevel::Decide);
    const bool deadline_on = runtime.deadline_enabled();
    const double budget_ms = deadline_on ? runtime.options().decide_deadline_ms : 0.0;
    const ObsId num_obs = pomdp.num_observations();
    Timer anytime_timer;
    bool root_done = false;
    ObsId next_obs = 0;
    while (anytime_backups < options_.anytime_max_backups &&
           (!deadline_on || expansion_ms + anytime_timer.elapsed_ms() < budget_ms)) {
      bounds::UpdateResult backup;
      if (!root_done) {
        backup = bounds::improve_at(pomdp, set_, pi);
        root_done = true;
      } else {
        if (next_obs >= num_obs) break;  // one pass over the successors
        const auto update = update_belief(pomdp, pi, decision.action, next_obs++);
        if (!update) continue;  // zero-likelihood observation: no posterior
        backup = bounds::improve_at(pomdp, set_, update->next);
      }
      ++anytime_backups;
      if (backup.added) ++anytime_added;
    }
    instruments.anytime_backups.add(anytime_backups);
    instruments.anytime_added.add(anytime_added);
  }

  if (provenance) {
    obs::DecisionProvenance record = provenance_base(
        stage, provenance_timer.elapsed_ms(), set_, options_.tree_depth,
        achieved_depth);
    record.anytime_backups = anytime_backups;
    record.anytime_added = anytime_added;
    record.chosen_action = decision.terminate && decision.action == kInvalidId
                               ? -1
                               : static_cast<std::int64_t>(decision.action);
    record.terminate = decision.terminate;
    fill_expansion_provenance(record, node_stats);
    record.actions.reserve(values.size());
    for (const ActionValue& av : values) {
      obs::ActionProvenance entry;
      entry.action = av.action;
      entry.lower = av.value;  // V_B⁻-backed expansion value, the exact
                               // number the max above compared
      record.actions.push_back(entry);
    }
    obs::emit_provenance(std::move(record));
  }
  return decision;
}

}  // namespace recoverd::controller
