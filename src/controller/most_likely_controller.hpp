// The "most likely" baseline controller of §5: Bayes diagnosis picks the
// most probable fault, and the controller executes the cheapest action that
// deterministically fixes it. After each repair it re-invokes the monitors
// (an Observe action) to refresh the diagnosis, and it stops once the belief
// puts at least `termination_probability` mass on Sφ.
#pragma once

#include <string>
#include <vector>

#include "controller/controller.hpp"

namespace recoverd::controller {

struct MostLikelyControllerOptions {
  /// The model's monitoring action (identity transitions, emits monitor
  /// output). Required.
  ActionId observe_action = kInvalidId;
  double termination_probability = 0.9999;
};

class MostLikelyController : public BeliefTrackingController {
 public:
  MostLikelyController(const Pomdp& model, MostLikelyControllerOptions options);

  const std::string& name() const override { return name_; }
  void begin_episode(const Belief& initial_belief) override;
  Decision decide() override;
  void record(ActionId action, ObsId obs) override;

 private:
  std::string name_ = "Most Likely";
  MostLikelyControllerOptions options_;
  std::vector<ActionId> repair_table_;
  bool need_observation_ = false;  ///< true right after executing a repair
};

}  // namespace recoverd::controller
