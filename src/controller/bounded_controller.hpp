// The paper's bounded recovery controller (§4):
//
//  - unrolls the POMDP recursion (Eq. 2) to a small fixed depth from the
//    current belief,
//  - evaluates leaves with the lower-bound hyperplane set V_B⁻ (Eq. 6),
//  - executes the maximising action,
//  - optionally refines the bound at every belief visited online (§4.1),
//  - terminates when the terminate action aT wins (models without recovery
//    notification) or when the belief is fully inside Sφ (models with it).
//
// Property 1 gives this controller finite termination: with V_B⁻ ≤ L_p V_B⁻
// and no free actions, every step strictly improves the expected bound.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bounds/bound_set.hpp"
#include "controller/controller.hpp"
#include "pomdp/belief_batch.hpp"
#include "pomdp/expansion.hpp"

namespace recoverd::controller {

struct BoundedControllerOptions {
  int tree_depth = 1;              ///< recursion depth (Table 1 uses 1)
  bool online_improvement = true;  ///< run Eq. 7 updates at visited beliefs
  /// Treat the model as having recovery notification: stop once the belief
  /// places at least `goal_certainty` mass on Sφ. Only meaningful for models
  /// without a terminate action.
  double goal_certainty = 1.0 - 1e-9;
  /// Prefer aT when its value is within this margin of the best action.
  /// Models with zero-cost monitoring in Sφ (violating Property 1(a)'s
  /// no-free-actions assumption) tie aT against Observe once recovery is
  /// near-certain; terminating is the right resolution.
  double terminate_tie_epsilon = 1e-9;
  /// Observation branches with probability below this floor are pruned from
  /// the Max-Avg tree (renormalising the rest). 0 = exact expansion; set
  /// ~1e-3 for models with large joint-observation alphabets.
  double branch_floor = 0.0;
  /// Skip the online Eq. 7 update when the belief puts less than this much
  /// mass outside Sφ ∪ {sT}: the bound is already tight there and the
  /// update would only burn time (§4.3's cost-limiting advice).
  double improvement_min_fault_mass = 0.01;
  /// Threads over which each decide() fans out the root actions (1 =
  /// serial). The fan-out is exact — per-action subtrees are independent —
  /// so any value yields bit-identical decisions; only wall-clock changes.
  int root_jobs = 1;
  /// Exact within-decide transposition cache over successor beliefs
  /// (DESIGN.md §11). Hits are bit-identical to re-expansion, so decisions
  /// are unchanged; only wall-clock improves. `memo_max_mb` caps the cache
  /// (hash table + key arena) per expansion workspace.
  bool memo = true;
  std::size_t memo_max_mb = 64;
  /// Cross-decide carry-over of the transposition cache (`--memo-carry`):
  /// memoized subtree values survive between decide() calls and across root
  /// actions, invalidated exactly when the bound set's generation bumps
  /// (every online improvement) or the expansion options change. Hits are
  /// bitwise-exact, so decisions are bit-identical with carry on or off;
  /// repeated decides over a stable bound set skip most of the tree.
  bool memo_carry = false;
  /// Anytime deepening (`--anytime`): after the decision is chosen, spend
  /// leftover per-decide deadline budget growing the bound set with Eq. 7
  /// point backups at the current belief and the chosen action's successor
  /// beliefs (HSVI-style). Each backup weakly tightens V_B⁻, so *future*
  /// decisions improve; the already-made decision is untouched. With no
  /// deadline configured, exactly `anytime_max_backups` backups run — a
  /// deterministic variant for tests. Off by default: baselines unchanged.
  bool anytime = false;
  /// Cap on Eq. 7 backups per decide() when `anytime` is on.
  std::size_t anytime_max_backups = 8;
};

/// Bounded controller over a §3.1-transformed model. The model must either
/// carry a terminate action (add_termination) or have absorbing goal states
/// (with_recovery_notification).
class BoundedController : public BeliefTrackingController {
 public:
  /// `set` is the shared lower-bound set, normally seeded by
  /// bounds::make_ra_bound_set and warmed by a bootstrap phase. It must
  /// outlive the controller; online improvement mutates it.
  BoundedController(const Pomdp& model, bounds::BoundSet& set,
                    BoundedControllerOptions options = {});

  /// Variant that owns a private copy of the bound set — the building block
  /// of the parallel experiment runner, where every episode gets a fresh
  /// controller (and fresh bound state) so results do not depend on which
  /// worker ran which episode.
  static std::unique_ptr<BoundedController> make_owning(const Pomdp& model,
                                                        bounds::BoundSet set,
                                                        BoundedControllerOptions options = {});

  const std::string& name() const override { return name_; }
  Decision decide() override;

  const bounds::BoundSet& bound_set() const { return set_; }

 private:
  std::string name_;
  std::unique_ptr<bounds::BoundSet> owned_set_;  // only set via make_owning()
  bounds::BoundSet& set_;
  BoundedControllerOptions options_;
  ExpansionEngine engine_;
  /// decide() is a batch of one (DESIGN.md §13): the current belief rides
  /// through action_values_batch() in this single-lane batch, so the single-
  /// session controller exercises exactly the fleet code path. A one-lane
  /// batch is always its own equivalence class, so values are bit-identical
  /// to the direct action_values() call it replaced.
  BeliefBatch batch_one_;
  std::vector<ActionValue> batch_values_;  // lane-major batch output (1 lane)
  std::vector<ActionValue> values_;  // reused across decide() calls
  /// One evaluate-scratch per engine leaf slot: private warm starts and
  /// locally accumulated use-counter wins, flushed once per decide().
  std::vector<bounds::BoundSet::EvalScratch> eval_scratch_;
};

}  // namespace recoverd::controller
