// Branch-and-bound recovery controller — the §6 future-work extension made
// concrete: maintain a lower-bound hyperplane set (Eq. 6) *and* a sawtooth
// upper bound, evaluate per-action value intervals at the root of the
// Max-Avg tree, prune actions whose upper bound falls below the best lower
// bound, and pick the surviving action with the best upper bound
// (optimism). The interval width doubles as a certified optimality gap for
// each decision.
#pragma once

#include <string>
#include <vector>

#include "bounds/bound_set.hpp"
#include "bounds/sawtooth_upper.hpp"
#include "controller/controller.hpp"
#include "pomdp/expansion.hpp"

namespace recoverd::controller {

struct IntervalControllerOptions {
  int tree_depth = 1;
  bool online_improvement = true;  ///< refine both bounds at visited beliefs
  double branch_floor = 0.0;
  double terminate_tie_epsilon = 1e-9;
  double improvement_min_fault_mass = 0.01;
  /// Guard: when the lower bound crosses the sawtooth upper bound at the
  /// current belief (impossible with sound bounds — a model-mismatch
  /// signature), evict the offending lower hyperplanes instead of planning
  /// on an inconsistent interval.
  bool repair_bound_crossings = true;
  double repair_tolerance = 1e-6;
  /// Exact within-decide transposition cache (DESIGN.md §11); shared by the
  /// lower- and upper-bound expansions (each runs on its own fresh cache).
  bool memo = true;
  std::size_t memo_max_mb = 64;
};

/// Per-decision diagnostics (for the extension bench and tests).
struct IntervalDecisionStats {
  double lower = 0.0;           ///< best action's lower bound
  double upper = 0.0;           ///< best action's upper bound
  std::size_t actions_pruned = 0;  ///< actions eliminated by bound dominance

  double gap() const { return upper - lower; }
};

class IntervalController : public BeliefTrackingController {
 public:
  /// Both bound structures must outlive the controller and are refined in
  /// place when online improvement is enabled.
  IntervalController(const Pomdp& model, bounds::BoundSet& lower,
                     bounds::SawtoothUpperBound& upper,
                     IntervalControllerOptions options = {});

  const std::string& name() const override { return name_; }
  Decision decide() override;

  /// Stats of the most recent decide() call.
  const IntervalDecisionStats& last_decision() const { return stats_; }

 private:
  std::string name_;
  bounds::BoundSet& lower_;
  bounds::SawtoothUpperBound& upper_;
  IntervalControllerOptions options_;
  IntervalDecisionStats stats_;
  ExpansionEngine engine_;
  std::vector<ActionValue> lower_values_;  // reused across decide() calls
  std::vector<ActionValue> upper_values_;
  bounds::BoundSet::EvalScratch lower_scratch_;  // warm start + win tally
};

}  // namespace recoverd::controller
