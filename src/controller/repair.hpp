// Repair tables: which actions deterministically fix which fault states.
// Used by the Oracle controller (cheapest single fixing action) and the
// Most-Likely controller (cheapest fix for the diagnosed fault).
#pragma once

#include <vector>

#include "pomdp/mdp.hpp"

namespace recoverd::controller {

/// The cheapest (highest-reward) action a with p(Sφ | s, a) = 1, i.e. an
/// action guaranteed to put the system into a null-fault state in one step.
/// Returns kInvalidId when no such action exists for `s`.
ActionId cheapest_fixing_action(const Mdp& mdp, StateId s);

/// Repair table for all states (kInvalidId entries where no single-step fix
/// exists). Goal states map to kInvalidId as well (nothing to fix).
std::vector<ActionId> build_repair_table(const Mdp& mdp);

}  // namespace recoverd::controller
