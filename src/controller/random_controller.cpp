#include "controller/random_controller.hpp"

namespace recoverd::controller {

RandomController::RandomController(const Pomdp& model, Rng rng)
    : BeliefTrackingController(model), rng_(rng) {}

Decision RandomController::decide() {
  if (const auto escalated = guard_decision()) return *escalated;
  const Pomdp& pomdp = model();
  // Models with recovery notification stop on certainty of recovery (the
  // monitors would have told a real controller to stop).
  if (!pomdp.has_terminate_action() &&
      pomdp.mdp().goal_probability(belief().probabilities()) >= 1.0 - 1e-9) {
    return {kInvalidId, true};
  }
  const ActionId a = rng_.uniform_index(pomdp.num_actions());
  const bool terminate = pomdp.has_terminate_action() && a == pomdp.terminate_action();
  return {a, terminate};
}

}  // namespace recoverd::controller
