// The heuristic controller of [8] that the paper compares against (§5):
// the same finite-depth Max-Avg expansion as the bounded controller, but the
// leaves are evaluated with the best-performing heuristic from [8]:
//
//   V̂(π) = (1 − P[Sφ]) · C_max,
//
// the probability that the system has not recovered times the cost of the
// most expensive recovery action in the model (C_max = min_{s,a} r(s,a), the
// most negative single-step reward). Termination is by a recovered-
// probability threshold (0.9999 in the paper's experiments), not by aT — so
// the controller keeps invoking monitors until the belief is near-certain.
#pragma once

#include <string>

#include "controller/controller.hpp"

namespace recoverd::controller {

struct HeuristicControllerOptions {
  int tree_depth = 1;                     ///< Table 1 sweeps 1, 2, 3
  double termination_probability = 0.9999;  ///< P[Sφ] threshold to stop
  /// Observation-branch pruning floor for the Max-Avg tree (see
  /// BoundedControllerOptions::branch_floor). 0 = exact.
  double branch_floor = 0.0;
};

/// Heuristic controller over the *untransformed* recovery model (no aT; the
/// terminate decision is the probability threshold). If the model does carry
/// a terminate action the controller masks it out of the expansion.
class HeuristicController : public BeliefTrackingController {
 public:
  HeuristicController(const Pomdp& model, HeuristicControllerOptions options = {});

  const std::string& name() const override { return name_; }
  Decision decide() override;

 private:
  std::string name_;
  HeuristicControllerOptions options_;
  double most_expensive_cost_;  ///< min_{s,a} r(s,a) over non-terminate actions
};

}  // namespace recoverd::controller
