// recoverd::guard — hardened controller runtime with graceful degradation.
//
// The paper's controllers assume the world matches the model they plan
// with; under the chaos axes of sim/mismatch_injector.hpp that assumption
// breaks in four specific ways, each of which gets an explicit runtime
// response here instead of a crash or a livelock:
//
//  1. impossible observations — the Bayes update's γ ≤ 0 path (pomdp/belief
//     returns nullopt) gets a configurable recovery policy: keep the belief
//     (legacy), renormalise via the action's prediction, reset to the
//     episode prior, or escalate to termination;
//  2. decision deadlines — a per-decide() budget with a staged degradation
//     ladder (full depth → shallower trees → the greedy depth-1
//     lower-bound action → aT escalation after repeated overruns),
//     mirroring the paper's operator-response fallback;
//  3. livelock — Property 1 guarantees the expected bound strictly improves
//     every step *under a faithful model*; when it stops improving over a
//     window (which perturbed models can cause), escalate to aT;
//  4. bound inconsistency — a lower bound crossing the sawtooth upper bound
//     (impossible when both are sound) evicts the offending hyperplanes and
//     keeps going, never aborts.
//
// Every response increments a `controller.guard.*` counter so campaigns can
// report *how* the controller degraded, not just that it survived.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bounds/bound_set.hpp"
#include "bounds/sawtooth_upper.hpp"
#include "pomdp/belief.hpp"
#include "pomdp/types.hpp"
#include "util/cli.hpp"

namespace recoverd::controller {

/// What a belief-tracking controller does when an observation has zero
/// likelihood under its model (a model-mismatch event).
enum class GuardPolicy {
  Ignore,       ///< keep the belief unchanged (legacy behaviour)
  Renormalize,  ///< condition on the action only: belief ← πᵀP(a)
  ResetPrior,   ///< reset to the episode's initial belief
  Escalate,     ///< request termination (aT / operator hand-off)
};

/// Parses "ignore" | "renormalize" | "reset-prior" | "escalate"; throws
/// PreconditionError on anything else.
GuardPolicy parse_guard_policy(const std::string& name);
const char* guard_policy_name(GuardPolicy policy);

struct GuardOptions {
  GuardPolicy mismatch_policy = GuardPolicy::Ignore;
  /// Per-decide() wall-clock budget in ms; 0 disables the deadline ladder
  /// (and keeps decide() on the exact single-expansion code path).
  double decide_deadline_ms = 0.0;
  /// Consecutive decides that blow the deadline at the greedy floor before
  /// the controller escalates to aT.
  int deadline_max_overruns = 8;
  /// Escalate when the expected bound has not strictly improved for this
  /// many consecutive decides; 0 disables livelock detection.
  std::size_t livelock_window = 0;
  /// Minimum improvement that counts as progress for the livelock monitor.
  double livelock_min_improvement = 1e-9;
};

/// Parses the shared guard flags (defaults preserve legacy behaviour):
/// --guard-policy, --decide-deadline-ms, --guard-deadline-overruns,
/// --guard-livelock-window.
GuardOptions parse_guard_options(const CliArgs& args);

/// The flag keys above, for require_known() lists.
std::vector<std::string> guard_flag_names();

/// Per-episode guard state machine owned by BeliefTrackingController.
class GuardRuntime {
 public:
  GuardRuntime() = default;
  explicit GuardRuntime(GuardOptions options);

  const GuardOptions& options() const { return options_; }

  /// Clears the per-episode state (escalation, overrun/stall counters).
  void begin_episode();

  /// True once any guard tripped; controllers terminate on their next
  /// decide() (BeliefTrackingController::guard_decision()).
  bool escalation_requested() const { return escalated_; }

  /// Trips the escalation latch. `reason` labels the counter bump (one of
  /// "mismatch", "deadline", "livelock" for the built-in sources).
  void request_escalation(const char* reason);

  bool deadline_enabled() const { return options_.decide_deadline_ms > 0.0; }

  /// Feed the deadline ladder's outcome for one decide(): total elapsed
  /// time and the tree depth actually completed vs. configured. Counts
  /// degradations; repeated overruns at the greedy floor escalate.
  void note_decide(double elapsed_ms, int achieved_depth, int configured_depth);

  /// Feed the decide()'s best expected bound. Property 1 says it strictly
  /// improves under a faithful model; `livelock_window` consecutive decides
  /// without improvement escalate.
  void note_expected_bound(double value);

  /// Ladder outcome of the most recent note_decide(), for decision
  /// provenance: "full" (configured depth completed), "degraded" (a
  /// shallower tree stood), or "greedy" (the depth-1 floor). "full" before
  /// any decide and whenever the deadline ladder is disabled.
  const char* last_decide_stage() const { return last_stage_; }

  /// Tree depth the most recent note_decide() reported (0 before any).
  int last_achieved_depth() const { return last_achieved_depth_; }

  /// The mutable per-episode state, for crash-safe checkpointing of fleets
  /// that hold one GuardRuntime per session (sim/checkpoint.hpp). Options
  /// and the last_* provenance labels are reconstructed by the host, not
  /// checkpointed.
  struct State {
    bool escalated = false;
    std::int32_t consecutive_overruns = 0;
    std::uint64_t stalled_decides = 0;
    bool has_best_bound = false;
    double best_bound = 0.0;
  };

  State state() const;

  /// Restores a state() capture; a restored runtime continues the episode's
  /// livelock/overrun accounting exactly where the capture left it.
  void set_state(const State& state);

 private:
  GuardOptions options_;
  bool escalated_ = false;
  int consecutive_overruns_ = 0;
  std::size_t stalled_decides_ = 0;
  bool has_best_bound_ = false;
  double best_bound_ = 0.0;
  const char* last_stage_ = "full";
  int last_achieved_depth_ = 0;
};

/// Bound-consistency repair: while V_B⁻(π) exceeds the sawtooth upper bound
/// at π (impossible when both bounds are sound — a signature of unsound
/// online updates under model mismatch), evict the offending unprotected
/// lower hyperplane. The protected RA-Bound base plane is never removed; if
/// it is the one crossing, the conflict is counted and left in place.
/// Returns the number of hyperplanes evicted.
std::size_t repair_bound_crossing(bounds::BoundSet& lower,
                                  const bounds::SawtoothUpperBound& upper,
                                  const Belief& belief, double tolerance = 1e-6);

}  // namespace recoverd::controller
