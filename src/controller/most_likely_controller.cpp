#include "controller/most_likely_controller.hpp"

#include "controller/repair.hpp"
#include "util/check.hpp"

namespace recoverd::controller {

MostLikelyController::MostLikelyController(const Pomdp& model,
                                           MostLikelyControllerOptions options)
    : BeliefTrackingController(model), options_(options) {
  RD_EXPECTS(options.observe_action < model.num_actions(),
             "MostLikelyController: observe action out of range");
  RD_EXPECTS(options.termination_probability > 0.0 && options.termination_probability < 1.0,
             "MostLikelyController: termination probability must lie in (0,1)");
  repair_table_ = build_repair_table(model.mdp());
}

void MostLikelyController::begin_episode(const Belief& initial_belief) {
  BeliefTrackingController::begin_episode(initial_belief);
  need_observation_ = false;  // the harness starts episodes from an observed belief
}

Decision MostLikelyController::decide() {
  if (const auto escalated = guard_decision()) return *escalated;

  const Mdp& mdp = model().mdp();
  const Belief& pi = belief();

  if (mdp.goal_probability(pi.probabilities()) >= options_.termination_probability) {
    return {kInvalidId, true};
  }
  if (need_observation_) {
    return {options_.observe_action, false};
  }

  // Most likely *fault*: argmax over non-goal states.
  StateId diagnosed = kInvalidId;
  double best = -1.0;
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    if (mdp.is_goal(s)) continue;
    if (pi[s] > best) {
      best = pi[s];
      diagnosed = s;
    }
  }
  if (diagnosed == kInvalidId || repair_table_[diagnosed] == kInvalidId) {
    // Nothing actionable (or the diagnosed state has no single-step fix):
    // gather more information.
    return {options_.observe_action, false};
  }
  return {repair_table_[diagnosed], false};
}

void MostLikelyController::record(ActionId action, ObsId obs) {
  BeliefTrackingController::record(action, obs);
  need_observation_ = action != options_.observe_action;
}

}  // namespace recoverd::controller
