#include "controller/controller.hpp"

#include "util/check.hpp"
#include "util/logging.hpp"

namespace recoverd::controller {

BeliefTrackingController::BeliefTrackingController(const Pomdp& model)
    : model_(model),
      belief_(Belief::uniform(model.num_states())),
      initial_belief_(belief_) {}

void BeliefTrackingController::begin_episode(const Belief& initial_belief) {
  RD_EXPECTS(initial_belief.size() == model_.num_states(),
             "BeliefTrackingController: belief dimension mismatch");
  belief_ = initial_belief;
  initial_belief_ = initial_belief;
  mismatches_ = 0;
  guard_.begin_episode();
}

void BeliefTrackingController::record(ActionId action, ObsId obs) {
  const auto update = update_belief(model_, belief_, action, obs);
  if (update.has_value()) {
    belief_ = update->next;
    return;
  }
  // γ ≤ 0: the observation is impossible under (π, a) — a model-mismatch
  // event. The guard policy decides how the belief recovers.
  ++mismatches_;
  switch (guard_.options().mismatch_policy) {
    case GuardPolicy::Ignore:
      log_warn("controller: observation '", model_.observation_name(obs),
               "' has zero likelihood after action '", model_.mdp().action_name(action),
               "'; belief unchanged");
      break;
    case GuardPolicy::Renormalize:
      // Condition on the action only: π ← πᵀP(a). Keeps the information the
      // action's dynamics carry and discards the impossible reading.
      belief_ = Belief(predict_state_distribution(model_, belief_, action));
      log_warn("controller: observation '", model_.observation_name(obs),
               "' has zero likelihood after action '", model_.mdp().action_name(action),
               "'; belief renormalized on the action prediction");
      break;
    case GuardPolicy::ResetPrior:
      belief_ = initial_belief_;
      log_warn("controller: observation '", model_.observation_name(obs),
               "' has zero likelihood after action '", model_.mdp().action_name(action),
               "'; belief reset to the episode prior");
      break;
    case GuardPolicy::Escalate:
      guard_.request_escalation("mismatch");
      break;
  }
}

std::optional<Decision> BeliefTrackingController::guard_decision() {
  if (!guard_.escalation_requested()) return std::nullopt;
  Decision decision;
  decision.terminate = true;
  // When the planning model carries an explicit aT, report it so harnesses
  // that log actions see the operator hand-off; execution is the same.
  decision.action = model_.has_terminate_action() ? model_.terminate_action()
                                                  : kInvalidId;
  return decision;
}

}  // namespace recoverd::controller
