#include "controller/controller.hpp"

#include "util/check.hpp"
#include "util/logging.hpp"

namespace recoverd::controller {

BeliefTrackingController::BeliefTrackingController(const Pomdp& model)
    : model_(model), belief_(Belief::uniform(model.num_states())) {}

void BeliefTrackingController::begin_episode(const Belief& initial_belief) {
  RD_EXPECTS(initial_belief.size() == model_.num_states(),
             "BeliefTrackingController: belief dimension mismatch");
  belief_ = initial_belief;
  mismatches_ = 0;
}

void BeliefTrackingController::record(ActionId action, ObsId obs) {
  const auto update = update_belief(model_, belief_, action, obs);
  if (!update.has_value()) {
    ++mismatches_;
    log_warn("controller: observation '", model_.observation_name(obs),
             "' has zero likelihood after action '", model_.mdp().action_name(action),
             "'; belief unchanged");
    return;
  }
  belief_ = update->next;
}

}  // namespace recoverd::controller
