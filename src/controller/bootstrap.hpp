// Bootstrapping phase (§4.1, evaluated in Fig. 5): before any real fault
// occurs, the controller warms its lower-bound set by running simulated
// recovery episodes and applying the incremental update (Eq. 7) at every
// belief visited.
//
// Two variants from §5:
//  - Random:  a fault is drawn uniformly, a monitor observation is sampled
//             from q for it, and the episode starts from the corresponding
//             posterior belief;
//  - Average: the episode starts directly from the "all faults equally
//             likely" belief.
#pragma once

#include <cstdint>
#include <vector>

#include "bounds/bound_set.hpp"
#include "pomdp/belief.hpp"
#include "pomdp/pomdp.hpp"

namespace recoverd::controller {

enum class BootstrapVariant { Random, Average };

struct BootstrapOptions {
  std::size_t iterations = 20;       ///< Fig. 5 sweeps 1..20
  int tree_depth = 1;                ///< depth of the decision expansion
  std::size_t max_episode_steps = 12;
  BootstrapVariant variant = BootstrapVariant::Random;
  std::uint64_t seed = 1;
  /// The model's monitoring action, used to sample the initial observation
  /// in the Random variant. Required.
  ActionId observe_action = kInvalidId;
  /// Fault states episodes start from; empty = all non-goal states except a
  /// terminate state.
  std::vector<StateId> fault_support;
  /// Observation-branch pruning floor for the decision expansion (see
  /// BoundedControllerOptions::branch_floor). 0 = exact.
  double branch_floor = 0.0;
};

/// One point per bootstrap iteration (the Fig. 5 series).
struct BootstrapTrace {
  /// V_B⁻ evaluated at the reference belief after each iteration. The values
  /// are non-decreasing (Fig. 5(a) plots their negation as an upper bound on
  /// cost).
  std::vector<double> bound_at_reference;
  /// |B| after each iteration (Fig. 5(b)); grows by at most one per update.
  std::vector<std::size_t> set_sizes;
};

/// Runs the bootstrap phase, improving `set` in place. `reference_belief` is
/// where the trace samples the bound (the paper uses the uniform belief
/// {1/|S|}); pass Belief::uniform(model.num_states()) to match.
BootstrapTrace bootstrap_bounds(const Pomdp& model, bounds::BoundSet& set,
                                const Belief& reference_belief,
                                const BootstrapOptions& options);

}  // namespace recoverd::controller
