#include "controller/repair.hpp"

#include <limits>

#include "util/check.hpp"

namespace recoverd::controller {

ActionId cheapest_fixing_action(const Mdp& mdp, StateId s) {
  RD_EXPECTS(s < mdp.num_states(), "cheapest_fixing_action: state out of range");
  if (mdp.is_goal(s)) return kInvalidId;
  ActionId best = kInvalidId;
  double best_reward = -std::numeric_limits<double>::infinity();
  for (ActionId a = 0; a < mdp.num_actions(); ++a) {
    double goal_mass = 0.0;
    for (const auto& e : mdp.transition(a).row(s)) {
      if (mdp.is_goal(e.col)) goal_mass += e.value;
    }
    if (goal_mass >= 1.0 - 1e-12 && mdp.reward(s, a) > best_reward) {
      best_reward = mdp.reward(s, a);
      best = a;
    }
  }
  return best;
}

std::vector<ActionId> build_repair_table(const Mdp& mdp) {
  std::vector<ActionId> table(mdp.num_states(), kInvalidId);
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    table[s] = cheapest_fixing_action(mdp, s);
  }
  return table;
}

}  // namespace recoverd::controller
