#include "controller/policy_controller.hpp"

#include "util/check.hpp"

namespace recoverd::controller {

PolicyController::PolicyController(const Pomdp& model, Policy policy,
                                   PolicyControllerOptions options)
    : BeliefTrackingController(model), policy_(std::move(policy)), options_(options) {
  RD_EXPECTS(policy_.size() == model.num_states(),
             "PolicyController: one action per state required");
  for (ActionId a : policy_) {
    RD_EXPECTS(a < model.num_actions(), "PolicyController: action out of range");
  }
  RD_EXPECTS(options.termination_probability > 0.0 &&
                 options.termination_probability < 1.0,
             "PolicyController: termination probability must lie in (0,1)");
}

Decision PolicyController::decide() {
  if (const auto escalated = guard_decision()) return *escalated;

  const Pomdp& pomdp = model();
  const Belief& pi = belief();

  double done_mass = pomdp.mdp().goal_probability(pi.probabilities());
  if (pomdp.has_terminate_action()) done_mass += pi[pomdp.terminate_state()];
  if (done_mass >= options_.termination_probability) return {kInvalidId, true};

  // Most likely state; ties break to the lowest id via Belief::most_likely.
  const StateId mls = pi.most_likely();
  const ActionId action = policy_[mls];
  const bool terminates =
      pomdp.has_terminate_action() && action == pomdp.terminate_action();
  return {action, terminates};
}

}  // namespace recoverd::controller
