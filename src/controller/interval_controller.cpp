#include "controller/interval_controller.hpp"

#include <limits>

#include "bounds/incremental_update.hpp"
#include "controller/guard.hpp"
#include "obs/metrics.hpp"
#include "pomdp/bellman.hpp"
#include "util/check.hpp"

namespace recoverd::controller {

IntervalController::IntervalController(const Pomdp& model, bounds::BoundSet& lower,
                                       bounds::SawtoothUpperBound& upper,
                                       IntervalControllerOptions options)
    : BeliefTrackingController(model),
      name_("BranchBound(d=" + std::to_string(options.tree_depth) + ")"),
      lower_(lower),
      upper_(upper),
      options_(options),
      engine_(model) {
  RD_EXPECTS(options.tree_depth >= 1, "IntervalController: tree depth must be >= 1");
  RD_EXPECTS(lower.dimension() == model.num_states(),
             "IntervalController: lower bound dimension mismatch");
  RD_EXPECTS(lower.size() > 0, "IntervalController: lower bound set must be seeded");
}

Decision IntervalController::decide() {
  if (const auto escalated = guard_decision()) return *escalated;

  const Pomdp& pomdp = model();
  const Belief& pi = belief();
  stats_ = IntervalDecisionStats{};

  if (!pomdp.has_terminate_action() &&
      pomdp.mdp().goal_probability(pi.probabilities()) >= 1.0 - 1e-9) {
    return {kInvalidId, true};
  }

  if (options_.online_improvement) {
    double fault_mass = 1.0 - pomdp.mdp().goal_probability(pi.probabilities());
    if (pomdp.has_terminate_action()) fault_mass -= pi[pomdp.terminate_state()];
    if (fault_mass >= options_.improvement_min_fault_mass) {
      bounds::improve_at(pomdp, lower_, pi);
      // Upper-bound refinement stays exact (no branch pruning) so the
      // certified gap remains sound.
      upper_.improve_at(pi);
    }
  }

  // Bound-consistency guard: online updates computed from off-model
  // observations can push a lower hyperplane above the sawtooth upper bound.
  // Evict the offenders (never the protected RA-Bound plane) rather than
  // branch-and-bounding over an inconsistent interval.
  if (options_.repair_bound_crossings) {
    repair_bound_crossing(lower_, upper_, pi, options_.repair_tolerance);
  }

  // Both expansions run on the controller's engine with devirtualized span
  // leaves — no Belief construction at the leaves of either tree. The lower
  // tree goes through the pruned scratch kernel (warm start, batched
  // frontiers, wins flushed once per decide); the sawtooth upper bound keeps
  // the plain span leaf.
  const auto upper_leaf = [this](std::span<const double> posterior) {
    return upper_.evaluate(posterior);
  };
  ExpansionOptions expansion;
  expansion.branch_floor = options_.branch_floor;
  expansion.memo = options_.memo;
  expansion.memo_max_bytes = options_.memo_max_mb << 20;
  lower_.begin_eval(lower_scratch_);  // after improve_at/repair: set is stable now
  const bounds::ScratchBoundLeaf lower_leaf{&lower_, &lower_scratch_};
  engine_.action_values(pi.probabilities(), options_.tree_depth,
                        SpanLeaf::of_batched(lower_leaf, lower_.size() + 1), expansion,
                        lower_values_);
  lower_.flush_eval(lower_scratch_);
  engine_.action_values(pi.probabilities(), options_.tree_depth,
                        SpanLeaf::of(upper_leaf), expansion, upper_values_);
  const std::vector<ActionValue>& lower_values = lower_values_;
  const std::vector<ActionValue>& upper_values = upper_values_;

  // Branch and bound: the best lower bound eliminates every action whose
  // upper bound falls beneath it; among survivors pick the most optimistic.
  double best_lower = -std::numeric_limits<double>::infinity();
  for (const auto& lv : lower_values) best_lower = std::max(best_lower, lv.value);

  ActionId best_action = kInvalidId;
  double best_upper = -std::numeric_limits<double>::infinity();
  for (ActionId a = 0; a < pomdp.num_actions(); ++a) {
    if (upper_values[a].value < best_lower - 1e-12) {
      ++stats_.actions_pruned;
      continue;
    }
    if (upper_values[a].value > best_upper) {
      best_upper = upper_values[a].value;
      best_action = a;
    }
  }
  if (best_action == kInvalidId) {
    // Every action's upper bound fell below the best lower bound — only
    // possible when the bounds are inconsistent (model mismatch). Falling
    // back to the best lower-bound action keeps the recovery going; aborting
    // a live recovery over a diagnostics inconsistency is never right.
    obs::metrics().counter("controller.interval.prune_conflicts").add();
    for (ActionId a = 0; a < pomdp.num_actions(); ++a) {
      if (best_action == kInvalidId ||
          lower_values[a].value > lower_values[best_action].value) {
        best_action = a;
      }
    }
    best_upper = upper_values[best_action].value;
  }
  stats_.lower = lower_values[best_action].value;
  stats_.upper = best_upper;

  if (pomdp.has_terminate_action()) {
    const ActionId at = pomdp.terminate_action();
    if (best_action != at &&
        upper_values[at].value >= best_upper - options_.terminate_tie_epsilon &&
        lower_values[at].value >= best_lower - options_.terminate_tie_epsilon) {
      best_action = at;
    }
    if (best_action == at) return {at, true};
  }
  return {best_action, false};
}

}  // namespace recoverd::controller
