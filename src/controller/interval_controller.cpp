#include "controller/interval_controller.hpp"

#include <limits>

#include "bounds/incremental_update.hpp"
#include "controller/guard.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "pomdp/bellman.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace recoverd::controller {

IntervalController::IntervalController(const Pomdp& model, bounds::BoundSet& lower,
                                       bounds::SawtoothUpperBound& upper,
                                       IntervalControllerOptions options)
    : BeliefTrackingController(model),
      name_("BranchBound(d=" + std::to_string(options.tree_depth) + ")"),
      lower_(lower),
      upper_(upper),
      options_(options),
      engine_(model) {
  RD_EXPECTS(options.tree_depth >= 1, "IntervalController: tree depth must be >= 1");
  RD_EXPECTS(lower.dimension() == model.num_states(),
             "IntervalController: lower bound dimension mismatch");
  RD_EXPECTS(lower.size() > 0, "IntervalController: lower bound set must be seeded");
}

namespace {
// Interval-controller provenance skeleton; decision-specific fields are
// filled at the single emission point in decide().
obs::DecisionProvenance interval_provenance_base(const char* stage, double decide_ms,
                                                 const bounds::BoundSet& lower,
                                                 int depth) {
  obs::DecisionProvenance record;
  record.controller = "interval";
  record.stage = stage;
  record.decide_ms = decide_ms;
  record.bound_generation = lower.generation();
  record.bound_size = lower.size();
  record.configured_depth = depth;
  record.achieved_depth = depth;  // no deadline ladder on this controller
  return record;
}
}  // namespace

Decision IntervalController::decide() {
  obs::TraceSpan decide_span("controller.decide", obs::TraceLevel::Decide);
  const bool provenance = obs::provenance_enabled();
  Timer provenance_timer;

  if (const auto escalated = guard_decision()) {
    if (provenance) {
      obs::DecisionProvenance record = interval_provenance_base(
          "escalated", provenance_timer.elapsed_ms(), lower_, options_.tree_depth);
      record.chosen_action = escalated->action == kInvalidId
                                 ? -1
                                 : static_cast<std::int64_t>(escalated->action);
      record.terminate = escalated->terminate;
      obs::emit_provenance(std::move(record));
    }
    return *escalated;
  }

  const Pomdp& pomdp = model();
  const Belief& pi = belief();
  stats_ = IntervalDecisionStats{};

  if (!pomdp.has_terminate_action() &&
      pomdp.mdp().goal_probability(pi.probabilities()) >= 1.0 - 1e-9) {
    if (provenance) {
      obs::DecisionProvenance record = interval_provenance_base(
          "goal-certain", provenance_timer.elapsed_ms(), lower_, options_.tree_depth);
      record.terminate = true;
      obs::emit_provenance(std::move(record));
    }
    return {kInvalidId, true};
  }

  if (options_.online_improvement) {
    double fault_mass = 1.0 - pomdp.mdp().goal_probability(pi.probabilities());
    if (pomdp.has_terminate_action()) fault_mass -= pi[pomdp.terminate_state()];
    if (fault_mass >= options_.improvement_min_fault_mass) {
      bounds::improve_at(pomdp, lower_, pi);
      // Upper-bound refinement stays exact (no branch pruning) so the
      // certified gap remains sound.
      upper_.improve_at(pi);
    }
  }

  // Bound-consistency guard: online updates computed from off-model
  // observations can push a lower hyperplane above the sawtooth upper bound.
  // Evict the offenders (never the protected RA-Bound plane) rather than
  // branch-and-bounding over an inconsistent interval.
  if (options_.repair_bound_crossings) {
    repair_bound_crossing(lower_, upper_, pi, options_.repair_tolerance);
  }

  // Both expansions run on the controller's engine with devirtualized span
  // leaves — no Belief construction at the leaves of either tree. The lower
  // tree goes through the pruned scratch kernel (warm start, batched
  // frontiers, wins flushed once per decide); the sawtooth upper bound keeps
  // the plain span leaf.
  const auto upper_leaf = [this](std::span<const double> posterior) {
    return upper_.evaluate(posterior);
  };
  ExpansionOptions expansion;
  expansion.branch_floor = options_.branch_floor;
  expansion.memo = options_.memo;
  expansion.memo_max_bytes = options_.memo_max_mb << 20;
  ExpansionNodeStats node_stats;
  if (provenance) expansion.stats = &node_stats;
  lower_.begin_eval(lower_scratch_);  // after improve_at/repair: set is stable now
  const bounds::ScratchBoundLeaf lower_leaf{&lower_, &lower_scratch_};
  engine_.action_values(pi.probabilities(), options_.tree_depth,
                        SpanLeaf::of_batched(lower_leaf, lower_.size() + 1), expansion,
                        lower_values_);
  lower_.flush_eval(lower_scratch_);
  // Keep the provenance node stats scoped to the lower tree: a second
  // expansion with the same stats pointer would reset them, and the lower
  // tree is the one whose pruning behaviour the record explains.
  ExpansionNodeStats lower_tree_stats = node_stats;
  expansion.stats = nullptr;
  engine_.action_values(pi.probabilities(), options_.tree_depth,
                        SpanLeaf::of(upper_leaf), expansion, upper_values_);
  const std::vector<ActionValue>& lower_values = lower_values_;
  const std::vector<ActionValue>& upper_values = upper_values_;

  // Branch and bound: the best lower bound eliminates every action whose
  // upper bound falls beneath it; among survivors pick the most optimistic.
  double best_lower = -std::numeric_limits<double>::infinity();
  for (const auto& lv : lower_values) best_lower = std::max(best_lower, lv.value);

  ActionId best_action = kInvalidId;
  double best_upper = -std::numeric_limits<double>::infinity();
  std::vector<bool> pruned(pomdp.num_actions(), false);
  for (ActionId a = 0; a < pomdp.num_actions(); ++a) {
    if (upper_values[a].value < best_lower - 1e-12) {
      ++stats_.actions_pruned;
      pruned[a] = true;
      continue;
    }
    if (upper_values[a].value > best_upper) {
      best_upper = upper_values[a].value;
      best_action = a;
    }
  }
  if (best_action == kInvalidId) {
    // Every action's upper bound fell below the best lower bound — only
    // possible when the bounds are inconsistent (model mismatch). Falling
    // back to the best lower-bound action keeps the recovery going; aborting
    // a live recovery over a diagnostics inconsistency is never right.
    obs::metrics().counter("controller.interval.prune_conflicts").add();
    for (ActionId a = 0; a < pomdp.num_actions(); ++a) {
      if (best_action == kInvalidId ||
          lower_values[a].value > lower_values[best_action].value) {
        best_action = a;
      }
    }
    best_upper = upper_values[best_action].value;
  }
  stats_.lower = lower_values[best_action].value;
  stats_.upper = best_upper;

  if (pomdp.has_terminate_action()) {
    const ActionId at = pomdp.terminate_action();
    if (best_action != at &&
        upper_values[at].value >= best_upper - options_.terminate_tie_epsilon &&
        lower_values[at].value >= best_lower - options_.terminate_tie_epsilon) {
      best_action = at;
    }
  }
  const Decision decision{best_action,
                          pomdp.has_terminate_action() &&
                              best_action == pomdp.terminate_action()};

  if (provenance) {
    obs::DecisionProvenance record = interval_provenance_base(
        "full", provenance_timer.elapsed_ms(), lower_, options_.tree_depth);
    record.chosen_action = static_cast<std::int64_t>(decision.action);
    record.terminate = decision.terminate;
    record.expansion.nodes = lower_tree_stats.nodes;
    record.expansion.leaf_evaluations = lower_tree_stats.leaf_evaluations;
    record.expansion.memo_hits = lower_tree_stats.memo_hits;
    record.expansion.memo_misses = lower_tree_stats.memo_misses;
    record.expansion.memo_insertions = lower_tree_stats.memo_insertions;
    std::size_t levels = ExpansionNodeStats::kMaxLevels;
    while (levels > 0 && lower_tree_stats.nodes_per_level[levels - 1] == 0) --levels;
    record.expansion.nodes_per_level.assign(
        lower_tree_stats.nodes_per_level.begin(),
        lower_tree_stats.nodes_per_level.begin() + levels);
    record.actions.reserve(pomdp.num_actions());
    for (ActionId a = 0; a < pomdp.num_actions(); ++a) {
      obs::ActionProvenance entry;
      entry.action = a;
      entry.lower = lower_values[a].value;
      entry.upper = upper_values[a].value;
      entry.has_upper = true;
      entry.pruned = pruned[a];
      record.actions.push_back(entry);
    }
    obs::emit_provenance(std::move(record));
  }
  return decision;
}

}  // namespace recoverd::controller
