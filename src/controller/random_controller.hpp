// Uniform-random controller: the policy whose value the RA-Bound computes.
// Used by tests (its empirical episode cost must respect the bound) and as a
// sanity baseline.
#pragma once

#include <string>

#include "controller/controller.hpp"
#include "util/rng.hpp"

namespace recoverd::controller {

class RandomController : public BeliefTrackingController {
 public:
  RandomController(const Pomdp& model, Rng rng);

  const std::string& name() const override { return name_; }
  Decision decide() override;

 private:
  std::string name_ = "Random";
  Rng rng_;
};

}  // namespace recoverd::controller
