// The Oracle baseline of §5: a hypothetical controller that knows the true
// fault and recovers with the single cheapest fixing action — the
// unattainable ideal row of Table 1.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "controller/controller.hpp"

namespace recoverd::controller {

class OracleController : public RecoveryController {
 public:
  /// `true_state` is invoked at each decision to read the environment's
  /// hidden state (the harness wires it to the simulator).
  OracleController(const Pomdp& model, std::function<StateId()> true_state);

  const std::string& name() const override { return name_; }
  void begin_episode(const Belief& initial_belief) override;
  Decision decide() override;
  void record(ActionId action, ObsId obs) override;
  const Belief& belief() const override { return belief_; }
  const Pomdp& model() const override { return model_; }

 private:
  std::string name_ = "Oracle";
  const Pomdp& model_;
  std::function<StateId()> true_state_;
  std::vector<ActionId> repair_table_;
  Belief belief_;
};

}  // namespace recoverd::controller
