// Fixed-policy baseline: plays a precomputed MDP policy on the most likely
// state of the tracked belief (the "MLS" heuristic from the POMDP
// literature). Sits between Most-Likely (diagnose + cheapest fix) and the
// bounded controller: it uses the full MDP solution offline but ignores
// belief uncertainty online — a useful ablation of what the belief-aware
// tree expansion actually buys.
#pragma once

#include <string>

#include "controller/controller.hpp"
#include "pomdp/policy.hpp"

namespace recoverd::controller {

struct PolicyControllerOptions {
  /// Stop when P[Sφ] (plus sT mass, if any) exceeds this, or — on models
  /// with a terminate action — when the policy itself plays aT.
  double termination_probability = 0.9999;
};

class PolicyController : public BeliefTrackingController {
 public:
  /// `policy` maps every model state to an action (e.g. from
  /// value_iteration or policy_iteration on the transformed model).
  PolicyController(const Pomdp& model, Policy policy,
                   PolicyControllerOptions options = {});

  const std::string& name() const override { return name_; }
  Decision decide() override;

 private:
  std::string name_ = "MLS Policy";
  Policy policy_;
  PolicyControllerOptions options_;
};

}  // namespace recoverd::controller
