#include "controller/bootstrap.hpp"

#include "bounds/incremental_update.hpp"
#include "pomdp/bellman.hpp"
#include "pomdp/sampling.hpp"
#include "util/check.hpp"

namespace recoverd::controller {

BootstrapTrace bootstrap_bounds(const Pomdp& model, bounds::BoundSet& set,
                                const Belief& reference_belief,
                                const BootstrapOptions& options) {
  RD_EXPECTS(options.observe_action < model.num_actions(),
             "bootstrap_bounds: observe action out of range");
  RD_EXPECTS(options.tree_depth >= 1, "bootstrap_bounds: tree depth must be >= 1");
  RD_EXPECTS(set.size() > 0, "bootstrap_bounds: bound set must be seeded (RA-Bound)");
  RD_EXPECTS(reference_belief.size() == model.num_states(),
             "bootstrap_bounds: reference belief dimension mismatch");

  std::vector<StateId> support = options.fault_support;
  if (support.empty()) {
    for (StateId s = 0; s < model.num_states(); ++s) {
      if (!model.mdp().is_goal(s) && s != model.terminate_state()) support.push_back(s);
    }
  }
  RD_EXPECTS(!support.empty(), "bootstrap_bounds: no fault states to sample");

  Rng rng(options.seed);
  BootstrapTrace trace;
  trace.bound_at_reference.reserve(options.iterations);
  trace.set_sizes.reserve(options.iterations);

  // The bootstrap drives many expansions over one model: run them on a
  // local engine with a devirtualized scratch leaf so the warm arena — and
  // the bound set's warm-start winner — is reused for the whole warm-up.
  ExpansionEngine engine(model);
  bounds::BoundSet::EvalScratch scratch;
  const bounds::ScratchBoundLeaf leaf{&set, &scratch};
  ExpansionOptions expansion;
  expansion.branch_floor = options.branch_floor;

  for (std::size_t iter = 0; iter < options.iterations; ++iter) {
    // Choose the episode's hidden fault and starting belief.
    const Belief uniform_faults = Belief::uniform_over(model.num_states(), support);
    StateId true_state = support[rng.uniform_index(support.size())];
    Belief belief = uniform_faults;

    if (options.variant == BootstrapVariant::Random) {
      // Simulate the monitors once and condition the starting belief on the
      // reading, exactly as the online controller would (§4).
      const ObsId obs = sample_observation(model, true_state, options.observe_action, rng);
      if (const auto upd = update_belief(model, belief, options.observe_action, obs)) {
        belief = upd->next;
      }
    }

    // Simulated recovery episode: improve the bound at each visited belief,
    // act greedily w.r.t. the improved bound, evolve the hidden state.
    for (std::size_t step = 0; step < options.max_episode_steps; ++step) {
      bounds::improve_at(model, set, belief);

      // improve_at may have mutated the set: re-arm the scratch per step and
      // flush its wins right after the expansion.
      set.begin_eval(scratch);
      const ActionValue best =
          engine.best_action(belief.probabilities(), options.tree_depth,
                             SpanLeaf::of_batched(leaf, set.size() + 1), expansion);
      set.flush_eval(scratch);
      if (model.has_terminate_action() && best.action == model.terminate_action()) break;
      if (!model.has_terminate_action() &&
          model.mdp().goal_probability(belief.probabilities()) >= 1.0 - 1e-9) {
        break;
      }

      true_state = sample_transition(model.mdp(), true_state, best.action, rng);
      const ObsId obs = sample_observation(model, true_state, best.action, rng);
      const auto upd = update_belief(model, belief, best.action, obs);
      if (!upd.has_value()) break;  // impossible under the model; restart episode
      belief = upd->next;
    }

    trace.bound_at_reference.push_back(set.evaluate(reference_belief.probabilities()));
    trace.set_sizes.push_back(set.size());
  }
  return trace;
}

}  // namespace recoverd::controller
