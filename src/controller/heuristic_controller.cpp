#include "controller/heuristic_controller.hpp"

#include <algorithm>
#include <limits>

#include "pomdp/bellman.hpp"
#include "util/check.hpp"

namespace recoverd::controller {

HeuristicController::HeuristicController(const Pomdp& model,
                                         HeuristicControllerOptions options)
    : BeliefTrackingController(model),
      name_("Heuristic(d=" + std::to_string(options.tree_depth) + ")"),
      options_(options) {
  RD_EXPECTS(options.tree_depth >= 1, "HeuristicController: tree depth must be >= 1");
  RD_EXPECTS(options.termination_probability > 0.0 && options.termination_probability < 1.0,
             "HeuristicController: termination probability must lie in (0,1)");

  most_expensive_cost_ = 0.0;
  for (ActionId a = 0; a < model.num_actions(); ++a) {
    if (a == model.terminate_action()) continue;
    for (StateId s = 0; s < model.num_states(); ++s) {
      most_expensive_cost_ = std::min(most_expensive_cost_, model.mdp().reward(s, a));
    }
  }
}

Decision HeuristicController::decide() {
  if (const auto escalated = guard_decision()) return *escalated;

  const Pomdp& pomdp = model();
  const Belief& pi = belief();

  if (pomdp.mdp().goal_probability(pi.probabilities()) >=
      options_.termination_probability) {
    return {kInvalidId, true};
  }

  const double worst_cost = most_expensive_cost_;
  const LeafEvaluator leaf = [&pomdp, worst_cost](const Belief& b) {
    return (1.0 - pomdp.mdp().goal_probability(b.probabilities())) * worst_cost;
  };
  const ActionValue best = bellman_best_action(pomdp, pi, options_.tree_depth, leaf, 1.0,
                                               pomdp.terminate_action(),
                                               options_.branch_floor);
  return {best.action, false};
}

}  // namespace recoverd::controller
