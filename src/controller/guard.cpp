#include "controller/guard.hpp"

#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace recoverd::controller {

namespace {
struct GuardInstruments {
  obs::Counter& escalations;
  obs::Counter& deadline_degraded;
  obs::Counter& deadline_overruns;
  obs::Counter& deadline_escalations;
  obs::Counter& livelock_escalations;
  obs::Counter& mismatch_escalations;
  obs::Counter& bound_repairs;
  obs::Counter& bound_unrepairable;

  static GuardInstruments& get() {
    static GuardInstruments instruments{
        obs::metrics().counter("controller.guard.escalations"),
        obs::metrics().counter("controller.guard.deadline_degraded"),
        obs::metrics().counter("controller.guard.deadline_overruns"),
        obs::metrics().counter("controller.guard.deadline_escalations"),
        obs::metrics().counter("controller.guard.livelock_escalations"),
        obs::metrics().counter("controller.guard.mismatch_escalations"),
        obs::metrics().counter("controller.guard.bound_repairs"),
        obs::metrics().counter("controller.guard.bound_unrepairable"),
    };
    return instruments;
  }
};
}  // namespace

GuardPolicy parse_guard_policy(const std::string& name) {
  if (name == "ignore") return GuardPolicy::Ignore;
  if (name == "renormalize") return GuardPolicy::Renormalize;
  if (name == "reset-prior") return GuardPolicy::ResetPrior;
  if (name == "escalate") return GuardPolicy::Escalate;
  RD_EXPECTS(false, "guard policy must be one of ignore|renormalize|reset-prior|"
                    "escalate, got '" + name + "'");
  return GuardPolicy::Ignore;
}

const char* guard_policy_name(GuardPolicy policy) {
  switch (policy) {
    case GuardPolicy::Ignore: return "ignore";
    case GuardPolicy::Renormalize: return "renormalize";
    case GuardPolicy::ResetPrior: return "reset-prior";
    case GuardPolicy::Escalate: return "escalate";
  }
  return "ignore";
}

GuardOptions parse_guard_options(const CliArgs& args) {
  GuardOptions options;
  options.mismatch_policy = parse_guard_policy(
      args.get_choice("guard-policy", "ignore",
                      {"ignore", "renormalize", "reset-prior", "escalate"}));
  options.decide_deadline_ms = args.get_double("decide-deadline-ms", 0.0);
  options.deadline_max_overruns =
      static_cast<int>(args.get_int("guard-deadline-overruns", 8));
  options.livelock_window =
      static_cast<std::size_t>(args.get_int("guard-livelock-window", 0));
  RD_EXPECTS(options.decide_deadline_ms >= 0.0,
             "CliArgs: --decide-deadline-ms must be >= 0");
  RD_EXPECTS(options.deadline_max_overruns >= 1,
             "CliArgs: --guard-deadline-overruns must be >= 1");
  return options;
}

std::vector<std::string> guard_flag_names() {
  return {"guard-policy", "decide-deadline-ms", "guard-deadline-overruns",
          "guard-livelock-window"};
}

GuardRuntime::GuardRuntime(GuardOptions options) : options_(options) {
  RD_EXPECTS(options_.decide_deadline_ms >= 0.0,
             "GuardOptions: decide_deadline_ms must be >= 0");
  RD_EXPECTS(options_.deadline_max_overruns >= 1,
             "GuardOptions: deadline_max_overruns must be >= 1");
  RD_EXPECTS(options_.livelock_min_improvement >= 0.0,
             "GuardOptions: livelock_min_improvement must be >= 0");
}

void GuardRuntime::begin_episode() {
  escalated_ = false;
  consecutive_overruns_ = 0;
  stalled_decides_ = 0;
  has_best_bound_ = false;
  best_bound_ = 0.0;
  last_stage_ = "full";
  last_achieved_depth_ = 0;
}

void GuardRuntime::request_escalation(const char* reason) {
  if (escalated_) return;
  escalated_ = true;
  GuardInstruments& instruments = GuardInstruments::get();
  instruments.escalations.add();
  const std::string why(reason);
  if (why == "deadline") instruments.deadline_escalations.add();
  if (why == "livelock") instruments.livelock_escalations.add();
  if (why == "mismatch") instruments.mismatch_escalations.add();
  obs::trace_instant("guard.escalation", obs::TraceLevel::Decide);
  log_warn("guard: escalating to termination (", why, ")");
}

void GuardRuntime::note_decide(double elapsed_ms, int achieved_depth,
                               int configured_depth) {
  if (!deadline_enabled()) return;
  GuardInstruments& instruments = GuardInstruments::get();
  last_achieved_depth_ = achieved_depth;
  last_stage_ = achieved_depth >= configured_depth ? "full"
                : achieved_depth <= 1              ? "greedy"
                                                   : "degraded";
  if (achieved_depth < configured_depth) instruments.deadline_degraded.add();
  // An overrun only counts against the escalation budget once the ladder
  // has already degraded to its greedy floor — a deeper tree that ran over
  // simply degrades further next time.
  if (elapsed_ms >= options_.decide_deadline_ms && achieved_depth <= 1) {
    instruments.deadline_overruns.add();
    if (++consecutive_overruns_ >= options_.deadline_max_overruns) {
      request_escalation("deadline");
    }
  } else {
    consecutive_overruns_ = 0;
  }
}

GuardRuntime::State GuardRuntime::state() const {
  State state;
  state.escalated = escalated_;
  state.consecutive_overruns = consecutive_overruns_;
  state.stalled_decides = stalled_decides_;
  state.has_best_bound = has_best_bound_;
  state.best_bound = best_bound_;
  return state;
}

void GuardRuntime::set_state(const State& state) {
  escalated_ = state.escalated;
  consecutive_overruns_ = state.consecutive_overruns;
  stalled_decides_ = static_cast<std::size_t>(state.stalled_decides);
  has_best_bound_ = state.has_best_bound;
  best_bound_ = state.best_bound;
}

void GuardRuntime::note_expected_bound(double value) {
  if (options_.livelock_window == 0) return;
  if (!has_best_bound_ || value > best_bound_ + options_.livelock_min_improvement) {
    has_best_bound_ = true;
    best_bound_ = value;
    stalled_decides_ = 0;
    return;
  }
  if (++stalled_decides_ >= options_.livelock_window) {
    request_escalation("livelock");
  }
}

std::size_t repair_bound_crossing(bounds::BoundSet& lower,
                                  const bounds::SawtoothUpperBound& upper,
                                  const Belief& belief, double tolerance) {
  std::size_t evicted = 0;
  const double ub = upper.evaluate(belief.probabilities());
  // Uses best_index() + an explicit dot product (not evaluate()) so the
  // consistency check leaves the set's least-used eviction ordering intact —
  // a clean run through this guard stays bit-identical.
  while (lower.size() > 0) {
    const std::size_t offender = lower.best_index(belief.probabilities());
    const double lb = linalg::dot(lower.vector_at(offender), belief.probabilities());
    if (lb <= ub + tolerance) break;
    if (lower.is_protected(offender)) {
      // The RA-Bound base plane itself crosses: with a sound RA-Bound this
      // means the *upper* bound is the unsound one. Count it and move on —
      // never abort a recovery over a diagnostics inconsistency.
      GuardInstruments::get().bound_unrepairable.add();
      break;
    }
    lower.remove(offender);
    ++evicted;
    GuardInstruments::get().bound_repairs.add();
  }
  if (evicted > 0) {
    log_warn("guard: evicted ", evicted,
             " lower-bound hyperplane(s) crossing the sawtooth upper bound");
  }
  return evicted;
}

}  // namespace recoverd::controller
