#include "controller/oracle_controller.hpp"

#include "controller/repair.hpp"
#include "util/check.hpp"

namespace recoverd::controller {

OracleController::OracleController(const Pomdp& model, std::function<StateId()> true_state)
    : model_(model),
      true_state_(std::move(true_state)),
      belief_(Belief::uniform(model.num_states())) {
  RD_EXPECTS(static_cast<bool>(true_state_), "OracleController: true-state provider required");
  repair_table_ = build_repair_table(model.mdp());
}

void OracleController::begin_episode(const Belief& initial_belief) {
  RD_EXPECTS(initial_belief.size() == model_.num_states(),
             "OracleController: belief dimension mismatch");
  belief_ = initial_belief;
}

Decision OracleController::decide() {
  const StateId s = true_state_();
  RD_EXPECTS(s < model_.num_states(), "OracleController: provider returned a bad state");
  if (model_.mdp().is_goal(s)) return {kInvalidId, true};
  const ActionId fix = repair_table_[s];
  RD_EXPECTS(fix != kInvalidId,
             "OracleController: no single-step fix for state '" +
                 model_.mdp().state_name(s) + "'");
  return {fix, false};
}

void OracleController::record(ActionId, ObsId) {
  // The oracle reads the true state directly; observations carry no
  // additional information for it.
}

}  // namespace recoverd::controller
