// Recovery controller interface (§4).
//
// A controller drives one recovery episode: the experiment harness injects a
// fault, gives the controller an initial belief (uniform over fault states,
// refined by the first monitor reading — §4), then repeatedly asks for a
// decision, executes it against the environment, and feeds the resulting
// observation back. The episode ends when the controller terminates (either
// by choosing the terminate action aT or by a controller-specific stopping
// rule such as a recovered-probability threshold).
#pragma once

#include <optional>
#include <string>

#include "controller/guard.hpp"
#include "pomdp/belief.hpp"
#include "pomdp/pomdp.hpp"
#include "pomdp/types.hpp"

namespace recoverd::controller {

/// One controller decision.
struct Decision {
  /// Action to execute; ignored when `terminate` is true.
  ActionId action = kInvalidId;
  /// True when the controller declares recovery finished.
  bool terminate = false;
};

/// Abstract recovery controller.
class RecoveryController {
 public:
  virtual ~RecoveryController() = default;

  /// Display name for experiment tables.
  virtual const std::string& name() const = 0;

  /// Starts a new episode from the given initial belief.
  virtual void begin_episode(const Belief& initial_belief) = 0;

  /// Chooses the next decision given the current belief state.
  virtual Decision decide() = 0;

  /// Incorporates the executed action and resulting observation.
  virtual void record(ActionId action, ObsId obs) = 0;

  /// Current belief (controllers that do not track beliefs may return the
  /// episode's initial belief).
  virtual const Belief& belief() const = 0;

  /// The decision model this controller plans over. May have more states
  /// than the environment's model (the terminate transform appends sT), but
  /// shares ids for all common states/actions/observations.
  virtual const Pomdp& model() const = 0;
};

/// Common base for controllers that track a Bayes belief over the model.
/// An observation that the model assigns zero likelihood (a model-mismatch
/// event) is handled per the guard's GuardPolicy — by default it leaves the
/// belief unchanged and increments a counter the harness can report.
class BeliefTrackingController : public RecoveryController {
 public:
  explicit BeliefTrackingController(const Pomdp& model);

  void begin_episode(const Belief& initial_belief) override;
  void record(ActionId action, ObsId obs) override;
  const Belief& belief() const override { return belief_; }
  const Pomdp& model() const override { return model_; }

  /// Number of zero-likelihood observations seen this episode.
  std::size_t mismatch_count() const { return mismatches_; }

  /// Installs the guard runtime's configuration. Takes effect from the next
  /// begin_episode(); defaults keep every legacy code path exact.
  void set_guard_options(const GuardOptions& options) { guard_ = GuardRuntime(options); }

  GuardRuntime& guard() { return guard_; }
  const GuardRuntime& guard() const { return guard_; }

 protected:
  /// Escalation hook for decide() implementations: once any guard tripped,
  /// returns the terminate decision (aT when the planning model has one,
  /// plain `terminate` otherwise); nullopt on the normal path. Subclasses
  /// call this first in decide().
  std::optional<Decision> guard_decision();

  /// Overwrites the tracked belief (guard repair paths in subclasses).
  void set_belief(Belief belief) { belief_ = std::move(belief); }

  /// The belief begin_episode() started from (GuardPolicy::ResetPrior).
  const Belief& initial_belief() const { return initial_belief_; }

 private:
  const Pomdp& model_;
  Belief belief_;
  Belief initial_belief_;
  GuardRuntime guard_;
  std::size_t mismatches_ = 0;
};

}  // namespace recoverd::controller
