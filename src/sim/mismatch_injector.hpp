// Model-mismatch chaos injection: perturbs the *world* independently of the
// controller's model, so campaigns can measure how gracefully each
// controller degrades when the POMDP it plans with is wrong — the regime a
// production recovery daemon actually lives in (the paper's guarantees, and
// the under-approximation results of Bork et al. / Ho et al. in PAPERS.md,
// all assume a faithful model).
//
// Five composable axes, each defaulting to "off" (the injector is inert and
// the simulator's draw sequence is byte-identical to a run without it):
//  - observation corruption: flip monitor bits with rate ε (bit-structured
//    alphabets, |O| = 2^M, treat the ObsId as the joint monitor bit-vector;
//    otherwise the whole reading is resampled uniformly with rate ε);
//  - observation drops/delays: with some rate the fresh reading is lost and
//    the previously *delivered* reading is replayed (a stale channel);
//  - stuck-at outages: with some per-step rate the whole monitoring channel
//    freezes its last delivered reading for k steps;
//  - action-failure inflation: recovery actions silently no-op (the true
//    state does not move) with probability p — monitors are exempt;
//  - transition perturbation: each episode the world's transition rows are
//    jittered toward a Dirichlet(1) draw over their support — augmented
//    with the self-loop so deterministic repair rows can lose progress —
//    with magnitude δ (rows of goal states keep their exact dynamics so a
//    recovered system stays recovered).
//
// Determinism: every injector draws from its own RNG stream, split from the
// per-episode stream *after* the environment's (and only when mismatch is
// enabled), so enabling chaos never perturbs the baseline draw sequence and
// campaigns stay reproducible and `--jobs`-invariant.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/sparse_matrix.hpp"
#include "pomdp/pomdp.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace recoverd::sim {

/// Chaos axes; all rates in [0, 1], all defaults "off".
struct MismatchOptions {
  double obs_flip_rate = 0.0;      ///< ε: per-monitor-bit flip probability
  double obs_drop_rate = 0.0;      ///< fresh reading dropped, stale one replayed
  double stuck_rate = 0.0;         ///< per-step probability an outage starts
  std::size_t stuck_steps = 8;     ///< outage length k (readings frozen)
  double action_fail_rate = 0.0;   ///< p: recovery action silently no-ops
  double transition_jitter = 0.0;  ///< δ: Dirichlet jitter of world dynamics
  /// Action exempt from failure inflation (normally the monitoring action;
  /// the experiment harness fills this in from EpisodeConfig).
  ActionId exempt_action = kInvalidId;

  /// True when any axis is active — the harness only constructs an injector
  /// (and splits an RNG stream for it) in that case.
  bool enabled() const;
};

/// Parses the shared `--mismatch-*` flags (all default 0 = off):
/// --mismatch-obs-flip, --mismatch-obs-drop, --mismatch-stuck-rate,
/// --mismatch-stuck-steps, --mismatch-action-fail,
/// --mismatch-transition-jitter.
MismatchOptions parse_mismatch_options(const CliArgs& args);

/// The flag keys above, for require_known() lists.
std::vector<std::string> mismatch_flag_names();

/// Per-episode chaos state machine the Environment consults on every step.
/// Owns a private RNG stream; movable (held in std::optional by the
/// Environment).
class MismatchInjector {
 public:
  /// `model` must outlive the injector. Builds the jittered transition rows
  /// (when δ > 0) from `rng` immediately, so two injectors constructed from
  /// equal streams perturb the world identically.
  MismatchInjector(const Pomdp& model, const MismatchOptions& options, Rng rng);

  const MismatchOptions& options() const { return options_; }

  /// Clears the per-episode channel state (stale reading, stuck outage).
  /// The jittered dynamics persist — they are this episode's world.
  void reset();

  /// True when this step's action silently no-ops (never for the exempt
  /// monitoring action).
  bool action_fails(ActionId action);

  bool has_transition_jitter() const { return options_.transition_jitter > 0.0; }

  /// Samples s' from the jittered row p̃(·|s, a) using the *environment's*
  /// stream, mirroring sample_transition(). Only valid with δ > 0.
  StateId sample_transition(StateId s, ActionId a, Rng& env_rng) const;

  /// The jittered row for (a, s) — inspection/tests. Only valid with δ > 0.
  std::span<const linalg::SparseEntry> perturbed_row(ActionId a, StateId s) const;

  /// Runs the fresh reading through the corruption pipeline (stuck-at →
  /// drop → bit flips) and returns what the controller actually receives.
  ObsId corrupt_observation(ObsId fresh);

  /// Per-injector event tallies (process-global `sim.mismatch.*` counters
  /// aggregate the same events across a campaign).
  std::size_t observations_flipped() const { return flipped_; }
  std::size_t observations_dropped() const { return dropped_; }
  std::size_t stuck_readings() const { return stuck_readings_; }
  std::size_t actions_failed() const { return failed_; }

 private:
  void build_jittered_rows(Rng& rng);

  const Pomdp* model_;
  MismatchOptions options_;
  Rng rng_;
  // Jittered world dynamics, [a][s] rows over the original support.
  std::vector<std::vector<std::vector<linalg::SparseEntry>>> jittered_;
  // Observation-channel state.
  bool obs_bit_structured_ = false;
  std::size_t obs_bits_ = 0;
  bool has_last_delivered_ = false;
  ObsId last_delivered_ = kInvalidId;
  std::size_t stuck_remaining_ = 0;
  ObsId stuck_obs_ = kInvalidId;
  // Tallies.
  std::size_t flipped_ = 0;
  std::size_t dropped_ = 0;
  std::size_t stuck_readings_ = 0;
  std::size_t failed_ = 0;
};

}  // namespace recoverd::sim
