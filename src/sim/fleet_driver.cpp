#include "sim/fleet_driver.hpp"

#include <algorithm>
#include <cstring>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace recoverd::sim {

namespace {

constexpr std::size_t kNoEntry = static_cast<std::size_t>(-1);

// FNV-style bit-pattern hash over a belief row — same idiom as the engine's
// batch canonicalization: equal bits always collide into one bucket, and a
// spurious bucket collision is resolved by memcmp, so distinct patterns can
// only ever *split* cache entries, never merge them.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t hash_belief_bits(const double* belief, std::size_t n) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::size_t s = 0; s < n; ++s) {
    std::uint64_t bits;
    std::memcpy(&bits, belief + s, sizeof(bits));
    h = mix64(h ^ bits);
  }
  return h;
}
struct FleetInstruments {
  obs::Counter& ticks;
  obs::Counter& decisions;
  obs::Counter& classes;
  obs::Counter& shared_hits;
  obs::Counter& episodes;
  obs::Counter& truncated;
  obs::Counter& mismatches;

  static FleetInstruments& get() {
    static FleetInstruments instruments{
        obs::metrics().counter("sim.fleet.ticks"),
        obs::metrics().counter("sim.fleet.decisions"),
        obs::metrics().counter("sim.fleet.classes"),
        obs::metrics().counter("sim.fleet.shared_hits"),
        obs::metrics().counter("sim.fleet.episodes"),
        obs::metrics().counter("sim.fleet.episodes_truncated"),
        obs::metrics().counter("sim.fleet.belief_mismatches"),
    };
    return instruments;
  }
};
}  // namespace

FleetDriver::FleetDriver(const Pomdp& controller_model, const Pomdp& env_model,
                         bounds::BoundSet& set, const FaultInjector& injector,
                         std::uint64_t seed, FleetOptions options)
    : model_(controller_model),
      env_model_(env_model),
      set_(set),
      injector_(injector),
      options_(std::move(options)),
      engine_(controller_model),
      batch_(controller_model.num_states()),
      decide_batch_(controller_model.num_states()) {
  RD_EXPECTS(options_.sessions >= 1, "FleetDriver: at least one session required");
  RD_EXPECTS(options_.tree_depth >= 1, "FleetDriver: tree depth must be >= 1");
  RD_EXPECTS(options_.root_jobs >= 1, "FleetDriver: root_jobs must be >= 1");
  RD_EXPECTS(options_.observe_action != kInvalidId,
             "FleetDriver: FleetOptions.observe_action was not set — assign the "
             "model's monitoring action before building a fleet");
  RD_EXPECTS(options_.observe_action < env_model_.num_actions(),
             "FleetDriver: observe action out of range");
  RD_EXPECTS(set_.dimension() == model_.num_states(),
             "FleetDriver: bound set dimension mismatch");
  RD_EXPECTS(set_.size() > 0, "FleetDriver: bound set must be seeded (RA-Bound)");

  // "All faults equally likely" (§4): the same initial belief run_episode
  // builds, shared by every (re)spawn.
  std::vector<StateId> support = options_.fault_support;
  if (support.empty()) {
    for (StateId s = 0; s < env_model_.num_states(); ++s) {
      if (!env_model_.mdp().is_goal(s)) support.push_back(s);
    }
  }
  const Belief initial = Belief::uniform_over(model_.num_states(), support);
  initial_probs_.assign(initial.probabilities().begin(), initial.probabilities().end());

  // One RNG stream per slot, split in slot order: a slot's fault sequence
  // and environment draws are a function of (seed, slot) alone, independent
  // of fleet width interleaving and identical in both fleet modes.
  const std::size_t n = options_.sessions;
  Rng master(seed);
  slot_rng_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) slot_rng_.push_back(master.split());
  envs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    envs_.emplace_back(env_model_, slot_rng_[i].split());
  }

  batch_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) batch_.push_back(initial_probs_, i);
  episode_steps_.assign(n, 0);
  last_actions_.assign(n, kInvalidId);
  pending_action_.assign(n, kInvalidId);
  pending_obs_.assign(n, 0);
  lane_scratch_.resize(model_.num_states());

  if (options_.decision_cache && options_.mode == FleetMode::Batch) {
    const std::size_t entry_bytes = model_.num_states() * sizeof(double) +
                                    model_.num_actions() * sizeof(ActionValue) +
                                    4 * sizeof(std::size_t);  // bucket overhead
    cache_entry_cap_ = (options_.decision_cache_mb << 20) / std::max<std::size_t>(
                                                                entry_bytes, 1);
  }

  for (std::size_t i = 0; i < n; ++i) spawn(i);
  // Condition the initial monitor readings in before the first decide, as
  // run_episode does — through the mode's own update path.
  update_phase();
}

std::size_t FleetDriver::cache_lookup(const double* belief) const {
  const std::size_t num_states = model_.num_states();
  const auto bucket = cache_buckets_.find(hash_belief_bits(belief, num_states));
  if (bucket == cache_buckets_.end()) return kNoEntry;
  for (const std::size_t entry : bucket->second) {
    if (std::memcmp(cache_keys_.data() + entry * num_states, belief,
                    num_states * sizeof(double)) == 0) {
      return entry;
    }
  }
  return kNoEntry;
}

void FleetDriver::cache_insert(const double* belief, const ActionValue* values) {
  const std::size_t num_states = model_.num_states();
  const std::size_t entry = cache_values_.size() / model_.num_actions();
  if (entry >= cache_entry_cap_) return;  // cap hit: keep serving lookups
  cache_keys_.insert(cache_keys_.end(), belief, belief + num_states);
  cache_values_.insert(cache_values_.end(), values, values + model_.num_actions());
  cache_buckets_[hash_belief_bits(belief, num_states)].push_back(entry);
}

void FleetDriver::spawn(std::size_t slot) {
  const StateId fault = injector_.sample(slot_rng_[slot]);
  envs_[slot].reset(fault);
  batch_.assign_lane(slot, initial_probs_);
  episode_steps_[slot] = 0;
  if (options_.initial_observation) {
    const auto step = envs_[slot].step(options_.observe_action);
    pending_action_[slot] = options_.observe_action;
    pending_obs_[slot] = step.obs;
  } else {
    pending_action_[slot] = kInvalidId;  // nothing to condition on this tick
  }
}

void FleetDriver::finish_episode(std::size_t slot, bool terminated) {
  ++stats_.episodes_completed;
  if (envs_[slot].recovered()) ++stats_.episodes_recovered;
  if (!terminated) ++stats_.episodes_truncated;
}

// Replicates BoundedController::decide()'s selection over a per-lane value
// row (index a = action a): max with ascending strict >, then the aT
// near-tie preference. kInvalidId in last_actions_ marks termination.
void FleetDriver::select_decision(std::size_t slot, const ActionValue* values) {
  const std::size_t num_actions = model_.num_actions();
  ActionValue best = values[0];
  for (std::size_t a = 1; a < num_actions; ++a) {
    if (values[a].value > best.value) best = values[a];
  }
  bool terminate = false;
  if (model_.has_terminate_action()) {
    const ActionId at = model_.terminate_action();
    if (values[at].value >= best.value - options_.terminate_tie_epsilon) {
      best = values[at];
    }
    if (best.action == at) terminate = true;
  }
  last_actions_[slot] = terminate ? kInvalidId : best.action;
}

void FleetDriver::decide_phase() {
  ExpansionOptions expansion;
  expansion.branch_floor = options_.branch_floor;
  expansion.root_jobs = options_.root_jobs;
  expansion.memo = options_.memo;
  expansion.memo_max_bytes = options_.memo_max_mb << 20;

  const std::size_t slots = ExpansionEngine::leaf_slots(expansion);
  if (eval_scratch_.size() < slots) eval_scratch_.resize(slots);
  for (std::size_t s = 0; s < slots; ++s) set_.begin_eval(eval_scratch_[s]);
  const bounds::ScratchBoundLeaf leaf{&set_, eval_scratch_.data()};
  const SpanLeaf span_leaf = SpanLeaf::of_batched(leaf, set_.size() + 1);

  const bool has_terminate = model_.has_terminate_action();
  const std::size_t n = envs_.size();
  decide_batch_.clear();
  for (std::size_t slot = 0; slot < n; ++slot) {
    batch_.copy_lane(slot, lane_scratch_);
    // Recovery-notification models: certain-enough beliefs terminate without
    // an expansion (BoundedController's goal-certainty exit).
    if (!has_terminate && model_.mdp().goal_probability(lane_scratch_) >=
                              options_.goal_certainty) {
      last_actions_[slot] = kInvalidId;
      continue;
    }
    ++stats_.decisions;
    if (options_.mode == FleetMode::Batch) {
      if (cache_entry_cap_ > 0) {
        const std::size_t entry = cache_lookup(lane_scratch_.data());
        if (entry != kNoEntry) {
          ++stats_.shared_hits;  // cross-tick reuse: bits of a past solve
          select_decision(slot, cache_values_.data() + entry * model_.num_actions());
          continue;
        }
      }
      decide_batch_.push_back(lane_scratch_, slot);
    } else {
      engine_.action_values(lane_scratch_, options_.tree_depth, span_leaf, expansion,
                            lane_values_);
      ++stats_.classes;
      select_decision(slot, lane_values_.data());
    }
  }

  if (options_.mode == FleetMode::Batch && !decide_batch_.empty()) {
    BatchExpansionStats batch_stats;
    engine_.action_values_batch(decide_batch_, options_.tree_depth, span_leaf, expansion,
                                values_scratch_, &batch_stats);
    stats_.classes += batch_stats.classes;
    stats_.shared_hits += batch_stats.shared_hits;
    const std::size_t num_actions = model_.num_actions();
    for (std::size_t lane = 0; lane < decide_batch_.size(); ++lane) {
      const auto slot = static_cast<std::size_t>(decide_batch_.session_id(lane));
      const ActionValue* values = values_scratch_.data() + lane * num_actions;
      select_decision(slot, values);
      if (cache_entry_cap_ > 0) {
        // First lane of each intra-tick class inserts; classmates find the
        // fresh entry and skip. Lanes share `values` rows bit-for-bit with
        // the class solve, so a future hit replays the exact solve output.
        decide_batch_.copy_lane(lane, lane_scratch_);
        if (cache_lookup(lane_scratch_.data()) == kNoEntry) {
          cache_insert(lane_scratch_.data(), values);
        }
      }
    }
  }

  for (std::size_t s = 0; s < slots; ++s) set_.flush_eval(eval_scratch_[s]);
}

void FleetDriver::act_phase() {
  const std::size_t n = envs_.size();
  for (std::size_t slot = 0; slot < n; ++slot) {
    const ActionId action = last_actions_[slot];
    if (action == kInvalidId) {
      finish_episode(slot, /*terminated=*/true);
      spawn(slot);
      continue;
    }
    RD_ENSURES(action < env_model_.num_actions(),
               "FleetDriver: decided an action the environment lacks");
    const auto step = envs_[slot].step(action);
    if (++episode_steps_[slot] >= options_.max_steps) {
      finish_episode(slot, /*terminated=*/false);
      spawn(slot);  // the cap-hitting step's observation dies with the episode
    } else {
      pending_action_[slot] = action;
      pending_obs_[slot] = step.obs;
    }
  }
}

void FleetDriver::update_phase() {
  if (options_.mode == FleetMode::Batch) {
    update_batch(model_, batch_, pending_action_, pending_obs_, update_ws_);
    stats_.belief_mismatches += update_ws_.failures;
  } else {
    const std::size_t n = envs_.size();
    for (std::size_t slot = 0; slot < n; ++slot) {
      if (pending_action_[slot] == kInvalidId) continue;
      batch_.copy_lane(slot, lane_scratch_);
      const Belief before = Belief::from_normalized(lane_scratch_);
      const auto updated =
          update_belief(model_, before, pending_action_[slot], pending_obs_[slot]);
      if (updated.has_value()) {
        batch_.assign_lane(slot, updated->next.probabilities());
      } else {
        ++stats_.belief_mismatches;  // lane kept as-is, like update_batch
      }
    }
  }
  std::fill(pending_action_.begin(), pending_action_.end(), kInvalidId);
}

void FleetDriver::tick() {
  obs::TraceSpan span("sim.fleet.tick", obs::TraceLevel::Decide);
  span.arg("sessions", static_cast<double>(envs_.size()));

  const FleetStats before = stats_;
  decide_phase();
  act_phase();
  update_phase();
  ++stats_.ticks;

  FleetInstruments& instruments = FleetInstruments::get();
  instruments.ticks.add(1);
  instruments.decisions.add(stats_.decisions - before.decisions);
  instruments.classes.add(stats_.classes - before.classes);
  instruments.shared_hits.add(stats_.shared_hits - before.shared_hits);
  instruments.episodes.add(stats_.episodes_completed - before.episodes_completed);
  instruments.truncated.add(stats_.episodes_truncated - before.episodes_truncated);
  instruments.mismatches.add(stats_.belief_mismatches - before.belief_mismatches);
  span.arg("classes", static_cast<double>(stats_.classes - before.classes));
}

double FleetDriver::healthy_fraction() const {
  if (envs_.empty()) return 0.0;
  std::size_t healthy = 0;
  for (const Environment& env : envs_) {
    if (env.recovered()) ++healthy;
  }
  return static_cast<double>(healthy) / static_cast<double>(envs_.size());
}

}  // namespace recoverd::sim
