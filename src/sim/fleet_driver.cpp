#include "sim/fleet_driver.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/checkpoint.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace recoverd::sim {

namespace {

constexpr std::size_t kNoEntry = static_cast<std::size_t>(-1);

// FNV-style bit-pattern hash over a belief row — same idiom as the engine's
// batch canonicalization: equal bits always collide into one bucket, and a
// spurious bucket collision is resolved by memcmp, so distinct patterns can
// only ever *split* cache entries, never merge them.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t hash_belief_bits(const double* belief, std::size_t n) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::size_t s = 0; s < n; ++s) {
    std::uint64_t bits;
    std::memcpy(&bits, belief + s, sizeof(bits));
    h = mix64(h ^ bits);
  }
  return h;
}

std::uint64_t bits_of(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

// Busy-wait for an injected, unguarded decide stall — the cost a production
// fleet would really pay when one session's solve hangs inside a lock-step
// tick. (With the guard on the solve is never attempted, so this never runs.)
void spin_for_ms(double ms) {
  const Timer timer;
  while (timer.elapsed_ms() < ms) {
  }
}

// A lane poisoned by chaos (or an upstream numeric bug) shows one of:
// non-finite entries, subnormals (no honest normalised Bayes posterior over
// these models produces one), negative mass, or a total that drifted off 1.
bool lane_unhealthy(const double* lane, std::size_t n) {
  double sum = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    const double v = lane[s];
    if (!std::isfinite(v) || v < 0.0) return true;
    if (v != 0.0 && v < std::numeric_limits<double>::min()) return true;
    sum += v;
  }
  return std::fabs(sum - 1.0) > 1e-6;
}

struct FleetInstruments {
  obs::Counter& ticks;
  obs::Counter& decisions;
  obs::Counter& classes;
  obs::Counter& shared_hits;
  obs::Counter& episodes;
  obs::Counter& truncated;
  obs::Counter& mismatches;
  obs::Counter& degraded;
  obs::Counter& shed;
  obs::Counter& demotions;
  obs::Counter& promotions;
  obs::Counter& livelock_respawns;
  obs::Counter& beliefs_repaired;
  obs::Counter& stalls;
  obs::Counter& poisons;
  obs::Counter& obs_corrupted;
  obs::Counter& obs_rejected;

  static FleetInstruments& get() {
    static FleetInstruments instruments{
        obs::metrics().counter("sim.fleet.ticks"),
        obs::metrics().counter("sim.fleet.decisions"),
        obs::metrics().counter("sim.fleet.classes"),
        obs::metrics().counter("sim.fleet.shared_hits"),
        obs::metrics().counter("sim.fleet.episodes"),
        obs::metrics().counter("sim.fleet.episodes_truncated"),
        obs::metrics().counter("sim.fleet.belief_mismatches"),
        obs::metrics().counter("sim.fleet.guard.degraded"),
        obs::metrics().counter("sim.fleet.guard.shed"),
        obs::metrics().counter("sim.fleet.guard.demotions"),
        obs::metrics().counter("sim.fleet.guard.promotions"),
        obs::metrics().counter("sim.fleet.guard.livelock_respawns"),
        obs::metrics().counter("sim.fleet.guard.beliefs_repaired"),
        obs::metrics().counter("sim.fleet.chaos.stalls"),
        obs::metrics().counter("sim.fleet.chaos.poisons"),
        obs::metrics().counter("sim.fleet.chaos.obs_corrupted"),
        obs::metrics().counter("sim.fleet.obs_invalid_rejected"),
    };
    return instruments;
  }
};

}  // namespace

void apply_fleet_resilience_flags(const CliArgs& args, FleetOptions& options) {
  options.memo_carry = args.get_bool("memo-carry", options.memo_carry);
  options.deep_batch = args.get_bool("deep-batch", options.deep_batch);
  options.guard.enabled = args.get_bool("fleet-guard", options.guard.enabled);
  options.guard.reduced_depth = static_cast<int>(
      args.get_count("fleet-reduced-depth",
                     static_cast<std::size_t>(options.guard.reduced_depth)));
  options.guard.promote_after =
      args.get_count("fleet-promote-after", options.guard.promote_after);
  options.guard.livelock_window =
      args.get_size("fleet-livelock-window", options.guard.livelock_window);
  options.tick_budget_decisions =
      args.get_size("tick-budget-decisions", options.tick_budget_decisions);
  options.tick_budget_ms = args.has("tick-budget-ms")
                               ? args.get_positive_double("tick-budget-ms",
                                                          options.tick_budget_ms)
                               : options.tick_budget_ms;
  options.chaos = parse_chaos_options(args);
}

std::vector<std::string> fleet_resilience_flag_names() {
  std::vector<std::string> names = {"memo-carry", "deep-batch", "fleet-guard",
                                    "fleet-reduced-depth",
                                    "fleet-promote-after", "fleet-livelock-window",
                                    "tick-budget-decisions", "tick-budget-ms"};
  for (std::string& name : chaos_flag_names()) names.push_back(std::move(name));
  return names;
}

FleetDriver::FleetDriver(const Pomdp& controller_model, const Pomdp& env_model,
                         bounds::BoundSet& set, const FaultInjector& injector,
                         std::uint64_t seed, FleetOptions options)
    : model_(controller_model),
      env_model_(env_model),
      set_(set),
      injector_(injector),
      options_(std::move(options)),
      seed_(seed),
      engine_(controller_model),
      batch_(controller_model.num_states()),
      decide_batch_(controller_model.num_states()),
      reduced_batch_(controller_model.num_states()) {
  RD_EXPECTS(options_.sessions >= 1, "FleetDriver: at least one session required");
  RD_EXPECTS(options_.tree_depth >= 1, "FleetDriver: tree depth must be >= 1");
  RD_EXPECTS(options_.root_jobs >= 1, "FleetDriver: root_jobs must be >= 1");
  RD_EXPECTS(options_.guard.reduced_depth >= 1,
             "FleetDriver: guard reduced_depth must be >= 1");
  RD_EXPECTS(options_.guard.promote_after >= 1,
             "FleetDriver: guard promote_after must be >= 1");
  RD_EXPECTS(options_.observe_action != kInvalidId,
             "FleetDriver: FleetOptions.observe_action was not set — assign the "
             "model's monitoring action before building a fleet");
  RD_EXPECTS(options_.observe_action < env_model_.num_actions(),
             "FleetDriver: observe action out of range");
  RD_EXPECTS(set_.dimension() == model_.num_states(),
             "FleetDriver: bound set dimension mismatch");
  RD_EXPECTS(set_.size() > 0, "FleetDriver: bound set must be seeded (RA-Bound)");

  // "All faults equally likely" (§4): the same initial belief run_episode
  // builds, shared by every (re)spawn.
  std::vector<StateId> support = options_.fault_support;
  if (support.empty()) {
    for (StateId s = 0; s < env_model_.num_states(); ++s) {
      if (!env_model_.mdp().is_goal(s)) support.push_back(s);
    }
  }
  const Belief initial = Belief::uniform_over(model_.num_states(), support);
  initial_probs_.assign(initial.probabilities().begin(), initial.probabilities().end());

  // One RNG stream per slot, split in slot order: a slot's fault sequence
  // and environment draws are a function of (seed, slot) alone, independent
  // of fleet width interleaving and identical in both fleet modes. Chaos
  // streams come from a salted master (sim/chaos_injector.hpp), so enabling
  // an axis never perturbs these baseline draws.
  const std::size_t n = options_.sessions;
  Rng master(seed);
  slot_rng_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) slot_rng_.push_back(master.split());
  envs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    envs_.emplace_back(env_model_, slot_rng_[i].split());
  }
  if (options_.chaos.enabled()) chaos_.emplace(options_.chaos, seed, n);

  batch_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) batch_.push_back(initial_probs_, i);
  episode_steps_.assign(n, 0);
  last_actions_.assign(n, kInvalidId);
  pending_action_.assign(n, kInvalidId);
  pending_obs_.assign(n, 0);
  lane_scratch_.resize(model_.num_states());

  ladder_stage_.assign(n, LadderStage::Full);
  clean_streak_.assign(n, 0);
  ticks_since_fresh_.assign(n, 0);
  intent_.assign(n, Intent::Solve);
  lane_depth_.assign(n, options_.tree_depth);
  fault_this_tick_.assign(n, 0);
  if (options_.guard.enabled && options_.guard.livelock_window > 0) {
    controller::GuardOptions guard_options;
    guard_options.livelock_window = options_.guard.livelock_window;
    guard_options.livelock_min_improvement = options_.guard.livelock_min_improvement;
    guards_.assign(n, controller::GuardRuntime(guard_options));
  }

  if (options_.decision_cache && options_.mode == FleetMode::Batch) {
    const std::size_t entry_bytes = model_.num_states() * sizeof(double) +
                                    model_.num_actions() * sizeof(ActionValue) +
                                    4 * sizeof(std::size_t);  // bucket overhead
    cache_entry_cap_ = (options_.decision_cache_mb << 20) / std::max<std::size_t>(
                                                                entry_bytes, 1);
  }

  for (std::size_t i = 0; i < n; ++i) spawn(i);
  // Condition the initial monitor readings in before the first decide, as
  // run_episode does — through the mode's own update path.
  update_phase();
}

std::size_t FleetDriver::cache_lookup(const double* belief) const {
  const std::size_t num_states = model_.num_states();
  const auto bucket = cache_buckets_.find(hash_belief_bits(belief, num_states));
  if (bucket == cache_buckets_.end()) return kNoEntry;
  for (const std::size_t entry : bucket->second) {
    if (std::memcmp(cache_keys_.data() + entry * num_states, belief,
                    num_states * sizeof(double)) == 0) {
      return entry;
    }
  }
  return kNoEntry;
}

void FleetDriver::cache_insert(const double* belief, const ActionValue* values) {
  const std::size_t num_states = model_.num_states();
  const std::size_t entry = cache_values_.size() / model_.num_actions();
  if (entry >= cache_entry_cap_) return;  // cap hit: keep serving lookups
  cache_keys_.insert(cache_keys_.end(), belief, belief + num_states);
  cache_values_.insert(cache_values_.end(), values, values + model_.num_actions());
  cache_buckets_[hash_belief_bits(belief, num_states)].push_back(entry);
}

ObsId FleetDriver::deliver_observation(std::size_t slot, ObsId fresh) {
  if (!chaos_) return fresh;
  bool corrupted = false;
  const ObsId delivered = chaos_->corrupt_observation(
      slot, fresh, model_.num_observations(), corrupted);
  if (corrupted) ++stats_.obs_corrupted;
  return delivered;
}

void FleetDriver::spawn(std::size_t slot) {
  const StateId fault = injector_.sample(slot_rng_[slot]);
  envs_[slot].reset(fault);
  batch_.assign_lane(slot, initial_probs_);
  episode_steps_[slot] = 0;
  ticks_since_fresh_[slot] = 0;
  if (!guards_.empty()) guards_[slot].begin_episode();
  // The degradation ladder deliberately survives respawns: it tracks the
  // *infrastructure* health of the slot (stalls, poisonings), not the
  // episode — promotion is earned by clean ticks, not by a fresh fault.
  if (options_.initial_observation) {
    const auto step = envs_[slot].step(options_.observe_action);
    pending_action_[slot] = options_.observe_action;
    pending_obs_[slot] = deliver_observation(slot, step.obs);
  } else {
    pending_action_[slot] = kInvalidId;  // nothing to condition on this tick
  }
}

void FleetDriver::finish_episode(std::size_t slot, bool terminated) {
  ++stats_.episodes_completed;
  if (envs_[slot].recovered()) ++stats_.episodes_recovered;
  if (!terminated) ++stats_.episodes_truncated;
}

// Replicates BoundedController::decide()'s selection over a per-lane value
// row (index a = action a): max with ascending strict >, then the aT
// near-tie preference. kInvalidId in last_actions_ marks termination.
// Returns the chosen action's expected bound (the livelock monitor's food).
double FleetDriver::select_decision(std::size_t slot, const ActionValue* values) {
  const std::size_t num_actions = model_.num_actions();
  ActionValue best = values[0];
  for (std::size_t a = 1; a < num_actions; ++a) {
    if (values[a].value > best.value) best = values[a];
  }
  bool terminate = false;
  if (model_.has_terminate_action()) {
    const ActionId at = model_.terminate_action();
    if (values[at].value >= best.value - options_.terminate_tie_epsilon) {
      best = values[at];
    }
    if (best.action == at) terminate = true;
  }
  last_actions_[slot] = terminate ? kInvalidId : best.action;
  return best.value;
}

// Bookkeeping shared by every lane that received a fresh value row this tick
// (a solve at either depth, or a bit-identical cache hit): reset staleness
// and feed the livelock monitor. An escalated slot is steered to termination
// — act_phase finishes the episode and respawns it.
void FleetDriver::note_fresh_decision(std::size_t slot, double expected_bound) {
  ticks_since_fresh_[slot] = 0;
  if (guards_.empty()) return;
  controller::GuardRuntime& guard = guards_[slot];
  const bool was_escalated = guard.escalation_requested();
  guard.note_expected_bound(expected_bound);
  if (guard.escalation_requested() && !was_escalated) {
    ++stats_.livelock_respawns;
  }
  if (guard.escalation_requested()) last_actions_[slot] = kInvalidId;
}

// Serves a lane that takes no solve this tick (Cached/Heuristic rung, a shed
// lane, or a stall-faulted lane): repeat the previous action when one exists
// and the rung allows it, else take the monitor reading. Both are valid
// environment actions by construction (aT is stored as kInvalidId).
void FleetDriver::apply_fallback(std::size_t slot, bool heuristic_only) {
  ++stats_.degraded_decides;
  const ActionId prev = last_actions_[slot];
  if (heuristic_only || prev == kInvalidId) {
    last_actions_[slot] = options_.observe_action;
    ++stats_.heuristic_fallbacks;
  } else {
    last_actions_[slot] = prev;  // repeat: the cross-tick cached action
    ++stats_.cached_fallbacks;
  }
}

// Admission quota for this tick's fresh solves. tick_budget_decisions is the
// deterministic source (exact count, preserved by the bitwise contracts);
// tick_budget_ms sizes the quota from an EWMA of measured per-lane solve
// cost, with a ±10% hysteresis band so the fleet does not flap between
// shedding and not on timer noise.
std::size_t FleetDriver::tick_quota(std::size_t solve_intents) {
  if (options_.tick_budget_decisions > 0) return options_.tick_budget_decisions;
  if (options_.tick_budget_ms > 0.0 && ewma_lane_ms_ > 0.0) {
    const double projected = static_cast<double>(solve_intents) * ewma_lane_ms_;
    if (!shedding_active_) {
      if (projected > 1.1 * options_.tick_budget_ms) shedding_active_ = true;
    } else if (projected < 0.9 * options_.tick_budget_ms) {
      shedding_active_ = false;
    }
    if (shedding_active_) {
      const double fit = options_.tick_budget_ms / ewma_lane_ms_;
      return std::max<std::size_t>(1, static_cast<std::size_t>(fit));
    }
  }
  return solve_intents;  // no (engaged) budget: admit everything
}

void FleetDriver::decide_phase() {
  ExpansionOptions expansion;
  expansion.branch_floor = options_.branch_floor;
  expansion.root_jobs = options_.root_jobs;
  expansion.memo = options_.memo;
  expansion.memo_max_bytes = options_.memo_max_mb << 20;
  // Cross-tick carry-over: the fleet's bound set is frozen during ticks, so
  // its generation is constant and carried entries stay valid tick to tick.
  expansion.memo_carry = options_.memo_carry;
  expansion.memo_context = set_.generation();

  const std::size_t slots = ExpansionEngine::leaf_slots(expansion);
  if (eval_scratch_.size() < slots) eval_scratch_.resize(slots);
  for (std::size_t s = 0; s < slots; ++s) set_.begin_eval(eval_scratch_[s]);
  const bounds::ScratchBoundLeaf leaf{&set_, eval_scratch_.data()};
  const SpanLeaf span_leaf = SpanLeaf::of_batched(leaf, set_.size() + 1);

  const bool has_terminate = model_.has_terminate_action();
  const bool guard = options_.guard.enabled;
  const std::size_t n = envs_.size();
  const std::size_t num_states = model_.num_states();
  const int full_depth = options_.tree_depth;
  const int reduced_depth = std::min(options_.guard.reduced_depth, full_depth);
  std::fill(fault_this_tick_.begin(), fault_this_tick_.end(), std::uint8_t{0});

  // --- chaos/hygiene pre-pass (fixed draw order: poison, then stalls) ----
  if (chaos_ && chaos_->options().poison_rate > 0.0) {
    for (std::size_t slot = 0; slot < n; ++slot) {
      std::size_t state = 0;
      double value = 0.0;
      if (chaos_->draw_poison(slot, num_states, state, value)) {
        batch_.set(slot, static_cast<StateId>(state), value);
        ++stats_.poisons_injected;
      }
    }
  }
  if (guard) {
    // Belief hygiene: quarantine poisoned/inconsistent lanes back to the
    // episode prior before anything reads them. Guarded fleets only — the
    // unguarded baseline lets the NaNs flow, which is the failure the
    // resilience campaign demonstrates.
    for (std::size_t slot = 0; slot < n; ++slot) {
      batch_.copy_lane(slot, lane_scratch_);
      if (lane_unhealthy(lane_scratch_.data(), num_states)) {
        batch_.assign_lane(slot, initial_probs_);
        ++stats_.beliefs_repaired;
        fault_this_tick_[slot] = 1;
      }
    }
  }

  // --- intent pass (slot-ascending, mode-independent) --------------------
  std::size_t solve_intents = 0;
  for (std::size_t slot = 0; slot < n; ++slot) {
    // Stall draws advance the chaos stream for every slot, so the event
    // sequence is a function of (seed, slot, tick) alone; the event is
    // discarded for lanes that terminate without deciding.
    const bool stalled = chaos_ && chaos_->draw_stall(slot);
    batch_.copy_lane(slot, lane_scratch_);
    // Recovery-notification models: certain-enough beliefs terminate without
    // an expansion (BoundedController's goal-certainty exit).
    if (!has_terminate && model_.mdp().goal_probability(lane_scratch_) >=
                              options_.goal_certainty) {
      last_actions_[slot] = kInvalidId;
      intent_[slot] = Intent::Terminate;
      continue;
    }
    if (stalled) {
      ++stats_.stalls_injected;
      if (guard) {
        // Isolate the stalled session: no solve is attempted (the stall
        // never materialises), the lane falls back and steps down the
        // ladder alone, and the rest of the tick proceeds at full speed.
        fault_this_tick_[slot] = 1;
        intent_[slot] = Intent::Fallback;
        continue;
      }
      // Unguarded: the lock-step tick really hangs — the cost the guard
      // exists to remove.
      spin_for_ms(chaos_->options().stall_ms);
    }
    const LadderStage stage = guard ? ladder_stage_[slot] : LadderStage::Full;
    if (stage == LadderStage::Cached || stage == LadderStage::Heuristic) {
      intent_[slot] = Intent::Fallback;
      continue;
    }
    intent_[slot] = Intent::Solve;
    lane_depth_[slot] = stage == LadderStage::Reduced ? reduced_depth : full_depth;
    ++solve_intents;
  }

  // --- admission control (deterministic order: staleness desc, slot asc) --
  const std::size_t quota = tick_quota(solve_intents);
  std::size_t admitted = solve_intents;
  if (quota < solve_intents) {
    solve_slots_.clear();
    for (std::size_t slot = 0; slot < n; ++slot) {
      if (intent_[slot] == Intent::Solve) solve_slots_.push_back(slot);
    }
    std::sort(solve_slots_.begin(), solve_slots_.end(),
              [this](std::size_t a, std::size_t b) {
                if (ticks_since_fresh_[a] != ticks_since_fresh_[b]) {
                  return ticks_since_fresh_[a] > ticks_since_fresh_[b];
                }
                return a < b;
              });
    for (std::size_t i = quota; i < solve_slots_.size(); ++i) {
      // Shedding is overload response, not a slot fault: the lane falls
      // back this tick but keeps its ladder stage. Most-stale lanes were
      // admitted first, so no lane starves under a sustained budget.
      intent_[solve_slots_[i]] = Intent::Fallback;
      ++stats_.shed;
    }
    admitted = quota;
  }

  // --- execute solves ----------------------------------------------------
  const bool measure = options_.tick_budget_ms > 0.0 &&
                       options_.tick_budget_decisions == 0 && admitted > 0;
  const Timer solve_timer;
  if (options_.mode == FleetMode::Batch) {
    decide_batch_.clear();
    reduced_batch_.clear();
    for (std::size_t slot = 0; slot < n; ++slot) {
      if (intent_[slot] != Intent::Solve) continue;
      ++stats_.decisions;
      batch_.copy_lane(slot, lane_scratch_);
      if (lane_depth_[slot] != full_depth) {
        // Reduced-rung lanes solve in their own sub-batch and never touch
        // the cross-tick cache (its entries are keyed by belief bits alone
        // and must all mean "full depth").
        ++stats_.reduced_decides;
        ++stats_.degraded_decides;
        reduced_batch_.push_back(lane_scratch_, slot);
        continue;
      }
      if (cache_entry_cap_ > 0) {
        const std::size_t entry = cache_lookup(lane_scratch_.data());
        if (entry != kNoEntry) {
          ++stats_.shared_hits;  // cross-tick reuse: bits of a past solve
          const double value = select_decision(
              slot, cache_values_.data() + entry * model_.num_actions());
          note_fresh_decision(slot, value);
          continue;
        }
      }
      decide_batch_.push_back(lane_scratch_, slot);
    }
    const std::size_t num_actions = model_.num_actions();
    if (!decide_batch_.empty()) {
      BatchExpansionStats batch_stats;
      if (options_.deep_batch) {
        engine_.action_values_batch_deep(decide_batch_, full_depth, span_leaf,
                                         expansion, values_scratch_, &batch_stats);
      } else {
        engine_.action_values_batch(decide_batch_, full_depth, span_leaf, expansion,
                                    values_scratch_, &batch_stats);
      }
      stats_.classes += batch_stats.classes;
      stats_.shared_hits += batch_stats.shared_hits;
      for (std::size_t lane = 0; lane < decide_batch_.size(); ++lane) {
        const auto slot = static_cast<std::size_t>(decide_batch_.session_id(lane));
        const ActionValue* values = values_scratch_.data() + lane * num_actions;
        const double value = select_decision(slot, values);
        note_fresh_decision(slot, value);
        if (cache_entry_cap_ > 0) {
          // First lane of each intra-tick class inserts; classmates find the
          // fresh entry and skip. Lanes share `values` rows bit-for-bit with
          // the class solve, so a future hit replays the exact solve output.
          decide_batch_.copy_lane(lane, lane_scratch_);
          if (cache_lookup(lane_scratch_.data()) == kNoEntry) {
            cache_insert(lane_scratch_.data(), values);
          }
        }
      }
    }
    if (!reduced_batch_.empty()) {
      BatchExpansionStats batch_stats;
      if (options_.deep_batch) {
        engine_.action_values_batch_deep(reduced_batch_, reduced_depth, span_leaf,
                                         expansion, reduced_values_scratch_,
                                         &batch_stats);
      } else {
        engine_.action_values_batch(reduced_batch_, reduced_depth, span_leaf,
                                    expansion, reduced_values_scratch_, &batch_stats);
      }
      stats_.classes += batch_stats.classes;
      stats_.shared_hits += batch_stats.shared_hits;
      for (std::size_t lane = 0; lane < reduced_batch_.size(); ++lane) {
        const auto slot = static_cast<std::size_t>(reduced_batch_.session_id(lane));
        const double value = select_decision(
            slot, reduced_values_scratch_.data() + lane * num_actions);
        note_fresh_decision(slot, value);
      }
    }
  } else {
    for (std::size_t slot = 0; slot < n; ++slot) {
      if (intent_[slot] != Intent::Solve) continue;
      ++stats_.decisions;
      if (lane_depth_[slot] != full_depth) {
        ++stats_.reduced_decides;
        ++stats_.degraded_decides;
      }
      batch_.copy_lane(slot, lane_scratch_);
      engine_.action_values(lane_scratch_, lane_depth_[slot], span_leaf, expansion,
                            lane_values_);
      ++stats_.classes;
      const double value = select_decision(slot, lane_values_.data());
      note_fresh_decision(slot, value);
    }
  }
  if (measure) {
    const double lane_ms = solve_timer.elapsed_ms() / static_cast<double>(admitted);
    ewma_lane_ms_ = ewma_lane_ms_ <= 0.0 ? lane_ms
                                         : 0.8 * ewma_lane_ms_ + 0.2 * lane_ms;
  }

  // --- fallbacks + ladder bookkeeping ------------------------------------
  for (std::size_t slot = 0; slot < n; ++slot) {
    if (intent_[slot] == Intent::Fallback) {
      const bool heuristic_only =
          guard && ladder_stage_[slot] == LadderStage::Heuristic;
      apply_fallback(slot, heuristic_only);
      ++ticks_since_fresh_[slot];
    }
    if (!guard || intent_[slot] == Intent::Terminate) continue;
    const auto stage = static_cast<std::uint8_t>(ladder_stage_[slot]);
    if (fault_this_tick_[slot] != 0) {
      clean_streak_[slot] = 0;
      if (ladder_stage_[slot] != LadderStage::Heuristic) {
        ladder_stage_[slot] = static_cast<LadderStage>(stage + 1);
        ++stats_.ladder_demotions;
      }
    } else if (ladder_stage_[slot] != LadderStage::Full) {
      if (++clean_streak_[slot] >= options_.guard.promote_after) {
        ladder_stage_[slot] = static_cast<LadderStage>(stage - 1);
        clean_streak_[slot] = 0;
        ++stats_.ladder_promotions;
      }
    } else {
      clean_streak_[slot] = 0;
    }
  }

  for (std::size_t s = 0; s < slots; ++s) set_.flush_eval(eval_scratch_[s]);
}

void FleetDriver::act_phase() {
  const std::size_t n = envs_.size();
  for (std::size_t slot = 0; slot < n; ++slot) {
    const ActionId action = last_actions_[slot];
    if (action == kInvalidId) {
      finish_episode(slot, /*terminated=*/true);
      spawn(slot);
      continue;
    }
    RD_ENSURES(action < env_model_.num_actions(),
               "FleetDriver: decided an action the environment lacks");
    const auto step = envs_[slot].step(action);
    if (++episode_steps_[slot] >= options_.max_steps) {
      finish_episode(slot, /*terminated=*/false);
      spawn(slot);  // the cap-hitting step's observation dies with the episode
    } else {
      pending_action_[slot] = action;
      pending_obs_[slot] = deliver_observation(slot, step.obs);
    }
  }
}

void FleetDriver::update_phase() {
  const std::size_t n = envs_.size();
  // Out-of-range observation ids (the chaos axis' loud half) must be caught
  // before anything indexes the observation tables — this is input
  // validation, not a guard feature, so it runs regardless of the guard.
  // The lane keeps its belief (nothing sound to condition on) and the tick
  // proceeds; in-range corruptions flow into the Bayes update and surface
  // as zero-likelihood mismatches at worst.
  if (chaos_ && chaos_->options().obs_corrupt_rate > 0.0) {
    const std::size_t num_obs = model_.num_observations();
    for (std::size_t slot = 0; slot < n; ++slot) {
      if (pending_action_[slot] == kInvalidId) continue;
      if (pending_obs_[slot] >= num_obs) {
        ++stats_.obs_invalid_rejected;
        pending_action_[slot] = kInvalidId;
        pending_obs_[slot] = 0;
      }
    }
  }
  if (options_.mode == FleetMode::Batch) {
    update_batch(model_, batch_, pending_action_, pending_obs_, update_ws_);
    stats_.belief_mismatches += update_ws_.failures;
  } else {
    for (std::size_t slot = 0; slot < n; ++slot) {
      if (pending_action_[slot] == kInvalidId) continue;
      batch_.copy_lane(slot, lane_scratch_);
      const Belief before = Belief::from_normalized(lane_scratch_);
      const auto updated =
          update_belief(model_, before, pending_action_[slot], pending_obs_[slot]);
      if (updated.has_value()) {
        batch_.assign_lane(slot, updated->next.probabilities());
      } else {
        ++stats_.belief_mismatches;  // lane kept as-is, like update_batch
      }
    }
  }
  std::fill(pending_action_.begin(), pending_action_.end(), kInvalidId);
}

void FleetDriver::tick() {
  obs::TraceSpan span("sim.fleet.tick", obs::TraceLevel::Decide);
  span.arg("sessions", static_cast<double>(envs_.size()));

  const FleetStats before = stats_;
  decide_phase();
  act_phase();
  update_phase();
  ++stats_.ticks;

  FleetInstruments& instruments = FleetInstruments::get();
  instruments.ticks.add(1);
  instruments.decisions.add(stats_.decisions - before.decisions);
  instruments.classes.add(stats_.classes - before.classes);
  instruments.shared_hits.add(stats_.shared_hits - before.shared_hits);
  instruments.episodes.add(stats_.episodes_completed - before.episodes_completed);
  instruments.truncated.add(stats_.episodes_truncated - before.episodes_truncated);
  instruments.mismatches.add(stats_.belief_mismatches - before.belief_mismatches);
  instruments.degraded.add(stats_.degraded_decides - before.degraded_decides);
  instruments.shed.add(stats_.shed - before.shed);
  instruments.demotions.add(stats_.ladder_demotions - before.ladder_demotions);
  instruments.promotions.add(stats_.ladder_promotions - before.ladder_promotions);
  instruments.livelock_respawns.add(stats_.livelock_respawns -
                                    before.livelock_respawns);
  instruments.beliefs_repaired.add(stats_.beliefs_repaired -
                                   before.beliefs_repaired);
  instruments.stalls.add(stats_.stalls_injected - before.stalls_injected);
  instruments.poisons.add(stats_.poisons_injected - before.poisons_injected);
  instruments.obs_corrupted.add(stats_.obs_corrupted - before.obs_corrupted);
  instruments.obs_rejected.add(stats_.obs_invalid_rejected -
                               before.obs_invalid_rejected);
  span.arg("classes", static_cast<double>(stats_.classes - before.classes));
}

double FleetDriver::healthy_fraction() const {
  if (envs_.empty()) return 0.0;
  std::size_t healthy = 0;
  for (const Environment& env : envs_) {
    if (env.recovered()) ++healthy;
  }
  return static_cast<double>(healthy) / static_cast<double>(envs_.size());
}

// ---- crash safety --------------------------------------------------------

// Hash of every option that shapes the decision/draw sequence. Options that
// only change *how fast* the same bits are produced — mode, root_jobs, memo,
// the decision cache, tick_budget_ms, chaos stall_ms — are deliberately
// excluded, so a checkpoint moves freely across those (the bitwise
// invariance contracts are exactly what makes that sound).
std::uint64_t FleetDriver::options_hash() const {
  std::uint64_t h = 0x464c454554435250ULL;  // "FLEETCRP"
  const auto mix = [&h](std::uint64_t v) { h = mix64(h ^ v); };
  mix(options_.sessions);
  mix(options_.observe_action);
  mix(static_cast<std::uint64_t>(options_.tree_depth));
  mix(bits_of(options_.branch_floor));
  mix(bits_of(options_.goal_certainty));
  mix(bits_of(options_.terminate_tie_epsilon));
  mix(options_.max_steps);
  mix(options_.initial_observation ? 1 : 0);
  mix(options_.fault_support.size());
  for (const StateId s : options_.fault_support) mix(s);
  mix(options_.guard.enabled ? 1 : 0);
  if (options_.guard.enabled) {
    mix(static_cast<std::uint64_t>(options_.guard.reduced_depth));
    mix(options_.guard.promote_after);
    mix(options_.guard.livelock_window);
    mix(bits_of(options_.guard.livelock_min_improvement));
  }
  mix(bits_of(options_.chaos.stall_rate));
  mix(bits_of(options_.chaos.obs_corrupt_rate));
  mix(bits_of(options_.chaos.poison_rate));
  mix(options_.tick_budget_decisions);
  return h;
}

FleetCheckpoint FleetDriver::capture_checkpoint() const {
  const std::size_t n = envs_.size();
  const std::size_t num_states = model_.num_states();
  FleetCheckpoint cp;
  cp.model_hash = hash_pomdp(model_);
  cp.options_hash = options_hash();
  cp.bound_artifact_hash = options_.bound_artifact_hash;
  cp.seed = seed_;
  cp.tick = stats_.ticks;
  cp.sessions = n;
  cp.num_states = num_states;
  cp.num_actions = model_.num_actions();
  cp.num_observations = model_.num_observations();
  cp.stats = {stats_.ticks,
              stats_.decisions,
              stats_.classes,
              stats_.shared_hits,
              stats_.episodes_completed,
              stats_.episodes_recovered,
              stats_.episodes_truncated,
              stats_.belief_mismatches,
              stats_.degraded_decides,
              stats_.reduced_decides,
              stats_.cached_fallbacks,
              stats_.heuristic_fallbacks,
              stats_.shed,
              stats_.stalls_injected,
              stats_.poisons_injected,
              stats_.beliefs_repaired,
              stats_.obs_corrupted,
              stats_.obs_invalid_rejected,
              stats_.livelock_respawns,
              stats_.ladder_demotions,
              stats_.ladder_promotions};
  cp.slot_rng.reserve(n);
  for (const Rng& rng : slot_rng_) cp.slot_rng.push_back(rng.state());
  cp.envs.reserve(n);
  for (const Environment& env : envs_) cp.envs.push_back(env.snapshot());
  if (chaos_) cp.chaos_rng = chaos_->rng_states();
  cp.beliefs.resize(n * num_states);
  for (std::size_t slot = 0; slot < n; ++slot) {
    batch_.copy_lane(slot, std::span<double>(cp.beliefs.data() + slot * num_states,
                                             num_states));
  }
  cp.episode_steps.assign(episode_steps_.begin(), episode_steps_.end());
  cp.last_actions.assign(last_actions_.begin(), last_actions_.end());
  cp.pending_action.assign(pending_action_.begin(), pending_action_.end());
  cp.pending_obs.assign(pending_obs_.begin(), pending_obs_.end());
  // Guard/overload arrays are always captured (the staleness clock also
  // drives guard-less budgeted fleets); GuardRuntime state is default when
  // livelock monitoring is off.
  cp.ladder_stage.reserve(n);
  for (const LadderStage stage : ladder_stage_) {
    cp.ladder_stage.push_back(static_cast<std::uint8_t>(stage));
  }
  cp.clean_streak.assign(clean_streak_.begin(), clean_streak_.end());
  cp.ticks_since_fresh.assign(ticks_since_fresh_.begin(), ticks_since_fresh_.end());
  cp.guard_state.resize(n);
  for (std::size_t slot = 0; slot < guards_.size(); ++slot) {
    cp.guard_state[slot] = guards_[slot].state();
  }
  return cp;
}

void FleetDriver::adopt_checkpoint(const FleetCheckpoint& cp) {
  const std::size_t n = envs_.size();
  const std::size_t num_states = model_.num_states();
  // Validate everything before touching any state: a rejected checkpoint
  // leaves the driver exactly as it was.
  if (cp.model_hash != hash_pomdp(model_)) {
    throw ModelError(
        "fleet checkpoint was saved from a different model (model hash "
        "mismatch) — rebuild the checkpoint against this model or restore "
        "into the fleet it came from");
  }
  if (cp.sessions != n || cp.num_states != num_states ||
      cp.num_actions != model_.num_actions() ||
      cp.num_observations != model_.num_observations()) {
    throw ModelError(
        "fleet checkpoint shape mismatch (saved " + std::to_string(cp.sessions) +
        " sessions over " + std::to_string(cp.num_states) + " states, this fleet "
        "runs " + std::to_string(n) + " over " + std::to_string(num_states) +
        ") — restore with the same --sessions and model");
  }
  if (cp.options_hash != options_hash()) {
    throw ModelError(
        "fleet checkpoint was saved under different fleet options (decision-"
        "relevant options hash mismatch) — depth, budgets, guard and chaos "
        "settings must match the saving run (mode/jobs/simd/memo/cache and "
        "--tick-budget-ms may differ freely)");
  }
  if (cp.bound_artifact_hash != options_.bound_artifact_hash) {
    throw ModelError(
        "fleet checkpoint was saved with a different bound artifact (saved "
        "hash " + std::to_string(cp.bound_artifact_hash) + ", this fleet has " +
        std::to_string(options_.bound_artifact_hash) +
        "; 0 means cold-built) — warm-start from the same --bounds-in "
        "artifact the saving run used, or rebuild the checkpoint");
  }
  if (cp.stats.size() != 21) {
    throw ModelError("fleet checkpoint carries " + std::to_string(cp.stats.size()) +
                     " stats counters, this build expects 21 — the checkpoint "
                     "was written by an incompatible build");
  }
  const bool sized = cp.slot_rng.size() == n && cp.envs.size() == n &&
                     cp.beliefs.size() == n * num_states &&
                     cp.episode_steps.size() == n && cp.last_actions.size() == n &&
                     cp.pending_action.size() == n && cp.pending_obs.size() == n &&
                     cp.ladder_stage.size() == n && cp.clean_streak.size() == n &&
                     cp.ticks_since_fresh.size() == n && cp.guard_state.size() == n;
  if (!sized || (chaos_.has_value() ? cp.chaos_rng.size() != n
                                    : !cp.chaos_rng.empty())) {
    throw ModelError(
        "fleet checkpoint per-slot arrays do not match the fleet shape — the "
        "file is corrupted or from an incompatible configuration");
  }
  for (std::size_t slot = 0; slot < n; ++slot) {
    if (cp.ladder_stage[slot] >
        static_cast<std::uint8_t>(LadderStage::Heuristic)) {
      throw ModelError("fleet checkpoint holds an invalid ladder stage — the "
                       "file is corrupted");
    }
  }

  stats_.ticks = cp.stats[0];
  stats_.decisions = cp.stats[1];
  stats_.classes = cp.stats[2];
  stats_.shared_hits = cp.stats[3];
  stats_.episodes_completed = cp.stats[4];
  stats_.episodes_recovered = cp.stats[5];
  stats_.episodes_truncated = cp.stats[6];
  stats_.belief_mismatches = cp.stats[7];
  stats_.degraded_decides = cp.stats[8];
  stats_.reduced_decides = cp.stats[9];
  stats_.cached_fallbacks = cp.stats[10];
  stats_.heuristic_fallbacks = cp.stats[11];
  stats_.shed = cp.stats[12];
  stats_.stalls_injected = cp.stats[13];
  stats_.poisons_injected = cp.stats[14];
  stats_.beliefs_repaired = cp.stats[15];
  stats_.obs_corrupted = cp.stats[16];
  stats_.obs_invalid_rejected = cp.stats[17];
  stats_.livelock_respawns = cp.stats[18];
  stats_.ladder_demotions = cp.stats[19];
  stats_.ladder_promotions = cp.stats[20];

  for (std::size_t slot = 0; slot < n; ++slot) {
    slot_rng_[slot].set_state(cp.slot_rng[slot]);
    envs_[slot].restore(cp.envs[slot]);
    batch_.assign_lane(slot, std::span<const double>(
                                 cp.beliefs.data() + slot * num_states, num_states));
    episode_steps_[slot] = cp.episode_steps[slot];
    last_actions_[slot] = static_cast<ActionId>(cp.last_actions[slot]);
    pending_action_[slot] = static_cast<ActionId>(cp.pending_action[slot]);
    pending_obs_[slot] = static_cast<ObsId>(cp.pending_obs[slot]);
    ladder_stage_[slot] = static_cast<LadderStage>(cp.ladder_stage[slot]);
    clean_streak_[slot] = cp.clean_streak[slot];
    ticks_since_fresh_[slot] = cp.ticks_since_fresh[slot];
  }
  for (std::size_t slot = 0; slot < guards_.size(); ++slot) {
    guards_[slot].set_state(cp.guard_state[slot]);
  }
  if (chaos_) chaos_->set_rng_states(cp.chaos_rng);

  // Caches restart cold and refill with the exact bits a fresh solve
  // produces: resumed *decisions* are unchanged; only the classes /
  // shared_hits work accounting can differ from the uninterrupted run
  // (which the parity conventions already exclude).
  cache_buckets_.clear();
  cache_keys_.clear();
  cache_values_.clear();
  ewma_lane_ms_ = 0.0;
  shedding_active_ = false;
}

void FleetDriver::save_checkpoint(const std::string& path) const {
  write_fleet_checkpoint(path, capture_checkpoint());
}

void FleetDriver::restore_checkpoint(const std::string& path) {
  adopt_checkpoint(read_fleet_checkpoint(path));
}

}  // namespace recoverd::sim
