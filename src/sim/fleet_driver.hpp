// Throughput-mode fleet simulation (DESIGN.md §13): N synchronized recovery
// sessions advance in lock-step *ticks* against private hidden-state
// environments, with every per-session decision and belief update routed
// through the batch-first engine entry points — one
// ExpansionEngine::action_values_batch() call (shared-subtree reuse across
// sessions whose beliefs coincide bitwise) and one update_batch() call per
// tick. A session that terminates (or hits the step cap) is respawned with a
// fresh injected fault, so the fleet stays at constant width and
// decisions/second is a steady-state measurement.
//
// FleetMode::Loop runs the identical schedule through the single-session
// primitives (action_values() + update_belief() per lane). Both modes
// process slots in ascending order on per-slot RNG streams, and each batch
// primitive is bitwise identical to its looped counterpart, so a Batch run
// and a Loop run from the same seed produce bit-identical beliefs, actions,
// and episode outcomes at every tick — the fleet-level parity contract the
// throughput bench and tests/sim_fleet_test.cpp check.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "bounds/bound_set.hpp"
#include "pomdp/belief_batch.hpp"
#include "pomdp/expansion.hpp"
#include "pomdp/pomdp.hpp"
#include "sim/environment.hpp"
#include "sim/fault_injector.hpp"
#include "util/rng.hpp"

namespace recoverd::sim {

enum class FleetMode {
  Batch,  ///< batched engine calls (the throughput path)
  Loop,   ///< looped single-session calls (the parity reference)
};

struct FleetOptions {
  /// Number of synchronized sessions (fleet width, constant over time).
  std::size_t sessions = 1;
  FleetMode mode = FleetMode::Batch;
  /// The monitoring action (used for the respawn initial reading). Required.
  ActionId observe_action = kInvalidId;
  // Decision knobs, mirroring BoundedControllerOptions (no deadline ladder
  // or online bound improvement: the bound set stays frozen during ticks so
  // every lane of a tick — and both fleet modes — sees the same V_B⁻).
  int tree_depth = 1;
  double branch_floor = 0.0;
  int root_jobs = 1;
  bool memo = true;
  std::size_t memo_max_mb = 64;
  double goal_certainty = 1.0 - 1e-9;
  double terminate_tie_epsilon = 1e-9;
  /// Decide/act steps after which an episode is cut off (truncated) and the
  /// slot respawned.
  std::size_t max_steps = 100000;
  /// Take one monitor reading on (re)spawn to refine the uniform initial
  /// belief before the first decision, as run_episode does.
  bool initial_observation = true;
  /// Support of the initial belief; empty = all non-goal env-model states.
  std::vector<StateId> fault_support;
  /// Batch-mode *cross-tick* root reuse: cache (belief bits → root action
  /// values) across ticks. Exact because the fleet's bound set is frozen and
  /// the engine deterministic — a hit returns the very bits a fresh solve
  /// would produce, so Batch stays bitwise identical to (uncached) Loop.
  /// In steady state most lanes sit at recurring belief states, so this is
  /// where the fleet's throughput headroom comes from.
  bool decision_cache = true;
  /// Entry cap of the decision cache (keys + value rows); insertions stop
  /// at the cap, lookups keep working.
  std::size_t decision_cache_mb = 64;
};

/// Cumulative fleet tallies. `classes`/`shared_hits` are Batch-mode work
/// accounting (Loop mode counts every decision as its own class) — exclude
/// them from Batch-vs-Loop parity comparisons; everything else matches
/// bitwise across modes.
struct FleetStats {
  std::size_t ticks = 0;
  std::size_t decisions = 0;     ///< lanes decided by tree expansion
  std::size_t classes = 0;       ///< canonical root classes actually solved
  std::size_t shared_hits = 0;   ///< lanes served by another lane's solve
                                 ///< (same tick or the cross-tick cache)
  std::size_t episodes_completed = 0;
  std::size_t episodes_recovered = 0;  ///< completed with true state in Sφ
  std::size_t episodes_truncated = 0;  ///< completed by the max_steps cap
  std::size_t belief_mismatches = 0;   ///< zero-likelihood updates (lane kept)
};

/// Lock-step driver of `sessions` recovery sessions. Each tick runs three
/// phases over all slots: decide (terminate on goal certainty / aT tie,
/// otherwise the depth-d Max-Avg action — selection logic identical to
/// BoundedController::decide()), act (environment step, respawn on
/// termination or cap), and belief update (batched Bayes conditioning;
/// respawned slots take their initial monitor reading instead).
class FleetDriver {
 public:
  /// `controller_model` is the (possibly terminate-transformed) model the
  /// decisions and beliefs live in; `env_model` the untransformed ground
  /// truth the environments simulate. `set` is the frozen lower-bound set —
  /// non-const only for evaluate-scratch flushes (use counters); its planes
  /// never change. All references must outlive the driver.
  FleetDriver(const Pomdp& controller_model, const Pomdp& env_model,
              bounds::BoundSet& set, const FaultInjector& injector,
              std::uint64_t seed, FleetOptions options);

  /// Advances every session by one decide/act/update step.
  void tick();

  std::size_t sessions() const { return envs_.size(); }
  const FleetStats& stats() const { return stats_; }

  /// Lane s is session (slot) s — the fleet never compacts, so lane indices
  /// are stable and parity checks can memcmp state rows across drivers.
  const BeliefBatch& beliefs() const { return batch_; }

  /// Last tick's chosen action per slot; kInvalidId marks a slot that
  /// terminated (and respawned) that tick.
  std::span<const ActionId> last_actions() const { return last_actions_; }

  /// Fraction of slots whose true environment state is currently in Sφ.
  double healthy_fraction() const;

 private:
  void spawn(std::size_t slot);
  void finish_episode(std::size_t slot, bool terminated);
  void select_decision(std::size_t slot, const ActionValue* values);
  void decide_phase();
  void act_phase();
  void update_phase();

  const Pomdp& model_;
  const Pomdp& env_model_;
  bounds::BoundSet& set_;
  const FaultInjector& injector_;
  FleetOptions options_;
  ExpansionEngine engine_;
  std::vector<double> initial_probs_;  // uniform over the fault support
  std::vector<Rng> slot_rng_;          // fault-injection stream per slot
  std::vector<Environment> envs_;
  BeliefBatch batch_;  // lane i == slot i, always `sessions` lanes
  std::vector<std::size_t> episode_steps_;
  FleetStats stats_;

  // Cross-tick decision cache (Batch mode): belief-bit keys in a flat arena,
  // num_actions-strided value rows, hash buckets of entry indices confirmed
  // by memcmp — misses only ever split entries, never merge them.
  std::size_t cache_lookup(const double* belief) const;  // entry index or npos
  void cache_insert(const double* belief, const ActionValue* values);
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> cache_buckets_;
  std::vector<double> cache_keys_;        // entry i at [i·|S|, (i+1)·|S|)
  std::vector<ActionValue> cache_values_; // entry i at [i·|A|, (i+1)·|A|)
  std::size_t cache_entry_cap_ = 0;

  // Per-tick scratch (capacities persist across ticks).
  BeliefBatch decide_batch_;  // lanes needing expansion; session_id = slot
  std::vector<ActionValue> values_scratch_;
  std::vector<ActionValue> lane_values_;
  std::vector<double> lane_scratch_;
  std::vector<ActionId> last_actions_;
  std::vector<ActionId> pending_action_;  // conditioning pair for update_phase
  std::vector<ObsId> pending_obs_;
  BatchUpdateWorkspace update_ws_;
  std::vector<bounds::BoundSet::EvalScratch> eval_scratch_;
};

}  // namespace recoverd::sim
