// Throughput-mode fleet simulation (DESIGN.md §13) hardened into a
// fault-tolerant runtime (§14): N synchronized recovery sessions advance in
// lock-step *ticks* against private hidden-state environments, with every
// per-session decision and belief update routed through the batch-first
// engine entry points — one ExpansionEngine::action_values_batch() call
// (shared-subtree reuse across sessions whose beliefs coincide bitwise) and
// one update_batch() call per tick. A session that terminates (or hits the
// step cap) is respawned with a fresh injected fault, so the fleet stays at
// constant width and decisions/second is a steady-state measurement.
//
// FleetMode::Loop runs the identical schedule through the single-session
// primitives (action_values() + update_belief() per lane). Both modes
// process slots in ascending order on per-slot RNG streams, and each batch
// primitive is bitwise identical to its looped counterpart, so a Batch run
// and a Loop run from the same seed produce bit-identical beliefs, actions,
// and episode outcomes at every tick — the fleet-level parity contract the
// throughput bench and tests/sim_fleet_test.cpp check.
//
// The *fault story* (DESIGN.md §14) adds three mode-invariant layers:
//
//  1. Per-session guard ladder (FleetGuardOptions). Each slot carries a
//     degradation stage — Full depth → Reduced depth → Cached action →
//     Heuristic fallback (a monitor reading). A slot that suffers a fault
//     event (injected decide stall, poisoned/inconsistent belief) is
//     stepped *down* one rung alone, the rest of the tick proceeds
//     untouched; `promote_after` consecutive clean ticks climb one rung
//     back (hysteresis). Livelocked slots (expected bound stalled for
//     `livelock_window` fresh decisions, via controller::GuardRuntime) are
//     escalated to termination and respawned.
//  2. Overload control. A per-tick admission quota caps how many slots may
//     take a fresh solve; the excess is shed to its ladder fallback in a
//     deterministic staleness-then-slot order (most-stale first, so no slot
//     starves). The quota comes either from `tick_budget_decisions` (exact,
//     deterministic — the parity contracts hold with it enabled) or from
//     `tick_budget_ms` (wall-clock: an EWMA of per-lane solve cost sizes
//     the quota, with a ±10% hysteresis band before shedding engages or
//     releases — effective, but timing-dependent by nature).
//  3. Crash safety. capture/adopt + save/restore checkpointing of the full
//     per-slot state (sim/checkpoint.hpp): a restored fleet replays the
//     exact beliefs, actions, and episode tallies the uninterrupted run
//     would have produced (caches rebuild cold with identical bits; only
//     the classes/shared_hits work accounting may differ).
//
// Chaos axes (sim/chaos_injector.hpp) draw from per-slot streams seeded
// independently of the fleet's own, so enabling them never perturbs the
// baseline draw sequence, and Batch/Loop consume identical event sequences
// — the Batch ≡ Loop and across-`--jobs`/`--simd` contracts hold with
// guards, chaos, deterministic budgets, and checkpointing all enabled.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bounds/bound_set.hpp"
#include "controller/guard.hpp"
#include "pomdp/belief_batch.hpp"
#include "pomdp/expansion.hpp"
#include "pomdp/pomdp.hpp"
#include "sim/chaos_injector.hpp"
#include "sim/environment.hpp"
#include "sim/fault_injector.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace recoverd::sim {

struct FleetCheckpoint;

enum class FleetMode {
  Batch,  ///< batched engine calls (the throughput path)
  Loop,   ///< looped single-session calls (the parity reference)
};

/// Per-session degradation ladder of the fleet guard, in demotion order.
enum class LadderStage : std::uint8_t {
  Full = 0,       ///< configured tree_depth expansion
  Reduced = 1,    ///< reduced_depth expansion
  Cached = 2,     ///< repeat the slot's previous action (no solve)
  Heuristic = 3,  ///< take the monitoring action (no solve)
};

/// Per-session fault isolation knobs; `enabled = false` keeps the driver on
/// the exact pre-guard code path (byte-identical ticks).
struct FleetGuardOptions {
  bool enabled = false;
  /// Tree depth of the Reduced rung (clamped to the configured depth).
  int reduced_depth = 1;
  /// Consecutive clean ticks before a degraded slot climbs one rung.
  std::size_t promote_after = 4;
  /// Escalate a slot to termination when its expected bound has not improved
  /// over this many fresh decisions; 0 disables (GuardRuntime semantics).
  std::size_t livelock_window = 0;
  double livelock_min_improvement = 1e-9;
};

struct FleetOptions {
  /// Number of synchronized sessions (fleet width, constant over time).
  std::size_t sessions = 1;
  FleetMode mode = FleetMode::Batch;
  /// The monitoring action (used for the respawn initial reading and the
  /// ladder's Heuristic rung). Required.
  ActionId observe_action = kInvalidId;
  // Decision knobs, mirroring BoundedControllerOptions (no deadline ladder
  // or online bound improvement: the bound set stays frozen during ticks so
  // every lane of a tick — and both fleet modes — sees the same V_B⁻).
  int tree_depth = 1;
  double branch_floor = 0.0;
  int root_jobs = 1;
  bool memo = true;
  std::size_t memo_max_mb = 64;
  /// Cross-tick carry-over of the expansion memo (`--memo-carry`): memoized
  /// subtree values survive between ticks, invalidated exactly on a
  /// bound-set generation bump. The fleet's set is frozen during ticks, so
  /// in steady state carried entries serve most repeat beliefs. Hits are
  /// bitwise-exact — a speed-only knob, excluded from options_hash() like
  /// memo/mode/jobs, so checkpoints move freely across it.
  bool memo_carry = false;
  double goal_certainty = 1.0 - 1e-9;
  double terminate_tie_epsilon = 1e-9;
  /// Decide/act steps after which an episode is cut off (truncated) and the
  /// slot respawned.
  std::size_t max_steps = 100000;
  /// Take one monitor reading on (re)spawn to refine the uniform initial
  /// belief before the first decision, as run_episode does.
  bool initial_observation = true;
  /// Support of the initial belief; empty = all non-goal env-model states.
  std::vector<StateId> fault_support;
  /// Batch-mode *cross-tick* root reuse: cache (belief bits → root action
  /// values) across ticks. Exact because the fleet's bound set is frozen and
  /// the engine deterministic — a hit returns the very bits a fresh solve
  /// would produce, so Batch stays bitwise identical to (uncached) Loop.
  /// In steady state most lanes sit at recurring belief states, so this is
  /// where the fleet's throughput headroom comes from. Full-depth rows only;
  /// Reduced-rung solves are never cached.
  bool decision_cache = true;
  /// Entry cap of the decision cache (keys + value rows); insertions stop
  /// at the cap, lookups keep working.
  std::size_t decision_cache_mb = 64;
  /// Batch-mode deep pipeline (`--deep-batch`, DESIGN.md §16): solve each
  /// tick's canonical roots through ExpansionEngine::action_values_batch_deep
  /// — level-wise SoA successor expansion with global canonicalization and
  /// one frontier leaf batch — instead of one per-class tree walk at a
  /// time. Bitwise-exact (the deep values are identical bits), so this is a
  /// speed-only knob excluded from options_hash() like mode/memo/jobs.
  bool deep_batch = true;

  /// Per-session fault isolation (DESIGN.md §14).
  FleetGuardOptions guard;
  /// Infra-chaos axes (decide stalls, corrupted observation ids, belief
  /// poisoning); inert by default.
  ChaosOptions chaos;
  /// Deterministic admission quota: at most this many slots take a fresh
  /// solve per tick, the rest shed to their ladder fallback in staleness
  /// order. 0 = unlimited. Takes precedence over tick_budget_ms.
  std::size_t tick_budget_decisions = 0;
  /// Wall-clock tick budget: an EWMA of measured per-lane solve cost sizes
  /// the admission quota (±10% hysteresis). 0 = unlimited. Timing-dependent
  /// — excluded from the bitwise contracts (use tick_budget_decisions for
  /// deterministic shedding).
  double tick_budget_ms = 0.0;
  /// Content hash of the bound artifact the fleet's set was warm-started
  /// from (bounds/artifact.hpp), 0 when the set was built cold. Recorded in
  /// checkpoints; restore rejects a mismatch, since decisions depend on the
  /// exact plane set.
  std::uint64_t bound_artifact_hash = 0;
};

/// Applies the shared fleet-resilience flags onto `options` (defaults leave
/// it untouched): --memo-carry, --deep-batch, --fleet-guard,
/// --fleet-reduced-depth, --fleet-promote-after, --fleet-livelock-window,
/// --tick-budget-decisions, --tick-budget-ms, plus the --chaos-* axes
/// (parse_chaos_options).
void apply_fleet_resilience_flags(const CliArgs& args, FleetOptions& options);

/// The flag keys above, for require_known() lists.
std::vector<std::string> fleet_resilience_flag_names();

/// Cumulative fleet tallies. `classes`/`shared_hits` are Batch-mode work
/// accounting (Loop mode counts every decision as its own class) — exclude
/// them from Batch-vs-Loop parity comparisons; everything else matches
/// bitwise across modes (given a deterministic or disabled tick budget).
struct FleetStats {
  std::size_t ticks = 0;
  std::size_t decisions = 0;     ///< lanes served a fresh value row
  std::size_t classes = 0;       ///< canonical root classes actually solved
  std::size_t shared_hits = 0;   ///< lanes served by another lane's solve
                                 ///< (same tick or the cross-tick cache)
  std::size_t episodes_completed = 0;
  std::size_t episodes_recovered = 0;  ///< completed with true state in Sφ
  std::size_t episodes_truncated = 0;  ///< completed by the max_steps cap
  std::size_t belief_mismatches = 0;   ///< zero-likelihood updates (lane kept)

  // Resilience accounting (DESIGN.md §14). All deterministic under the
  // bitwise contracts except via tick_budget_ms.
  std::size_t degraded_decides = 0;    ///< lanes served below Full this tick
  std::size_t reduced_decides = 0;     ///< … via the Reduced rung (fresh solve)
  std::size_t cached_fallbacks = 0;    ///< … by repeating the previous action
  std::size_t heuristic_fallbacks = 0; ///< … by the monitoring action
  std::size_t shed = 0;                ///< solve intents shed by admission ctrl
  std::size_t stalls_injected = 0;     ///< chaos decide-stall events
  std::size_t poisons_injected = 0;    ///< chaos belief-poisoning events
  std::size_t beliefs_repaired = 0;    ///< hygiene scan quarantines (reset)
  std::size_t obs_corrupted = 0;       ///< chaos-corrupted readings delivered
  std::size_t obs_invalid_rejected = 0;///< out-of-range ids detected+rejected
  std::size_t livelock_respawns = 0;   ///< guard escalations → respawn
  std::size_t ladder_demotions = 0;
  std::size_t ladder_promotions = 0;
};

/// Lock-step driver of `sessions` recovery sessions. Each tick runs three
/// phases over all slots: decide (terminate on goal certainty / aT tie,
/// otherwise the depth-d Max-Avg action — selection logic identical to
/// BoundedController::decide()), act (environment step, respawn on
/// termination or cap), and belief update (batched Bayes conditioning;
/// respawned slots take their initial monitor reading instead).
class FleetDriver {
 public:
  /// `controller_model` is the (possibly terminate-transformed) model the
  /// decisions and beliefs live in; `env_model` the untransformed ground
  /// truth the environments simulate. `set` is the frozen lower-bound set —
  /// non-const only for evaluate-scratch flushes (use counters); its planes
  /// never change. All references must outlive the driver.
  FleetDriver(const Pomdp& controller_model, const Pomdp& env_model,
              bounds::BoundSet& set, const FaultInjector& injector,
              std::uint64_t seed, FleetOptions options);

  /// Advances every session by one decide/act/update step.
  void tick();

  std::size_t sessions() const { return envs_.size(); }
  const FleetStats& stats() const { return stats_; }

  /// Lane s is session (slot) s — the fleet never compacts, so lane indices
  /// are stable and parity checks can memcmp state rows across drivers.
  const BeliefBatch& beliefs() const { return batch_; }

  /// Last tick's chosen action per slot; kInvalidId marks a slot that
  /// terminated (and respawned) that tick.
  std::span<const ActionId> last_actions() const { return last_actions_; }

  /// Current guard-ladder stage per slot (all Full when the guard is off).
  std::span<const LadderStage> ladder_stages() const { return ladder_stage_; }

  /// Fraction of slots whose true environment state is currently in Sφ.
  double healthy_fraction() const;

  // --- crash safety (sim/checkpoint.hpp) ---------------------------------

  /// Snapshots the complete resumable state (beliefs, RNG streams, hidden
  /// env state, pending conditioning, guard ladder, stats, tick counter).
  FleetCheckpoint capture_checkpoint() const;

  /// Applies a capture. Throws ModelError when the checkpoint was saved
  /// from a different model, fleet shape, or decision-relevant options —
  /// validation happens before any state is touched. Decision/memo caches
  /// restart cold (they refill with identical bits).
  void adopt_checkpoint(const FleetCheckpoint& cp);

  /// capture_checkpoint() → atomic file write (tmp + fsync + rename).
  void save_checkpoint(const std::string& path) const;

  /// read (full corruption validation) → adopt. Throws ModelError with an
  /// actionable one-line message on any corruption or mismatch.
  void restore_checkpoint(const std::string& path);

 private:
  void spawn(std::size_t slot);
  void finish_episode(std::size_t slot, bool terminated);
  double select_decision(std::size_t slot, const ActionValue* values);
  void note_fresh_decision(std::size_t slot, double expected_bound);
  void apply_fallback(std::size_t slot, bool count_shed);
  ObsId deliver_observation(std::size_t slot, ObsId fresh);
  std::size_t tick_quota(std::size_t solve_intents);
  std::uint64_t options_hash() const;
  void decide_phase();
  void act_phase();
  void update_phase();

  const Pomdp& model_;
  const Pomdp& env_model_;
  bounds::BoundSet& set_;
  const FaultInjector& injector_;
  FleetOptions options_;
  std::uint64_t seed_;
  ExpansionEngine engine_;
  std::vector<double> initial_probs_;  // uniform over the fault support
  std::vector<Rng> slot_rng_;          // fault-injection stream per slot
  std::vector<Environment> envs_;
  std::optional<ChaosInjector> chaos_;
  BeliefBatch batch_;  // lane i == slot i, always `sessions` lanes
  std::vector<std::size_t> episode_steps_;
  FleetStats stats_;

  // Guard ladder + overload-control state (per slot; always allocated so
  // checkpoints have one shape). GuardRuntime instances exist only when the
  // guard is enabled with a livelock window.
  std::vector<LadderStage> ladder_stage_;
  std::vector<std::size_t> clean_streak_;
  std::vector<std::size_t> ticks_since_fresh_;
  std::vector<controller::GuardRuntime> guards_;
  double ewma_lane_ms_ = 0.0;   // wall-clock budget estimator (not checkpointed)
  bool shedding_active_ = false;

  // Cross-tick decision cache (Batch mode): belief-bit keys in a flat arena,
  // num_actions-strided value rows, hash buckets of entry indices confirmed
  // by memcmp — misses only ever split entries, never merge them.
  std::size_t cache_lookup(const double* belief) const;  // entry index or npos
  void cache_insert(const double* belief, const ActionValue* values);
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> cache_buckets_;
  std::vector<double> cache_keys_;        // entry i at [i·|S|, (i+1)·|S|)
  std::vector<ActionValue> cache_values_; // entry i at [i·|A|, (i+1)·|A|)
  std::size_t cache_entry_cap_ = 0;

  // Per-tick scratch (capacities persist across ticks).
  enum class Intent : std::uint8_t { Terminate, Solve, Fallback };
  std::vector<Intent> intent_;
  std::vector<int> lane_depth_;           // Solve lanes: depth to expand at
  std::vector<std::uint8_t> fault_this_tick_;
  std::vector<std::size_t> solve_slots_;  // Solve intents, ascending slot
  BeliefBatch decide_batch_;   // full-depth lanes needing expansion
  BeliefBatch reduced_batch_;  // Reduced-rung lanes needing expansion
  std::vector<ActionValue> values_scratch_;
  std::vector<ActionValue> reduced_values_scratch_;
  std::vector<ActionValue> lane_values_;
  std::vector<double> lane_scratch_;
  std::vector<ActionId> last_actions_;
  std::vector<ActionId> pending_action_;  // conditioning pair for update_phase
  std::vector<ObsId> pending_obs_;
  BatchUpdateWorkspace update_ws_;
  std::vector<bounds::BoundSet::EvalScratch> eval_scratch_;
};

}  // namespace recoverd::sim
