#include "sim/fault_injector.hpp"

#include "util/check.hpp"

namespace recoverd::sim {

FaultInjector::FaultInjector(std::vector<StateId> faults)
    : FaultInjector(std::move(faults), std::vector<double>{}) {}

FaultInjector::FaultInjector(std::vector<StateId> faults, std::span<const double> weights)
    : faults_(std::move(faults)) {
  RD_EXPECTS(!faults_.empty(), "FaultInjector: fault set must be non-empty");
  if (weights.empty()) {
    table_ = AliasTable(std::vector<double>(faults_.size(), 1.0));
  } else {
    RD_EXPECTS(weights.size() == faults_.size(),
               "FaultInjector: one weight per fault required");
    table_ = AliasTable(weights);
  }
}

StateId FaultInjector::sample(Rng& rng) const { return faults_[table_.sample(rng)]; }

}  // namespace recoverd::sim
