// Infra-chaos injection for the fleet runtime (DESIGN.md §14) — the
// *infrastructure* counterpart of sim/mismatch_injector.hpp's model-mismatch
// axes. MismatchInjector perturbs the world the sessions recover; this
// injector perturbs the machinery that runs them:
//
//  - decide stalls: with per-decide rate p a session's expansion "hangs" for
//    stall_ms — the event a production deadline guard must isolate. With the
//    fleet guard enabled, the stalled session is degraded down the ladder
//    *alone* (no solve is attempted, so the stall never materialises); with
//    the guard disabled, the fleet really spins for stall_ms, which is what
//    collapses a batch tick and motivates the guard;
//  - corrupted observation ids: with per-reading rate p the id delivered to
//    the belief update is replaced — half the time by a random *valid* id
//    (silent corruption the Bayes update surfaces as a zero-likelihood
//    mismatch at worst), half the time by an out-of-range id that the fleet
//    must detect and reject before it indexes the observation tables;
//  - belief poisoning: with per-tick rate p one entry of a session's belief
//    row is overwritten with NaN or a denormal — the classic symptom of an
//    upstream numeric bug or torn write. The fleet's hygiene scan must
//    detect the lane, quarantine it (reset to the episode prior), and keep
//    the rest of the batch untouched.
//
// (The fourth infra axis — truncated/bit-flipped checkpoint files — lives in
// the checkpoint reader's corruption matrix, sim/checkpoint.hpp.)
//
// Determinism: the injector owns one RNG stream per fleet slot, seeded from
// (seed ⊕ salt, slot) independently of the fleet's own streams — enabling an
// axis never perturbs the baseline fault/transition/observation draws, and
// both fleet modes (Batch/Loop) consume identical chaos sequences, so the
// Batch ≡ Loop and across-`--jobs`/`--simd` bitwise contracts hold under
// chaos. Every axis draws unconditionally at its fixed point in the tick
// (poison → stall → per-reading corruption), so event sequences are a
// function of (seed, slot, tick) alone.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pomdp/types.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace recoverd::sim {

/// Infra-chaos axes; all rates in [0, 1], all defaults "off".
struct ChaosOptions {
  double stall_rate = 0.0;   ///< per-decide probability of an injected stall
  double stall_ms = 5.0;     ///< stall length (really spun only when unguarded)
  double obs_corrupt_rate = 0.0;  ///< per-reading id-corruption probability
  double poison_rate = 0.0;  ///< per-tick per-slot belief-poisoning probability

  /// True when any axis is active — the fleet only allocates per-slot chaos
  /// streams in that case.
  bool enabled() const {
    return stall_rate > 0.0 || obs_corrupt_rate > 0.0 || poison_rate > 0.0;
  }
};

/// Parses the shared `--chaos-*` flags (all default 0 = off):
/// --chaos-stall-rate, --chaos-stall-ms, --chaos-obs-corrupt,
/// --chaos-poison. Rates validated to [0, 1], stall-ms to > 0.
ChaosOptions parse_chaos_options(const CliArgs& args);

/// The flag keys above, for require_known() lists.
std::vector<std::string> chaos_flag_names();

/// Per-fleet chaos state machine: one private RNG stream per slot, drawn in
/// a fixed per-tick order by the fleet driver.
class ChaosInjector {
 public:
  /// `slots` fleet lanes, streams derived from (seed ⊕ salt, slot).
  ChaosInjector(ChaosOptions options, std::uint64_t seed, std::size_t slots);

  const ChaosOptions& options() const { return options_; }
  std::size_t slots() const { return rng_.size(); }

  /// Draws this tick's decide-stall event for a slot (only when the stall
  /// axis is on; otherwise false without consuming a draw).
  bool draw_stall(std::size_t slot);

  /// Runs a delivered observation id through the corruption channel. Sets
  /// `corrupted` when the id was replaced; the result may be >= num_obs
  /// (the out-of-range half of the axis) — callers must validate before
  /// indexing any observation table.
  ObsId corrupt_observation(std::size_t slot, ObsId fresh, std::size_t num_obs,
                            bool& corrupted);

  /// Draws this tick's belief-poisoning event for a slot. On a hit, fills
  /// the target state index and the poison value (NaN or a denormal) and
  /// returns true.
  bool draw_poison(std::size_t slot, std::size_t num_states, std::size_t& state,
                   double& value);

  /// Raw per-slot stream states, for checkpointing (sim/checkpoint.hpp).
  std::vector<std::array<std::uint64_t, 4>> rng_states() const;
  void set_rng_states(std::span<const std::array<std::uint64_t, 4>> states);

 private:
  ChaosOptions options_;
  std::vector<Rng> rng_;
};

}  // namespace recoverd::sim
