// Hidden-state simulator of a recovery POMDP (§5's fault-injection
// environment): tracks the true system state, samples observations from the
// monitor model, and accounts cost and wall-clock time.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <optional>

#include "pomdp/pomdp.hpp"
#include "sim/mismatch_injector.hpp"
#include "util/rng.hpp"

namespace recoverd::sim {

class Environment {
 public:
  /// `model` is the ground-truth dynamics (normally the *untransformed*
  /// recovery model — a real system has no absorbing sT). Must outlive the
  /// environment.
  Environment(const Pomdp& model, Rng rng);

  /// Chaos variant: the world deviates from `model` per the injector's
  /// mismatch axes (jittered transitions, failed actions, corrupted
  /// observations). The injector's RNG stream is private, so a mismatch run
  /// and a clean run with the same `rng` share the baseline draw sequence.
  Environment(const Pomdp& model, Rng rng, MismatchInjector mismatch);

  /// Injects a fault: sets the true state, resets clocks and accumulators.
  void reset(StateId initial_state);

  StateId true_state() const { return state_; }
  const Pomdp& model() const { return model_; }

  struct StepResult {
    StateId next_state;
    ObsId obs;
    double reward;    ///< r(s, a) accrued by this step (≤ 0)
    double duration;  ///< t_a, seconds
  };

  /// Executes an action: samples the state transition and the monitors'
  /// observation, accrues cost and time.
  StepResult step(ActionId action);

  /// Seconds elapsed since the last reset (sum of action durations).
  double elapsed_time() const { return elapsed_; }

  /// −Σ rewards accrued since the last reset (≥ 0).
  double accumulated_cost() const { return cost_; }

  /// True when the current true state is in Sφ.
  bool recovered() const;

  /// Time at which the true state first entered Sφ after the last reset
  /// (the Table 1 "residual time"); +inf while the fault persists.
  double recovery_entered_time() const { return recovery_entered_; }

  std::size_t steps() const { return steps_; }

  /// The chaos injector driving this environment, nullptr for a clean run.
  const MismatchInjector* mismatch() const {
    return mismatch_.has_value() ? &*mismatch_ : nullptr;
  }

  /// Everything a crash-safe checkpoint needs to resume this environment
  /// bitwise-identically: the hidden state, the accumulators, and the raw
  /// RNG stream position. (A mismatch injector's channel state is not
  /// captured — the fleet path runs clean environments; sim/checkpoint.hpp
  /// documents the restriction.)
  struct Snapshot {
    StateId state = 0;
    double elapsed = 0.0;
    double cost = 0.0;
    double recovery_entered = std::numeric_limits<double>::infinity();
    std::uint64_t steps = 0;
    std::array<std::uint64_t, 4> rng{};
  };

  Snapshot snapshot() const;

  /// Restores a snapshot() capture. Precondition: the snapshot's state is in
  /// range for this environment's model.
  void restore(const Snapshot& snapshot);

 private:
  const Pomdp& model_;
  std::optional<MismatchInjector> mismatch_;
  Rng rng_;
  StateId state_ = 0;
  double elapsed_ = 0.0;
  double cost_ = 0.0;
  double recovery_entered_ = std::numeric_limits<double>::infinity();
  std::size_t steps_ = 0;
};

}  // namespace recoverd::sim
