// Fault injection distributions for experiments (§5 injects only the
// hard-to-diagnose zombie faults, uniformly).
#pragma once

#include <span>
#include <vector>

#include "pomdp/types.hpp"
#include "util/rng.hpp"

namespace recoverd::sim {

class FaultInjector {
 public:
  /// Uniform injection over `faults`.
  explicit FaultInjector(std::vector<StateId> faults);

  /// Weighted injection (weights need not be normalised).
  FaultInjector(std::vector<StateId> faults, std::span<const double> weights);

  StateId sample(Rng& rng) const;

  std::span<const StateId> faults() const { return faults_; }

 private:
  std::vector<StateId> faults_;
  AliasTable table_;
};

}  // namespace recoverd::sim
