// Crash-safe checkpoint/restore of fleet state (DESIGN.md §14).
//
// A FleetDriver run at 10⁴–10⁵ sessions holds hours of accumulated belief
// state; a crash (or a SIGTERM from an impatient scheduler) used to lose all
// of it. A FleetCheckpoint captures everything a bitwise-identical resume
// needs — beliefs, per-slot RNG stream positions, environment hidden state,
// pending conditioning pairs, guard ladder state, the tick counter, and the
// cumulative stats — and nothing that is deterministically rebuildable
// (decision/memo caches start cold after a restore and refill with the
// exact bits a fresh solve produces, so resumed decisions are unchanged).
//
// File format (`recoverd fleet checkpoint v2`, little-endian):
//
//   [0]  magic      u64  "RDFLTCK1"
//   [8]  version    u32  kFleetCheckpointVersion
//   [12] payload_len u64 bytes of payload following this field
//   [20] payload    ...  fields in the order of FleetCheckpoint (see .cpp)
//   [..] crc64      u64  CRC-64/XZ over bytes [8, 20 + payload_len)
//
// Writes are atomic: the file is written to `<path>.tmp`, flushed and
// fsync'd, then rename(2)'d over `<path>` — a crash mid-write leaves the
// previous checkpoint intact, never a torn file.
//
// Reads are paranoid: every failure mode of the infra-chaos checkpoint axis
// maps to a distinct, actionable ModelError —
//   - short/truncated file           → "truncated" (with byte counts),
//   - wrong magic                    → "not a recoverd fleet checkpoint",
//   - unknown version                → "unsupported version" (got/want),
//   - any flipped bit                → "checksum mismatch",
//   - model changed since the save   → "different model" (hash mismatch,
//                                      checked by FleetDriver::restore),
//   - options changed since the save → "different fleet options",
//   - bound artifact changed         → "different bound artifact" (the v2
//                                      header records the content hash of the
//                                      bound artifact the fleet was warm-
//                                      started from; restoring into a fleet
//                                      over different bounds is rejected).
// A rejected checkpoint is never partially applied: validation happens
// before any driver state is touched.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "controller/guard.hpp"
#include "pomdp/pomdp.hpp"
#include "sim/environment.hpp"

namespace recoverd::sim {

inline constexpr std::uint32_t kFleetCheckpointVersion = 2;

/// The serialized fleet state. Plain data: FleetDriver::capture_checkpoint()
/// fills it, FleetDriver::adopt_checkpoint() applies it; the write/read pair
/// below moves it through the on-disk format.
struct FleetCheckpoint {
  std::uint64_t model_hash = 0;    ///< hash_pomdp of the controller model
  std::uint64_t options_hash = 0;  ///< hash of the decision-relevant options
  /// Content hash of the bound artifact the fleet was warm-started from
  /// (bounds::BoundArtifact::content_hash), or 0 for a cold-built bound set.
  /// Restoring into a fleet over a different artifact is rejected: the bound
  /// set shapes every decision, so a silent swap would break bitwise resume.
  std::uint64_t bound_artifact_hash = 0;
  std::uint64_t seed = 0;          ///< fleet seed (informational)
  std::uint64_t tick = 0;

  std::uint64_t sessions = 0;
  std::uint64_t num_states = 0;
  std::uint64_t num_actions = 0;
  std::uint64_t num_observations = 0;

  /// FleetStats counters in declaration order (forward-compatible: the
  /// driver writes/reads its own fixed order).
  std::vector<std::uint64_t> stats;

  std::vector<std::array<std::uint64_t, 4>> slot_rng;  ///< per-slot fault streams
  std::vector<Environment::Snapshot> envs;             ///< per-slot hidden state
  std::vector<std::array<std::uint64_t, 4>> chaos_rng; ///< empty = chaos off

  std::vector<double> beliefs;  ///< sessions × num_states, lane-major

  std::vector<std::uint64_t> episode_steps;
  std::vector<std::uint64_t> last_actions;
  std::vector<std::uint64_t> pending_action;
  std::vector<std::uint64_t> pending_obs;

  // Guard ladder state; empty when the fleet guard is disabled.
  std::vector<std::uint8_t> ladder_stage;
  std::vector<std::uint64_t> clean_streak;
  std::vector<std::uint64_t> ticks_since_fresh;
  std::vector<controller::GuardRuntime::State> guard_state;
};

/// Content hash of a POMDP (dimensions, transition/observation/reward bits,
/// goal set, terminate ids): two models hash equal iff a fleet over them
/// makes bitwise-identical decisions. Used to reject restoring a checkpoint
/// into a fleet over a different model.
std::uint64_t hash_pomdp(const Pomdp& model);

/// Atomically writes the checkpoint (tmp file + fsync + rename). Throws
/// ModelError when the file cannot be created/renamed.
void write_fleet_checkpoint(const std::string& path, const FleetCheckpoint& cp);

/// Reads and fully validates a checkpoint file (magic, version, length,
/// CRC-64, internal consistency). Throws ModelError with an actionable
/// one-line message on any corruption; never returns partial data.
FleetCheckpoint read_fleet_checkpoint(const std::string& path);

}  // namespace recoverd::sim
