// Episode trace recording: every step of a recovery episode (true state,
// action, observation, reward, clock) for debugging controllers, producing
// the examples' walkthroughs, and exporting campaigns to CSV for external
// analysis.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "pomdp/types.hpp"

namespace recoverd::sim {

struct TraceStep {
  std::size_t index = 0;
  StateId state_before = kInvalidId;
  ActionId action = kInvalidId;
  StateId state_after = kInvalidId;
  ObsId obs = kInvalidId;
  double reward = 0.0;
  double elapsed_after = 0.0;  ///< simulation clock after the step
  double goal_probability = 0.0;  ///< controller's P[Sφ] before deciding
  double belief_entropy = 0.0;  ///< Shannon entropy (nats) of the belief before deciding
};

/// One recorded episode.
class EpisodeTrace {
 public:
  void set_injected_fault(StateId fault) { injected_fault_ = fault; }
  StateId injected_fault() const { return injected_fault_; }

  void add_step(TraceStep step);
  void set_terminated(bool terminated) { terminated_ = terminated; }

  std::size_t size() const { return steps_.size(); }
  const TraceStep& step(std::size_t i) const;
  bool terminated() const { return terminated_; }

  /// Writes the trace as CSV with a header row. Ids are numeric; pass a
  /// Pomdp through write_csv(os, trace, pomdp) below for named columns.
  void write_csv(std::ostream& os) const;

  /// Structured export: one JSON object per line. Every step becomes a
  /// `{"type":"step",...}` record carrying step index, belief entropy,
  /// action, observation, and reward; a final `{"type":"episode_end",...}`
  /// record carries the injected fault, termination flag, and step count.
  /// Machine-parseable companion to write_csv for trace analysis tooling.
  void write_jsonl(std::ostream& os) const;

 private:
  StateId injected_fault_ = kInvalidId;
  bool terminated_ = false;
  std::vector<TraceStep> steps_;
};

}  // namespace recoverd::sim
