#include "sim/trace.hpp"

#include <ostream>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace recoverd::sim {

void EpisodeTrace::add_step(TraceStep step) {
  step.index = steps_.size();
  steps_.push_back(step);
}

const TraceStep& EpisodeTrace::step(std::size_t i) const {
  RD_EXPECTS(i < steps_.size(), "EpisodeTrace::step: index out of range");
  return steps_[i];
}

void EpisodeTrace::write_csv(std::ostream& os) const {
  CsvWriter csv(os);
  csv.write_row(std::vector<std::string>{"index", "state_before", "action",
                                         "state_after", "obs", "reward",
                                         "elapsed_after", "goal_probability"});
  for (const auto& s : steps_) {
    csv.write_row(std::vector<std::string>{
        std::to_string(s.index), std::to_string(s.state_before),
        std::to_string(s.action), std::to_string(s.state_after), std::to_string(s.obs),
        std::to_string(s.reward), std::to_string(s.elapsed_after),
        std::to_string(s.goal_probability)});
  }
}

}  // namespace recoverd::sim
