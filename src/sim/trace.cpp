#include "sim/trace.hpp"

#include <ostream>

#include "obs/json.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"

namespace recoverd::sim {

void EpisodeTrace::add_step(TraceStep step) {
  step.index = steps_.size();
  steps_.push_back(step);
}

const TraceStep& EpisodeTrace::step(std::size_t i) const {
  RD_EXPECTS(i < steps_.size(), "EpisodeTrace::step: index out of range");
  return steps_[i];
}

void EpisodeTrace::write_csv(std::ostream& os) const {
  CsvWriter csv(os);
  csv.write_row(std::vector<std::string>{"index", "state_before", "action",
                                         "state_after", "obs", "reward",
                                         "elapsed_after", "goal_probability",
                                         "belief_entropy"});
  for (const auto& s : steps_) {
    csv.write_row(std::vector<std::string>{
        std::to_string(s.index), std::to_string(s.state_before),
        std::to_string(s.action), std::to_string(s.state_after), std::to_string(s.obs),
        std::to_string(s.reward), std::to_string(s.elapsed_after),
        std::to_string(s.goal_probability), std::to_string(s.belief_entropy)});
  }
}

void EpisodeTrace::write_jsonl(std::ostream& os) const {
  for (const auto& s : steps_) {
    obs::Json::Object record;
    record["type"] = obs::Json("step");
    record["step"] = obs::Json(s.index);
    record["state_before"] = obs::Json(static_cast<std::uint64_t>(s.state_before));
    record["action"] = obs::Json(static_cast<std::uint64_t>(s.action));
    record["state_after"] = obs::Json(static_cast<std::uint64_t>(s.state_after));
    record["obs"] = obs::Json(static_cast<std::uint64_t>(s.obs));
    record["reward"] = obs::Json(s.reward);
    record["elapsed_after"] = obs::Json(s.elapsed_after);
    record["goal_probability"] = obs::Json(s.goal_probability);
    record["belief_entropy"] = obs::Json(s.belief_entropy);
    obs::Json(std::move(record)).write(os);
    os << '\n';
  }
  obs::Json::Object end;
  end["type"] = obs::Json("episode_end");
  end["injected_fault"] = obs::Json(static_cast<std::uint64_t>(injected_fault_));
  end["terminated"] = obs::Json(terminated_);
  end["steps"] = obs::Json(steps_.size());
  obs::Json(std::move(end)).write(os);
  os << '\n';
}

}  // namespace recoverd::sim
