#include "sim/mismatch_injector.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace recoverd::sim {

namespace {
// Campaign-level chaos instruments (process-global; per-injector tallies are
// the per-episode view of the same events).
struct MismatchInstruments {
  obs::Counter& flips;
  obs::Counter& drops;
  obs::Counter& stuck_outages;
  obs::Counter& stuck_readings;
  obs::Counter& action_failures;

  static MismatchInstruments& get() {
    static MismatchInstruments instruments{
        obs::metrics().counter("sim.mismatch.obs_flipped"),
        obs::metrics().counter("sim.mismatch.obs_dropped"),
        obs::metrics().counter("sim.mismatch.stuck_outages"),
        obs::metrics().counter("sim.mismatch.stuck_readings"),
        obs::metrics().counter("sim.mismatch.action_failures"),
    };
    return instruments;
  }
};

void check_rate(double rate, const char* flag) {
  RD_EXPECTS(std::isfinite(rate) && rate >= 0.0 && rate <= 1.0,
             std::string("MismatchOptions: ") + flag + " must lie in [0, 1]");
}
}  // namespace

bool MismatchOptions::enabled() const {
  return obs_flip_rate > 0.0 || obs_drop_rate > 0.0 || stuck_rate > 0.0 ||
         action_fail_rate > 0.0 || transition_jitter > 0.0;
}

MismatchOptions parse_mismatch_options(const CliArgs& args) {
  MismatchOptions options;
  options.obs_flip_rate = args.get_double("mismatch-obs-flip", 0.0);
  options.obs_drop_rate = args.get_double("mismatch-obs-drop", 0.0);
  options.stuck_rate = args.get_double("mismatch-stuck-rate", 0.0);
  options.stuck_steps =
      static_cast<std::size_t>(args.get_int("mismatch-stuck-steps", 8));
  options.action_fail_rate = args.get_double("mismatch-action-fail", 0.0);
  options.transition_jitter = args.get_double("mismatch-transition-jitter", 0.0);
  check_rate(options.obs_flip_rate, "--mismatch-obs-flip");
  check_rate(options.obs_drop_rate, "--mismatch-obs-drop");
  check_rate(options.stuck_rate, "--mismatch-stuck-rate");
  check_rate(options.action_fail_rate, "--mismatch-action-fail");
  check_rate(options.transition_jitter, "--mismatch-transition-jitter");
  return options;
}

std::vector<std::string> mismatch_flag_names() {
  return {"mismatch-obs-flip",    "mismatch-obs-drop",
          "mismatch-stuck-rate",  "mismatch-stuck-steps",
          "mismatch-action-fail", "mismatch-transition-jitter"};
}

MismatchInjector::MismatchInjector(const Pomdp& model, const MismatchOptions& options,
                                   Rng rng)
    : model_(&model), options_(options), rng_(rng) {
  check_rate(options_.obs_flip_rate, "obs_flip_rate");
  check_rate(options_.obs_drop_rate, "obs_drop_rate");
  check_rate(options_.stuck_rate, "stuck_rate");
  check_rate(options_.action_fail_rate, "action_fail_rate");
  check_rate(options_.transition_jitter, "transition_jitter");

  const std::size_t num_obs = model.num_observations();
  obs_bit_structured_ = num_obs >= 2 && (num_obs & (num_obs - 1)) == 0;
  if (obs_bit_structured_) {
    while ((std::size_t{1} << obs_bits_) < num_obs) ++obs_bits_;
  }
  if (has_transition_jitter()) build_jittered_rows(rng_);
}

void MismatchInjector::reset() {
  has_last_delivered_ = false;
  last_delivered_ = kInvalidId;
  stuck_remaining_ = 0;
  stuck_obs_ = kInvalidId;
}

bool MismatchInjector::action_fails(ActionId action) {
  if (options_.action_fail_rate <= 0.0) return false;
  if (action == options_.exempt_action) return false;
  if (action == model_->terminate_action()) return false;
  if (!rng_.bernoulli(options_.action_fail_rate)) return false;
  ++failed_;
  MismatchInstruments::get().action_failures.add();
  return true;
}

void MismatchInjector::build_jittered_rows(Rng& rng) {
  const Mdp& mdp = model_->mdp();
  const double delta = options_.transition_jitter;
  jittered_.resize(mdp.num_actions());
  std::vector<double> noise;
  for (ActionId a = 0; a < mdp.num_actions(); ++a) {
    jittered_[a].resize(mdp.num_states());
    const linalg::SparseMatrix& p = mdp.transition(a);
    for (StateId s = 0; s < mdp.num_states(); ++s) {
      const auto row = p.row(s);
      auto& out = jittered_[a][s];
      out.assign(row.begin(), row.end());
      // Goal-state dynamics stay exact: jitter models wrong beliefs about
      // *recovery* effects, not spontaneous re-failure of a healed system.
      if (mdp.is_goal(s)) continue;
      // The perturbed support is the model row's plus the self-loop: most
      // recovery models have deterministic repair rows (support size 1),
      // which a support-preserving mixture could never perturb. Admitting
      // the self-loop means a jittered world where actions can fail to make
      // progress this step — without opening paths to arbitrary states.
      bool has_self = false;
      for (const auto& entry : row) has_self |= entry.col == s;
      if (!has_self) out.push_back({s, 0.0});
      if (out.size() < 2) continue;  // pure self-loop row: nothing to mix
      // Dirichlet(1) over the augmented support via normalised
      // exponentials; the perturbed row is the δ-mixture with the model row.
      noise.resize(out.size());
      double total = 0.0;
      for (double& e : noise) {
        e = -std::log(1.0 - rng.uniform01());
        total += e;
      }
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i].value = (1.0 - delta) * out[i].value + delta * noise[i] / total;
      }
    }
  }
}

StateId MismatchInjector::sample_transition(StateId s, ActionId a, Rng& env_rng) const {
  RD_EXPECTS(has_transition_jitter(),
             "MismatchInjector::sample_transition: no jitter configured");
  RD_EXPECTS(a < jittered_.size() && s < jittered_[a].size(),
             "MismatchInjector::sample_transition: index out of range");
  const auto& row = jittered_[a][s];
  // Same walk as pomdp/sampling.cpp: the last entry absorbs FP residue.
  double u = env_rng.uniform01();
  for (std::size_t i = 0; i + 1 < row.size(); ++i) {
    if (u < row[i].value) return row[i].col;
    u -= row[i].value;
  }
  return row.back().col;
}

std::span<const linalg::SparseEntry> MismatchInjector::perturbed_row(ActionId a,
                                                                     StateId s) const {
  RD_EXPECTS(has_transition_jitter(),
             "MismatchInjector::perturbed_row: no jitter configured");
  RD_EXPECTS(a < jittered_.size() && s < jittered_[a].size(),
             "MismatchInjector::perturbed_row: index out of range");
  return jittered_[a][s];
}

ObsId MismatchInjector::corrupt_observation(ObsId fresh) {
  MismatchInstruments& instruments = MismatchInstruments::get();
  ObsId delivered = fresh;

  if (stuck_remaining_ > 0) {
    // Mid-outage: the channel keeps replaying the frozen reading.
    --stuck_remaining_;
    delivered = stuck_obs_;
    ++stuck_readings_;
    instruments.stuck_readings.add();
  } else if (options_.stuck_rate > 0.0 && rng_.bernoulli(options_.stuck_rate)) {
    // Outage starts: freeze the last delivered reading (the fresh one when
    // the episode has produced none yet) for the next `stuck_steps` steps.
    stuck_obs_ = has_last_delivered_ ? last_delivered_ : fresh;
    stuck_remaining_ = options_.stuck_steps;
    delivered = stuck_obs_;
    ++stuck_readings_;
    instruments.stuck_outages.add();
    instruments.stuck_readings.add();
  } else if (options_.obs_drop_rate > 0.0 && has_last_delivered_ &&
             rng_.bernoulli(options_.obs_drop_rate)) {
    // Fresh reading lost; the stale channel replays the previous delivery.
    delivered = last_delivered_;
    ++dropped_;
    instruments.drops.add();
  } else if (options_.obs_flip_rate > 0.0) {
    // ε-corruption of readings that actually made it through the channel.
    if (obs_bit_structured_) {
      for (std::size_t m = 0; m < obs_bits_; ++m) {
        if (rng_.bernoulli(options_.obs_flip_rate)) {
          delivered ^= ObsId{1} << m;
        }
      }
    } else if (rng_.bernoulli(options_.obs_flip_rate)) {
      delivered = static_cast<ObsId>(rng_.uniform_index(model_->num_observations()));
    }
    if (delivered != fresh) {
      ++flipped_;
      instruments.flips.add();
    }
  }

  last_delivered_ = delivered;
  has_last_delivered_ = true;
  return delivered;
}

}  // namespace recoverd::sim
