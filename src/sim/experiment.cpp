#include "sim/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"
#include "util/work_pool.hpp"

namespace recoverd::sim {

namespace {
// Campaign-level instruments, shared by run_episode and run_experiment.
struct EpisodeInstruments {
  obs::Counter& episodes;
  obs::Counter& steps;
  obs::Counter& monitor_calls;
  obs::Counter& recovery_actions;
  obs::Counter& unrecovered;
  obs::Counter& not_terminated;
  obs::Counter& truncated;
  obs::Histogram& episode_cost;
  obs::Histogram& episode_steps;
  obs::Histogram& algorithm_ms;

  static EpisodeInstruments& get() {
    static EpisodeInstruments instruments{
        obs::metrics().counter("sim.episodes"),
        obs::metrics().counter("sim.steps"),
        obs::metrics().counter("sim.monitor_calls"),
        obs::metrics().counter("sim.recovery_actions"),
        obs::metrics().counter("sim.episodes_unrecovered"),
        obs::metrics().counter("sim.episodes_not_terminated"),
        obs::metrics().counter("sim.episodes.truncated"),
        obs::metrics().histogram("sim.episode_cost",
                                 obs::exponential_buckets(1.0, 2.0, 24)),
        obs::metrics().histogram("sim.episode_steps",
                                 obs::exponential_buckets(1.0, 2.0, 20)),
        obs::metrics().histogram("sim.episode_algorithm_ms",
                                 obs::exponential_buckets(0.001, 2.0, 26)),
    };
    return instruments;
  }

  void record(const EpisodeMetrics& m) {
    episodes.add();
    steps.add(m.recovery_actions + m.monitor_calls);
    monitor_calls.add(m.monitor_calls);
    recovery_actions.add(m.recovery_actions);
    if (!m.recovered) unrecovered.add();
    if (!m.terminated) {
      not_terminated.add();
      truncated.add();  // the explicit alias: the episode hit the step cap
    }
    episode_cost.observe(m.cost);
    episode_steps.observe(static_cast<double>(m.recovery_actions + m.monitor_calls));
    algorithm_ms.observe(m.algorithm_time_ms);
  }
};

// Initial belief over the controller's model: uniform over the fault
// support (§4 "all faults are equally likely").
Belief initial_belief(const Pomdp& controller_model, const Pomdp& env_model,
                      const EpisodeConfig& config) {
  std::vector<StateId> support = config.fault_support;
  if (support.empty()) {
    for (StateId s = 0; s < env_model.num_states(); ++s) {
      if (!env_model.mdp().is_goal(s)) support.push_back(s);
    }
  }
  return Belief::uniform_over(controller_model.num_states(), support);
}

// Builds one episode's environment, preserving the exact RNG split order of
// the pre-mismatch harness: the environment stream splits first, the
// injector stream only when chaos is enabled, and the caller samples the
// fault afterwards. A clean config therefore consumes the same draws as
// before the chaos layer existed.
Environment make_environment(const Pomdp& env_model, Rng& episode_rng,
                             const EpisodeConfig& config) {
  Rng env_rng = episode_rng.split();
  if (!config.mismatch.enabled()) return Environment(env_model, env_rng);
  MismatchOptions options = config.mismatch;
  if (options.exempt_action == kInvalidId) options.exempt_action = config.observe_action;
  return Environment(env_model, env_rng,
                     MismatchInjector(env_model, options, episode_rng.split()));
}

// Truncated episodes end by cap, not by controller decision — their rows
// silently understate cost unless the campaign is told. Loud and once per
// experiment, on stderr so table stdout stays byte-identical.
void warn_truncated(const ExperimentResult& result, const EpisodeConfig& config) {
  if (result.truncated() == 0) return;
  log_warn("experiment: ", result.truncated(), " of ", result.episodes,
           " episode(s) hit the max_steps cap (", config.max_steps,
           ") — cost/time for those rows are cap-censored lower bounds");
}
}  // namespace

EpisodeMetrics run_episode(Environment& env, controller::RecoveryController& controller,
                           StateId fault, const EpisodeConfig& config,
                           EpisodeTrace* trace) {
  const Pomdp& env_model = env.model();
  RD_EXPECTS(config.observe_action != kInvalidId,
             "run_episode: EpisodeConfig.observe_action was not set — assign the "
             "model's monitoring action before running an episode");
  RD_EXPECTS(config.observe_action < env_model.num_actions(),
             "run_episode: observe action out of range");
  RD_EXPECTS(fault < env_model.num_states(), "run_episode: fault out of range");

  EpisodeMetrics metrics;
  metrics.injected_fault = fault;

  obs::TraceSpan episode_span("sim.episode", obs::TraceLevel::Decide);
  episode_span.arg("fault", static_cast<double>(fault));

  env.reset(fault);
  controller.begin_episode(initial_belief(controller.model(), env_model, config));
  if (trace != nullptr) *trace = EpisodeTrace{}, trace->set_injected_fault(fault);

  // Algorithm time (Table 1) measures *only* the controller's decide();
  // belief tracking, environment stepping, and trace recording are excluded.
  double algorithm_ms = 0.0;

  if (config.initial_observation) {
    const StateId before = env.true_state();
    const auto step = env.step(config.observe_action);
    controller.record(config.observe_action, step.obs);
    ++metrics.monitor_calls;
    if (trace != nullptr) {
      trace->add_step({0, before, config.observe_action, step.next_state, step.obs,
                       step.reward, env.elapsed_time(), 0.0,
                       controller.belief().entropy()});
    }
  }

  for (std::size_t i = 0; i < config.max_steps; ++i) {
    obs::TraceSpan step_span("sim.step", obs::TraceLevel::Full);
    step_span.arg("step", static_cast<double>(i));
    const Timer decide_timer;
    const controller::Decision decision = controller.decide();
    algorithm_ms += decide_timer.elapsed_ms();

    if (decision.terminate) {
      metrics.terminated = true;
      break;
    }
    RD_ENSURES(decision.action < env_model.num_actions(),
               "run_episode: controller chose an action the environment lacks");
    const double goal_prob = controller.model().mdp().goal_probability(
        controller.belief().probabilities());
    const double entropy = controller.belief().entropy();
    const StateId before = env.true_state();
    const auto step = env.step(decision.action);
    controller.record(decision.action, step.obs);
    if (trace != nullptr) {
      trace->add_step({0, before, decision.action, step.next_state, step.obs,
                       step.reward, env.elapsed_time(), goal_prob, entropy});
    }
    if (decision.action == config.observe_action) {
      ++metrics.monitor_calls;
    } else {
      ++metrics.recovery_actions;
    }
  }

  if (trace != nullptr) trace->set_terminated(metrics.terminated);
  metrics.cost = env.accumulated_cost();
  metrics.recovery_time = env.elapsed_time();
  metrics.recovered = env.recovered();
  metrics.residual_time =
      std::isinf(env.recovery_entered_time()) ? env.elapsed_time()
                                              : env.recovery_entered_time();
  metrics.algorithm_time_ms = algorithm_ms;
  EpisodeInstruments::get().record(metrics);
  return metrics;
}

void ExperimentResult::add(const EpisodeMetrics& m) {
  cost.add(m.cost);
  recovery_time.add(m.recovery_time);
  residual_time.add(m.residual_time);
  algorithm_time_ms.add(m.algorithm_time_ms);
  recovery_actions.add(static_cast<double>(m.recovery_actions));
  monitor_calls.add(static_cast<double>(m.monitor_calls));
  ++episodes;
  if (!m.recovered) ++unrecovered;
  if (!m.terminated) ++not_terminated;
}

void ExperimentResult::merge(const ExperimentResult& other) {
  cost.merge(other.cost);
  recovery_time.merge(other.recovery_time);
  residual_time.merge(other.residual_time);
  algorithm_time_ms.merge(other.algorithm_time_ms);
  recovery_actions.merge(other.recovery_actions);
  monitor_calls.merge(other.monitor_calls);
  episodes += other.episodes;
  unrecovered += other.unrecovered;
  not_terminated += other.not_terminated;
}

ExperimentResult run_experiment(const Pomdp& env_model,
                                controller::RecoveryController& controller,
                                const FaultInjector& injector, std::size_t episodes,
                                std::uint64_t seed, const EpisodeConfig& config) {
  ExperimentResult result;
  Rng master(seed);
  for (std::size_t i = 0; i < episodes; ++i) {
    Rng episode_rng = master.split();
    Environment env = make_environment(env_model, episode_rng, config);
    const StateId fault = injector.sample(episode_rng);
    result.add(run_episode(env, controller, fault, config));
  }
  warn_truncated(result, config);
  return result;
}

ExperimentResult run_experiment(const Pomdp& env_model,
                                const ControllerFactory& make_controller,
                                const FaultInjector& injector, std::size_t episodes,
                                std::uint64_t seed, const EpisodeConfig& config,
                                std::size_t jobs) {
  RD_EXPECTS(static_cast<bool>(make_controller),
             "run_experiment: controller factory required");
  RD_EXPECTS(jobs >= 1, "run_experiment: jobs must be >= 1");

  // Pre-derive every episode's RNG stream in episode order — the exact
  // streams the serial loop hands out — so an episode's randomness is a
  // function of its index alone, never of worker scheduling.
  Rng master(seed);
  std::vector<Rng> streams;
  streams.reserve(episodes);
  for (std::size_t i = 0; i < episodes; ++i) streams.push_back(master.split());

  std::vector<EpisodeMetrics> metrics(episodes);
  const auto run_one = [&](std::size_t i) {
    Rng episode_rng = streams[i];
    Environment env = make_environment(env_model, episode_rng, config);
    const StateId fault = injector.sample(episode_rng);
    const std::unique_ptr<controller::RecoveryController> episode_controller =
        make_controller();
    metrics[i] = run_episode(env, *episode_controller, fault, config);
  };

  const std::size_t workers = std::min(jobs, episodes);
  if (workers <= 1) {
    for (std::size_t i = 0; i < episodes; ++i) run_one(i);
  } else {
    static obs::Counter& campaigns =
        obs::metrics().counter("sim.parallel.campaigns");
    campaigns.add();
    // Episodes still claim work through the shared atomic cursor into
    // index-addressed `metrics` slots (RNG streams are pre-derived per
    // episode), so which pool task runs which episode never matters.
    std::atomic<std::size_t> next{0};
    util::WorkPool::instance().run(workers, [&](std::size_t) {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= episodes) return;
        run_one(i);
      }
    });
  }

  // Reduce in episode order via singleton merges for *every* jobs value
  // (including 1): merging is not bit-interchangeable with sequential
  // add(), so using one reduction everywhere is what makes --jobs N and
  // --jobs 1 aggregates exactly equal.
  ExperimentResult total;
  for (const EpisodeMetrics& m : metrics) {
    ExperimentResult one;
    one.add(m);
    total.merge(one);
  }
  warn_truncated(total, config);
  return total;
}

}  // namespace recoverd::sim
