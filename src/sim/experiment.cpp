#include "sim/experiment.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace recoverd::sim {

namespace {
// Campaign-level instruments, shared by run_episode and run_experiment.
struct EpisodeInstruments {
  obs::Counter& episodes;
  obs::Counter& steps;
  obs::Counter& monitor_calls;
  obs::Counter& recovery_actions;
  obs::Counter& unrecovered;
  obs::Counter& not_terminated;
  obs::Histogram& episode_cost;
  obs::Histogram& episode_steps;
  obs::Histogram& algorithm_ms;

  static EpisodeInstruments& get() {
    static EpisodeInstruments instruments{
        obs::metrics().counter("sim.episodes"),
        obs::metrics().counter("sim.steps"),
        obs::metrics().counter("sim.monitor_calls"),
        obs::metrics().counter("sim.recovery_actions"),
        obs::metrics().counter("sim.episodes_unrecovered"),
        obs::metrics().counter("sim.episodes_not_terminated"),
        obs::metrics().histogram("sim.episode_cost",
                                 obs::exponential_buckets(1.0, 2.0, 24)),
        obs::metrics().histogram("sim.episode_steps",
                                 obs::exponential_buckets(1.0, 2.0, 20)),
        obs::metrics().histogram("sim.episode_algorithm_ms",
                                 obs::exponential_buckets(0.001, 2.0, 26)),
    };
    return instruments;
  }

  void record(const EpisodeMetrics& m) {
    episodes.add();
    steps.add(m.recovery_actions + m.monitor_calls);
    monitor_calls.add(m.monitor_calls);
    recovery_actions.add(m.recovery_actions);
    if (!m.recovered) unrecovered.add();
    if (!m.terminated) not_terminated.add();
    episode_cost.observe(m.cost);
    episode_steps.observe(static_cast<double>(m.recovery_actions + m.monitor_calls));
    algorithm_ms.observe(m.algorithm_time_ms);
  }
};

// Initial belief over the controller's model: uniform over the fault
// support (§4 "all faults are equally likely").
Belief initial_belief(const Pomdp& controller_model, const Pomdp& env_model,
                      const EpisodeConfig& config) {
  std::vector<StateId> support = config.fault_support;
  if (support.empty()) {
    for (StateId s = 0; s < env_model.num_states(); ++s) {
      if (!env_model.mdp().is_goal(s)) support.push_back(s);
    }
  }
  return Belief::uniform_over(controller_model.num_states(), support);
}
}  // namespace

EpisodeMetrics run_episode(Environment& env, controller::RecoveryController& controller,
                           StateId fault, const EpisodeConfig& config,
                           EpisodeTrace* trace) {
  const Pomdp& env_model = env.model();
  RD_EXPECTS(config.observe_action != kInvalidId,
             "run_episode: EpisodeConfig.observe_action was not set — assign the "
             "model's monitoring action before running an episode");
  RD_EXPECTS(config.observe_action < env_model.num_actions(),
             "run_episode: observe action out of range");
  RD_EXPECTS(fault < env_model.num_states(), "run_episode: fault out of range");

  EpisodeMetrics metrics;
  metrics.injected_fault = fault;

  env.reset(fault);
  controller.begin_episode(initial_belief(controller.model(), env_model, config));
  if (trace != nullptr) *trace = EpisodeTrace{}, trace->set_injected_fault(fault);

  // Algorithm time (Table 1) measures *only* the controller's decide();
  // belief tracking, environment stepping, and trace recording are excluded.
  double algorithm_ms = 0.0;

  if (config.initial_observation) {
    const StateId before = env.true_state();
    const auto step = env.step(config.observe_action);
    controller.record(config.observe_action, step.obs);
    ++metrics.monitor_calls;
    if (trace != nullptr) {
      trace->add_step({0, before, config.observe_action, step.next_state, step.obs,
                       step.reward, env.elapsed_time(), 0.0,
                       controller.belief().entropy()});
    }
  }

  for (std::size_t i = 0; i < config.max_steps; ++i) {
    const Timer decide_timer;
    const controller::Decision decision = controller.decide();
    algorithm_ms += decide_timer.elapsed_ms();

    if (decision.terminate) {
      metrics.terminated = true;
      break;
    }
    RD_ENSURES(decision.action < env_model.num_actions(),
               "run_episode: controller chose an action the environment lacks");
    const double goal_prob = controller.model().mdp().goal_probability(
        controller.belief().probabilities());
    const double entropy = controller.belief().entropy();
    const StateId before = env.true_state();
    const auto step = env.step(decision.action);
    controller.record(decision.action, step.obs);
    if (trace != nullptr) {
      trace->add_step({0, before, decision.action, step.next_state, step.obs,
                       step.reward, env.elapsed_time(), goal_prob, entropy});
    }
    if (decision.action == config.observe_action) {
      ++metrics.monitor_calls;
    } else {
      ++metrics.recovery_actions;
    }
  }

  if (trace != nullptr) trace->set_terminated(metrics.terminated);
  metrics.cost = env.accumulated_cost();
  metrics.recovery_time = env.elapsed_time();
  metrics.recovered = env.recovered();
  metrics.residual_time =
      std::isinf(env.recovery_entered_time()) ? env.elapsed_time()
                                              : env.recovery_entered_time();
  metrics.algorithm_time_ms = algorithm_ms;
  EpisodeInstruments::get().record(metrics);
  return metrics;
}

ExperimentResult run_experiment(const Pomdp& env_model,
                                controller::RecoveryController& controller,
                                const FaultInjector& injector, std::size_t episodes,
                                std::uint64_t seed, const EpisodeConfig& config) {
  ExperimentResult result;
  Rng master(seed);
  for (std::size_t i = 0; i < episodes; ++i) {
    Rng episode_rng = master.split();
    Environment env(env_model, episode_rng.split());
    const StateId fault = injector.sample(episode_rng);
    const EpisodeMetrics m = run_episode(env, controller, fault, config);

    result.cost.add(m.cost);
    result.recovery_time.add(m.recovery_time);
    result.residual_time.add(m.residual_time);
    result.algorithm_time_ms.add(m.algorithm_time_ms);
    result.recovery_actions.add(static_cast<double>(m.recovery_actions));
    result.monitor_calls.add(static_cast<double>(m.monitor_calls));
    ++result.episodes;
    if (!m.recovered) ++result.unrecovered;
    if (!m.terminated) ++result.not_terminated;
  }
  return result;
}

}  // namespace recoverd::sim
