#include "sim/chaos_injector.hpp"

#include <limits>

#include "util/check.hpp"

namespace recoverd::sim {

namespace {
// Salt separating the chaos master stream from the fleet's (seed-derived)
// fault/environment streams: enabling chaos must never shift baseline draws.
constexpr std::uint64_t kChaosSeedSalt = 0x43484f53464c54ULL;  // "CHOSFLT"
}  // namespace

ChaosOptions parse_chaos_options(const CliArgs& args) {
  ChaosOptions options;
  options.stall_rate = args.get_double("chaos-stall-rate", 0.0);
  options.stall_ms = args.has("chaos-stall-ms")
                         ? args.get_positive_double("chaos-stall-ms", options.stall_ms)
                         : options.stall_ms;
  options.obs_corrupt_rate = args.get_double("chaos-obs-corrupt", 0.0);
  options.poison_rate = args.get_double("chaos-poison", 0.0);
  for (const auto& [name, rate] :
       {std::pair<const char*, double>{"chaos-stall-rate", options.stall_rate},
        {"chaos-obs-corrupt", options.obs_corrupt_rate},
        {"chaos-poison", options.poison_rate}}) {
    RD_EXPECTS(rate >= 0.0 && rate <= 1.0,
               std::string("CliArgs: --") + name + " must be in [0, 1]");
  }
  return options;
}

std::vector<std::string> chaos_flag_names() {
  return {"chaos-stall-rate", "chaos-stall-ms", "chaos-obs-corrupt", "chaos-poison"};
}

ChaosInjector::ChaosInjector(ChaosOptions options, std::uint64_t seed,
                             std::size_t slots)
    : options_(options) {
  Rng master(seed ^ kChaosSeedSalt);
  rng_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) rng_.push_back(master.split());
}

bool ChaosInjector::draw_stall(std::size_t slot) {
  if (options_.stall_rate <= 0.0) return false;
  return rng_[slot].bernoulli(options_.stall_rate);
}

ObsId ChaosInjector::corrupt_observation(std::size_t slot, ObsId fresh,
                                         std::size_t num_obs, bool& corrupted) {
  corrupted = false;
  if (options_.obs_corrupt_rate <= 0.0) return fresh;
  Rng& rng = rng_[slot];
  if (!rng.bernoulli(options_.obs_corrupt_rate)) return fresh;
  corrupted = true;
  // Half the corruptions stay in-alphabet (silent wrong readings the Bayes
  // update must absorb), half go out of range (ids the fleet must reject
  // before indexing anything).
  if (rng.bernoulli(0.5)) {
    return static_cast<ObsId>(rng.uniform_index(num_obs));
  }
  return static_cast<ObsId>(num_obs + rng.uniform_index(num_obs) + 1);
}

bool ChaosInjector::draw_poison(std::size_t slot, std::size_t num_states,
                                std::size_t& state, double& value) {
  if (options_.poison_rate <= 0.0) return false;
  Rng& rng = rng_[slot];
  if (!rng.bernoulli(options_.poison_rate)) return false;
  state = rng.uniform_index(num_states);
  // NaN half the time, a denormal (smaller than any honest probability the
  // normalised updates can produce) the other half.
  value = rng.bernoulli(0.5) ? std::numeric_limits<double>::quiet_NaN()
                             : std::numeric_limits<double>::denorm_min();
  return true;
}

std::vector<std::array<std::uint64_t, 4>> ChaosInjector::rng_states() const {
  std::vector<std::array<std::uint64_t, 4>> states;
  states.reserve(rng_.size());
  for (const Rng& rng : rng_) states.push_back(rng.state());
  return states;
}

void ChaosInjector::set_rng_states(
    std::span<const std::array<std::uint64_t, 4>> states) {
  RD_EXPECTS(states.size() == rng_.size(),
             "ChaosInjector::set_rng_states: slot count mismatch");
  for (std::size_t i = 0; i < rng_.size(); ++i) rng_[i].set_state(states[i]);
}

}  // namespace recoverd::sim
