#include "sim/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <string>

#include <unistd.h>

#include "util/check.hpp"
#include "util/crc64.hpp"

namespace recoverd::sim {

namespace {

using util::crc64;

constexpr std::uint64_t kMagic = 0x314b43544c464452ULL;  // "RDFLTCK1" LE
constexpr std::size_t kHeaderBytes = 8 + 4 + 8;           // magic+version+len

// ---- byte-buffer writer/reader -----------------------------------------

struct Writer {
  std::vector<unsigned char> bytes;

  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    bytes.insert(bytes.end(), p, p + n);
  }
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void f64(double v) { raw(&v, 8); }
  void rng(const std::array<std::uint64_t, 4>& s) {
    for (const std::uint64_t word : s) u64(word);
  }
};

[[noreturn]] void fail(const std::string& path, const std::string& why) {
  throw ModelError("fleet checkpoint '" + path + "': " + why);
}

struct Reader {
  const std::string& path;
  const unsigned char* data;
  std::size_t size;
  std::size_t pos = 0;

  void need(std::size_t n, const char* what) {
    if (size - pos < n) {
      fail(path, std::string("truncated while reading ") + what + " (need " +
                     std::to_string(n) + " bytes at offset " + std::to_string(pos) +
                     ", file has " + std::to_string(size) + ") — the file was cut "
                     "short; restore from an intact checkpoint");
    }
  }
  std::uint8_t u8(const char* what) {
    need(1, what);
    return data[pos++];
  }
  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v;
    std::memcpy(&v, data + pos, 4);
    pos += 4;
    return v;
  }
  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v;
    std::memcpy(&v, data + pos, 8);
    pos += 8;
    return v;
  }
  double f64(const char* what) {
    need(8, what);
    double v;
    std::memcpy(&v, data + pos, 8);
    pos += 8;
    return v;
  }
  std::array<std::uint64_t, 4> rng(const char* what) {
    return {u64(what), u64(what), u64(what), u64(what)};
  }
};

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t mix_in(std::uint64_t h, std::uint64_t v) { return mix64(h ^ v); }

std::uint64_t bits_of(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, 8);
  return b;
}

std::uint64_t hash_sparse(std::uint64_t h, const linalg::SparseMatrix& m) {
  h = mix_in(h, m.rows());
  h = mix_in(h, m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (const linalg::SparseEntry& e : m.row(r)) {
      h = mix_in(h, e.col);
      h = mix_in(h, bits_of(e.value));
    }
  }
  return h;
}

}  // namespace

std::uint64_t hash_pomdp(const Pomdp& model) {
  std::uint64_t h = 0x5245434f56455244ULL;  // "RECOVERD"
  const Mdp& mdp = model.mdp();
  h = mix_in(h, model.num_states());
  h = mix_in(h, model.num_actions());
  h = mix_in(h, model.num_observations());
  h = mix_in(h, model.terminate_action());
  h = mix_in(h, model.terminate_state());
  for (StateId s = 0; s < model.num_states(); ++s) {
    h = mix_in(h, mdp.is_goal(s) ? 1 : 0);
  }
  for (ActionId a = 0; a < model.num_actions(); ++a) {
    h = mix_in(h, bits_of(mdp.duration(a)));
    for (const double r : mdp.rewards(a)) h = mix_in(h, bits_of(r));
    h = hash_sparse(h, mdp.transition(a));
    h = hash_sparse(h, model.observation(a));
  }
  return h;
}

void write_fleet_checkpoint(const std::string& path, const FleetCheckpoint& cp) {
  const std::uint64_t n = cp.sessions;
  RD_EXPECTS(cp.slot_rng.size() == n && cp.envs.size() == n &&
                 cp.episode_steps.size() == n && cp.last_actions.size() == n &&
                 cp.pending_action.size() == n && cp.pending_obs.size() == n &&
                 cp.beliefs.size() == n * cp.num_states,
             "write_fleet_checkpoint: per-slot arrays must match `sessions`");
  RD_EXPECTS(cp.chaos_rng.empty() || cp.chaos_rng.size() == n,
             "write_fleet_checkpoint: chaos_rng must be empty or per-slot");
  const bool has_guard = !cp.ladder_stage.empty();
  RD_EXPECTS(!has_guard ||
                 (cp.ladder_stage.size() == n && cp.clean_streak.size() == n &&
                  cp.ticks_since_fresh.size() == n && cp.guard_state.size() == n),
             "write_fleet_checkpoint: guard arrays must be empty or per-slot");

  Writer payload;
  payload.u64(cp.model_hash);
  payload.u64(cp.options_hash);
  payload.u64(cp.bound_artifact_hash);
  payload.u64(cp.seed);
  payload.u64(cp.tick);
  payload.u64(cp.sessions);
  payload.u64(cp.num_states);
  payload.u64(cp.num_actions);
  payload.u64(cp.num_observations);
  payload.u64(cp.stats.size());
  for (const std::uint64_t v : cp.stats) payload.u64(v);
  payload.u8(cp.chaos_rng.empty() ? 0 : 1);
  payload.u8(has_guard ? 1 : 0);
  for (const auto& s : cp.slot_rng) payload.rng(s);
  for (const Environment::Snapshot& env : cp.envs) {
    payload.u64(env.state);
    payload.f64(env.elapsed);
    payload.f64(env.cost);
    payload.f64(env.recovery_entered);
    payload.u64(env.steps);
    payload.rng(env.rng);
  }
  for (const auto& s : cp.chaos_rng) payload.rng(s);
  payload.raw(cp.beliefs.data(), cp.beliefs.size() * sizeof(double));
  for (const std::uint64_t v : cp.episode_steps) payload.u64(v);
  for (const std::uint64_t v : cp.last_actions) payload.u64(v);
  for (const std::uint64_t v : cp.pending_action) payload.u64(v);
  for (const std::uint64_t v : cp.pending_obs) payload.u64(v);
  if (has_guard) {
    payload.raw(cp.ladder_stage.data(), cp.ladder_stage.size());
    for (const std::uint64_t v : cp.clean_streak) payload.u64(v);
    for (const std::uint64_t v : cp.ticks_since_fresh) payload.u64(v);
    for (const controller::GuardRuntime::State& g : cp.guard_state) {
      payload.u8(g.escalated ? 1 : 0);
      payload.u64(static_cast<std::uint64_t>(
          static_cast<std::int64_t>(g.consecutive_overruns)));
      payload.u64(g.stalled_decides);
      payload.u8(g.has_best_bound ? 1 : 0);
      payload.f64(g.best_bound);
    }
  }

  Writer file;
  file.u64(kMagic);
  file.u32(kFleetCheckpointVersion);
  file.u64(payload.bytes.size());
  file.raw(payload.bytes.data(), payload.bytes.size());
  // CRC over everything after the magic (version + length + payload), so a
  // flipped bit anywhere in the meaningful bytes is caught.
  file.u64(crc64(file.bytes.data() + 8, file.bytes.size() - 8));

  // Atomic write: tmp file in the same directory, fsync, rename over.
  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    fail(path, "cannot create '" + tmp + "' — check the directory exists and is "
               "writable");
  }
  const std::size_t written = std::fwrite(file.bytes.data(), 1, file.bytes.size(), out);
  const bool flushed = std::fflush(out) == 0;
  const bool synced = ::fsync(::fileno(out)) == 0;
  std::fclose(out);
  if (written != file.bytes.size() || !flushed || !synced) {
    std::remove(tmp.c_str());
    fail(path, "short write to '" + tmp + "' — disk full or I/O error; the previous "
               "checkpoint (if any) is untouched");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail(path, "cannot rename '" + tmp + "' into place");
  }
}

FleetCheckpoint read_fleet_checkpoint(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    fail(path, "cannot open — no checkpoint at this path (nothing to restore)");
  }
  std::vector<unsigned char> bytes;
  unsigned char chunk[1 << 16];
  for (;;) {
    const std::size_t got = std::fread(chunk, 1, sizeof(chunk), in);
    bytes.insert(bytes.end(), chunk, chunk + got);
    if (got < sizeof(chunk)) break;
  }
  std::fclose(in);

  if (bytes.size() < kHeaderBytes + 8) {
    fail(path, "truncated header (" + std::to_string(bytes.size()) + " bytes, need at "
               "least " + std::to_string(kHeaderBytes + 8) + ") — the file was cut "
               "short; restore from an intact checkpoint");
  }
  Reader r{path, bytes.data(), bytes.size()};
  const std::uint64_t magic = r.u64("magic");
  if (magic != kMagic) {
    fail(path, "not a recoverd fleet checkpoint (bad magic) — was this file written "
               "by write_fleet_checkpoint?");
  }
  const std::uint32_t version = r.u32("version");
  if (version != kFleetCheckpointVersion) {
    fail(path, "unsupported version " + std::to_string(version) + " (this build reads "
               "version " + std::to_string(kFleetCheckpointVersion) + ") — re-save "
               "the checkpoint with this build");
  }
  const std::uint64_t payload_len = r.u64("payload length");
  if (bytes.size() != kHeaderBytes + payload_len + 8) {
    fail(path, "length mismatch (header says " + std::to_string(payload_len) +
               " payload bytes, file holds " +
               std::to_string(bytes.size() >= kHeaderBytes + 8
                                  ? bytes.size() - kHeaderBytes - 8
                                  : 0) +
               ") — the file was truncated or grew; restore from an intact "
               "checkpoint");
  }
  const std::uint64_t stored_crc = crc64(bytes.data() + 8, bytes.size() - 16);
  std::uint64_t file_crc;
  std::memcpy(&file_crc, bytes.data() + bytes.size() - 8, 8);
  if (stored_crc != file_crc) {
    fail(path, "checksum mismatch (CRC-64 of contents does not match the stored "
               "value) — the file is corrupted (bit flip or partial overwrite); "
               "restore from an intact checkpoint");
  }

  FleetCheckpoint cp;
  cp.model_hash = r.u64("model hash");
  cp.options_hash = r.u64("options hash");
  cp.bound_artifact_hash = r.u64("bound artifact hash");
  cp.seed = r.u64("seed");
  cp.tick = r.u64("tick");
  cp.sessions = r.u64("sessions");
  cp.num_states = r.u64("num_states");
  cp.num_actions = r.u64("num_actions");
  cp.num_observations = r.u64("num_observations");
  const std::uint64_t num_stats = r.u64("stats count");
  if (num_stats > 1024) {
    fail(path, "implausible stats count " + std::to_string(num_stats) +
               " — the file is corrupted");
  }
  cp.stats.reserve(num_stats);
  for (std::uint64_t i = 0; i < num_stats; ++i) cp.stats.push_back(r.u64("stats"));
  const bool has_chaos = r.u8("chaos flag") != 0;
  const bool has_guard = r.u8("guard flag") != 0;

  const std::uint64_t n = cp.sessions;
  // A corrupted sessions/num_states field would make the loops below demand
  // absurd byte counts; the need() checks turn that into "truncated", but
  // catch the obvious case with a better message first.
  if (n == 0 || cp.num_states == 0) {
    fail(path, "empty fleet dimensions — the file is corrupted");
  }
  cp.slot_rng.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) cp.slot_rng.push_back(r.rng("slot rng"));
  cp.envs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Environment::Snapshot env;
    env.state = static_cast<StateId>(r.u64("env state"));
    env.elapsed = r.f64("env elapsed");
    env.cost = r.f64("env cost");
    env.recovery_entered = r.f64("env recovery time");
    env.steps = r.u64("env steps");
    env.rng = r.rng("env rng");
    cp.envs.push_back(env);
  }
  if (has_chaos) {
    cp.chaos_rng.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) cp.chaos_rng.push_back(r.rng("chaos rng"));
  }
  const std::size_t belief_doubles = static_cast<std::size_t>(n * cp.num_states);
  r.need(belief_doubles * sizeof(double), "beliefs");
  cp.beliefs.resize(belief_doubles);
  std::memcpy(cp.beliefs.data(), r.data + r.pos, belief_doubles * sizeof(double));
  r.pos += belief_doubles * sizeof(double);
  cp.episode_steps.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) cp.episode_steps.push_back(r.u64("episode steps"));
  cp.last_actions.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) cp.last_actions.push_back(r.u64("last actions"));
  cp.pending_action.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) cp.pending_action.push_back(r.u64("pending actions"));
  cp.pending_obs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) cp.pending_obs.push_back(r.u64("pending observations"));
  if (has_guard) {
    r.need(n, "ladder stages");
    cp.ladder_stage.assign(r.data + r.pos, r.data + r.pos + n);
    r.pos += n;
    cp.clean_streak.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) cp.clean_streak.push_back(r.u64("clean streak"));
    cp.ticks_since_fresh.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      cp.ticks_since_fresh.push_back(r.u64("staleness"));
    }
    cp.guard_state.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      controller::GuardRuntime::State g;
      g.escalated = r.u8("guard escalated") != 0;
      g.consecutive_overruns = static_cast<std::int32_t>(
          static_cast<std::int64_t>(r.u64("guard overruns")));
      g.stalled_decides = r.u64("guard stalls");
      g.has_best_bound = r.u8("guard best flag") != 0;
      g.best_bound = r.f64("guard best bound");
      cp.guard_state.push_back(g);
    }
  }
  if (r.pos != bytes.size() - 8) {
    fail(path, "trailing bytes after payload — the file is corrupted");
  }
  return cp;
}

}  // namespace recoverd::sim
