// Fault-injection experiment harness: runs recovery episodes and collects
// the per-fault metrics of Table 1 (cost, recovery time, residual time,
// algorithm time, recovery actions, monitor calls).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "controller/controller.hpp"
#include "sim/environment.hpp"
#include "sim/fault_injector.hpp"
#include "sim/mismatch_injector.hpp"
#include "sim/trace.hpp"
#include "util/stats.hpp"

namespace recoverd::sim {

struct EpisodeConfig {
  /// The monitoring action (counted as "monitor calls", used for the initial
  /// observation). Required.
  ActionId observe_action = kInvalidId;
  /// Safety cap on episode length; exceeding it marks the episode
  /// not-terminated rather than looping forever.
  std::size_t max_steps = 100000;
  /// Take one initial monitor reading to refine the controller's starting
  /// belief (§4). Disabled for the Oracle, which needs no monitors.
  bool initial_observation = true;
  /// Support of the controller's initial belief ("all faults equally
  /// likely", §4). Empty = all non-goal states of the *environment* model.
  std::vector<StateId> fault_support;
  /// Chaos axes the *environment* deviates from the model by (default off:
  /// clean runs, byte-identical to pre-mismatch harnesses). The injector's
  /// RNG stream is split per episode after the environment stream — and
  /// only when enabled — so clean campaigns keep their exact draw
  /// sequences and mismatch campaigns stay `--jobs`-invariant.
  MismatchOptions mismatch;
};

/// Per-episode results.
struct EpisodeMetrics {
  double cost = 0.0;                ///< requests dropped (−Σ rewards)
  double recovery_time = 0.0;       ///< seconds until the controller stopped
  double residual_time = 0.0;       ///< seconds the fault was present
  double algorithm_time_ms = 0.0;   ///< wall time inside decide()
  std::size_t recovery_actions = 0; ///< non-monitor actions executed
  std::size_t monitor_calls = 0;    ///< monitor invocations (incl. initial)
  bool recovered = false;           ///< true state ended in Sφ
  bool terminated = false;          ///< controller stopped on its own
  StateId injected_fault = kInvalidId;
};

/// Runs one recovery episode of `controller` against `env` with fault
/// `fault` injected. The controller's model may be a transformed variant of
/// the environment model (shared ids for common states/actions). When
/// `trace` is non-null every step is recorded for later CSV export.
EpisodeMetrics run_episode(Environment& env, controller::RecoveryController& controller,
                           StateId fault, const EpisodeConfig& config,
                           EpisodeTrace* trace = nullptr);

/// Aggregate over many injections.
struct ExperimentResult {
  RunningStats cost;
  RunningStats recovery_time;
  RunningStats residual_time;
  RunningStats algorithm_time_ms;
  RunningStats recovery_actions;
  RunningStats monitor_calls;
  std::size_t episodes = 0;
  std::size_t unrecovered = 0;      ///< controller quit before the fault was fixed
  std::size_t not_terminated = 0;   ///< hit the max_steps cap

  /// Episodes cut off by the max_steps safety cap — the explicit name for
  /// not_terminated: the controller never stopped on its own, so cost and
  /// time for these rows are cap-censored lower bounds.
  std::size_t truncated() const { return not_terminated; }

  /// Folds one episode into the aggregate (the serial accumulation).
  void add(const EpisodeMetrics& m);

  /// Merges another aggregate (the parallel reduction; RunningStats::merge
  /// under the hood).
  void merge(const ExperimentResult& other);
};

/// Runs `episodes` injections sampled from `injector`, each on a fresh
/// deterministic RNG stream derived from `seed`.
ExperimentResult run_experiment(const Pomdp& env_model,
                                controller::RecoveryController& controller,
                                const FaultInjector& injector, std::size_t episodes,
                                std::uint64_t seed, const EpisodeConfig& config);

/// Builds the controller for one episode of a factory-based experiment.
/// Invoked once per episode — concurrently from worker threads when jobs >
/// 1, so the factory must be thread-safe; each produced controller is then
/// driven by a single thread.
using ControllerFactory =
    std::function<std::unique_ptr<controller::RecoveryController>()>;

/// Parallel experiment runner (`--jobs` in the binaries). Episode i runs on
/// the same pre-derived RNG stream the serial runner gives it and on a
/// fresh controller from `make_controller`, so neither the randomness nor
/// the controller's warm-up state depends on which worker picks the episode
/// up. Results are reduced in episode order via singleton merges, making
/// the aggregates *identical* — bitwise — for every value of `jobs` (see
/// DESIGN.md §8 for the determinism argument). Note the per-episode fresh
/// controller differs from the single-controller overload above, where
/// online bound improvement carries over between episodes.
ExperimentResult run_experiment(const Pomdp& env_model,
                                const ControllerFactory& make_controller,
                                const FaultInjector& injector, std::size_t episodes,
                                std::uint64_t seed, const EpisodeConfig& config,
                                std::size_t jobs);

}  // namespace recoverd::sim
