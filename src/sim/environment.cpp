#include "sim/environment.hpp"

#include "pomdp/sampling.hpp"
#include "util/check.hpp"

namespace recoverd::sim {

Environment::Environment(const Pomdp& model, Rng rng) : model_(model), rng_(rng) {}

Environment::Environment(const Pomdp& model, Rng rng, MismatchInjector mismatch)
    : model_(model), mismatch_(std::move(mismatch)), rng_(rng) {}

void Environment::reset(StateId initial_state) {
  RD_EXPECTS(initial_state < model_.num_states(), "Environment::reset: state out of range");
  if (mismatch_.has_value()) mismatch_->reset();
  state_ = initial_state;
  elapsed_ = 0.0;
  cost_ = 0.0;
  steps_ = 0;
  recovery_entered_ = model_.mdp().is_goal(state_)
                          ? 0.0
                          : std::numeric_limits<double>::infinity();
}

Environment::StepResult Environment::step(ActionId action) {
  RD_EXPECTS(action < model_.num_actions(), "Environment::step: action out of range");
  const Mdp& mdp = model_.mdp();

  StepResult result;
  result.reward = mdp.reward(state_, action);
  result.duration = mdp.duration(action);
  // Chaos pipeline: a silently failed action leaves the true state in place
  // (cost and time still accrue); otherwise the transition samples from the
  // jittered world when configured, the model otherwise. The monitors then
  // observe the true next state and the reading runs through the
  // observation-corruption channel.
  if (mismatch_.has_value() && mismatch_->action_fails(action)) {
    result.next_state = state_;
  } else if (mismatch_.has_value() && mismatch_->has_transition_jitter()) {
    result.next_state = mismatch_->sample_transition(state_, action, rng_);
  } else {
    result.next_state = sample_transition(mdp, state_, action, rng_);
  }
  result.obs = sample_observation(model_, result.next_state, action, rng_);
  if (mismatch_.has_value()) result.obs = mismatch_->corrupt_observation(result.obs);

  cost_ -= result.reward;
  elapsed_ += result.duration;
  ++steps_;

  const bool was_recovered = mdp.is_goal(state_);
  state_ = result.next_state;
  if (!was_recovered && mdp.is_goal(state_) &&
      recovery_entered_ == std::numeric_limits<double>::infinity()) {
    recovery_entered_ = elapsed_;
  }
  return result;
}

bool Environment::recovered() const { return model_.mdp().is_goal(state_); }

Environment::Snapshot Environment::snapshot() const {
  Snapshot snap;
  snap.state = state_;
  snap.elapsed = elapsed_;
  snap.cost = cost_;
  snap.recovery_entered = recovery_entered_;
  snap.steps = steps_;
  snap.rng = rng_.state();
  return snap;
}

void Environment::restore(const Snapshot& snapshot) {
  RD_EXPECTS(snapshot.state < model_.num_states(),
             "Environment::restore: snapshot state out of range for this model");
  state_ = snapshot.state;
  elapsed_ = snapshot.elapsed;
  cost_ = snapshot.cost;
  recovery_entered_ = snapshot.recovery_entered;
  steps_ = static_cast<std::size_t>(snapshot.steps);
  rng_.set_state(snapshot.rng);
}

}  // namespace recoverd::sim
