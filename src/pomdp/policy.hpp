// Stationary MDP policies: evaluation (the linear system of one fixed
// policy) and Howard policy iteration. Used to audit recovery policies
// extracted from value iteration and to give downstream users the classic
// "what does this policy actually cost from each state" query.
#pragma once

#include <vector>

#include "linalg/gauss_seidel.hpp"
#include "pomdp/mdp.hpp"
#include "pomdp/value_iteration.hpp"

namespace recoverd {

/// A deterministic stationary policy: one action per state.
using Policy = std::vector<ActionId>;

struct PolicyEvaluationResult {
  linalg::SolveStatus status = linalg::SolveStatus::MaxIterations;
  std::vector<double> values;  ///< V_ρ(s) (meaningful when converged)
  std::size_t iterations = 0;

  bool converged() const { return status == linalg::SolveStatus::Converged; }
};

/// Solves V_ρ = r_ρ + β P_ρ V_ρ for a fixed policy ρ. Reports Diverged when
/// the policy loops through nonzero-reward recurrent states (undiscounted
/// models) — e.g. a policy that never recovers.
PolicyEvaluationResult evaluate_policy(const Mdp& mdp, const Policy& policy,
                                       double beta = 1.0,
                                       const linalg::GaussSeidelOptions& options = {});

struct PolicyIterationResult {
  linalg::SolveStatus status = linalg::SolveStatus::MaxIterations;
  Policy policy;
  std::vector<double> values;
  std::size_t improvement_steps = 0;

  bool converged() const { return status == linalg::SolveStatus::Converged; }
};

/// Howard policy iteration starting from `initial` (empty = the policy that
/// plays action 0 everywhere; callers should seed with a proper — i.e.
/// finite-value — policy on undiscounted models, e.g. the aT-everywhere
/// policy of a terminate-transformed model). Each round evaluates the
/// current policy exactly and greedily improves it; terminates when the
/// policy is stable.
PolicyIterationResult policy_iteration(const Mdp& mdp, Policy initial = {},
                                       double beta = 1.0,
                                       std::size_t max_rounds = 1000);

/// The greedy policy w.r.t. a value vector: argmax_a r(s,a) + β Σ p·V.
Policy greedy_policy(const Mdp& mdp, std::span<const double> values, double beta = 1.0);

}  // namespace recoverd
