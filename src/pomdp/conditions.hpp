// Checkers for the paper's recovery-model conditions (§3.1) and the
// recovery-notification property.
#pragma once

#include <string>
#include <vector>

#include "pomdp/mdp.hpp"
#include "pomdp/pomdp.hpp"

namespace recoverd {

/// Result of a condition check, with a human-readable explanation of the
/// first violation found (empty when satisfied).
struct ConditionReport {
  bool satisfied = false;
  std::string detail;
};

/// Condition 1: the model has a non-empty null-fault set Sφ, and from every
/// state some state in Sφ is reachable under *some* sequence of actions
/// (reachability in the union of the per-action transition graphs).
ConditionReport check_condition1(const Mdp& mdp);

/// Condition 1 on a (possibly terminate-transformed) POMDP: the absorbing
/// terminated state sT introduced by add_termination is — by construction —
/// an acceptable sink, so it is treated as if it were in Sφ for the
/// reachability check.
ConditionReport check_condition1(const Pomdp& pomdp);

/// Condition 2: every single-step reward is non-positive. (MdpBuilder
/// already enforces this at construction; the checker exists for models
/// produced by transforms or deserialisation.)
ConditionReport check_condition2(const Mdp& mdp);

/// States from which no goal state is reachable (diagnostic companion to
/// check_condition1; empty iff Condition 1's reachability part holds).
std::vector<StateId> unrecoverable_states(const Mdp& mdp);

/// Conservative recovery-notification detector (§3.1 suggests this is
/// derivable from q; the paper leaves it to future work — we implement the
/// sufficient condition): the system has recovery notification when the set
/// of observations emitted with positive probability from goal states is
/// disjoint from the set emitted from non-goal states, for every action.
/// Then "the monitors say recovered" identifies membership of Sφ exactly.
bool detect_recovery_notification(const Pomdp& pomdp);

}  // namespace recoverd
