#include "pomdp/io.hpp"

#include <cctype>
#include <fstream>
#include <map>
#include <iomanip>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace recoverd {

namespace {

std::string quote(const std::string& name) {
  if (name.find_first_of(" \t|") == std::string::npos) return name;
  RD_EXPECTS(name.find('|') == std::string::npos,
             "save_pomdp: names must not contain '|'");
  return "|" + name + "|";
}

// Splits one line into whitespace-separated tokens, honouring |...| quoting.
std::vector<std::string> tokenize(const std::string& line, std::size_t line_no) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    if (line[i] == '#') break;  // trailing comment
    if (line[i] == '|') {
      const std::size_t end = line.find('|', i + 1);
      if (end == std::string::npos) {
        throw ModelError("load_pomdp: unterminated quoted name at line " +
                         std::to_string(line_no));
      }
      tokens.push_back(line.substr(i + 1, end - i - 1));
      i = end + 1;
    } else {
      std::size_t end = i;
      while (end < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[end]))) {
        ++end;
      }
      tokens.push_back(line.substr(i, end - i));
      i = end;
    }
  }
  return tokens;
}

double parse_number(const std::string& token, std::size_t line_no) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != token.size()) {
    throw ModelError("load_pomdp: expected a number, got '" + token + "' at line " +
                     std::to_string(line_no));
  }
  return value;
}

}  // namespace

void save_pomdp(std::ostream& os, const Pomdp& pomdp) {
  const Mdp& mdp = pomdp.mdp();
  os << "# recoverd recovery-model POMDP\n";
  os << "recoverd-pomdp 1\n";
  os << std::setprecision(17);

  for (StateId s = 0; s < mdp.num_states(); ++s) {
    os << "state " << quote(mdp.state_name(s)) << ' ' << mdp.state_rate_reward(s);
    if (mdp.is_goal(s)) os << " goal";
    os << '\n';
  }
  for (ActionId a = 0; a < mdp.num_actions(); ++a) {
    os << "action " << quote(mdp.action_name(a)) << ' ' << mdp.duration(a) << '\n';
  }
  for (ObsId o = 0; o < pomdp.num_observations(); ++o) {
    os << "observation " << quote(pomdp.observation_name(o)) << '\n';
  }
  for (ActionId a = 0; a < mdp.num_actions(); ++a) {
    const auto& t = mdp.transition(a);
    for (StateId s = 0; s < mdp.num_states(); ++s) {
      for (const auto& e : t.row(s)) {
        os << "T " << quote(mdp.state_name(s)) << ' ' << quote(mdp.action_name(a))
           << ' ' << quote(mdp.state_name(e.col)) << ' ' << e.value << '\n';
      }
    }
  }
  for (ActionId a = 0; a < mdp.num_actions(); ++a) {
    for (StateId s = 0; s < mdp.num_states(); ++s) {
      if (mdp.rate_reward(s, a) != mdp.state_rate_reward(s)) {
        os << "Rrate " << quote(mdp.state_name(s)) << ' ' << quote(mdp.action_name(a))
           << ' ' << mdp.rate_reward(s, a) << '\n';
      }
      if (mdp.impulse_reward(s, a) != 0.0) {
        os << "Rimp " << quote(mdp.state_name(s)) << ' ' << quote(mdp.action_name(a))
           << ' ' << mdp.impulse_reward(s, a) << '\n';
      }
    }
  }
  for (ActionId a = 0; a < mdp.num_actions(); ++a) {
    const auto& q = pomdp.observation(a);
    for (StateId s = 0; s < mdp.num_states(); ++s) {
      for (const auto& e : q.row(s)) {
        os << "O " << quote(mdp.state_name(s)) << ' ' << quote(mdp.action_name(a))
           << ' ' << quote(pomdp.observation_name(e.col)) << ' ' << e.value << '\n';
      }
    }
  }
  if (pomdp.has_terminate_action()) {
    os << "terminate " << quote(mdp.action_name(pomdp.terminate_action())) << ' '
       << quote(mdp.state_name(pomdp.terminate_state())) << '\n';
  }
}

void save_pomdp_file(const std::string& path, const Pomdp& pomdp) {
  std::ofstream file(path);
  if (!file) throw ModelError("save_pomdp_file: cannot open '" + path + "'");
  save_pomdp(file, pomdp);
  if (!file) throw ModelError("save_pomdp_file: write to '" + path + "' failed");
}

Pomdp load_pomdp(std::istream& is) {
  PomdpBuilder builder;
  std::map<std::string, StateId> states;
  std::map<std::string, ActionId> actions;
  std::map<std::string, ObsId> observations;
  bool header_seen = false;

  auto lookup = [](const auto& table, const std::string& name, const char* kind,
                   std::size_t line_no) {
    const auto it = table.find(name);
    if (it == table.end()) {
      throw ModelError("load_pomdp: unknown " + std::string(kind) + " '" + name +
                       "' at line " + std::to_string(line_no));
    }
    return it->second;
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto tokens = tokenize(line, line_no);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];
    auto expect_arity = [&](std::size_t n) {
      if (tokens.size() != n) {
        throw ModelError("load_pomdp: '" + keyword + "' expects " + std::to_string(n - 1) +
                         " arguments at line " + std::to_string(line_no));
      }
    };

    if (keyword == "recoverd-pomdp") {
      expect_arity(2);
      if (tokens[1] != "1") {
        throw ModelError("load_pomdp: unsupported format version '" + tokens[1] + "'");
      }
      header_seen = true;
    } else if (keyword == "state") {
      if (tokens.size() != 3 && !(tokens.size() == 4 && tokens[3] == "goal")) {
        throw ModelError("load_pomdp: bad 'state' line " + std::to_string(line_no));
      }
      if (states.count(tokens[1]) != 0) {
        throw ModelError("load_pomdp: duplicate state '" + tokens[1] + "' at line " +
                         std::to_string(line_no));
      }
      const StateId s = builder.add_state(tokens[1], parse_number(tokens[2], line_no));
      states[tokens[1]] = s;
      if (tokens.size() == 4) builder.mark_goal(s);
    } else if (keyword == "action") {
      expect_arity(3);
      if (actions.count(tokens[1]) != 0) {
        throw ModelError("load_pomdp: duplicate action '" + tokens[1] + "' at line " +
                         std::to_string(line_no));
      }
      actions[tokens[1]] = builder.add_action(tokens[1], parse_number(tokens[2], line_no));
    } else if (keyword == "observation") {
      expect_arity(2);
      if (observations.count(tokens[1]) != 0) {
        throw ModelError("load_pomdp: duplicate observation '" + tokens[1] +
                         "' at line " + std::to_string(line_no));
      }
      observations[tokens[1]] = builder.add_observation(tokens[1]);
    } else if (keyword == "T") {
      expect_arity(5);
      builder.set_transition(lookup(states, tokens[1], "state", line_no),
                             lookup(actions, tokens[2], "action", line_no),
                             lookup(states, tokens[3], "state", line_no),
                             parse_number(tokens[4], line_no));
    } else if (keyword == "Rrate") {
      expect_arity(4);
      builder.set_rate_reward(lookup(states, tokens[1], "state", line_no),
                              lookup(actions, tokens[2], "action", line_no),
                              parse_number(tokens[3], line_no));
    } else if (keyword == "Rimp") {
      expect_arity(4);
      builder.set_impulse_reward(lookup(states, tokens[1], "state", line_no),
                                 lookup(actions, tokens[2], "action", line_no),
                                 parse_number(tokens[3], line_no));
    } else if (keyword == "O") {
      expect_arity(5);
      builder.set_observation(lookup(states, tokens[1], "state", line_no),
                              lookup(actions, tokens[2], "action", line_no),
                              lookup(observations, tokens[3], "observation", line_no),
                              parse_number(tokens[4], line_no));
    } else if (keyword == "terminate") {
      expect_arity(3);
      builder.mark_terminate(lookup(actions, tokens[1], "action", line_no),
                             lookup(states, tokens[2], "state", line_no));
    } else {
      throw ModelError("load_pomdp: unknown keyword '" + keyword + "' at line " +
                       std::to_string(line_no));
    }
  }
  if (!header_seen) {
    throw ModelError("load_pomdp: missing 'recoverd-pomdp 1' header");
  }
  return builder.build();
}

Pomdp load_pomdp_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw ModelError("load_pomdp_file: cannot open '" + path + "'");
  return load_pomdp(file);
}

}  // namespace recoverd
