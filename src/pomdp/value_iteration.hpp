// Dynamic-programming solution of the fully observable MDP (Eq. 1).
//
// Used for:
//  - the QMDP-style upper bound on the POMDP value (V*_p(π) ≤ Σ π(s)V_m(s)),
//  - the BI-POMDP comparison bound (Extremum::Min replaces max with min),
//  - test oracles on small models.
//
// Like the linear solver, divergence is detected and reported rather than
// looping: undiscounted models that violate the §3.1 conditions legitimately
// have no finite solution, and the §3.1 comparison benches rely on seeing
// that outcome.
#pragma once

#include <vector>

#include "linalg/gauss_seidel.hpp"
#include "pomdp/mdp.hpp"

namespace recoverd {

/// Whether the Bellman backup extremises with max (optimal value) or min
/// (pessimal value, the BI-POMDP construction of [14]).
enum class Extremum { Max, Min };

struct ValueIterationOptions {
  double beta = 1.0;        ///< discount factor (1 = undiscounted, the paper's choice)
  double tolerance = 1e-10;
  std::size_t max_iterations = 100000;
  double divergence_threshold = 1e12;
  /// Stall detection window (see GaussSeidelOptions::stall_window): a sweep
  /// delta that fails to strictly decrease over this many iterations marks
  /// the recursion Diverged — the linear-drift signature of undiscounted
  /// models with recurrent nonzero-reward states. 0 disables.
  std::size_t stall_window = 1000;
};

struct ValueIterationResult {
  linalg::SolveStatus status = linalg::SolveStatus::MaxIterations;
  std::vector<double> values;     ///< V_m(s) (last iterate)
  std::vector<ActionId> policy;   ///< extremising action per state
  std::size_t iterations = 0;

  bool converged() const { return status == linalg::SolveStatus::Converged; }
};

/// Iterates V ← extremum_a [ r(·,a) + β P(a) V ] from V = 0.
ValueIterationResult value_iteration(const Mdp& mdp,
                                     const ValueIterationOptions& options = {},
                                     Extremum extremum = Extremum::Max);

/// Expected accumulated reward of the stationary policy that always plays
/// `action` (the "blind policy" value of [6]): V ← r(·,action) + β P(action) V.
ValueIterationResult blind_policy_value(const Mdp& mdp, ActionId action,
                                        const ValueIterationOptions& options = {});

}  // namespace recoverd
