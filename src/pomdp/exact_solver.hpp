// Exact finite-horizon POMDP solution by alpha-vector dynamic programming
// (Monahan's enumeration algorithm — the paper's reference [10]) with
// pointwise-dominance pruning.
//
// The horizon-H value function of a POMDP is piecewise linear and convex:
// V_H(π) = max_{α ∈ Γ_H} ⟨α, π⟩. Enumeration computes Γ_{t+1} from Γ_t by
// cross-summing the observation back-projections, pruning pointwise-
// dominated vectors after every cross-sum step.
//
// Complexity is exponential in the worst case; this solver is the *test
// oracle* of the repository (small models, modest horizons), used to verify
// that the RA-Bound and its refinements stay below the exact value
// function — it is not part of the online controller path.
#pragma once

#include <vector>

#include "pomdp/belief.hpp"
#include "pomdp/pomdp.hpp"

namespace recoverd {

using AlphaVector = std::vector<double>;

struct ExactSolverOptions {
  int horizon = 5;
  /// Vectors within this pointwise tolerance of a dominator are pruned.
  double prune_tolerance = 1e-12;
  /// Hard cap on the per-stage vector-set size; exceeding it aborts the
  /// solve (reported via `truncated`) instead of exhausting memory.
  std::size_t max_vectors = 200000;
};

struct ExactSolveResult {
  /// Γ_H: the exact horizon-H value function (when !truncated).
  std::vector<AlphaVector> alpha_vectors;
  int horizon_reached = 0;
  bool truncated = false;
  /// |Γ_t| after pruning, per stage (diagnostics).
  std::vector<std::size_t> stage_sizes;
};

/// Runs Monahan's algorithm for `options.horizon` stages starting from
/// V_0 = {0}. All rewards undiscounted (β = 1), matching the paper.
ExactSolveResult solve_finite_horizon(const Pomdp& pomdp,
                                      const ExactSolverOptions& options = {});

/// V(π) = max_α ⟨α, π⟩ over a vector set. Precondition: non-empty set.
double evaluate_alpha_vectors(const std::vector<AlphaVector>& vectors,
                              const Belief& belief);

/// Removes vectors pointwise-dominated (within `tolerance`) by another
/// member of the set. Exposed for tests and for callers composing their own
/// vector sets.
std::vector<AlphaVector> prune_pointwise_dominated(std::vector<AlphaVector> vectors,
                                                   double tolerance = 1e-12);

}  // namespace recoverd
