#include "pomdp/belief.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/simd_kernels.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/simd.hpp"

namespace recoverd {

namespace {

bool use_avx2() {
#if RECOVERD_SIMD_KERNELS_X86
  return simd::active_mode() == simd::Mode::Avx2;
#else
  return false;
#endif
}

bool use_avx512() {
#if RECOVERD_SIMD_KERNELS_X86
  return simd::active_mode() == simd::Mode::Avx512;
#else
  return false;
#endif
}

// Hints the prefetcher at the next CSR observation row while the current
// one is being reduced — sparse qᵀ rows are short and scattered, so the
// row-to-row latency otherwise dominates the frontier expansion. A pure
// hint: no arithmetic, no semantic effect.
inline void prefetch_row(std::span<const linalg::SparseEntry> row) {
#if defined(__GNUC__) || defined(__clang__)
  if (!row.empty()) __builtin_prefetch(row.data());
#else
  (void)row;
#endif
}

}  // namespace

Belief Belief::uniform(std::size_t n) {
  RD_EXPECTS(n > 0, "Belief::uniform: dimension must be positive");
  return Belief(std::vector<double>(n, 1.0 / static_cast<double>(n)));
}

Belief Belief::uniform_over(std::size_t n, std::span<const StateId> support) {
  RD_EXPECTS(!support.empty(), "Belief::uniform_over: support must be non-empty");
  std::vector<double> pi(n, 0.0);
  for (StateId s : support) {
    RD_EXPECTS(s < n, "Belief::uniform_over: support state out of range");
    pi[s] = 1.0;
  }
  return Belief(std::move(pi));
}

Belief Belief::point(std::size_t n, StateId s) {
  RD_EXPECTS(s < n, "Belief::point: state out of range");
  std::vector<double> pi(n, 0.0);
  pi[s] = 1.0;
  return Belief(std::move(pi));
}

Belief::Belief(std::vector<double> probabilities) : pi_(std::move(probabilities)) {
  RD_EXPECTS(!pi_.empty(), "Belief: distribution must be non-empty");
  for (double v : pi_) {
    RD_EXPECTS(std::isfinite(v) && v >= 0.0, "Belief: entries must be finite and >= 0");
  }
  linalg::normalize_probability(pi_);
}

Belief Belief::from_normalized(std::span<const double> probabilities) {
  RD_EXPECTS(!probabilities.empty(),
             "Belief::from_normalized: distribution must be non-empty");
  Belief b;
  b.pi_.assign(probabilities.begin(), probabilities.end());
  return b;
}

void Belief::assign_normalized(std::span<const double> probabilities) {
  RD_EXPECTS(!probabilities.empty(),
             "Belief::assign_normalized: distribution must be non-empty");
  pi_.assign(probabilities.begin(), probabilities.end());
}

StateId Belief::most_likely() const {
  return static_cast<StateId>(std::max_element(pi_.begin(), pi_.end()) - pi_.begin());
}

double Belief::entropy() const {
  double h = 0.0;
  for (double p : pi_) {
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

double Belief::distance(const Belief& other) const {
  return linalg::max_abs_diff(pi_, other.pi_);
}

std::vector<double> predict_state_distribution(const Pomdp& pomdp, const Belief& belief,
                                               ActionId action) {
  std::vector<double> pred(pomdp.num_states(), 0.0);
  predict_state_distribution_into(pomdp, belief.probabilities(), action, pred);
  return pred;
}

void predict_state_distribution_into(const Pomdp& pomdp, std::span<const double> belief,
                                     ActionId action, std::span<double> out) {
  RD_EXPECTS(belief.size() == pomdp.num_states(),
             "predict_state_distribution: belief dimension mismatch");
  RD_EXPECTS(action < pomdp.num_actions(),
             "predict_state_distribution: action out of range");
  // pred = πᵀ P(a): propagate belief mass along transition rows.
  pomdp.mdp().transition(action).multiply_transpose_into(belief, out);
}

double observation_likelihood(const Pomdp& pomdp, const Belief& belief, ActionId action,
                              ObsId obs) {
  RD_EXPECTS(obs < pomdp.num_observations(),
             "observation_likelihood: observation out of range");
  const auto pred = predict_state_distribution(pomdp, belief, action);
  const auto& q = pomdp.observation(action);
  double gamma = 0.0;
  for (StateId s = 0; s < pred.size(); ++s) {
    if (pred[s] > 0.0) gamma += q.at(s, obs) * pred[s];
  }
  return gamma;
}

std::optional<BeliefUpdate> update_belief(const Pomdp& pomdp, const Belief& belief,
                                          ActionId action, ObsId obs) {
  RD_EXPECTS(obs < pomdp.num_observations(), "update_belief: observation out of range");
  const auto pred = predict_state_distribution(pomdp, belief, action);
  const auto& q = pomdp.observation(action);
  std::vector<double> unnormalized(pred.size(), 0.0);
  double gamma = 0.0;
  for (StateId s = 0; s < pred.size(); ++s) {
    if (pred[s] <= 0.0) continue;
    const double w = q.at(s, obs) * pred[s];
    unnormalized[s] = w;
    gamma += w;
  }
  if (gamma <= 0.0) return std::nullopt;
  for (double& v : unnormalized) v /= gamma;
  return BeliefUpdate{Belief(std::move(unnormalized)), gamma};
}

std::size_t expand_successors_into(const Pomdp& pomdp, std::span<const double> belief,
                                   ActionId action, double min_probability,
                                   std::vector<double>& pred, std::vector<double>& weight,
                                   std::vector<std::size_t>& branch_of,
                                   std::vector<ObsId>& kept,
                                   std::vector<double>& posteriors) {
  const std::size_t num_obs = pomdp.num_observations();
  const std::size_t num_states = pomdp.num_states();
  pred.resize(num_states);
  predict_state_distribution_into(pomdp, belief, action, pred);
  // Two passes over qᵀ's observation rows (the hot path of the Max-Avg
  // tree): pass 1 computes each likelihood γ(o) as one contiguous sparse dot
  // q(o|·,a)·pred; pass 2 scatters posterior mass only for the observations
  // that survive the floor. The transpose rows are in ascending state order,
  // so the additions happen in the same order as a state-major scatter and
  // the sums are bit-identical to it (terms with pred[s] = 0 contribute an
  // exact +0.0; no term is negative, so no -0.0 can arise).
  // Dense monitor models additionally carry a contiguous mirror of qᵀ; its
  // structural zeros contribute exact +0.0 terms at the same ascending-state
  // positions, so both kernels produce the same bits.
  const auto& qt = pomdp.observation_transpose(action);
  const std::span<const double> qd = pomdp.observation_transpose_dense(action);
  weight.resize(num_obs);
  if (!qd.empty()) {
    // All γ(o) sums advance together through the states: iteration s adds
    // q(o|s)·pred[s] to every observation's accumulator at once. Each γ(o)
    // still sees its terms in ascending state order — the per-observation
    // sums are independent, so this loop vectorizes across observations
    // without reordering any of them.
    const std::span<const double> q_rows = pomdp.observation_dense(action);
    double* w = weight.data();
    std::fill(w, w + num_obs, 0.0);
#if RECOVERD_SIMD_KERNELS_X86
    if (use_avx512()) {
      for (std::size_t s = 0; s < num_states; ++s) {
        linalg::simd::accumulate_scaled_avx512(w, q_rows.data() + s * num_obs, pred[s],
                                               num_obs);
      }
    } else if (use_avx2()) {
      for (std::size_t s = 0; s < num_states; ++s) {
        linalg::simd::accumulate_scaled(w, q_rows.data() + s * num_obs, pred[s], num_obs);
      }
    } else {
      for (std::size_t s = 0; s < num_states; ++s) {
        const double ps = pred[s];
        const double* row = q_rows.data() + s * num_obs;
        for (std::size_t o = 0; o < num_obs; ++o) w[o] += row[o] * ps;
      }
    }
#else
    for (std::size_t s = 0; s < num_states; ++s) {
      const double ps = pred[s];
      const double* row = q_rows.data() + s * num_obs;
      for (std::size_t o = 0; o < num_obs; ++o) w[o] += row[o] * ps;
    }
#endif
  } else {
    for (ObsId o = 0; o < num_obs; ++o) {
      if (o + 1 < num_obs) prefetch_row(qt.row(o + 1));
      double gamma = 0.0;
      for (const auto& e : qt.row(o)) gamma += e.value * pred[e.col];
      weight[o] = gamma;
    }
  }

  branch_of.assign(num_obs, kNoBranch);
  kept.clear();
  std::size_t pruned = 0;
  for (ObsId o = 0; o < num_obs; ++o) {
    if (weight[o] <= 0.0) continue;
    if (weight[o] < min_probability) {
      ++pruned;  // reachable branch dropped by the floor
      continue;
    }
    branch_of[o] = kept.size();
    kept.push_back(o);
  }
  static obs::Counter& pruned_counter =
      obs::metrics().counter("pomdp.belief.branches_pruned");
  static obs::Counter& kept_counter =
      obs::metrics().counter("pomdp.belief.branches_kept");
  if (pruned > 0) pruned_counter.add(pruned);
  kept_counter.add(kept.size());

  posteriors.assign(kept.size() * num_states, 0.0);
  if (!qd.empty()) {
#if RECOVERD_SIMD_KERNELS_X86
    if (use_avx512()) {
      for (std::size_t i = 0; i < kept.size(); ++i) {
        linalg::simd::multiply_elementwise_avx512(posteriors.data() + i * num_states,
                                                  qd.data() + kept[i] * num_states,
                                                  pred.data(), num_states);
      }
    } else if (use_avx2()) {
      for (std::size_t i = 0; i < kept.size(); ++i) {
        linalg::simd::multiply_elementwise(posteriors.data() + i * num_states,
                                           qd.data() + kept[i] * num_states, pred.data(),
                                           num_states);
      }
    } else {
      for (std::size_t i = 0; i < kept.size(); ++i) {
        double* row_out = posteriors.data() + i * num_states;
        const double* row = qd.data() + kept[i] * num_states;
        for (std::size_t s = 0; s < num_states; ++s) row_out[s] = row[s] * pred[s];
      }
    }
#else
    for (std::size_t i = 0; i < kept.size(); ++i) {
      double* row_out = posteriors.data() + i * num_states;
      const double* row = qd.data() + kept[i] * num_states;
      for (std::size_t s = 0; s < num_states; ++s) row_out[s] = row[s] * pred[s];
    }
#endif
  } else {
    for (std::size_t i = 0; i < kept.size(); ++i) {
      if (i + 1 < kept.size()) prefetch_row(qt.row(kept[i + 1]));
      double* row_out = posteriors.data() + i * num_states;
      for (const auto& e : qt.row(kept[i])) row_out[e.col] = e.value * pred[e.col];
    }
  }
  return kept.size();
}

std::size_t expand_successors_batch(const Pomdp& pomdp, const double* beliefs,
                                    std::size_t lanes, std::size_t stride,
                                    ActionId action, double min_probability,
                                    SuccessorFrontier& out) {
  RD_EXPECTS(stride >= pomdp.num_states(),
             "expand_successors_batch: row stride below the state count");
  const std::size_t num_states = pomdp.num_states();
  out.offsets.clear();
  out.obs.clear();
  out.gamma.clear();
  out.posteriors.clear();
  out.offsets.push_back(0);
  // One pass over the whole batch: every lane runs the identical
  // expand_successors_into() kernel sequence (prefetched CSR traversal,
  // SIMD-dispatched likelihood and scatter passes) and appends its kept
  // branches — ascending ObsId, exactly the per-node order — to the shared
  // SoA arrays. Per-lane results are bit-identical to lone calls because
  // the kernels never look across lanes.
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const std::span<const double> belief{beliefs + lane * stride, num_states};
    const std::size_t num_kept =
        expand_successors_into(pomdp, belief, action, min_probability, out.pred,
                               out.weight, out.branch_of, out.kept, out.row_scratch);
    for (std::size_t i = 0; i < num_kept; ++i) {
      out.obs.push_back(out.kept[i]);
      out.gamma.push_back(out.weight[out.kept[i]]);
    }
    out.posteriors.insert(out.posteriors.end(), out.row_scratch.begin(),
                          out.row_scratch.begin() +
                              static_cast<std::ptrdiff_t>(num_kept * num_states));
    out.offsets.push_back(out.obs.size());
  }
  return out.obs.size();
}

std::vector<ObservationBranch> belief_successors(const Pomdp& pomdp, const Belief& belief,
                                                 ActionId action,
                                                 double min_probability) {
  std::vector<double> pred, weight, posteriors;
  std::vector<std::size_t> branch_of;
  std::vector<ObsId> kept;
  const std::size_t num_kept =
      expand_successors_into(pomdp, belief.probabilities(), action, min_probability, pred,
                             weight, branch_of, kept, posteriors);
  const std::size_t num_states = pomdp.num_states();

  std::vector<ObservationBranch> branches;
  branches.reserve(num_kept);
  for (std::size_t i = 0; i < num_kept; ++i) {
    std::vector<double> unnormalized(posteriors.begin() + i * num_states,
                                     posteriors.begin() + (i + 1) * num_states);
    branches.push_back({kept[i], weight[kept[i]], Belief(std::move(unnormalized))});
  }
  return branches;
}

}  // namespace recoverd
