#include "pomdp/sampling.hpp"

#include "util/check.hpp"

namespace recoverd {

namespace {
// Walks a sparse probability row; the row is validated stochastic at model
// build time, so the final entry absorbs any floating-point residue.
std::size_t sample_sparse_row(std::span<const linalg::SparseEntry> row, Rng& rng) {
  RD_EXPECTS(!row.empty(), "sample_sparse_row: empty probability row");
  double u = rng.uniform01();
  for (std::size_t i = 0; i + 1 < row.size(); ++i) {
    if (u < row[i].value) return row[i].col;
    u -= row[i].value;
  }
  return row.back().col;
}
}  // namespace

StateId sample_transition(const Mdp& mdp, StateId s, ActionId a, Rng& rng) {
  RD_EXPECTS(s < mdp.num_states(), "sample_transition: state out of range");
  return sample_sparse_row(mdp.transition(a).row(s), rng);
}

ObsId sample_observation(const Pomdp& pomdp, StateId next, ActionId a, Rng& rng) {
  RD_EXPECTS(next < pomdp.num_states(), "sample_observation: state out of range");
  return sample_sparse_row(pomdp.observation(a).row(next), rng);
}

StateId sample_state(const Belief& belief, Rng& rng) {
  return rng.discrete(belief.probabilities());
}

}  // namespace recoverd
