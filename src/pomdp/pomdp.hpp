// Partially observable MDP: the Mdp plus a finite observation alphabet and
// observation function q(o|s', a) — the probability that observation o is
// generated when the system transitions *to* state s' as a result of action
// a (the paper's convention, §2).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "linalg/sparse_matrix.hpp"
#include "pomdp/mdp.hpp"
#include "pomdp/types.hpp"

namespace recoverd {

class PomdpBuilder;

/// Immutable POMDP. Construct through PomdpBuilder (or the transform
/// functions in pomdp/transforms.hpp).
class Pomdp {
 public:
  const Mdp& mdp() const { return mdp_; }

  std::size_t num_states() const { return mdp_.num_states(); }
  std::size_t num_actions() const { return mdp_.num_actions(); }
  std::size_t num_observations() const { return obs_names_.size(); }

  const std::string& observation_name(ObsId o) const;
  ObsId find_observation(const std::string& name) const;

  /// Row-stochastic |S|×|O| observation matrix of action a; row s' holds
  /// q(·|s', a).
  const linalg::SparseMatrix& observation(ActionId a) const;

  /// q(o|s', a).
  double observation_prob(StateId next, ActionId a, ObsId o) const;

  /// Terminate action aT added by add_termination_action(); kInvalidId when
  /// the model has no explicit terminate action.
  ActionId terminate_action() const { return terminate_action_; }

  /// Absorbing terminated state sT; kInvalidId when absent.
  StateId terminate_state() const { return terminate_state_; }

  bool has_terminate_action() const { return terminate_action_ != kInvalidId; }

 private:
  friend class PomdpBuilder;
  Pomdp() = default;

  Mdp mdp_;
  std::vector<std::string> obs_names_;
  std::vector<linalg::SparseMatrix> observations_;  // [a] : |S|×|O|
  ActionId terminate_action_ = kInvalidId;
  StateId terminate_state_ = kInvalidId;
};

/// Validated construction of a Pomdp on top of the MdpBuilder surface.
class PomdpBuilder {
 public:
  // --- Mdp surface (delegates) ---
  StateId add_state(std::string name, double ambient_rate = 0.0);
  ActionId add_action(std::string name, double duration);
  void set_transition(StateId s, ActionId a, StateId next, double prob);
  void set_rate_reward(StateId s, ActionId a, double rate);
  void set_impulse_reward(StateId s, ActionId a, double impulse);
  void mark_goal(StateId s);

  // --- observation surface ---
  ObsId add_observation(std::string name);

  /// Sets q(o|next, a) = prob.
  void set_observation(StateId next, ActionId a, ObsId o, double prob);

  /// Sets q(o|next, a) = prob for every action (common case: monitors behave
  /// the same regardless of which recovery action just ran).
  void set_observation_all_actions(StateId next, ObsId o, double prob);

  /// Marks a previously added action as the terminate action aT (used by
  /// the transform; exposed for hand-built models/tests).
  void mark_terminate(ActionId a, StateId absorbing_state);

  std::size_t num_states() const { return mdp_.num_states(); }
  std::size_t num_actions() const { return mdp_.num_actions(); }
  std::size_t num_observations() const { return obs_names_.size(); }

  /// Validates (stochastic observation rows for every (s', a)) and builds.
  Pomdp build(double tol = 1e-9) const;

 private:
  MdpBuilder mdp_;
  std::vector<std::string> obs_names_;
  // obs_[a][next] rows as (obs, prob) pairs.
  std::vector<std::vector<std::vector<std::pair<ObsId, double>>>> obs_;
  std::size_t states_ = 0;
  std::size_t actions_ = 0;
  ActionId terminate_action_ = kInvalidId;
  StateId terminate_state_ = kInvalidId;
};

}  // namespace recoverd
