// Partially observable MDP: the Mdp plus a finite observation alphabet and
// observation function q(o|s', a) — the probability that observation o is
// generated when the system transitions *to* state s' as a result of action
// a (the paper's convention, §2).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "linalg/sparse_matrix.hpp"
#include "pomdp/mdp.hpp"
#include "pomdp/types.hpp"

namespace recoverd {

class PomdpBuilder;

/// Immutable POMDP. Construct through PomdpBuilder (or the transform
/// functions in pomdp/transforms.hpp).
class Pomdp {
 public:
  const Mdp& mdp() const { return mdp_; }

  std::size_t num_states() const { return mdp_.num_states(); }
  std::size_t num_actions() const { return mdp_.num_actions(); }
  std::size_t num_observations() const { return obs_names_.size(); }

  const std::string& observation_name(ObsId o) const;
  ObsId find_observation(const std::string& name) const;

  /// Row-stochastic |S|×|O| observation matrix of action a; row s' holds
  /// q(·|s', a).
  const linalg::SparseMatrix& observation(ActionId a) const;

  /// |O|×|S| transpose of observation(a): row o holds q(o|·, a), entries in
  /// ascending state order. Precomputed at build time for the Max-Avg
  /// expansion hot path, which needs per-observation state slices — the
  /// observation likelihood γ(o) as one contiguous dot and posterior
  /// scatter over only the branches that survive the floor.
  const linalg::SparseMatrix& observation_transpose(ActionId a) const;

  /// Dense row-major |S|×|O| mirror of observation(a), or an empty span
  /// when the matrix is too sparse or too large to mirror (see
  /// kDenseMirrorMaxEntries / kDenseMirrorMinDensity). Monitor models are
  /// usually dense — every joint observation has some likelihood in every
  /// state — and the expansion hot loop runs markedly faster over
  /// contiguous rows than over (col, value) pairs; the zero entries a
  /// mirror adds contribute exact +0.0 terms, so dense results are
  /// bit-identical to the sparse scan. This orientation (one state's
  /// observation row contiguous) lets the likelihood pass accumulate all
  /// γ(o) simultaneously — independent per-observation sums, so the loop
  /// vectorizes without reordering any individual sum.
  std::span<const double> observation_dense(ActionId a) const;

  /// Dense row-major |O|×|S| mirror of observation_transpose(a), under the
  /// same gate: one observation's state slice contiguous, for the posterior
  /// scatter over kept branches.
  std::span<const double> observation_transpose_dense(ActionId a) const;

  /// Mirror gating: at most this many doubles per action (8 MB)…
  static constexpr std::size_t kDenseMirrorMaxEntries = 1u << 20;
  /// …and at least half the entries non-zero (below that the sparse scan's
  /// fewer multiply-adds beat the dense row's contiguity).
  static constexpr double kDenseMirrorMinDensity = 0.5;

  /// q(o|s', a).
  double observation_prob(StateId next, ActionId a, ObsId o) const;

  /// Terminate action aT added by add_termination_action(); kInvalidId when
  /// the model has no explicit terminate action.
  ActionId terminate_action() const { return terminate_action_; }

  /// Absorbing terminated state sT; kInvalidId when absent.
  StateId terminate_state() const { return terminate_state_; }

  bool has_terminate_action() const { return terminate_action_ != kInvalidId; }

 private:
  friend class PomdpBuilder;
  Pomdp() = default;

  Mdp mdp_;
  std::vector<std::string> obs_names_;
  std::vector<linalg::SparseMatrix> observations_;  // [a] : |S|×|O|
  std::vector<linalg::SparseMatrix> observation_transposes_;  // [a] : |O|×|S|
  // [a] : dense row-major mirrors (|S|×|O| and |O|×|S|), empty when gated
  // off.
  std::vector<std::vector<double>> observations_dense_;
  std::vector<std::vector<double>> observation_transposes_dense_;
  ActionId terminate_action_ = kInvalidId;
  StateId terminate_state_ = kInvalidId;
};

/// Validated construction of a Pomdp on top of the MdpBuilder surface.
class PomdpBuilder {
 public:
  // --- Mdp surface (delegates) ---
  StateId add_state(std::string name, double ambient_rate = 0.0);
  ActionId add_action(std::string name, double duration);
  void set_transition(StateId s, ActionId a, StateId next, double prob);
  void set_rate_reward(StateId s, ActionId a, double rate);
  void set_impulse_reward(StateId s, ActionId a, double impulse);
  void mark_goal(StateId s);

  // --- observation surface ---
  ObsId add_observation(std::string name);

  /// Sets q(o|next, a) = prob.
  void set_observation(StateId next, ActionId a, ObsId o, double prob);

  /// Sets q(o|next, a) = prob for every action (common case: monitors behave
  /// the same regardless of which recovery action just ran).
  void set_observation_all_actions(StateId next, ObsId o, double prob);

  /// Marks a previously added action as the terminate action aT (used by
  /// the transform; exposed for hand-built models/tests).
  void mark_terminate(ActionId a, StateId absorbing_state);

  std::size_t num_states() const { return mdp_.num_states(); }
  std::size_t num_actions() const { return mdp_.num_actions(); }
  std::size_t num_observations() const { return obs_names_.size(); }

  /// Validates (stochastic observation rows for every (s', a)) and builds.
  Pomdp build(double tol = 1e-9) const;

 private:
  MdpBuilder mdp_;
  std::vector<std::string> obs_names_;
  // obs_[a][next] rows as (obs, prob) pairs.
  std::vector<std::vector<std::vector<std::pair<ObsId, double>>>> obs_;
  std::size_t states_ = 0;
  std::size_t actions_ = 0;
  ActionId terminate_action_ = kInvalidId;
  StateId terminate_state_ = kInvalidId;
};

}  // namespace recoverd
