#include "pomdp/exact_solver.hpp"

#include <algorithm>
#include <iterator>
#include <limits>

#include "linalg/vector_ops.hpp"
#include "util/check.hpp"

namespace recoverd {

namespace {

// g_{a,o,α}(s) = Σ_{s'} p(s'|s,a)·q(o|s',a)·α(s'): the contribution of
// observation o under action a if the future follows α.
std::vector<AlphaVector> back_project(const Pomdp& pomdp, ActionId a, ObsId o,
                                      const std::vector<AlphaVector>& gamma) {
  const std::size_t n = pomdp.num_states();
  const auto& t = pomdp.mdp().transition(a);
  const auto& q = pomdp.observation(a);

  // Weight each α by q(o|s',a) once, then push through P(a).
  std::vector<AlphaVector> out;
  out.reserve(gamma.size());
  for (const auto& alpha : gamma) {
    AlphaVector weighted(n, 0.0);
    for (StateId sp = 0; sp < n; ++sp) {
      const double qv = q.at(sp, o);
      if (qv > 0.0) weighted[sp] = qv * alpha[sp];
    }
    AlphaVector g(n, 0.0);
    for (StateId s = 0; s < n; ++s) {
      double acc = 0.0;
      for (const auto& e : t.row(s)) acc += e.value * weighted[e.col];
      g[s] = acc;
    }
    out.push_back(std::move(g));
  }
  return out;
}

// Cross-sum {u + v : u ∈ a, v ∈ b}.
std::vector<AlphaVector> cross_sum(const std::vector<AlphaVector>& a,
                                   const std::vector<AlphaVector>& b) {
  std::vector<AlphaVector> out;
  out.reserve(a.size() * b.size());
  for (const auto& u : a) {
    for (const auto& v : b) {
      AlphaVector w(u);
      linalg::axpy(1.0, v, w);
      out.push_back(std::move(w));
    }
  }
  return out;
}

}  // namespace

std::vector<AlphaVector> prune_pointwise_dominated(std::vector<AlphaVector> vectors,
                                                   double tolerance) {
  std::vector<AlphaVector> kept;
  kept.reserve(vectors.size());
  for (auto& candidate : vectors) {
    bool dominated = false;
    for (const auto& other : kept) {
      if (linalg::dominates(other, candidate, tolerance)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    // Remove previously kept vectors the candidate dominates.
    kept.erase(std::remove_if(kept.begin(), kept.end(),
                              [&](const AlphaVector& other) {
                                return linalg::dominates(candidate, other, tolerance);
                              }),
               kept.end());
    kept.push_back(std::move(candidate));
  }
  return kept;
}

ExactSolveResult solve_finite_horizon(const Pomdp& pomdp,
                                      const ExactSolverOptions& options) {
  RD_EXPECTS(options.horizon >= 0, "solve_finite_horizon: horizon must be >= 0");
  RD_EXPECTS(options.prune_tolerance >= 0.0,
             "solve_finite_horizon: tolerance must be >= 0");
  const std::size_t n = pomdp.num_states();

  ExactSolveResult result;
  std::vector<AlphaVector> gamma{AlphaVector(n, 0.0)};  // V_0 = {0}

  for (int stage = 0; stage < options.horizon; ++stage) {
    std::vector<AlphaVector> next;
    for (ActionId a = 0; a < pomdp.num_actions(); ++a) {
      // Start from the reward vector, then cross-sum one observation at a
      // time, pruning between steps to keep the set manageable.
      std::vector<AlphaVector> acc{
          AlphaVector(pomdp.mdp().rewards(a).begin(), pomdp.mdp().rewards(a).end())};
      for (ObsId o = 0; o < pomdp.num_observations(); ++o) {
        const auto projected = back_project(pomdp, a, o, gamma);
        acc = prune_pointwise_dominated(cross_sum(acc, projected),
                                        options.prune_tolerance);
        if (acc.size() > options.max_vectors) {
          result.truncated = true;
          result.alpha_vectors = std::move(gamma);
          return result;
        }
      }
      next.insert(next.end(), std::make_move_iterator(acc.begin()),
                  std::make_move_iterator(acc.end()));
    }
    gamma = prune_pointwise_dominated(std::move(next), options.prune_tolerance);
    result.stage_sizes.push_back(gamma.size());
    result.horizon_reached = stage + 1;
    if (gamma.size() > options.max_vectors) {
      result.truncated = true;
      break;
    }
  }
  result.alpha_vectors = std::move(gamma);
  return result;
}

double evaluate_alpha_vectors(const std::vector<AlphaVector>& vectors,
                              const Belief& belief) {
  RD_EXPECTS(!vectors.empty(), "evaluate_alpha_vectors: empty vector set");
  double best = -std::numeric_limits<double>::infinity();
  for (const auto& alpha : vectors) {
    best = std::max(best, linalg::dot(alpha, belief.probabilities()));
  }
  return best;
}

}  // namespace recoverd
