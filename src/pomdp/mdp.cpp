#include "pomdp/mdp.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace recoverd {

const std::string& Mdp::state_name(StateId s) const {
  RD_EXPECTS(s < num_states(), "Mdp::state_name: state out of range");
  return state_names_[s];
}

const std::string& Mdp::action_name(ActionId a) const {
  RD_EXPECTS(a < num_actions(), "Mdp::action_name: action out of range");
  return action_names_[a];
}

StateId Mdp::find_state(const std::string& name) const {
  const auto it = std::find(state_names_.begin(), state_names_.end(), name);
  return it == state_names_.end() ? kInvalidId
                                  : static_cast<StateId>(it - state_names_.begin());
}

ActionId Mdp::find_action(const std::string& name) const {
  const auto it = std::find(action_names_.begin(), action_names_.end(), name);
  return it == action_names_.end() ? kInvalidId
                                   : static_cast<ActionId>(it - action_names_.begin());
}

const linalg::SparseMatrix& Mdp::transition(ActionId a) const {
  RD_EXPECTS(a < num_actions(), "Mdp::transition: action out of range");
  return transitions_[a];
}

double Mdp::transition_prob(StateId s, ActionId a, StateId next) const {
  RD_EXPECTS(s < num_states() && next < num_states(),
             "Mdp::transition_prob: state out of range");
  return transition(a).at(s, next);
}

double Mdp::reward(StateId s, ActionId a) const {
  RD_EXPECTS(s < num_states(), "Mdp::reward: state out of range");
  RD_EXPECTS(a < num_actions(), "Mdp::reward: action out of range");
  return rewards_[a][s];
}

std::span<const double> Mdp::rewards(ActionId a) const {
  RD_EXPECTS(a < num_actions(), "Mdp::rewards: action out of range");
  return rewards_[a];
}

double Mdp::rate_reward(StateId s, ActionId a) const {
  RD_EXPECTS(s < num_states() && a < num_actions(), "Mdp::rate_reward: out of range");
  return rate_rewards_[a][s];
}

double Mdp::impulse_reward(StateId s, ActionId a) const {
  RD_EXPECTS(s < num_states() && a < num_actions(), "Mdp::impulse_reward: out of range");
  return impulse_rewards_[a][s];
}

double Mdp::duration(ActionId a) const {
  RD_EXPECTS(a < num_actions(), "Mdp::duration: action out of range");
  return durations_[a];
}

double Mdp::state_rate_reward(StateId s) const {
  RD_EXPECTS(s < num_states(), "Mdp::state_rate_reward: state out of range");
  return state_rate_rewards_[s];
}

bool Mdp::is_goal(StateId s) const {
  RD_EXPECTS(s < num_states(), "Mdp::is_goal: state out of range");
  return is_goal_[s];
}

double Mdp::goal_probability(std::span<const double> distribution) const {
  RD_EXPECTS(distribution.size() == num_states(),
             "Mdp::goal_probability: dimension mismatch");
  double p = 0.0;
  for (StateId s : goal_states_) p += distribution[s];
  return p;
}

void MdpBuilder::check_state(StateId s) const {
  RD_EXPECTS(s < states_.size(), "MdpBuilder: state id out of range");
}

void MdpBuilder::check_action(ActionId a) const {
  RD_EXPECTS(a < actions_.size(), "MdpBuilder: action id out of range");
}

StateId MdpBuilder::add_state(std::string name, double ambient_rate) {
  RD_EXPECTS(!name.empty(), "MdpBuilder::add_state: name must be non-empty");
  RD_EXPECTS(std::isfinite(ambient_rate) && ambient_rate <= 0.0,
             "MdpBuilder::add_state: ambient rate must be finite and <= 0");
  states_.push_back({std::move(name), ambient_rate});
  for (std::size_t a = 0; a < actions_.size(); ++a) {
    transitions_[a].emplace_back();
    rate_overrides_[a].emplace_back();
    impulse_overrides_[a].emplace_back();
  }
  return states_.size() - 1;
}

ActionId MdpBuilder::add_action(std::string name, double duration) {
  RD_EXPECTS(!name.empty(), "MdpBuilder::add_action: name must be non-empty");
  RD_EXPECTS(std::isfinite(duration) && duration >= 0.0,
             "MdpBuilder::add_action: duration must be finite and >= 0");
  actions_.push_back({std::move(name), duration});
  transitions_.emplace_back(states_.size());
  rate_overrides_.emplace_back(states_.size());
  impulse_overrides_.emplace_back(states_.size());
  return actions_.size() - 1;
}

void MdpBuilder::set_transition(StateId s, ActionId a, StateId next, double prob) {
  check_state(s);
  check_state(next);
  check_action(a);
  RD_EXPECTS(std::isfinite(prob) && prob >= 0.0 && prob <= 1.0 + 1e-12,
             "MdpBuilder::set_transition: probability must lie in [0,1]");
  auto& row = transitions_[a][s];
  const auto it = std::find_if(row.begin(), row.end(),
                               [next](const auto& e) { return e.first == next; });
  if (it != row.end()) {
    it->second = prob;
  } else {
    row.emplace_back(next, prob);
  }
}

void MdpBuilder::set_rate_reward(StateId s, ActionId a, double rate) {
  check_state(s);
  check_action(a);
  RD_EXPECTS(std::isfinite(rate) && rate <= 0.0,
             "MdpBuilder::set_rate_reward: rate must be finite and <= 0");
  rate_overrides_[a][s] = {true, rate};
}

void MdpBuilder::set_impulse_reward(StateId s, ActionId a, double impulse) {
  check_state(s);
  check_action(a);
  RD_EXPECTS(std::isfinite(impulse), "MdpBuilder::set_impulse_reward: must be finite");
  impulse_overrides_[a][s] = {true, impulse};
}

void MdpBuilder::mark_goal(StateId s) {
  check_state(s);
  if (std::find(goals_.begin(), goals_.end(), s) == goals_.end()) goals_.push_back(s);
}

Mdp MdpBuilder::build(double tol) const {
  if (states_.empty()) throw ModelError("MdpBuilder: model has no states");
  if (actions_.empty()) throw ModelError("MdpBuilder: model has no actions");

  Mdp m;
  m.state_names_.reserve(states_.size());
  m.state_rate_rewards_.reserve(states_.size());
  for (const auto& st : states_) {
    m.state_names_.push_back(st.name);
    m.state_rate_rewards_.push_back(st.ambient_rate);
  }
  for (const auto& ac : actions_) {
    m.action_names_.push_back(ac.name);
    m.durations_.push_back(ac.duration);
  }

  const std::size_t n = states_.size();
  for (std::size_t a = 0; a < actions_.size(); ++a) {
    // Assemble CSR row by row: rows are independent and tiny (a handful of
    // next states), so sorting each row beats the triplet builder's global
    // O(nnz log nnz) sort — the difference between seconds and minutes at
    // 10^6 states.
    std::vector<std::size_t> row_ptr(n + 1, 0);
    for (std::size_t s = 0; s < n; ++s) {
      std::size_t count = 0;
      for (const auto& [next, prob] : transitions_[a][s]) {
        if (prob != 0.0) ++count;
      }
      row_ptr[s + 1] = row_ptr[s] + count;
    }
    std::vector<linalg::SparseEntry> entries(row_ptr[n]);
    for (std::size_t s = 0; s < n; ++s) {
      double row_total = 0.0;
      std::size_t out = row_ptr[s];
      for (const auto& [next, prob] : transitions_[a][s]) {
        if (prob == 0.0) continue;
        entries[out++] = {next, prob};
        row_total += prob;
      }
      // set_transition overwrites duplicates, so columns are unique here.
      std::sort(entries.begin() + static_cast<std::ptrdiff_t>(row_ptr[s]),
                entries.begin() + static_cast<std::ptrdiff_t>(out),
                [](const auto& x, const auto& y) { return x.col < y.col; });
      if (std::abs(row_total - 1.0) > tol) {
        throw ModelError("MdpBuilder: transition row for state '" + states_[s].name +
                         "', action '" + actions_[a].name + "' sums to " +
                         std::to_string(row_total) + " (expected 1)");
      }
    }
    m.transitions_.push_back(
        linalg::SparseMatrix::from_csr(n, std::move(row_ptr), std::move(entries)));

    std::vector<double> rates(n), impulses(n), combined(n);
    for (std::size_t s = 0; s < n; ++s) {
      rates[s] = rate_overrides_[a][s].set ? rate_overrides_[a][s].value
                                           : states_[s].ambient_rate;
      impulses[s] = impulse_overrides_[a][s].set ? impulse_overrides_[a][s].value : 0.0;
      combined[s] = rates[s] * actions_[a].duration + impulses[s];
      if (combined[s] > 0.0) {
        throw ModelError("MdpBuilder: reward r('" + states_[s].name + "', '" +
                         actions_[a].name +
                         "') is positive, violating Condition 2 (non-positive rewards)");
      }
    }
    m.rate_rewards_.push_back(std::move(rates));
    m.impulse_rewards_.push_back(std::move(impulses));
    m.rewards_.push_back(std::move(combined));
  }

  m.goal_states_ = goals_;
  std::sort(m.goal_states_.begin(), m.goal_states_.end());
  m.is_goal_.assign(n, false);
  for (StateId g : m.goal_states_) m.is_goal_[g] = true;
  return m;
}

}  // namespace recoverd
