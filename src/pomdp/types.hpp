// Identifier types shared across the POMDP layers.
//
// States, actions, and observations are dense indices into the model's
// tables. Strong typedefs are deliberately avoided (the maths in Eq. 2–7
// mixes them inside matrix code constantly), but the aliases keep signatures
// self-describing per Core Guidelines P.1.
#pragma once

#include <cstddef>
#include <limits>

namespace recoverd {

using StateId = std::size_t;
using ActionId = std::size_t;
using ObsId = std::size_t;

/// Sentinel for "no such id" (e.g. a model without a terminate action).
inline constexpr std::size_t kInvalidId = std::numeric_limits<std::size_t>::max();

}  // namespace recoverd
