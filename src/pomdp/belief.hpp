// Belief states over the POMDP state space and the Bayes update of Eq. 3/4.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "pomdp/pomdp.hpp"
#include "pomdp/types.hpp"

namespace recoverd {

/// A probability distribution π over states. Always normalised (sum 1).
class Belief {
 public:
  /// Uniform belief over all `n` states.
  static Belief uniform(std::size_t n);

  /// Uniform belief over a subset of states (e.g. "all faults equally
  /// likely" excludes the null state — §4 of the paper).
  static Belief uniform_over(std::size_t n, std::span<const StateId> support);

  /// Point-mass belief at state s.
  static Belief point(std::size_t n, StateId s);

  /// From an explicit distribution; normalised on construction.
  /// Precondition: non-negative entries with a positive sum.
  explicit Belief(std::vector<double> probabilities);

  std::size_t size() const { return pi_.size(); }
  double operator[](StateId s) const { return pi_[s]; }
  std::span<const double> probabilities() const { return pi_; }

  /// State with the highest probability (ties break to the lowest id).
  StateId most_likely() const;

  /// Shannon entropy in nats (0 for point masses).
  double entropy() const;

  /// Max-norm distance to another belief of the same dimension.
  double distance(const Belief& other) const;

 private:
  std::vector<double> pi_;
};

/// Result of conditioning a belief on (action, observation).
struct BeliefUpdate {
  Belief next;        ///< π^{π,a,o} of Eq. 4
  double likelihood;  ///< γ^{π,a}(o) of Eq. 3
};

/// Predicted (pre-observation) state distribution after action a:
/// pred(s) = Σ_{s'} p(s|s', a) π(s').
std::vector<double> predict_state_distribution(const Pomdp& pomdp, const Belief& belief,
                                               ActionId action);

/// γ^{π,a}(o) of Eq. 3.
double observation_likelihood(const Pomdp& pomdp, const Belief& belief, ActionId action,
                              ObsId obs);

/// Bayes update (Eq. 4). Returns nullopt when the observation has zero
/// likelihood under (π, a) — the caller observed something the model says is
/// impossible (a model-mismatch signal the controller surfaces).
std::optional<BeliefUpdate> update_belief(const Pomdp& pomdp, const Belief& belief,
                                          ActionId action, ObsId obs);

/// One reachable (observation, probability, posterior) branch of the
/// Max-Avg tree (Fig. 1(b)).
struct ObservationBranch {
  ObsId obs;
  double probability;  ///< γ^{π,a}(o) > 0
  Belief posterior;
};

/// All observation branches with likelihood above `min_probability`,
/// ordered by ObsId. With min_probability = 0 the probabilities sum to 1;
/// a positive floor skips the (possibly many) negligible branches *before*
/// constructing their posteriors — the hot-path knob behind the Max-Avg
/// tree's branch pruning.
std::vector<ObservationBranch> belief_successors(const Pomdp& pomdp, const Belief& belief,
                                                 ActionId action,
                                                 double min_probability = 0.0);

}  // namespace recoverd
