// Belief states over the POMDP state space and the Bayes update of Eq. 3/4.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "pomdp/pomdp.hpp"
#include "pomdp/types.hpp"

namespace recoverd {

/// A probability distribution π over states. Always normalised (sum 1).
class Belief {
 public:
  /// Uniform belief over all `n` states.
  static Belief uniform(std::size_t n);

  /// Uniform belief over a subset of states (e.g. "all faults equally
  /// likely" excludes the null state — §4 of the paper).
  static Belief uniform_over(std::size_t n, std::span<const StateId> support);

  /// Point-mass belief at state s.
  static Belief point(std::size_t n, StateId s);

  /// From an explicit distribution; normalised on construction.
  /// Precondition: non-negative entries with a positive sum.
  explicit Belief(std::vector<double> probabilities);

  /// Trusted construction from an already-normalised distribution. The
  /// entries are copied verbatim — no renormalisation — so the stored
  /// probabilities are bit-identical to the input. Used by the expansion
  /// engine's compatibility wrappers, where a second normalisation would
  /// perturb the low-order bits. Precondition: `probabilities` sums to 1
  /// (up to rounding); not re-checked beyond being non-empty.
  static Belief from_normalized(std::span<const double> probabilities);

  /// In-place variant of from_normalized(): replaces the stored distribution
  /// with a verbatim copy, reusing this belief's allocation. The expansion
  /// wrappers call a type-erased leaf with one reused Belief per tree — at
  /// hundreds of thousands of leaves per decision the per-leaf heap
  /// allocation of from_normalized() is the dominant wrapper cost.
  void assign_normalized(std::span<const double> probabilities);

  std::size_t size() const { return pi_.size(); }
  double operator[](StateId s) const { return pi_[s]; }
  std::span<const double> probabilities() const { return pi_; }

  /// State with the highest probability (ties break to the lowest id).
  StateId most_likely() const;

  /// Shannon entropy in nats (0 for point masses).
  double entropy() const;

  /// Max-norm distance to another belief of the same dimension.
  double distance(const Belief& other) const;

 private:
  Belief() = default;  // for from_normalized() only — pi_ filled in verbatim
  std::vector<double> pi_;
};

/// Result of conditioning a belief on (action, observation).
struct BeliefUpdate {
  Belief next;        ///< π^{π,a,o} of Eq. 4
  double likelihood;  ///< γ^{π,a}(o) of Eq. 3
};

/// Predicted (pre-observation) state distribution after action a:
/// pred(s) = Σ_{s'} p(s|s', a) π(s').
std::vector<double> predict_state_distribution(const Pomdp& pomdp, const Belief& belief,
                                               ActionId action);

/// Allocation-free variant: writes pred into caller-owned storage of size
/// |S|, overwriting it. Bit-identical arithmetic to
/// predict_state_distribution().
void predict_state_distribution_into(const Pomdp& pomdp, std::span<const double> belief,
                                     ActionId action, std::span<double> out);

/// Sentinel in expand_successors_into()'s `branch_of` map for observations
/// that are unreachable or pruned by the floor.
inline constexpr std::size_t kNoBranch = static_cast<std::size_t>(-1);

/// Allocation-free core of belief_successors(), shared with the expansion
/// engine so both code paths stay arithmetically identical. On return:
///  - `pred` (|S|): predicted pre-observation distribution πᵀP(a);
///  - `weight` (|O|): per-observation likelihoods γ^{π,a}(o);
///  - `branch_of` (|O|): kept-branch index per observation, kNoBranch when
///    unreachable or pruned;
///  - `kept`: surviving observation ids in ascending order;
///  - `posteriors`: row-major kept.size()×|S| *unnormalised* posterior mass
///    (row i belongs to kept[i]; callers normalise — exactly once — before
///    use).
/// The output vectors are resized as needed and retain their capacity, so a
/// caller that reuses them across calls allocates only until the high-water
/// mark is reached. Bumps the same branches_kept/branches_pruned counters as
/// belief_successors(). Returns kept.size().
std::size_t expand_successors_into(const Pomdp& pomdp, std::span<const double> belief,
                                   ActionId action, double min_probability,
                                   std::vector<double>& pred, std::vector<double>& weight,
                                   std::vector<std::size_t>& branch_of,
                                   std::vector<ObsId>& kept,
                                   std::vector<double>& posteriors);

/// SoA successor frontier of a whole batch of beliefs under one action —
/// the unit the deep-batch pipeline (DESIGN.md §16) expands per tree
/// level. Branches are stored lane-major: lane l's kept branches occupy
/// positions [offsets[l], offsets[l+1]) of `obs`/`gamma` and the matching
/// row-major rows of `posteriors`, in ascending ObsId — exactly the order
/// a lone expand_successors_into() call emits for that lane.
struct SuccessorFrontier {
  std::vector<std::size_t> offsets;  ///< lanes + 1 prefix sums
  std::vector<ObsId> obs;            ///< kept observation ids
  std::vector<double> gamma;         ///< γ^{π,a}(o) per kept branch
  std::vector<double> posteriors;    ///< unnormalised posterior rows (|S| each)

  std::size_t branches() const { return obs.size(); }

  // Reused per-call scratch (same role as expand_successors_into()'s
  // caller-owned vectors; kept here so batch callers hold one object).
  std::vector<double> pred;
  std::vector<double> weight;
  std::vector<std::size_t> branch_of;
  std::vector<ObsId> kept;
  std::vector<double> row_scratch;
};

/// Expands `lanes` beliefs (rows of `beliefs`, `stride` doubles apart — a
/// BeliefBatch's state-major mirror or any row-major matrix) under one
/// action in a single pass, appending every surviving branch to `out` with
/// prefetched CSR row traversal and the SIMD-dispatched likelihood/scatter
/// kernels. Per lane the arithmetic (and the branches_kept/branches_pruned
/// accounting) is bit-identical to expand_successors_into(). Returns the
/// total branch count.
std::size_t expand_successors_batch(const Pomdp& pomdp, const double* beliefs,
                                    std::size_t lanes, std::size_t stride,
                                    ActionId action, double min_probability,
                                    SuccessorFrontier& out);

/// γ^{π,a}(o) of Eq. 3.
double observation_likelihood(const Pomdp& pomdp, const Belief& belief, ActionId action,
                              ObsId obs);

/// Bayes update (Eq. 4). Returns nullopt when the observation has zero
/// likelihood under (π, a) — the caller observed something the model says is
/// impossible (a model-mismatch signal the controller surfaces).
std::optional<BeliefUpdate> update_belief(const Pomdp& pomdp, const Belief& belief,
                                          ActionId action, ObsId obs);

/// One reachable (observation, probability, posterior) branch of the
/// Max-Avg tree (Fig. 1(b)).
struct ObservationBranch {
  ObsId obs;
  double probability;  ///< γ^{π,a}(o) > 0
  Belief posterior;
};

/// All observation branches with likelihood above `min_probability`,
/// ordered by ObsId. With min_probability = 0 the probabilities sum to 1;
/// a positive floor skips the (possibly many) negligible branches *before*
/// constructing their posteriors — the hot-path knob behind the Max-Avg
/// tree's branch pruning.
std::vector<ObservationBranch> belief_successors(const Pomdp& pomdp, const Belief& belief,
                                                 ActionId action,
                                                 double min_probability = 0.0);

}  // namespace recoverd
