// Lossless text serialisation of recovery POMDPs.
//
// The format is line-oriented and covers everything the Cassandra .pomdp
// format cannot express about recovery models (action durations, ambient
// cost rates, goal sets, rate/impulse reward split, the terminate marker):
//
//   # comments and blank lines are ignored
//   recoverd-pomdp 1
//   state <name> <ambient_rate> [goal]
//   action <name> <duration>
//   observation <name>
//   T <state> <action> <next_state> <prob>
//   Rrate <state> <action> <rate>          (only rows overriding the ambient)
//   Rimp <state> <action> <impulse>        (only nonzero rows)
//   O <next_state> <action> <observation> <prob>
//   terminate <action> <state>             (optional)
//
// Names are quoted with |...| when they contain whitespace. Loading
// re-validates through PomdpBuilder, so a hand-edited file that breaks
// stochasticity or Condition 2 is rejected with a ModelError.
#pragma once

#include <iosfwd>
#include <string>

#include "pomdp/pomdp.hpp"

namespace recoverd {

/// Writes `pomdp` to `os` in the format above.
void save_pomdp(std::ostream& os, const Pomdp& pomdp);

/// Saves to a file. Throws ModelError when the file cannot be opened.
void save_pomdp_file(const std::string& path, const Pomdp& pomdp);

/// Parses a model; throws ModelError on syntax or validation failures
/// (message includes the offending line number).
Pomdp load_pomdp(std::istream& is);

/// Loads from a file. Throws ModelError when the file cannot be opened.
Pomdp load_pomdp_file(const std::string& path);

}  // namespace recoverd
