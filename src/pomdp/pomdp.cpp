#include "pomdp/pomdp.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace recoverd {

const std::string& Pomdp::observation_name(ObsId o) const {
  RD_EXPECTS(o < num_observations(), "Pomdp::observation_name: out of range");
  return obs_names_[o];
}

ObsId Pomdp::find_observation(const std::string& name) const {
  const auto it = std::find(obs_names_.begin(), obs_names_.end(), name);
  return it == obs_names_.end() ? kInvalidId
                                : static_cast<ObsId>(it - obs_names_.begin());
}

const linalg::SparseMatrix& Pomdp::observation(ActionId a) const {
  RD_EXPECTS(a < num_actions(), "Pomdp::observation: action out of range");
  return observations_[a];
}

const linalg::SparseMatrix& Pomdp::observation_transpose(ActionId a) const {
  RD_EXPECTS(a < num_actions(), "Pomdp::observation_transpose: action out of range");
  return observation_transposes_[a];
}

std::span<const double> Pomdp::observation_dense(ActionId a) const {
  RD_EXPECTS(a < num_actions(), "Pomdp::observation_dense: action out of range");
  return observations_dense_[a];
}

std::span<const double> Pomdp::observation_transpose_dense(ActionId a) const {
  RD_EXPECTS(a < num_actions(),
             "Pomdp::observation_transpose_dense: action out of range");
  return observation_transposes_dense_[a];
}

double Pomdp::observation_prob(StateId next, ActionId a, ObsId o) const {
  RD_EXPECTS(next < num_states(), "Pomdp::observation_prob: state out of range");
  RD_EXPECTS(o < num_observations(), "Pomdp::observation_prob: observation out of range");
  return observation(a).at(next, o);
}

StateId PomdpBuilder::add_state(std::string name, double ambient_rate) {
  const StateId s = mdp_.add_state(std::move(name), ambient_rate);
  for (auto& per_action : obs_) per_action.emplace_back();
  ++states_;
  return s;
}

ActionId PomdpBuilder::add_action(std::string name, double duration) {
  const ActionId a = mdp_.add_action(std::move(name), duration);
  obs_.emplace_back(states_);
  ++actions_;
  return a;
}

void PomdpBuilder::set_transition(StateId s, ActionId a, StateId next, double prob) {
  mdp_.set_transition(s, a, next, prob);
}

void PomdpBuilder::set_rate_reward(StateId s, ActionId a, double rate) {
  mdp_.set_rate_reward(s, a, rate);
}

void PomdpBuilder::set_impulse_reward(StateId s, ActionId a, double impulse) {
  mdp_.set_impulse_reward(s, a, impulse);
}

void PomdpBuilder::mark_goal(StateId s) { mdp_.mark_goal(s); }

ObsId PomdpBuilder::add_observation(std::string name) {
  RD_EXPECTS(!name.empty(), "PomdpBuilder::add_observation: name must be non-empty");
  obs_names_.push_back(std::move(name));
  return obs_names_.size() - 1;
}

void PomdpBuilder::set_observation(StateId next, ActionId a, ObsId o, double prob) {
  RD_EXPECTS(next < states_, "PomdpBuilder::set_observation: state out of range");
  RD_EXPECTS(a < actions_, "PomdpBuilder::set_observation: action out of range");
  RD_EXPECTS(o < obs_names_.size(), "PomdpBuilder::set_observation: observation out of range");
  RD_EXPECTS(std::isfinite(prob) && prob >= 0.0 && prob <= 1.0 + 1e-12,
             "PomdpBuilder::set_observation: probability must lie in [0,1]");
  auto& row = obs_[a][next];
  const auto it =
      std::find_if(row.begin(), row.end(), [o](const auto& e) { return e.first == o; });
  if (it != row.end()) {
    it->second = prob;
  } else {
    row.emplace_back(o, prob);
  }
}

void PomdpBuilder::set_observation_all_actions(StateId next, ObsId o, double prob) {
  for (ActionId a = 0; a < actions_; ++a) set_observation(next, a, o, prob);
}

void PomdpBuilder::mark_terminate(ActionId a, StateId absorbing_state) {
  RD_EXPECTS(a < actions_, "PomdpBuilder::mark_terminate: action out of range");
  RD_EXPECTS(absorbing_state < states_, "PomdpBuilder::mark_terminate: state out of range");
  terminate_action_ = a;
  terminate_state_ = absorbing_state;
}

Pomdp PomdpBuilder::build(double tol) const {
  if (obs_names_.empty()) throw ModelError("PomdpBuilder: model has no observations");

  Pomdp p;
  p.mdp_ = mdp_.build(tol);
  p.obs_names_ = obs_names_;
  p.terminate_action_ = terminate_action_;
  p.terminate_state_ = terminate_state_;

  const std::size_t n = states_;
  for (std::size_t a = 0; a < actions_; ++a) {
    linalg::SparseMatrixBuilder qb(n, obs_names_.size());
    for (std::size_t next = 0; next < n; ++next) {
      double total = 0.0;
      for (const auto& [o, prob] : obs_[a][next]) {
        if (prob == 0.0) continue;
        qb.add(next, o, prob);
        total += prob;
      }
      if (std::abs(total - 1.0) > tol) {
        throw ModelError("PomdpBuilder: observation row for next-state '" +
                         p.mdp_.state_name(next) + "', action '" +
                         p.mdp_.action_name(a) + "' sums to " + std::to_string(total) +
                         " (expected 1)");
      }
    }
    p.observations_.push_back(qb.build());
    p.observation_transposes_.push_back(p.observations_.back().transpose());

    const linalg::SparseMatrix& qt = p.observation_transposes_.back();
    const std::size_t total = qt.rows() * qt.cols();
    std::size_t nnz = 0;
    for (std::size_t o = 0; o < qt.rows(); ++o) nnz += qt.row(o).size();
    std::vector<double> dense;
    std::vector<double> dense_t;
    if (total > 0 && total <= Pomdp::kDenseMirrorMaxEntries &&
        static_cast<double>(nnz) >=
            Pomdp::kDenseMirrorMinDensity * static_cast<double>(total)) {
      dense.assign(total, 0.0);
      dense_t.assign(total, 0.0);
      const std::size_t num_obs = qt.rows();
      for (std::size_t o = 0; o < num_obs; ++o) {
        double* row_t = dense_t.data() + o * qt.cols();
        for (const auto& e : qt.row(o)) {
          row_t[e.col] = e.value;
          dense[e.col * num_obs + o] = e.value;
        }
      }
    }
    p.observations_dense_.push_back(std::move(dense));
    p.observation_transposes_dense_.push_back(std::move(dense_t));
  }
  return p;
}

}  // namespace recoverd
