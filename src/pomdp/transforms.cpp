#include "pomdp/transforms.hpp"

#include "util/check.hpp"

namespace recoverd {

namespace detail {

void copy_pomdp_into_builder(const Pomdp& src, PomdpBuilder& dst) {
  const Mdp& mdp = src.mdp();
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    dst.add_state(mdp.state_name(s), mdp.state_rate_reward(s));
    if (mdp.is_goal(s)) dst.mark_goal(s);
  }
  for (ActionId a = 0; a < mdp.num_actions(); ++a) {
    dst.add_action(mdp.action_name(a), mdp.duration(a));
  }
  for (ObsId o = 0; o < src.num_observations(); ++o) {
    dst.add_observation(src.observation_name(o));
  }
  for (ActionId a = 0; a < mdp.num_actions(); ++a) {
    const auto& t = mdp.transition(a);
    const auto& q = src.observation(a);
    for (StateId s = 0; s < mdp.num_states(); ++s) {
      for (const auto& e : t.row(s)) dst.set_transition(s, a, e.col, e.value);
      for (const auto& e : q.row(s)) dst.set_observation(s, a, e.col, e.value);
      dst.set_rate_reward(s, a, mdp.rate_reward(s, a));
      dst.set_impulse_reward(s, a, mdp.impulse_reward(s, a));
    }
  }
  if (src.has_terminate_action()) {
    dst.mark_terminate(src.terminate_action(), src.terminate_state());
  }
}

}  // namespace detail

Pomdp with_recovery_notification(const Pomdp& pomdp) {
  const Mdp& mdp = pomdp.mdp();
  RD_EXPECTS(!mdp.goal_states().empty(),
             "with_recovery_notification: model needs a non-empty goal set");

  PomdpBuilder b;
  detail::copy_pomdp_into_builder(pomdp, b);

  // Every goal state becomes absorbing with zero reward under every action.
  for (StateId g : mdp.goal_states()) {
    for (ActionId a = 0; a < mdp.num_actions(); ++a) {
      // Clear the copied row by overwriting each copied entry with 0, then
      // install the self-loop.
      for (const auto& e : mdp.transition(a).row(g)) b.set_transition(g, a, e.col, 0.0);
      b.set_transition(g, a, g, 1.0);
      b.set_rate_reward(g, a, 0.0);
      b.set_impulse_reward(g, a, 0.0);
    }
  }
  return b.build();
}

Pomdp add_termination(const Pomdp& pomdp, double operator_response_time,
                      const std::string& terminated_obs_name) {
  const Mdp& mdp = pomdp.mdp();
  RD_EXPECTS(!mdp.goal_states().empty(),
             "add_termination: model needs a non-empty goal set");
  RD_EXPECTS(operator_response_time > 0.0,
             "add_termination: operator response time must be positive");
  RD_EXPECTS(!pomdp.has_terminate_action(),
             "add_termination: model already has a terminate action");

  PomdpBuilder b;
  detail::copy_pomdp_into_builder(pomdp, b);

  const StateId st = b.add_state("__terminated__", 0.0);
  const ObsId term_obs = b.add_observation(terminated_obs_name);
  const ActionId at = b.add_action("__terminate__", 0.0);

  // sT is absorbing with zero reward under every action, and emits the
  // dedicated observation deterministically.
  for (ActionId a = 0; a < b.num_actions(); ++a) {
    b.set_transition(st, a, st, 1.0);
    b.set_rate_reward(st, a, 0.0);
    b.set_impulse_reward(st, a, 0.0);
    b.set_observation(st, a, term_obs, 1.0);
  }

  // aT maps every state to sT with the termination reward; its observation
  // rows for states other than sT are unreachable but must be stochastic, so
  // they also emit the dedicated observation.
  const std::size_t n = mdp.num_states();
  for (StateId s = 0; s < n; ++s) {
    b.set_transition(s, at, st, 1.0);
    b.set_rate_reward(s, at, 0.0);
    const double termination_reward =
        mdp.is_goal(s) ? 0.0 : mdp.state_rate_reward(s) * operator_response_time;
    b.set_impulse_reward(s, at, termination_reward);
    b.set_observation(s, at, term_obs, 1.0);
  }

  b.mark_terminate(at, st);
  return b.build();
}

}  // namespace recoverd
