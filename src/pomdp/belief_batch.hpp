// Structure-of-arrays belief storage for the batch decision path, plus the
// batched Bayes update (Eq. 4) over it.
//
// A BeliefBatch holds one belief per *lane* (a recovery session), laid out
// state-major: element (lane, s) lives at data[s * lane_stride() + lane].
// Each state's row of lanes starts 64-byte aligned (the stride is padded to
// a multiple of 8 doubles), so four consecutive lanes of any state are one
// unmasked 256-bit load — the shape the AVX2 leaf kernels consume directly
// (DESIGN.md §13). Lanes carry stable caller-assigned session ids; removal
// is swap-with-last, so lane indices are dense but not stable — resolve a
// session through session_id() after any removal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <vector>

#include "pomdp/belief.hpp"
#include "pomdp/pomdp.hpp"
#include "pomdp/types.hpp"

namespace recoverd {

class BeliefBatch {
 public:
  /// An empty batch of beliefs over `num_states` states.
  explicit BeliefBatch(std::size_t num_states);

  std::size_t num_states() const { return num_states_; }
  /// Number of lanes (sessions) in use.
  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  /// Doubles between element (lane, s) and (lane, s+1) — a multiple of 8, so
  /// every state row starts on a 64-byte boundary.
  std::size_t lane_stride() const { return stride_; }

  /// Appends a lane; returns its (current) lane index. The distribution is
  /// copied verbatim — callers pass already-normalised beliefs and the batch
  /// never renormalises, mirroring Belief::from_normalized().
  std::size_t push_back(std::span<const double> probabilities, std::uint64_t session_id);
  std::size_t push_back(const Belief& belief, std::uint64_t session_id) {
    return push_back(belief.probabilities(), session_id);
  }

  /// Removes a lane by moving the last lane into its slot (O(|S|)).
  void swap_remove(std::size_t lane);

  /// Drops every lane; keeps the allocation.
  void clear() { ids_.clear(); }

  /// Grows the backing store to hold `capacity` lanes without reallocation.
  void reserve(std::size_t capacity);

  std::uint64_t session_id(std::size_t lane) const { return ids_[lane]; }

  double at(std::size_t lane, StateId s) const { return data_[s * stride_ + lane]; }
  void set(std::size_t lane, StateId s, double v) { data_[s * stride_ + lane] = v; }

  /// Gathers lane's distribution into contiguous storage (size |S|).
  void copy_lane(std::size_t lane, std::span<double> out) const;

  /// Scatters a contiguous distribution into a lane, verbatim (no
  /// renormalisation — the in-place analogue of Belief::assign_normalized()).
  void assign_lane(std::size_t lane, std::span<const double> probabilities);

  /// All lanes of one state, contiguous and 64-byte aligned; only the first
  /// size() entries are meaningful.
  std::span<const double> state_lanes(StateId s) const {
    return {data_.get() + s * stride_, size()};
  }
  std::span<double> state_lanes(StateId s) { return {data_.get() + s * stride_, size()}; }

  const double* data() const { return data_.get(); }

 private:
  struct AlignedFree {
    void operator()(double* p) const { ::operator delete[](p, std::align_val_t{64}); }
  };
  using AlignedArray = std::unique_ptr<double[], AlignedFree>;

  static AlignedArray allocate(std::size_t doubles);

  std::size_t num_states_;
  std::size_t capacity_ = 0;  ///< lanes the allocation can hold
  std::size_t stride_ = 0;    ///< capacity_ rounded up to 8 doubles
  AlignedArray data_;
  std::vector<std::uint64_t> ids_;
};

/// Per-batch output of update_batch(), doubling as reusable scratch: the
/// internal vectors keep their capacity across calls, so a fleet driver that
/// reuses one workspace allocates only until the high-water mark.
struct BatchUpdateWorkspace {
  /// γ^{π,a}(o) of Eq. 3 per lane; entries of exactly 0 mark lanes whose
  /// observation had zero model likelihood (the single-belief nullopt case)
  /// — those lanes' beliefs are left unchanged. Skipped lanes (action ==
  /// kInvalidId) get -1.
  std::vector<double> likelihood;
  /// Number of lanes with zero likelihood in the last call (skips excluded).
  std::size_t failures = 0;

  // scratch (contents meaningless between calls)
  std::vector<double> lane;
  std::vector<double> pred;
  std::vector<double> unnormalized;
};

/// Batched Bayes update (Eq. 4): conditions every lane of `batch` on its
/// (action, observation) pair in place. Per lane this performs exactly the
/// operations of update_belief() + the Belief constructor — predict, mask,
/// divide by γ, renormalise — so each surviving lane's distribution is
/// bitwise identical to the single-belief path's, in every SIMD mode.
/// Lanes with zero-likelihood observations are skipped (see
/// BatchUpdateWorkspace::likelihood); callers surface those as the
/// model-mismatch signal just like the nullopt of update_belief(). A lane
/// whose action is kInvalidId is skipped entirely (no update — the fleet
/// driver's "this session respawned, nothing to condition on" marker).
/// Preconditions: actions/observations have one entry per lane, in range
/// (observations of skipped lanes are ignored).
void update_batch(const Pomdp& pomdp, BeliefBatch& batch,
                  std::span<const ActionId> actions, std::span<const ObsId> observations,
                  BatchUpdateWorkspace& workspace);

}  // namespace recoverd
