#include "pomdp/belief_batch.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/simd_kernels.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/simd.hpp"

namespace recoverd {

namespace {

constexpr std::size_t kLaneAlignDoubles = 8;  // 64 bytes / sizeof(double)

std::size_t padded_stride(std::size_t lanes) {
  return (lanes + kLaneAlignDoubles - 1) / kLaneAlignDoubles * kLaneAlignDoubles;
}

bool use_avx2() {
#if RECOVERD_SIMD_KERNELS_X86
  return simd::active_mode() == simd::Mode::Avx2;
#else
  return false;
#endif
}

bool use_avx512() {
#if RECOVERD_SIMD_KERNELS_X86
  return simd::active_mode() == simd::Mode::Avx512;
#else
  return false;
#endif
}

}  // namespace

BeliefBatch::BeliefBatch(std::size_t num_states) : num_states_(num_states) {
  RD_EXPECTS(num_states_ > 0, "BeliefBatch: state dimension must be positive");
}

BeliefBatch::AlignedArray BeliefBatch::allocate(std::size_t doubles) {
  return AlignedArray(static_cast<double*>(
      ::operator new[](doubles * sizeof(double), std::align_val_t{64})));
}

void BeliefBatch::reserve(std::size_t capacity) {
  if (capacity <= capacity_) return;
  const std::size_t new_capacity = std::max(capacity, capacity_ * 2);
  const std::size_t new_stride = padded_stride(new_capacity);
  AlignedArray next = allocate(num_states_ * new_stride);
  for (std::size_t s = 0; s < num_states_; ++s) {
    std::copy_n(data_.get() + s * stride_, ids_.size(), next.get() + s * new_stride);
  }
  data_ = std::move(next);
  capacity_ = new_capacity;
  stride_ = new_stride;
  ids_.reserve(new_capacity);
}

std::size_t BeliefBatch::push_back(std::span<const double> probabilities,
                                   std::uint64_t session_id) {
  RD_EXPECTS(probabilities.size() == num_states_,
             "BeliefBatch::push_back: belief dimension mismatch");
  reserve(ids_.size() + 1);
  const std::size_t lane = ids_.size();
  ids_.push_back(session_id);
  for (std::size_t s = 0; s < num_states_; ++s) {
    data_[s * stride_ + lane] = probabilities[s];
  }
  return lane;
}

void BeliefBatch::swap_remove(std::size_t lane) {
  RD_EXPECTS(lane < ids_.size(), "BeliefBatch::swap_remove: lane out of range");
  const std::size_t last = ids_.size() - 1;
  if (lane != last) {
    for (std::size_t s = 0; s < num_states_; ++s) {
      data_[s * stride_ + lane] = data_[s * stride_ + last];
    }
    ids_[lane] = ids_[last];
  }
  ids_.pop_back();
}

void BeliefBatch::copy_lane(std::size_t lane, std::span<double> out) const {
  RD_EXPECTS(lane < ids_.size(), "BeliefBatch::copy_lane: lane out of range");
  RD_EXPECTS(out.size() == num_states_, "BeliefBatch::copy_lane: output size mismatch");
  for (std::size_t s = 0; s < num_states_; ++s) out[s] = data_[s * stride_ + lane];
}

void BeliefBatch::assign_lane(std::size_t lane, std::span<const double> probabilities) {
  RD_EXPECTS(lane < ids_.size(), "BeliefBatch::assign_lane: lane out of range");
  RD_EXPECTS(probabilities.size() == num_states_,
             "BeliefBatch::assign_lane: belief dimension mismatch");
  for (std::size_t s = 0; s < num_states_; ++s) {
    data_[s * stride_ + lane] = probabilities[s];
  }
}

void update_batch(const Pomdp& pomdp, BeliefBatch& batch,
                  std::span<const ActionId> actions, std::span<const ObsId> observations,
                  BatchUpdateWorkspace& workspace) {
  const std::size_t lanes = batch.size();
  const std::size_t num_states = pomdp.num_states();
  RD_EXPECTS(batch.num_states() == num_states,
             "update_batch: batch/model state dimension mismatch");
  RD_EXPECTS(actions.size() == lanes, "update_batch: one action per lane required");
  RD_EXPECTS(observations.size() == lanes,
             "update_batch: one observation per lane required");

  workspace.likelihood.assign(lanes, 0.0);
  workspace.failures = 0;
  workspace.lane.resize(num_states);
  workspace.pred.resize(num_states);
  workspace.unnormalized.resize(num_states);
  const bool avx2 = use_avx2();
  const bool avx512 = use_avx512();

  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const ActionId action = actions[lane];
    if (action == kInvalidId) {  // no update for this lane this call
      workspace.likelihood[lane] = -1.0;
      continue;
    }
    const ObsId obs = observations[lane];
    RD_EXPECTS(obs < pomdp.num_observations(), "update_batch: observation out of range");
    batch.copy_lane(lane, workspace.lane);
    predict_state_distribution_into(pomdp, workspace.lane, action, workspace.pred);

    // Posterior mass w(s) = q(o|s,a)·pred(s) and likelihood γ = Σ_s w(s),
    // exactly as update_belief(). The single-belief path skips pred(s) ≤ 0
    // states; the dense elementwise product instead produces an exact +0.0
    // for them (q ≥ 0, pred = 0), and adding +0.0 to a non-negative sum
    // leaves every bit unchanged — so both likelihood and posterior match
    // the masked loop bitwise.
    double* unnorm = workspace.unnormalized.data();
    const std::span<const double> qt_dense = pomdp.observation_transpose_dense(action);
    double gamma = 0.0;
    if (!qt_dense.empty()) {
      const double* q_row = qt_dense.data() + obs * num_states;
      const double* pred = workspace.pred.data();
#if RECOVERD_SIMD_KERNELS_X86
      if (avx512) {
        linalg::simd::multiply_elementwise_avx512(unnorm, q_row, pred, num_states);
      } else if (avx2) {
        linalg::simd::multiply_elementwise(unnorm, q_row, pred, num_states);
      } else {
        for (std::size_t s = 0; s < num_states; ++s) unnorm[s] = q_row[s] * pred[s];
      }
#else
      for (std::size_t s = 0; s < num_states; ++s) unnorm[s] = q_row[s] * pred[s];
#endif
      for (std::size_t s = 0; s < num_states; ++s) gamma += unnorm[s];
    } else {
      const auto& q = pomdp.observation(action);
      std::fill(unnorm, unnorm + num_states, 0.0);
      for (StateId s = 0; s < num_states; ++s) {
        if (workspace.pred[s] <= 0.0) continue;
        const double w = q.at(s, obs) * workspace.pred[s];
        unnorm[s] = w;
        gamma += w;
      }
    }

    workspace.likelihood[lane] = gamma;
    if (gamma <= 0.0) {
      ++workspace.failures;  // lane kept as-is; caller handles the mismatch
      continue;
    }

    // Divide by γ, then renormalise — update_belief() divides and the Belief
    // constructor normalises the result again; both divisions must happen
    // for bitwise parity with the single-belief path.
#if RECOVERD_SIMD_KERNELS_X86
    if (avx512) {
      linalg::simd::divide_in_place_avx512(unnorm, gamma, num_states);
      const double total = linalg::sum(workspace.unnormalized);
      RD_EXPECTS(total > 0.0 && std::isfinite(total),
                 "update_batch: posterior must have a positive finite sum");
      linalg::simd::divide_in_place_avx512(unnorm, total, num_states);
    } else if (avx2) {
      linalg::simd::divide_in_place(unnorm, gamma, num_states);
      const double total = linalg::sum(workspace.unnormalized);
      RD_EXPECTS(total > 0.0 && std::isfinite(total),
                 "update_batch: posterior must have a positive finite sum");
      linalg::simd::divide_in_place(unnorm, total, num_states);
    } else {
      for (std::size_t s = 0; s < num_states; ++s) unnorm[s] /= gamma;
      linalg::normalize_probability(workspace.unnormalized);
    }
#else
    for (std::size_t s = 0; s < num_states; ++s) unnorm[s] /= gamma;
    linalg::normalize_probability(workspace.unnormalized);
#endif
    batch.assign_lane(lane, workspace.unnormalized);
  }

  static obs::Counter& batch_calls = obs::metrics().counter("pomdp.belief.batch_updates");
  static obs::Counter& batch_lanes =
      obs::metrics().counter("pomdp.belief.batch_update_lanes");
  static obs::Counter& batch_failures =
      obs::metrics().counter("pomdp.belief.batch_update_failures");
  batch_calls.add(1);
  batch_lanes.add(lanes);
  if (workspace.failures > 0) batch_failures.add(workspace.failures);
}

}  // namespace recoverd
