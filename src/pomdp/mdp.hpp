// Markov decision process model for recovery problems (§2 of the paper).
//
// An Mdp is the tuple (S, A, p(·|s,a), r(s,a)) with the recovery-specific
// extras the paper attaches to it:
//  - per-action execution times t_a, so rewards decompose into rate and
//    impulse parts: r(s,a) = r̄(s,a)·t_a + r̂(s,a);
//  - an ambient per-state cost rate r̄(s) (the cost of simply being faulty),
//    used by the terminate transform (r(s,aT) = r̄(s)·t_op) and by the
//    simulator's residual-time accounting;
//  - a set of "null fault" goal states Sφ (Condition 1).
//
// Instances are immutable; construct them through MdpBuilder, which
// validates stochasticity and completeness.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "linalg/sparse_matrix.hpp"
#include "pomdp/types.hpp"

namespace recoverd {

class MdpBuilder;

/// Immutable finite MDP with recovery-model annotations.
class Mdp {
 public:
  std::size_t num_states() const { return state_names_.size(); }
  std::size_t num_actions() const { return action_names_.size(); }

  const std::string& state_name(StateId s) const;
  const std::string& action_name(ActionId a) const;

  /// Index of a state/action by exact name; kInvalidId when absent.
  StateId find_state(const std::string& name) const;
  ActionId find_action(const std::string& name) const;

  /// Row-stochastic |S|×|S| transition matrix of action a.
  const linalg::SparseMatrix& transition(ActionId a) const;

  /// p(s'|s,a).
  double transition_prob(StateId s, ActionId a, StateId next) const;

  /// Combined single-step reward r(s,a) = r̄(s,a)·t_a + r̂(s,a).
  double reward(StateId s, ActionId a) const;

  /// Reward column vector r(a) of Eq. 2.
  std::span<const double> rewards(ActionId a) const;

  double rate_reward(StateId s, ActionId a) const;
  double impulse_reward(StateId s, ActionId a) const;

  /// Execution time t_a (seconds).
  double duration(ActionId a) const;

  /// Ambient cost rate r̄(s) of state s (non-positive for recovery models).
  double state_rate_reward(StateId s) const;

  /// The null-fault set Sφ, sorted ascending.
  std::span<const StateId> goal_states() const { return goal_states_; }
  bool is_goal(StateId s) const;

  /// Total probability mass a belief-like vector puts on Sφ.
  double goal_probability(std::span<const double> distribution) const;

 private:
  friend class MdpBuilder;
  friend class Pomdp;  // Pomdp owns an Mdp member it default-constructs
  Mdp() = default;

  std::vector<std::string> state_names_;
  std::vector<std::string> action_names_;
  std::vector<linalg::SparseMatrix> transitions_;       // [a] : |S|×|S|
  std::vector<std::vector<double>> rewards_;            // [a][s]
  std::vector<std::vector<double>> rate_rewards_;       // [a][s]
  std::vector<std::vector<double>> impulse_rewards_;    // [a][s]
  std::vector<double> durations_;                       // [a]
  std::vector<double> state_rate_rewards_;              // [s]
  std::vector<StateId> goal_states_;
  std::vector<bool> is_goal_;
};

/// Incremental, validated construction of an Mdp.
///
/// Usage:
///   MdpBuilder b;
///   const StateId null_state = b.add_state("Null", /*ambient_rate=*/0.0);
///   const StateId fault = b.add_state("Fault(a)", -0.5);
///   const ActionId restart = b.add_action("Restart(a)", /*duration=*/60.0);
///   b.set_transition(fault, restart, null_state, 1.0);
///   b.set_transition(null_state, restart, null_state, 1.0);
///   b.mark_goal(null_state);
///   Mdp model = b.build();
///
/// Unless overridden, the rate reward of (s, a) defaults to the ambient rate
/// of s — the natural recovery-model default where cost keeps accruing at
/// the fault's drop rate while the action runs.
class MdpBuilder {
 public:
  /// Adds a state; `ambient_rate` is r̄(s) and must be ≤ 0 and finite.
  StateId add_state(std::string name, double ambient_rate = 0.0);

  /// Adds an action with execution time `duration` ≥ 0 seconds.
  ActionId add_action(std::string name, double duration);

  /// Sets p(next|s,a) = prob (overwrites any previous value for the triple).
  void set_transition(StateId s, ActionId a, StateId next, double prob);

  /// Overrides the rate reward r̄(s,a); must be ≤ 0.
  void set_rate_reward(StateId s, ActionId a, double rate);

  /// Sets the impulse reward r̂(s,a); must be ≤ 0 for recovery models
  /// (Condition 2), which build() enforces for the combined reward.
  void set_impulse_reward(StateId s, ActionId a, double impulse);

  /// Marks s as a member of the null-fault set Sφ.
  void mark_goal(StateId s);

  std::size_t num_states() const { return states_.size(); }
  std::size_t num_actions() const { return actions_.size(); }

  /// Validates and produces the immutable model. Throws ModelError when a
  /// (state, action) row is missing, a row is not stochastic within `tol`,
  /// or Condition 2 (non-positive rewards) is violated.
  Mdp build(double tol = 1e-9) const;

 private:
  struct StateDef {
    std::string name;
    double ambient_rate;
  };
  struct ActionDef {
    std::string name;
    double duration;
  };
  struct Override {
    bool set = false;
    double value = 0.0;
  };

  void check_state(StateId s) const;
  void check_action(ActionId a) const;

  std::vector<StateDef> states_;
  std::vector<ActionDef> actions_;
  // transition_[a] maps flattened (s, next) -> prob; kept as a dense-keyed
  // map via vector-of-rows for simplicity at model-building scale.
  std::vector<std::vector<std::vector<std::pair<StateId, double>>>> transitions_;  // [a][s]
  std::vector<std::vector<Override>> rate_overrides_;     // [a][s]
  std::vector<std::vector<Override>> impulse_overrides_;  // [a][s]
  std::vector<StateId> goals_;
};

}  // namespace recoverd
