// Model transformations of §3.1 that make the undiscounted RA-Bound linear
// system converge.
//
// Systems WITH recovery notification: the monitors tell the controller when
// the system re-enters Sφ, so recovery stops there. The model is modified so
// every goal state is absorbing with zero reward (Fig. 2(a)).
//
// Systems WITHOUT recovery notification: the controller itself must decide
// when to stop. The model is refined with an absorbing terminated state sT
// and a terminate action aT whose rewards r(s, aT) = r̄(s) · t_op encode the
// risk of stopping too early, where t_op is the operator response time
// (Fig. 2(b)).
#pragma once

#include "pomdp/pomdp.hpp"

namespace recoverd {

/// Returns a copy of `pomdp` where every state in Sφ is absorbing under
/// every action with zero reward. Observation rows are preserved.
/// Precondition: the model has a non-empty goal set.
Pomdp with_recovery_notification(const Pomdp& pomdp);

/// Returns a copy of `pomdp` extended with:
///  - an absorbing, zero-reward state sT (observable as `terminated_obs_name`),
///  - a zero-duration action aT that maps every state to sT with termination
///    reward r(s, aT) = r̄(s) · operator_response_time (and exactly 0 for
///    s ∈ Sφ).
/// The returned model reports the new ids through Pomdp::terminate_action()
/// and Pomdp::terminate_state().
/// Preconditions: non-empty goal set; operator_response_time > 0; the input
/// has no terminate action already.
Pomdp add_termination(const Pomdp& pomdp, double operator_response_time,
                      const std::string& terminated_obs_name = "terminated");

namespace detail {
/// Copies every state/action/observation definition of `src` into `dst`
/// (used by the transforms; exposed for tests).
void copy_pomdp_into_builder(const Pomdp& src, PomdpBuilder& dst);
}  // namespace detail

}  // namespace recoverd
