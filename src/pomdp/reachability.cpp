#include "pomdp/reachability.hpp"

#include "util/check.hpp"

namespace recoverd {

namespace {
bool is_known(const std::vector<Belief>& known, const Belief& candidate,
              double tolerance) {
  for (const auto& b : known) {
    if (b.distance(candidate) <= tolerance) return true;
  }
  return false;
}
}  // namespace

ReachabilityResult enumerate_reachable_beliefs(const Pomdp& pomdp, const Belief& root,
                                               const ReachabilityOptions& options) {
  RD_EXPECTS(root.size() == pomdp.num_states(),
             "enumerate_reachable_beliefs: root dimension mismatch");
  RD_EXPECTS(options.dedup_tolerance >= 0.0,
             "enumerate_reachable_beliefs: tolerance must be >= 0");

  ReachabilityResult result;
  result.beliefs.push_back(root);
  std::vector<std::size_t> frontier{0};

  for (std::size_t depth = 0; depth < options.max_depth; ++depth) {
    std::vector<std::size_t> next_frontier;
    std::size_t found = 0;
    for (const std::size_t index : frontier) {
      // Copy: result.beliefs may reallocate while we expand.
      const Belief current = result.beliefs[index];
      for (ActionId a = 0; a < pomdp.num_actions(); ++a) {
        for (const auto& branch :
             belief_successors(pomdp, current, a, options.branch_floor)) {
          if (result.beliefs.size() >= options.max_beliefs) {
            result.truncated = true;
            result.depth_counts.push_back(found);
            return result;
          }
          if (is_known(result.beliefs, branch.posterior, options.dedup_tolerance)) {
            continue;
          }
          next_frontier.push_back(result.beliefs.size());
          result.beliefs.push_back(branch.posterior);
          ++found;
        }
      }
    }
    result.depth_counts.push_back(found);
    if (found == 0) {
      result.saturated = true;
      return result;
    }
    frontier = std::move(next_frontier);
  }
  return result;
}

}  // namespace recoverd
