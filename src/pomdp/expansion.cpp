#include "pomdp/expansion.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>

#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pomdp/belief.hpp"
#include "pomdp/belief_batch.hpp"
#include "util/check.hpp"
#include "util/work_pool.hpp"

namespace recoverd {

namespace {
// Tree-shape instruments shared with the bellman.cpp wrappers: a "node" is
// a belief at which the max over actions is taken; leaves are the bound
// evaluations at depth 0. With memoization on, both count the work actually
// performed — cache hits expand no node and call no leaf.
obs::Counter& nodes_expanded_counter() {
  static obs::Counter& c = obs::metrics().counter("pomdp.bellman.nodes_expanded");
  return c;
}

obs::Counter& leaf_evaluations_counter() {
  static obs::Counter& c = obs::metrics().counter("pomdp.bellman.leaf_evaluations");
  return c;
}

// Engine-specific instruments (DESIGN.md §8).
obs::Counter& workspace_reuses_counter() {
  static obs::Counter& c = obs::metrics().counter("pomdp.engine.workspace_reuses");
  return c;
}

obs::Counter& parallel_batches_counter() {
  static obs::Counter& c = obs::metrics().counter("pomdp.engine.parallel_batches");
  return c;
}

obs::Gauge& arena_peak_bytes_gauge() {
  static obs::Gauge& g = obs::metrics().gauge("pomdp.engine.arena_peak_bytes");
  return g;
}

// Transposition-cache instruments (DESIGN.md §11). Tallied per workspace
// during the walk and drained once per expansion, so fan-out workers never
// touch the shared counters from the hot loop.
struct MemoInstruments {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& insertions;
  obs::Counter& capped;
  obs::Counter& carry_hits;
  obs::Counter& carry_misses;
  obs::Counter& carry_invalidations;
  obs::Gauge& bytes;

  static MemoInstruments& get() {
    static MemoInstruments instruments{
        obs::metrics().counter("pomdp.memo.hits"),
        obs::metrics().counter("pomdp.memo.misses"),
        obs::metrics().counter("pomdp.memo.insertions"),
        obs::metrics().counter("pomdp.memo.capped"),
        obs::metrics().counter("expansion.memo.carry_hits"),
        obs::metrics().counter("expansion.memo.carry_misses"),
        obs::metrics().counter("expansion.memo.carry_invalidations"),
        obs::metrics().gauge("pomdp.memo.bytes"),
    };
    return instruments;
  }
};

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

void check_common_options(const Pomdp& pomdp, std::span<const double> belief,
                          const ExpansionOptions& o) {
  RD_EXPECTS(o.beta >= 0.0 && o.beta <= 1.0, "ExpansionEngine: beta must lie in [0,1]");
  RD_EXPECTS(belief.size() == pomdp.num_states(),
             "ExpansionEngine: belief dimension mismatch");
  RD_EXPECTS(o.skip_action == kInvalidId || pomdp.num_actions() > 1,
             "ExpansionEngine: cannot mask the only action");
  RD_EXPECTS(o.branch_floor >= 0.0 && o.branch_floor < 1.0,
             "ExpansionEngine: branch floor must lie in [0,1)");
  RD_EXPECTS(o.root_jobs >= 1, "ExpansionEngine: root_jobs must be >= 1");
}

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ULL;
  h ^= h >> 29;
  return h;
}

// Batch-engine instruments (DESIGN.md §13): one `calls` bump per
// action_values_batch(); `sessions` counts lanes, `classes` the distinct
// roots actually expanded, `shared_hits` the lanes served by an earlier
// lane's solve (sessions = classes + shared_hits).
struct BatchInstruments {
  obs::Counter& calls;
  obs::Counter& sessions;
  obs::Counter& classes;
  obs::Counter& shared_hits;

  static BatchInstruments& get() {
    static BatchInstruments instruments{
        obs::metrics().counter("engine.batch.calls"),
        obs::metrics().counter("engine.batch.sessions"),
        obs::metrics().counter("engine.batch.classes"),
        obs::metrics().counter("engine.batch.shared_hits"),
    };
    return instruments;
  }
};

// Deep-pipeline instruments (DESIGN.md §16): `nodes` counts the distinct
// Max nodes expanded across every level, `leaves` the distinct depth-0
// beliefs in the single frontier batch, `fallbacks` the calls that hit the
// node budget and reran through the per-class walks.
struct DeepInstruments {
  obs::Counter& calls;
  obs::Counter& nodes;
  obs::Counter& leaves;
  obs::Counter& fallbacks;

  static DeepInstruments& get() {
    static DeepInstruments instruments{
        obs::metrics().counter("engine.deep.calls"),
        obs::metrics().counter("engine.deep.nodes"),
        obs::metrics().counter("engine.deep.leaves"),
        obs::metrics().counter("engine.deep.fallbacks"),
    };
    return instruments;
  }
};

// Belief-bits hash shared by root canonicalization and the deep pipeline's
// per-level node tables: FNV-style mix over the raw double bits. Equality
// is always confirmed by memcmp, so collisions can only split classes.
std::uint64_t hash_belief_bits(const double* row, std::size_t num_states) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::size_t s = 0; s < num_states; ++s) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, row + s, sizeof(bits));
    h = mix64(h, bits);
  }
  return h;
}
}  // namespace

// One tree level of the arena: the successor buffers of the node currently
// open at that level plus the little state machine that replaces the call
// stack of the recursive implementation.
struct ExpansionEngine::Frame {
  // Scratch buffers filled by expand_successors_into(); capacities persist
  // across expansions, which is what makes the steady state allocation-free.
  std::vector<double> pred;             // |S| predicted distribution
  std::vector<double> weight;           // |O| observation likelihoods
  std::vector<std::size_t> branch_of;   // |O| -> kept index
  std::vector<ObsId> kept;              // surviving observations, ascending
  std::vector<double> posteriors;       // kept×|S| normalised posteriors

  // Node state.
  std::span<const double> belief;  // points into the parent frame's posteriors
  double best = kNegInf;           // running max over completed actions
  ActionId next_action = 0;        // next action to open
  bool done = false;               // all actions folded into `best`

  // State of the currently open action.
  double immediate = 0.0;    // π·r(a)
  double value_acc = 0.0;    // Σ (β·γ)·child over finished branches
  double kept_mass = 0.0;    // Σ γ over visited branches
  std::size_t branch = 0;    // next branch to evaluate
  std::size_t num_kept = 0;  // branches of the open action
  double pending_gamma = 0.0;  // γ of the branch currently being descended
  std::uint64_t pending_hash = 0;  // memo hash of that branch's belief

  void begin_node(std::span<const double> node_belief, const Pomdp& pomdp,
                  const ExpansionOptions& o);
  void advance_action(const Pomdp& pomdp, const ExpansionOptions& o);
  void finish_action(const Pomdp& pomdp, const ExpansionOptions& o);

  std::size_t bytes() const {
    return pred.capacity() * sizeof(double) + weight.capacity() * sizeof(double) +
           branch_of.capacity() * sizeof(std::size_t) + kept.capacity() * sizeof(ObsId) +
           posteriors.capacity() * sizeof(double);
  }
};

// Exact transposition cache over successor beliefs (DESIGN.md §11).
//
// Open-addressing hash table (linear probing, power-of-two capacity, no
// deletions) over keys = (belief bit pattern, remaining subtree depth);
// belief bits are copied into a flat key arena so lookups compare with one
// memcmp. Equality is *bitwise*, never numeric: two beliefs hash equal only
// to be confirmed byte-for-byte, so a hash collision can only cause a miss
// (re-expansion, still exact), and distinct bit patterns with equal value —
// -0.0 vs 0.0, say — are simply cached twice. The per-call seed folds in
// beta / skip_action / branch_floor bits, making the skip-mask part of the
// key even though the cache never outlives a fixed-option call.
//
// Clearing is O(1) via an epoch stamp (capacities persist, so the steady
// state allocates nothing); the cache is cleared at the start of every
// root-action subtree, which is what keeps every observable — values, leaf
// evaluations, memo tallies — invariant across root_jobs worker counts:
// each action's subtree always runs against a fresh cache, no matter which
// worker computes it. The size cap stops admission rather than evicting;
// entries only live until the next root action anyway.
struct ExpansionEngine::MemoCache {
  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t epoch = 0;         // valid iff == MemoCache::epoch
    std::int32_t depth = -1;         // remaining subtree depth of the entry
    std::size_t key_offset = 0;      // into keys_, units of doubles
    double value = 0.0;
    std::uint32_t era = 0;           // expansion era the entry was inserted in
  };

  std::vector<Slot> slots;   // power-of-two capacity
  std::vector<double> keys;  // belief-key arena, dim doubles per entry
  std::size_t keys_used = 0;
  std::size_t count = 0;     // live entries this epoch
  std::uint32_t epoch = 0;
  std::uint64_t seed = 0;
  std::size_t max_bytes = 0;
  bool enabled = false;
  bool capped = false;  // admission stopped until the next clear

  // Carry-over state (ExpansionOptions::memo_carry): while carrying, the
  // per-root-action and per-call clears are skipped and the cache lives
  // until configure() sees a different option seed or memo_context — the
  // exact-invalidation contract. `era` stamps each entry with the
  // configure() round that inserted it, so hits on entries from an earlier
  // expansion are classified as carry hits (classification only; never
  // read by the walk).
  bool carry = false;
  std::uint64_t context = 0;
  std::uint32_t era = 0;

  // Per-expansion tallies, drained by note_expansion_finished().
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t capped_insertions = 0;
  std::uint64_t carry_hits = 0;
  std::uint64_t carry_misses = 0;
  std::uint64_t carry_invalidations = 0;

  std::size_t bytes() const {
    return slots.capacity() * sizeof(Slot) + keys.capacity() * sizeof(double);
  }

  void configure(const ExpansionOptions& o) {
    enabled = o.memo;
    max_bytes = o.memo_max_bytes;
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    std::uint64_t bits = 0;
    std::memcpy(&bits, &o.beta, sizeof(bits));
    h = mix64(h, bits);
    std::memcpy(&bits, &o.branch_floor, sizeof(bits));
    h = mix64(h, bits);
    const std::uint64_t new_seed = mix64(h, static_cast<std::uint64_t>(o.skip_action));
    const bool was_carrying = carry;
    carry = o.memo_carry;
    if (carry) {
      // A carried entry is only exact while the options that keyed it and
      // the leaf evaluator behind it are unchanged; any drift discards the
      // whole cache (O(1) epoch bump), never individual entries.
      const bool stale =
          !was_carrying || new_seed != seed || o.memo_context != context;
      if (stale) {
        if (was_carrying && count > 0) ++carry_invalidations;
        clear();
      }
    }
    seed = new_seed;
    context = o.memo_context;
    ++era;
  }

  // O(1): invalidates every entry by bumping the epoch; capacities persist.
  void clear() {
    if (++epoch == 0) {  // wrapped: hard-reset the stamps once per 2^32 clears
      for (Slot& s : slots) s.epoch = 0;
      epoch = 1;
    }
    keys_used = 0;
    count = 0;
    capped = false;
  }

  std::uint64_t hash_key(std::span<const double> belief, int depth) const {
    std::uint64_t h = seed;
    for (double d : belief) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof(bits));
      h = mix64(h, bits);
    }
    h = mix64(h, static_cast<std::uint64_t>(depth));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h | 1;  // 0 never collides with the default Slot
  }

  bool lookup(std::span<const double> belief, int depth, std::uint64_t hash,
              double* value) {
    if (slots.empty() || count == 0) {
      ++misses;
      if (carry) ++carry_misses;
      return false;
    }
    const std::size_t mask = slots.size() - 1;
    for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
      const Slot& s = slots[i];
      if (s.epoch != epoch) break;  // empty slot: key absent
      if (s.hash == hash && s.depth == depth &&
          std::memcmp(keys.data() + s.key_offset, belief.data(),
                      belief.size() * sizeof(double)) == 0) {
        *value = s.value;
        ++hits;
        if (carry && s.era != era) ++carry_hits;  // served by an earlier expansion
        return true;
      }
    }
    ++misses;
    if (carry) ++carry_misses;
    return false;
  }

  void insert(std::span<const double> belief, int depth, std::uint64_t hash,
              double value) {
    const std::size_t dim = belief.size();
    if (capped || !ensure_capacity(dim)) {
      capped = true;
      ++capped_insertions;
      return;
    }
    const std::size_t mask = slots.size() - 1;
    std::size_t i = hash & mask;
    while (slots[i].epoch == epoch) i = (i + 1) & mask;
    std::memcpy(keys.data() + keys_used, belief.data(), dim * sizeof(double));
    slots[i] = Slot{hash, epoch, depth, keys_used, value, era};
    keys_used += dim;
    ++count;
    ++insertions;
  }

 private:
  // Grows table and key arena for one more entry, honouring max_bytes.
  bool ensure_capacity(std::size_t dim) {
    if (slots.empty() || (count + 1) * 4 > slots.size() * 3) {  // load > 3/4
      const std::size_t new_cap = slots.empty() ? 256 : slots.size() * 2;
      if (new_cap * sizeof(Slot) + keys.capacity() * sizeof(double) > max_bytes) {
        return false;
      }
      std::vector<Slot> old = std::move(slots);
      slots.assign(new_cap, Slot{});
      const std::size_t mask = new_cap - 1;
      for (const Slot& s : old) {
        if (s.epoch != epoch) continue;
        std::size_t i = s.hash & mask;
        while (slots[i].epoch == epoch) i = (i + 1) & mask;
        slots[i] = s;
      }
    }
    if (keys_used + dim > keys.size()) {
      std::size_t grown = std::max(keys.size() * 2, keys_used + dim);
      grown = std::max<std::size_t>(grown, 4096);
      if (slots.capacity() * sizeof(Slot) + grown * sizeof(double) > max_bytes) {
        grown = keys_used + dim;  // exact fit as the last resort
        if (slots.capacity() * sizeof(Slot) + grown * sizeof(double) > max_bytes) {
          return false;
        }
      }
      keys.resize(grown);
    }
    return true;
  }
};

// One independent traversal context: `frames[l]` serves tree level l. The
// main workspace serves serial expansions; root fan-out gives each worker
// thread a private workspace — including a private memo cache and leaf
// slot — so subtrees never share mutable state.
struct ExpansionEngine::Workspace {
  explicit Workspace(std::size_t leaf_slot) : slot(leaf_slot) {}

  std::vector<Frame> frames;
  MemoCache memo;
  std::size_t slot = 0;  // leaf slot passed to SpanLeaf calls

  // Provenance tallies (ExpansionOptions::stats): private per workspace so
  // fan-out workers never contend, folded deterministically by
  // note_expansion_finished(). `collect_stats` mirrors options.stats !=
  // nullptr for the current expansion.
  ExpansionNodeStats local_stats;
  bool collect_stats = false;

  // Frontier scratch (evaluate_frontier): leaf values in branch order, the
  // memo hash per branch, and the gathered cache-miss rows fed to the leaf
  // batch entry point. Capacities persist like the frame buffers.
  std::vector<double> frontier_values;
  std::vector<std::uint64_t> frontier_hashes;
  std::vector<double> frontier_miss_rows;
  std::vector<double> frontier_miss_values;
  std::vector<std::size_t> frontier_miss_index;

  // Grows the arena to `depth` levels. Counts a reuse when no growth was
  // needed — after the first decision at a given depth, every subsequent
  // expansion runs entirely on recycled buffers.
  void ensure(int depth) {
    const auto levels = static_cast<std::size_t>(depth);
    if (frames.size() >= levels) {
      workspace_reuses_counter().add();
      return;
    }
    frames.resize(levels);
  }

  std::size_t bytes() const {
    std::size_t total = memo.bytes();
    total += frontier_values.capacity() * sizeof(double);
    total += frontier_hashes.capacity() * sizeof(std::uint64_t);
    total += frontier_miss_rows.capacity() * sizeof(double);
    total += frontier_miss_values.capacity() * sizeof(double);
    total += frontier_miss_index.capacity() * sizeof(std::size_t);
    for (const Frame& f : frames) total += f.bytes();
    return total;
  }
};

// Arena of the deep pipeline (DESIGN.md §16). Per level the pipeline keeps
// a *node table* — the distinct beliefs at that root distance, row-major —
// and a per-(action, node) CSR edge list into the next level's table:
// `edge_offsets` is action-major (index a·N + n), `edge_gamma` the branch
// likelihoods in ascending ObsId order, `edge_child` the canonical index of
// each normalised posterior one level down. Back-substitution then folds
// values bottom-up through the same CSR. Capacities persist across calls,
// so the steady state allocates nothing — same contract as the frames.
struct ExpansionEngine::DeepScratch {
  struct Level {
    std::size_t num_nodes = 0;
    std::vector<double> immediate;          // action-major: a·num_nodes + n
    std::vector<std::size_t> edge_offsets;  // num_actions·num_nodes + 1
    std::vector<double> edge_gamma;
    std::vector<std::uint32_t> edge_child;

    std::size_t bytes() const {
      return immediate.capacity() * sizeof(double) +
             edge_offsets.capacity() * sizeof(std::size_t) +
             edge_gamma.capacity() * sizeof(double) +
             edge_child.capacity() * sizeof(std::uint32_t);
    }
  };

  // Open-addressing canonicalization table: slot 0 is "empty", otherwise
  // node index + 1. Allocation-free in steady state (a std::unordered_map
  // of bucket vectors here costs one-plus allocations per distinct branch
  // — tens of thousands per tick at fleet widths). `hashes` is parallel to
  // the node table so probes skip memcmp on hash mismatch.
  struct CanonTable {
    std::vector<std::uint32_t> slots;
    std::size_t mask = 0;

    void reset(std::size_t expected_nodes) {
      std::size_t want = 64;
      while (want < 2 * expected_nodes) want <<= 1;
      if (slots.size() < want) {
        slots.assign(want, 0);
      } else {
        std::fill(slots.begin(), slots.end(), 0u);
      }
      mask = slots.size() - 1;
    }

    void grow_if_loaded(std::size_t nodes, const std::vector<std::uint64_t>& hashes) {
      if (2 * nodes < slots.size()) return;
      slots.assign(slots.size() * 2, 0);
      mask = slots.size() - 1;
      for (std::size_t n = 0; n < nodes; ++n) {
        std::size_t pos = hashes[n] & mask;
        while (slots[pos] != 0) pos = (pos + 1) & mask;
        slots[pos] = static_cast<std::uint32_t>(n + 1);
      }
    }
  };

  std::vector<double> rows;       // node table of the level being expanded
  std::vector<double> next_rows;  // node table being built beneath it
  std::vector<std::uint64_t> next_hashes;  // parallel to next_rows' nodes
  CanonTable table;
  std::vector<Level> levels;
  SuccessorFrontier frontier;
  std::vector<double> values;        // back-substitution: this level
  std::vector<double> child_values;  // back-substitution: one level down

  std::size_t bytes() const {
    std::size_t total = rows.capacity() * sizeof(double) +
                        next_rows.capacity() * sizeof(double) +
                        next_hashes.capacity() * sizeof(std::uint64_t) +
                        table.slots.capacity() * sizeof(std::uint32_t) +
                        values.capacity() * sizeof(double) +
                        child_values.capacity() * sizeof(double);
    for (const Level& level : levels) total += level.bytes();
    return total;
  }
};

// Opens a Max node at this frame (bumping the nodes-expanded instrument,
// like the recursive expand() did on entry) and positions it at its first
// action.
void ExpansionEngine::Frame::begin_node(std::span<const double> node_belief,
                                        const Pomdp& pomdp, const ExpansionOptions& o) {
  nodes_expanded_counter().add();
  belief = node_belief;
  best = kNegInf;
  next_action = 0;
  done = false;
  advance_action(pomdp, o);
}

// Opens the next unmasked action, folding zero-branch actions (all
// observation mass pruned or unreachable: future value 0, exactly as the
// recursive action_future_value returns 0) straight into `best`. Sets
// `done` once all actions are folded.
void ExpansionEngine::Frame::advance_action(const Pomdp& pomdp,
                                            const ExpansionOptions& o) {
  const ActionId num_actions = pomdp.num_actions();
  const std::size_t num_states = pomdp.num_states();
  while (next_action < num_actions) {
    const ActionId a = next_action++;
    if (a == o.skip_action) continue;
    immediate = linalg::dot(pomdp.mdp().rewards(a), belief);
    num_kept = expand_successors_into(pomdp, belief, a, o.branch_floor, pred, weight,
                                      branch_of, kept, posteriors);
    // Normalise every posterior exactly once — the same sum-then-divide the
    // Belief constructor performs, so leaves see bit-identical inputs.
    for (std::size_t i = 0; i < num_kept; ++i) {
      linalg::normalize_probability(
          std::span<double>(posteriors.data() + i * num_states, num_states));
    }
    value_acc = 0.0;
    kept_mass = 0.0;
    branch = 0;
    if (num_kept == 0) {
      best = std::max(best, immediate + 0.0);
      continue;
    }
    return;
  }
  done = true;
}

// All branches of the open action are in: fold its value into `best` with
// the kept-mass renormalisation of the branch floor, then open the next
// action.
void ExpansionEngine::Frame::finish_action(const Pomdp& pomdp,
                                           const ExpansionOptions& o) {
  const double future = kept_mass <= 0.0 ? 0.0 : value_acc / kept_mass;
  best = std::max(best, immediate + future);
  advance_action(pomdp, o);
}

ExpansionEngine::ExpansionEngine(const Pomdp& pomdp)
    : pomdp_(&pomdp), main_(std::make_unique<Workspace>(0)) {}

ExpansionEngine::~ExpansionEngine() = default;

// Evaluates every branch of the open action in `fr` — all children are
// leaves. The memo cache is probed for each child first; the misses are
// gathered into one contiguous buffer and handed to the leaf's batch entry
// point (falling back to per-belief calls when the evaluator has none),
// then inserted. Value and kept-mass accumulate in ascending branch order
// afterwards, so the floating-point sums are bit-identical to the
// branch-at-a-time reference regardless of the hit/miss split.
void ExpansionEngine::evaluate_frontier(Workspace& ws, Frame& fr, const SpanLeaf& leaf,
                                        const ExpansionOptions& options) {
  const std::size_t num_states = pomdp_->num_states();
  const std::size_t n = fr.num_kept;
  if (n == 0) return;
  obs::TraceSpan span("expansion.leaf_frontier", obs::TraceLevel::Full);
  span.arg("count", static_cast<double>(n));
  ws.frontier_values.resize(n);
  double* values = ws.frontier_values.data();

  MemoCache& memo = ws.memo;
  // Memoizing a leaf only pays when one evaluation costs more than the
  // cache's probe+insert (~3 |S|-passes: hash, memcmp, key copy). Cheap
  // leaves — a freshly seeded 1-plane RA-Bound set is one dot — skip the
  // cache entirely; the values are identical either way.
  const bool memo_leaves = memo.enabled && leaf.cost_hint() > 3;
  if (!memo_leaves) {
    // Every child is a "miss" and the rows are already contiguous.
    if (leaf.has_batch() && n > 1) {
      leaf.batch(fr.posteriors.data(), n, num_states, values, ws.slot);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        values[i] = leaf({fr.posteriors.data() + i * num_states, num_states}, ws.slot);
      }
    }
    leaf_evaluations_counter().add(n);
    if (ws.collect_stats) ws.local_stats.leaf_evaluations += n;
  } else {
    ws.frontier_hashes.resize(n);
    ws.frontier_miss_rows.resize(n * num_states);
    ws.frontier_miss_values.resize(n);
    ws.frontier_miss_index.resize(n);
    std::size_t miss_count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::span<const double> child(fr.posteriors.data() + i * num_states,
                                          num_states);
      const std::uint64_t h = memo.hash_key(child, 0);
      ws.frontier_hashes[i] = h;
      if (!memo.lookup(child, 0, h, &values[i])) {
        std::memcpy(ws.frontier_miss_rows.data() + miss_count * num_states, child.data(),
                    num_states * sizeof(double));
        ws.frontier_miss_index[miss_count] = i;
        ++miss_count;
      }
    }
    span.arg("misses", static_cast<double>(miss_count));
    if (miss_count > 0) {
      double* miss_values = ws.frontier_miss_values.data();
      if (leaf.has_batch() && miss_count > 1) {
        leaf.batch(ws.frontier_miss_rows.data(), miss_count, num_states, miss_values,
                   ws.slot);
      } else {
        for (std::size_t j = 0; j < miss_count; ++j) {
          miss_values[j] =
              leaf({ws.frontier_miss_rows.data() + j * num_states, num_states}, ws.slot);
        }
      }
      leaf_evaluations_counter().add(miss_count);
      if (ws.collect_stats) ws.local_stats.leaf_evaluations += miss_count;
      for (std::size_t j = 0; j < miss_count; ++j) {
        const std::size_t i = ws.frontier_miss_index[j];
        values[i] = miss_values[j];
        memo.insert({fr.posteriors.data() + i * num_states, num_states}, 0,
                    ws.frontier_hashes[i], miss_values[j]);
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    const double gamma = fr.weight[fr.kept[i]];
    fr.kept_mass += gamma;
    fr.value_acc += (options.beta * gamma) * values[i];
  }
  fr.branch = n;
}

// The iterative core. Walks the depth-d subtree rooted at `belief` using
// frames[base_level .. base_level+depth-1] as the explicit stack, visiting
// branches in ascending ObsId order and actions in ascending ActionId order
// — the exact traversal (and exact floating-point operation order) of the
// recursive reference implementation, with memoized subtrees spliced in at
// the point their value would have been computed. Precondition: depth >= 1
// and the workspace holds base_level + depth frames.
double ExpansionEngine::expand_iterative(Workspace& ws, std::size_t base_level,
                                         std::span<const double> belief, int depth,
                                         const SpanLeaf& leaf,
                                         const ExpansionOptions& options) {
  const Pomdp& pomdp = *pomdp_;
  const std::size_t num_states = pomdp.num_states();
  MemoCache& memo = ws.memo;
  std::size_t top = base_level;
  ws.frames[top].begin_node(belief, pomdp, options);
  // Frame index == root distance on the action_values path (base_level 1
  // under a root successor), which is the only path that plumbs stats.
  if (ws.collect_stats) ws.local_stats.note_node(top);
  for (;;) {
    Frame& fr = ws.frames[top];
    if (fr.done) {
      const double node_value = fr.best;
      if (top == base_level) return node_value;
      --top;
      Frame& parent = ws.frames[top];
      if (memo.enabled) {
        // The finished subtree's root belief is still intact in the parent
        // posterior row (the parent only refills its buffers after folding
        // this value); cache it at the subtree's remaining depth.
        memo.insert(
            {parent.posteriors.data() + parent.branch * num_states, num_states},
            depth - static_cast<int>(top + 1 - base_level), parent.pending_hash,
            node_value);
      }
      parent.value_acc += (options.beta * parent.pending_gamma) * node_value;
      ++parent.branch;
      if (parent.branch == parent.num_kept) parent.finish_action(pomdp, options);
      continue;
    }
    // fr has an open action with fr.branch < fr.num_kept.
    const int remaining = depth - static_cast<int>(top - base_level);
    if (remaining == 1) {  // children of this node are leaves
      evaluate_frontier(ws, fr, leaf, options);
      fr.finish_action(pomdp, options);
      continue;
    }
    // Visit the next branch. Kept mass accrues before the child is
    // evaluated, exactly as in the recursive action_future_value.
    const double gamma = fr.weight[fr.kept[fr.branch]];
    fr.kept_mass += gamma;
    const std::span<const double> child(fr.posteriors.data() + fr.branch * num_states,
                                        num_states);
    if (memo.enabled) {
      const std::uint64_t h = memo.hash_key(child, remaining - 1);
      double cached = 0.0;
      if (memo.lookup(child, remaining - 1, h, &cached)) {
        fr.value_acc += (options.beta * gamma) * cached;
        ++fr.branch;
        if (fr.branch == fr.num_kept) fr.finish_action(pomdp, options);
        continue;
      }
      fr.pending_hash = h;
    }
    fr.pending_gamma = gamma;
    ++top;
    ws.frames[top].begin_node(child, pomdp, options);
    if (ws.collect_stats) ws.local_stats.note_node(top);
  }
}

// Future value of `action` at the root belief: β Σ_o γ(o) V_{d-1}(π^o)
// with sub-floor branches pruned and the kept mass renormalised. Uses
// frames[0] for the root successors and frames[1..] for the subtrees. The
// memo cache is cleared here — once per root action — so each action's
// subtree runs against a fresh cache no matter which fan-out worker
// computes it (the determinism contract of DESIGN.md §11).
double ExpansionEngine::root_action_future(Workspace& ws, std::span<const double> belief,
                                           ActionId action, int depth, const SpanLeaf& leaf,
                                           const ExpansionOptions& options) {
  const Pomdp& pomdp = *pomdp_;
  const std::size_t num_states = pomdp.num_states();
  MemoCache& memo = ws.memo;
  // Carry-over keeps the cache across root actions and across calls: hits
  // are bitwise-exact, so values stay identical — only the tallies change.
  if (memo.enabled && !memo.carry) memo.clear();
  Frame& fr = ws.frames[0];
  fr.num_kept = expand_successors_into(pomdp, belief, action, options.branch_floor,
                                       fr.pred, fr.weight, fr.branch_of, fr.kept,
                                       fr.posteriors);
  for (std::size_t i = 0; i < fr.num_kept; ++i) {
    linalg::normalize_probability(
        std::span<double>(fr.posteriors.data() + i * num_states, num_states));
  }
  fr.value_acc = 0.0;
  fr.kept_mass = 0.0;
  fr.branch = 0;
  if (depth == 1) {
    evaluate_frontier(ws, fr, leaf, options);
  } else {
    for (std::size_t i = 0; i < fr.num_kept; ++i) {
      const double gamma = fr.weight[fr.kept[i]];
      fr.kept_mass += gamma;
      const std::span<const double> child(fr.posteriors.data() + i * num_states,
                                          num_states);
      double child_value = 0.0;
      std::uint64_t h = 0;
      bool hit = false;
      if (memo.enabled) {
        h = memo.hash_key(child, depth - 1);
        hit = memo.lookup(child, depth - 1, h, &child_value);
      }
      if (!hit) {
        child_value = expand_iterative(ws, 1, child, depth - 1, leaf, options);
        if (memo.enabled) memo.insert(child, depth - 1, h, child_value);
      }
      fr.value_acc += (options.beta * gamma) * child_value;
    }
  }
  if (fr.kept_mass <= 0.0) return 0.0;  // everything pruned: future is the floor 0
  return fr.value_acc / fr.kept_mass;
}

void ExpansionEngine::compute_action_value_range(Workspace& ws,
                                                 std::span<const double> belief, int depth,
                                                 const SpanLeaf& leaf,
                                                 const ExpansionOptions& options,
                                                 std::size_t begin, std::size_t step,
                                                 std::vector<ActionValue>& out) {
  ws.ensure(depth);
  ws.memo.configure(options);
  ws.collect_stats = options.stats != nullptr;
  if (ws.collect_stats) ws.local_stats.reset();
  const Pomdp& pomdp = *pomdp_;
  for (std::size_t a = begin; a < pomdp.num_actions(); a += step) {
    if (a == options.skip_action) {
      out[a] = {a, kNegInf};
      continue;
    }
    obs::TraceSpan span("expansion.root_action", obs::TraceLevel::Full);
    span.arg("action", static_cast<double>(a));
    const double immediate = linalg::dot(pomdp.mdp().rewards(a), belief);
    const double future = root_action_future(ws, belief, a, depth, leaf, options);
    out[a] = {a, immediate + future};
  }
}

double ExpansionEngine::value(std::span<const double> belief, int depth,
                              const SpanLeaf& leaf, const ExpansionOptions& options) {
  RD_EXPECTS(depth >= 0, "ExpansionEngine::value: depth must be >= 0");
  check_common_options(*pomdp_, belief, options);
  if (depth == 0) {
    leaf_evaluations_counter().add();
    if (options.stats != nullptr) {
      options.stats->reset();
      options.stats->leaf_evaluations = 1;
    }
    return leaf(belief, main_->slot);
  }
  main_->ensure(depth);
  main_->memo.configure(options);
  main_->collect_stats = options.stats != nullptr;
  if (main_->collect_stats) main_->local_stats.reset();
  // value() is always serial, so one cache may span the whole tree: root
  // actions share subtree values here, which action_values() forgoes for
  // cross-worker determinism. Under carry-over the cache additionally
  // survives across calls (configure() above handled invalidation).
  if (main_->memo.enabled && !main_->memo.carry) main_->memo.clear();
  const double result = expand_iterative(*main_, 0, belief, depth, leaf, options);
  note_expansion_finished(options.stats);
  return result;
}

void ExpansionEngine::action_values(std::span<const double> belief, int depth,
                                    const SpanLeaf& leaf, const ExpansionOptions& options,
                                    std::vector<ActionValue>& out) {
  RD_EXPECTS(depth >= 1, "ExpansionEngine::action_values: depth must be >= 1");
  check_common_options(*pomdp_, belief, options);
  const std::size_t num_actions = pomdp_->num_actions();
  nodes_expanded_counter().add();  // the root Max node
  out.assign(num_actions, ActionValue{});

  const auto jobs =
      std::min<std::size_t>(static_cast<std::size_t>(options.root_jobs), num_actions);
  obs::TraceSpan span("expansion.action_values", obs::TraceLevel::Decide);
  span.arg("depth", static_cast<double>(depth));
  span.arg("jobs", static_cast<double>(jobs));
  if (jobs <= 1) {
    compute_action_value_range(*main_, belief, depth, leaf, options, 0, 1, out);
  } else {
    // Root fan-out: worker t computes actions t, t+jobs, t+2·jobs, … on a
    // private workspace (leaf slot t). Per-action values are independent
    // (the max over actions commutes with who computes each operand) and
    // the memo cache is cleared per action, so the results are bit-identical
    // to the serial loop for any worker count.
    parallel_batches_counter().add();
    while (pool_.size() < jobs) pool_.push_back(std::make_unique<Workspace>(pool_.size()));
    util::WorkPool::instance().run(jobs, [&](std::size_t t) {
      obs::TraceSpan worker_span("expansion.worker", obs::TraceLevel::Full);
      worker_span.arg("worker", static_cast<double>(t));
      compute_action_value_range(*pool_[t], belief, depth, leaf, options, t, jobs, out);
    });
  }
  if (options.stats != nullptr) {
    // The root Max node (counted into nodes_expanded_counter above) is
    // level 0; the workspaces only see its children onward.
    note_expansion_finished(options.stats);
    options.stats->note_node(0);
  } else {
    note_expansion_finished(nullptr);
  }
}

ActionValue ExpansionEngine::best_action(std::span<const double> belief, int depth,
                                         const SpanLeaf& leaf,
                                         const ExpansionOptions& options) {
  action_values(belief, depth, leaf, options, scratch_values_);
  RD_EXPECTS(options.skip_action != 0 || scratch_values_.size() > 1,
             "ExpansionEngine::best_action: cannot mask the only action");
  ActionValue best =
      options.skip_action == 0 ? scratch_values_[1] : scratch_values_.front();
  for (const auto& av : scratch_values_) {
    if (av.action == options.skip_action) continue;
    if (av.value > best.value) best = av;
  }
  return best;
}

// Canonicalize: hash each lane's belief bit pattern, then group bitwise-
// equal lanes (memcmp-confirmed, so a hash collision can only split a
// class, never merge distinct beliefs). Classes are numbered in first-
// occurrence lane order — the solve order of both batch paths — which keeps
// the whole pass deterministic for any batch composition.
std::size_t ExpansionEngine::canonicalize_roots(const BeliefBatch& batch) {
  const std::size_t num_states = pomdp_->num_states();
  const std::size_t lanes = batch.size();
  batch_rows_.resize(lanes * num_states);
  batch_hashes_.resize(lanes);
  batch_class_of_.resize(lanes);
  batch_reps_.clear();
  batch_buckets_.clear();
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    double* row = batch_rows_.data() + lane * num_states;
    batch.copy_lane(lane, {row, num_states});
    const std::uint64_t h = hash_belief_bits(row, num_states);
    batch_hashes_[lane] = h;
    auto& bucket = batch_buckets_[h];
    std::size_t cls = batch_reps_.size();
    for (std::size_t candidate : bucket) {
      const double* rep_row = batch_rows_.data() + batch_reps_[candidate] * num_states;
      if (std::memcmp(rep_row, row, num_states * sizeof(double)) == 0) {
        cls = candidate;
        break;
      }
    }
    if (cls == batch_reps_.size()) {
      batch_reps_.push_back(lane);
      bucket.push_back(cls);
    }
    batch_class_of_[lane] = cls;
  }
  return batch_reps_.size();
}

// One action_values() per class, in class (= first-occurrence) order.
// Each call configures its own workspace and clears the memo per root
// action, so its results are bit-identical to a standalone call — the
// scatter afterwards therefore reproduces the looped single-session path
// exactly, with `classes` expansions instead of `lanes`.
void ExpansionEngine::solve_classes_classic(int depth, const SpanLeaf& leaf,
                                            const ExpansionOptions& options) {
  const std::size_t num_states = pomdp_->num_states();
  const std::size_t num_actions = pomdp_->num_actions();
  const std::size_t num_classes = batch_reps_.size();
  batch_class_values_.resize(num_classes * num_actions);
  for (std::size_t cls = 0; cls < num_classes; ++cls) {
    const double* row = batch_rows_.data() + batch_reps_[cls] * num_states;
    action_values({row, num_states}, depth, leaf, options, class_values_scratch_);
    std::copy(class_values_scratch_.begin(), class_values_scratch_.end(),
              batch_class_values_.begin() +
                  static_cast<std::ptrdiff_t>(cls * num_actions));
  }
}

void ExpansionEngine::scatter_class_values(std::size_t lanes,
                                           std::vector<ActionValue>& out) {
  const std::size_t num_actions = pomdp_->num_actions();
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const ActionValue* src =
        batch_class_values_.data() + batch_class_of_[lane] * num_actions;
    std::copy(src, src + num_actions,
              out.begin() + static_cast<std::ptrdiff_t>(lane * num_actions));
  }
}

void ExpansionEngine::action_values_batch(const BeliefBatch& batch, int depth,
                                          const SpanLeaf& leaf,
                                          const ExpansionOptions& options,
                                          std::vector<ActionValue>& out,
                                          BatchExpansionStats* stats) {
  RD_EXPECTS(depth >= 1, "ExpansionEngine::action_values_batch: depth must be >= 1");
  const std::size_t num_states = pomdp_->num_states();
  const std::size_t num_actions = pomdp_->num_actions();
  RD_EXPECTS(batch.num_states() == num_states,
             "ExpansionEngine::action_values_batch: batch/model dimension mismatch");
  const std::size_t lanes = batch.size();
  out.assign(lanes * num_actions, ActionValue{});
  if (stats != nullptr) *stats = BatchExpansionStats{};
  if (lanes == 0) return;

  obs::TraceSpan span("expansion.decide_batch", obs::TraceLevel::Decide);
  span.arg("sessions", static_cast<double>(lanes));
  span.arg("depth", static_cast<double>(depth));

  const std::size_t num_classes = canonicalize_roots(batch);
  solve_classes_classic(depth, leaf, options);
  scatter_class_values(lanes, out);

  span.arg("classes", static_cast<double>(num_classes));
  if (stats != nullptr) {
    stats->sessions = lanes;
    stats->classes = num_classes;
    stats->shared_hits = lanes - num_classes;
  }
  BatchInstruments& instruments = BatchInstruments::get();
  instruments.calls.add();
  instruments.sessions.add(lanes);
  instruments.classes.add(num_classes);
  if (lanes > num_classes) instruments.shared_hits.add(lanes - num_classes);
}

void ExpansionEngine::select_best_lanes(std::size_t lanes,
                                        const ExpansionOptions& options,
                                        std::vector<ActionValue>& best) {
  const std::size_t num_actions = pomdp_->num_actions();
  RD_EXPECTS(options.skip_action != 0 || num_actions > 1,
             "ExpansionEngine::decide_batch: cannot mask the only action");
  best.resize(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const ActionValue* row = batch_best_scratch_.data() + lane * num_actions;
    // best_action()'s exact selection: seed past a masked action 0, then a
    // strict `>` keeps the lowest ActionId on ties.
    ActionValue chosen = options.skip_action == 0 ? row[1] : row[0];
    for (std::size_t a = 0; a < num_actions; ++a) {
      if (row[a].action == options.skip_action) continue;
      if (row[a].value > chosen.value) chosen = row[a];
    }
    best[lane] = chosen;
  }
}

void ExpansionEngine::decide_batch(const BeliefBatch& batch, int depth,
                                   const SpanLeaf& leaf, const ExpansionOptions& options,
                                   std::vector<ActionValue>& best,
                                   BatchExpansionStats* stats) {
  action_values_batch(batch, depth, leaf, options, batch_best_scratch_, stats);
  select_best_lanes(batch.size(), options, best);
}

// The level-wise core of the deep pipeline. Expands the canonical roots in
// batch_reps_ down to depth 0 — one expand_successors_batch() sweep per
// (level, action), children canonicalized globally per level — evaluates
// the distinct depth-0 frontier in one leaf batch, and back-substitutes
// bottom-up. Every per-node fold replays the serial walk's exact operation
// order (immediate via linalg::dot; per branch ascending ObsId: kept_mass
// += γ then value_acc += (β·γ)·child; future = kept_mass <= 0 ? 0 :
// value_acc/kept_mass; std::max over actions ascending), so a node's value
// is bitwise the value expand_iterative() computes for the same belief bits
// at the same remaining depth. Returns false — leaving batch_class_values_
// untouched — when a level exceeds options.deep_node_budget.
bool ExpansionEngine::solve_classes_deep(int depth, const SpanLeaf& leaf,
                                         const ExpansionOptions& options,
                                         BatchExpansionStats* stats) {
  const Pomdp& pomdp = *pomdp_;
  const std::size_t num_states = pomdp.num_states();
  const std::size_t num_actions = pomdp.num_actions();
  if (!deep_) deep_ = std::make_unique<DeepScratch>();
  DeepScratch& d = *deep_;
  const std::size_t num_classes = batch_reps_.size();
  if (num_classes > options.deep_node_budget) return false;

  // Level-0 node table: the class representatives, gathered contiguous.
  d.rows.resize(num_classes * num_states);
  for (std::size_t cls = 0; cls < num_classes; ++cls) {
    std::memcpy(d.rows.data() + cls * num_states,
                batch_rows_.data() + batch_reps_[cls] * num_states,
                num_states * sizeof(double));
  }
  std::size_t cur_count = num_classes;

  const auto num_levels = static_cast<std::size_t>(depth);
  if (d.levels.size() < num_levels) d.levels.resize(num_levels);
  std::size_t total_nodes = 0;

  for (std::size_t lvl = 0; lvl < num_levels; ++lvl) {
    DeepScratch::Level& level = d.levels[lvl];
    level.num_nodes = cur_count;
    total_nodes += cur_count;
    level.immediate.resize(cur_count * num_actions);
    level.edge_offsets.clear();
    level.edge_offsets.push_back(0);
    level.edge_gamma.clear();
    level.edge_child.clear();
    d.next_rows.clear();
    d.next_hashes.clear();
    d.table.reset(cur_count);
    std::size_t next_count = 0;

    obs::TraceSpan level_span("expansion.deep_level", obs::TraceLevel::Full);
    level_span.arg("level", static_cast<double>(lvl));
    level_span.arg("nodes", static_cast<double>(cur_count));

    for (ActionId a = 0; a < num_actions; ++a) {
      if (a == options.skip_action) {
        // Keep the action-major CSR aligned: zero-width ranges. The
        // immediate slots of a masked action are never read.
        for (std::size_t n = 0; n < cur_count; ++n) {
          level.edge_offsets.push_back(level.edge_gamma.size());
        }
        continue;
      }
      // Chunked expansion: materializing the whole level×action frontier
      // at once costs hundreds of MB at large levels (every posterior row
      // lives until canonicalization). Chunks of nodes bound the transient
      // to a few MB while visiting the exact same branches in the exact
      // same order, so the CSR — and every bit downstream — is unchanged.
      constexpr std::size_t kExpandChunk = 2048;
      for (std::size_t chunk = 0; chunk < cur_count; chunk += kExpandChunk) {
        const std::size_t chunk_count = std::min(kExpandChunk, cur_count - chunk);
        expand_successors_batch(pomdp, d.rows.data() + chunk * num_states, chunk_count,
                                num_states, a, options.branch_floor, d.frontier);
        for (std::size_t c = 0; c < chunk_count; ++c) {
          const std::size_t n = chunk + c;
          const double* node = d.rows.data() + n * num_states;
          level.immediate[a * cur_count + n] =
              linalg::dot(pomdp.mdp().rewards(a), {node, num_states});
          for (std::size_t b = d.frontier.offsets[c]; b < d.frontier.offsets[c + 1];
               ++b) {
            double* post = d.frontier.posteriors.data() + b * num_states;
            // Normalise exactly once — the same sum-then-divide every walk
            // performs — *before* canonicalizing, so the child key is the
            // bit pattern the leaf/subtree actually sees.
            linalg::normalize_probability({post, num_states});
            const std::uint64_t h = hash_belief_bits(post, num_states);
            std::size_t child = next_count;
            std::size_t pos = h & d.table.mask;
            while (d.table.slots[pos] != 0) {
              const std::size_t candidate = d.table.slots[pos] - 1;
              if (d.next_hashes[candidate] == h &&
                  std::memcmp(d.next_rows.data() + candidate * num_states, post,
                              num_states * sizeof(double)) == 0) {
                child = candidate;
                break;
              }
              pos = (pos + 1) & d.table.mask;
            }
            if (child == next_count) {
              if (next_count + 1 > options.deep_node_budget) return false;
              d.next_rows.insert(d.next_rows.end(), post, post + num_states);
              d.next_hashes.push_back(h);
              d.table.slots[pos] = static_cast<std::uint32_t>(next_count + 1);
              ++next_count;
              d.table.grow_if_loaded(next_count, d.next_hashes);
            }
            level.edge_gamma.push_back(d.frontier.gamma[b]);
            level.edge_child.push_back(static_cast<std::uint32_t>(child));
          }
          level.edge_offsets.push_back(level.edge_gamma.size());
        }
      }
    }
    // Every node at this level is a Max node the serial walk would open
    // (at least once; typically many times).
    nodes_expanded_counter().add(cur_count);
    std::swap(d.rows, d.next_rows);
    cur_count = next_count;
  }

  // The entire depth-0 frontier — every distinct leaf belief under every
  // root and action — in one batch evaluation.
  d.child_values.resize(cur_count);
  if (cur_count > 0) {
    obs::TraceSpan leaf_span("expansion.deep_leaf_frontier", obs::TraceLevel::Full);
    leaf_span.arg("count", static_cast<double>(cur_count));
    if (leaf.has_batch() && cur_count > 1) {
      leaf.batch(d.rows.data(), cur_count, num_states, d.child_values.data(),
                 main_->slot);
    } else {
      for (std::size_t i = 0; i < cur_count; ++i) {
        d.child_values[i] = leaf({d.rows.data() + i * num_states, num_states},
                                 main_->slot);
      }
    }
    leaf_evaluations_counter().add(cur_count);
  }

  // Back-substitute bottom-up. Interior levels fold to one value per node;
  // level 0 keeps the per-action values the batch contract returns.
  for (std::size_t lvl = num_levels; lvl-- > 1;) {
    const DeepScratch::Level& level = d.levels[lvl];
    d.values.resize(level.num_nodes);
    for (std::size_t n = 0; n < level.num_nodes; ++n) {
      double best = kNegInf;
      for (ActionId a = 0; a < num_actions; ++a) {
        if (a == options.skip_action) continue;
        const std::size_t idx = a * level.num_nodes + n;
        double value_acc = 0.0;
        double kept_mass = 0.0;
        for (std::size_t e = level.edge_offsets[idx]; e < level.edge_offsets[idx + 1];
             ++e) {
          kept_mass += level.edge_gamma[e];
          value_acc +=
              (options.beta * level.edge_gamma[e]) * d.child_values[level.edge_child[e]];
        }
        const double future = kept_mass <= 0.0 ? 0.0 : value_acc / kept_mass;
        best = std::max(best, level.immediate[idx] + future);
      }
      d.values[n] = best;
    }
    std::swap(d.values, d.child_values);
  }

  const DeepScratch::Level& root = d.levels[0];
  batch_class_values_.resize(num_classes * num_actions);
  for (std::size_t cls = 0; cls < num_classes; ++cls) {
    for (ActionId a = 0; a < num_actions; ++a) {
      if (a == options.skip_action) {
        batch_class_values_[cls * num_actions + a] = {a, kNegInf};
        continue;
      }
      const std::size_t idx = a * root.num_nodes + cls;
      double value_acc = 0.0;
      double kept_mass = 0.0;
      for (std::size_t e = root.edge_offsets[idx]; e < root.edge_offsets[idx + 1]; ++e) {
        kept_mass += root.edge_gamma[e];
        value_acc +=
            (options.beta * root.edge_gamma[e]) * d.child_values[root.edge_child[e]];
      }
      const double future = kept_mass <= 0.0 ? 0.0 : value_acc / kept_mass;
      batch_class_values_[cls * num_actions + a] = {a, root.immediate[idx] + future};
    }
  }

  if (stats != nullptr) {
    stats->frontier_nodes = total_nodes;
    stats->frontier_leaves = cur_count;
    stats->deep = true;
  }
  DeepInstruments& instruments = DeepInstruments::get();
  instruments.calls.add();
  instruments.nodes.add(total_nodes);
  instruments.leaves.add(cur_count);
  return true;
}

void ExpansionEngine::action_values_batch_deep(const BeliefBatch& batch, int depth,
                                               const SpanLeaf& leaf,
                                               const ExpansionOptions& options,
                                               std::vector<ActionValue>& out,
                                               BatchExpansionStats* stats) {
  RD_EXPECTS(depth >= 1, "ExpansionEngine::action_values_batch_deep: depth must be >= 1");
  const std::size_t num_states = pomdp_->num_states();
  const std::size_t num_actions = pomdp_->num_actions();
  RD_EXPECTS(batch.num_states() == num_states,
             "ExpansionEngine::action_values_batch_deep: batch/model dimension mismatch");
  // The option checks of check_common_options(), minus the belief-dimension
  // one (the batch constructor already fixed the lane dimension).
  RD_EXPECTS(options.beta >= 0.0 && options.beta <= 1.0,
             "ExpansionEngine: beta must lie in [0,1]");
  RD_EXPECTS(options.skip_action == kInvalidId || num_actions > 1,
             "ExpansionEngine: cannot mask the only action");
  RD_EXPECTS(options.branch_floor >= 0.0 && options.branch_floor < 1.0,
             "ExpansionEngine: branch floor must lie in [0,1)");
  RD_EXPECTS(options.root_jobs >= 1, "ExpansionEngine: root_jobs must be >= 1");
  const std::size_t lanes = batch.size();
  out.assign(lanes * num_actions, ActionValue{});
  if (stats != nullptr) *stats = BatchExpansionStats{};
  if (lanes == 0) return;

  obs::TraceSpan span("expansion.decide_batch_deep", obs::TraceLevel::Decide);
  span.arg("sessions", static_cast<double>(lanes));
  span.arg("depth", static_cast<double>(depth));

  const std::size_t num_classes = canonicalize_roots(batch);
  if (!solve_classes_deep(depth, leaf, options, stats)) {
    // Budget exceeded mid-level: rerun through the per-class walks. Values
    // are bit-identical either way, so the fallback is purely a memory cap
    // (the partial deep work only cost time and some instrument noise).
    DeepInstruments::get().fallbacks.add();
    solve_classes_classic(depth, leaf, options);
  }
  scatter_class_values(lanes, out);

  span.arg("classes", static_cast<double>(num_classes));
  if (stats != nullptr) {
    stats->sessions = lanes;
    stats->classes = num_classes;
    stats->shared_hits = lanes - num_classes;
  }
  BatchInstruments& instruments = BatchInstruments::get();
  instruments.calls.add();
  instruments.sessions.add(lanes);
  instruments.classes.add(num_classes);
  if (lanes > num_classes) instruments.shared_hits.add(lanes - num_classes);
}

void ExpansionEngine::decide_batch_deep(const BeliefBatch& batch, int depth,
                                        const SpanLeaf& leaf,
                                        const ExpansionOptions& options,
                                        std::vector<ActionValue>& best,
                                        BatchExpansionStats* stats) {
  action_values_batch_deep(batch, depth, leaf, options, batch_best_scratch_, stats);
  select_best_lanes(batch.size(), options, best);
}

std::size_t ExpansionEngine::arena_bytes() const {
  std::size_t total = main_->bytes();
  for (const auto& ws : pool_) total += ws->bytes();
  if (deep_) total += deep_->bytes();
  return total;
}

void ExpansionEngine::note_expansion_finished(ExpansionNodeStats* stats) {
  // Drain the per-workspace memo tallies in a fixed order (main, then the
  // pool by worker index). Runs after any fan-out joins, so the shared
  // counters see one deterministic batch per expansion. The provenance
  // stats fold in the same pass and the same order — integer sums, so the
  // result is identical for any worker count.
  if (stats != nullptr) stats->reset();
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t capped = 0;
  std::uint64_t carry_hits = 0;
  std::uint64_t carry_misses = 0;
  std::uint64_t carry_invalidations = 0;
  std::size_t memo_bytes = 0;
  auto drain = [&](Workspace& ws) {
    hits += ws.memo.hits;
    misses += ws.memo.misses;
    insertions += ws.memo.insertions;
    capped += ws.memo.capped_insertions;
    carry_hits += ws.memo.carry_hits;
    carry_misses += ws.memo.carry_misses;
    carry_invalidations += ws.memo.carry_invalidations;
    ws.memo.hits = ws.memo.misses = ws.memo.insertions = ws.memo.capped_insertions = 0;
    ws.memo.carry_hits = ws.memo.carry_misses = ws.memo.carry_invalidations = 0;
    memo_bytes += ws.memo.bytes();
    if (stats != nullptr && ws.collect_stats) {
      stats->nodes += ws.local_stats.nodes;
      stats->leaf_evaluations += ws.local_stats.leaf_evaluations;
      for (std::size_t l = 0; l < ExpansionNodeStats::kMaxLevels; ++l) {
        stats->nodes_per_level[l] += ws.local_stats.nodes_per_level[l];
      }
    }
    ws.local_stats.reset();
    ws.collect_stats = false;
  };
  drain(*main_);
  for (const auto& ws : pool_) drain(*ws);
  if (stats != nullptr) {
    stats->memo_hits = hits;
    stats->memo_misses = misses;
    stats->memo_insertions = insertions;
    stats->memo_carry_hits = carry_hits;
    stats->memo_carry_misses = carry_misses;
    stats->memo_carry_invalidations = carry_invalidations;
  }
  if (hits + misses + insertions + capped + carry_hits + carry_misses +
          carry_invalidations > 0) {
    MemoInstruments& instruments = MemoInstruments::get();
    if (hits > 0) instruments.hits.add(hits);
    if (misses > 0) instruments.misses.add(misses);
    if (insertions > 0) instruments.insertions.add(insertions);
    if (capped > 0) instruments.capped.add(capped);
    if (carry_hits > 0) instruments.carry_hits.add(carry_hits);
    if (carry_misses > 0) instruments.carry_misses.add(carry_misses);
    if (carry_invalidations > 0) {
      instruments.carry_invalidations.add(carry_invalidations);
    }
    if (static_cast<double>(memo_bytes) > instruments.bytes.value()) {
      instruments.bytes.set(static_cast<double>(memo_bytes));
    }
  }

  const std::size_t bytes = arena_bytes();
  if (bytes > peak_arena_bytes_) {
    peak_arena_bytes_ = bytes;
    // The gauge tracks the high-water mark across every engine in the
    // process (last-writer on ties is irrelevant for a max).
    if (bytes > arena_peak_bytes_gauge().value()) {
      arena_peak_bytes_gauge().set(static_cast<double>(bytes));
    }
  }
}

}  // namespace recoverd
