#include "pomdp/expansion.hpp"

#include <algorithm>
#include <limits>
#include <thread>

#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "pomdp/belief.hpp"
#include "util/check.hpp"

namespace recoverd {

namespace {
// Tree-shape instruments shared with the bellman.cpp wrappers: a "node" is
// a belief at which the max over actions is taken; leaves are the bound
// evaluations at depth 0.
obs::Counter& nodes_expanded_counter() {
  static obs::Counter& c = obs::metrics().counter("pomdp.bellman.nodes_expanded");
  return c;
}

obs::Counter& leaf_evaluations_counter() {
  static obs::Counter& c = obs::metrics().counter("pomdp.bellman.leaf_evaluations");
  return c;
}

// Engine-specific instruments (DESIGN.md §8).
obs::Counter& workspace_reuses_counter() {
  static obs::Counter& c = obs::metrics().counter("pomdp.engine.workspace_reuses");
  return c;
}

obs::Counter& parallel_batches_counter() {
  static obs::Counter& c = obs::metrics().counter("pomdp.engine.parallel_batches");
  return c;
}

obs::Gauge& arena_peak_bytes_gauge() {
  static obs::Gauge& g = obs::metrics().gauge("pomdp.engine.arena_peak_bytes");
  return g;
}

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

void check_common_options(const Pomdp& pomdp, std::span<const double> belief,
                          const ExpansionOptions& o) {
  RD_EXPECTS(o.beta >= 0.0 && o.beta <= 1.0, "ExpansionEngine: beta must lie in [0,1]");
  RD_EXPECTS(belief.size() == pomdp.num_states(),
             "ExpansionEngine: belief dimension mismatch");
  RD_EXPECTS(o.skip_action == kInvalidId || pomdp.num_actions() > 1,
             "ExpansionEngine: cannot mask the only action");
  RD_EXPECTS(o.branch_floor >= 0.0 && o.branch_floor < 1.0,
             "ExpansionEngine: branch floor must lie in [0,1)");
  RD_EXPECTS(o.root_jobs >= 1, "ExpansionEngine: root_jobs must be >= 1");
}
}  // namespace

// One tree level of the arena: the successor buffers of the node currently
// open at that level plus the little state machine that replaces the call
// stack of the recursive implementation.
struct ExpansionEngine::Frame {
  // Scratch buffers filled by expand_successors_into(); capacities persist
  // across expansions, which is what makes the steady state allocation-free.
  std::vector<double> pred;             // |S| predicted distribution
  std::vector<double> weight;           // |O| observation likelihoods
  std::vector<std::size_t> branch_of;   // |O| -> kept index
  std::vector<ObsId> kept;              // surviving observations, ascending
  std::vector<double> posteriors;       // kept×|S| normalised posteriors

  // Node state.
  std::span<const double> belief;  // points into the parent frame's posteriors
  double best = kNegInf;           // running max over completed actions
  ActionId next_action = 0;        // next action to open
  bool done = false;               // all actions folded into `best`

  // State of the currently open action.
  double immediate = 0.0;    // π·r(a)
  double value_acc = 0.0;    // Σ (β·γ)·child over finished branches
  double kept_mass = 0.0;    // Σ γ over visited branches
  std::size_t branch = 0;    // next branch to evaluate
  std::size_t num_kept = 0;  // branches of the open action
  double pending_gamma = 0.0;  // γ of the branch currently being descended

  void begin_node(std::span<const double> node_belief, const Pomdp& pomdp,
                  const ExpansionOptions& o);
  void advance_action(const Pomdp& pomdp, const ExpansionOptions& o);
  void finish_action(const Pomdp& pomdp, const ExpansionOptions& o);

  std::size_t bytes() const {
    return pred.capacity() * sizeof(double) + weight.capacity() * sizeof(double) +
           branch_of.capacity() * sizeof(std::size_t) + kept.capacity() * sizeof(ObsId) +
           posteriors.capacity() * sizeof(double);
  }
};

// One independent traversal context: `frames[l]` serves tree level l. The
// main workspace serves serial expansions; root fan-out gives each worker
// thread a private workspace so subtrees never share mutable state.
struct ExpansionEngine::Workspace {
  std::vector<Frame> frames;

  // Grows the arena to `depth` levels. Counts a reuse when no growth was
  // needed — after the first decision at a given depth, every subsequent
  // expansion runs entirely on recycled buffers.
  void ensure(int depth) {
    const auto levels = static_cast<std::size_t>(depth);
    if (frames.size() >= levels) {
      workspace_reuses_counter().add();
      return;
    }
    frames.resize(levels);
  }

  std::size_t bytes() const {
    std::size_t total = 0;
    for (const Frame& f : frames) total += f.bytes();
    return total;
  }
};

// Opens a Max node at this frame (bumping the nodes-expanded instrument,
// like the recursive expand() did on entry) and positions it at its first
// action.
void ExpansionEngine::Frame::begin_node(std::span<const double> node_belief,
                                        const Pomdp& pomdp, const ExpansionOptions& o) {
  nodes_expanded_counter().add();
  belief = node_belief;
  best = kNegInf;
  next_action = 0;
  done = false;
  advance_action(pomdp, o);
}

// Opens the next unmasked action, folding zero-branch actions (all
// observation mass pruned or unreachable: future value 0, exactly as the
// recursive action_future_value returns 0) straight into `best`. Sets
// `done` once all actions are folded.
void ExpansionEngine::Frame::advance_action(const Pomdp& pomdp,
                                            const ExpansionOptions& o) {
  const ActionId num_actions = pomdp.num_actions();
  const std::size_t num_states = pomdp.num_states();
  while (next_action < num_actions) {
    const ActionId a = next_action++;
    if (a == o.skip_action) continue;
    immediate = linalg::dot(pomdp.mdp().rewards(a), belief);
    num_kept = expand_successors_into(pomdp, belief, a, o.branch_floor, pred, weight,
                                      branch_of, kept, posteriors);
    // Normalise every posterior exactly once — the same sum-then-divide the
    // Belief constructor performs, so leaves see bit-identical inputs.
    for (std::size_t i = 0; i < num_kept; ++i) {
      linalg::normalize_probability(
          std::span<double>(posteriors.data() + i * num_states, num_states));
    }
    value_acc = 0.0;
    kept_mass = 0.0;
    branch = 0;
    if (num_kept == 0) {
      best = std::max(best, immediate + 0.0);
      continue;
    }
    return;
  }
  done = true;
}

// All branches of the open action are in: fold its value into `best` with
// the kept-mass renormalisation of the branch floor, then open the next
// action.
void ExpansionEngine::Frame::finish_action(const Pomdp& pomdp,
                                           const ExpansionOptions& o) {
  const double future = kept_mass <= 0.0 ? 0.0 : value_acc / kept_mass;
  best = std::max(best, immediate + future);
  advance_action(pomdp, o);
}

ExpansionEngine::ExpansionEngine(const Pomdp& pomdp)
    : pomdp_(&pomdp), main_(std::make_unique<Workspace>()) {}

ExpansionEngine::~ExpansionEngine() = default;

// The iterative core. Walks the depth-d subtree rooted at `belief` using
// frames[base_level .. base_level+depth-1] as the explicit stack, visiting
// branches in ascending ObsId order and actions in ascending ActionId order
// — the exact traversal (and exact floating-point operation order) of the
// recursive reference implementation. Precondition: depth >= 1 and the
// workspace holds base_level + depth frames.
double ExpansionEngine::expand_iterative(Workspace& ws, std::size_t base_level,
                                         std::span<const double> belief, int depth,
                                         const SpanLeaf& leaf,
                                         const ExpansionOptions& options) {
  const Pomdp& pomdp = *pomdp_;
  const std::size_t num_states = pomdp.num_states();
  std::size_t top = base_level;
  ws.frames[top].begin_node(belief, pomdp, options);
  for (;;) {
    Frame& fr = ws.frames[top];
    if (fr.done) {
      const double node_value = fr.best;
      if (top == base_level) return node_value;
      --top;
      Frame& parent = ws.frames[top];
      parent.value_acc += (options.beta * parent.pending_gamma) * node_value;
      ++parent.branch;
      if (parent.branch == parent.num_kept) parent.finish_action(pomdp, options);
      continue;
    }
    // fr has an open action with fr.branch < fr.num_kept: visit the next
    // branch. Kept mass accrues before the child is evaluated, exactly as
    // in the recursive action_future_value.
    const double gamma = fr.weight[fr.kept[fr.branch]];
    fr.kept_mass += gamma;
    const std::span<const double> child(fr.posteriors.data() + fr.branch * num_states,
                                        num_states);
    const int remaining = depth - static_cast<int>(top - base_level);
    if (remaining == 1) {  // children of this node are leaves
      leaf_evaluations_counter().add();
      fr.value_acc += (options.beta * gamma) * leaf(child);
      ++fr.branch;
      if (fr.branch == fr.num_kept) fr.finish_action(pomdp, options);
    } else {
      fr.pending_gamma = gamma;
      ++top;
      ws.frames[top].begin_node(child, pomdp, options);
    }
  }
}

// Future value of `action` at the root belief: β Σ_o γ(o) V_{d-1}(π^o)
// with sub-floor branches pruned and the kept mass renormalised. Uses
// frames[0] for the root successors and frames[1..] for the subtrees.
double ExpansionEngine::root_action_future(Workspace& ws, std::span<const double> belief,
                                           ActionId action, int depth, const SpanLeaf& leaf,
                                           const ExpansionOptions& options) {
  const Pomdp& pomdp = *pomdp_;
  const std::size_t num_states = pomdp.num_states();
  Frame& fr = ws.frames[0];
  fr.num_kept = expand_successors_into(pomdp, belief, action, options.branch_floor,
                                       fr.pred, fr.weight, fr.branch_of, fr.kept,
                                       fr.posteriors);
  for (std::size_t i = 0; i < fr.num_kept; ++i) {
    linalg::normalize_probability(
        std::span<double>(fr.posteriors.data() + i * num_states, num_states));
  }
  double value = 0.0;
  double kept_mass = 0.0;
  for (std::size_t i = 0; i < fr.num_kept; ++i) {
    const double gamma = fr.weight[fr.kept[i]];
    kept_mass += gamma;
    const std::span<const double> child(fr.posteriors.data() + i * num_states, num_states);
    double child_value;
    if (depth == 1) {
      leaf_evaluations_counter().add();
      child_value = leaf(child);
    } else {
      child_value = expand_iterative(ws, 1, child, depth - 1, leaf, options);
    }
    value += (options.beta * gamma) * child_value;
  }
  if (kept_mass <= 0.0) return 0.0;  // everything pruned: treat future as the floor 0
  return value / kept_mass;
}

void ExpansionEngine::compute_action_value_range(Workspace& ws,
                                                 std::span<const double> belief, int depth,
                                                 const SpanLeaf& leaf,
                                                 const ExpansionOptions& options,
                                                 std::size_t begin, std::size_t step,
                                                 std::vector<ActionValue>& out) {
  ws.ensure(depth);
  const Pomdp& pomdp = *pomdp_;
  for (std::size_t a = begin; a < pomdp.num_actions(); a += step) {
    if (a == options.skip_action) {
      out[a] = {a, kNegInf};
      continue;
    }
    const double immediate = linalg::dot(pomdp.mdp().rewards(a), belief);
    const double future = root_action_future(ws, belief, a, depth, leaf, options);
    out[a] = {a, immediate + future};
  }
}

double ExpansionEngine::value(std::span<const double> belief, int depth,
                              const SpanLeaf& leaf, const ExpansionOptions& options) {
  RD_EXPECTS(depth >= 0, "ExpansionEngine::value: depth must be >= 0");
  check_common_options(*pomdp_, belief, options);
  if (depth == 0) {
    leaf_evaluations_counter().add();
    return leaf(belief);
  }
  main_->ensure(depth);
  const double result = expand_iterative(*main_, 0, belief, depth, leaf, options);
  note_expansion_finished();
  return result;
}

void ExpansionEngine::action_values(std::span<const double> belief, int depth,
                                    const SpanLeaf& leaf, const ExpansionOptions& options,
                                    std::vector<ActionValue>& out) {
  RD_EXPECTS(depth >= 1, "ExpansionEngine::action_values: depth must be >= 1");
  check_common_options(*pomdp_, belief, options);
  const std::size_t num_actions = pomdp_->num_actions();
  nodes_expanded_counter().add();  // the root Max node
  out.assign(num_actions, ActionValue{});

  const auto jobs =
      std::min<std::size_t>(static_cast<std::size_t>(options.root_jobs), num_actions);
  if (jobs <= 1) {
    compute_action_value_range(*main_, belief, depth, leaf, options, 0, 1, out);
  } else {
    // Root fan-out: worker t computes actions t, t+jobs, t+2·jobs, … on a
    // private workspace. Per-action values are independent (the max over
    // actions commutes with who computes each operand), so the results are
    // bit-identical to the serial loop for any worker count.
    parallel_batches_counter().add();
    while (pool_.size() < jobs) pool_.push_back(std::make_unique<Workspace>());
    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (std::size_t t = 0; t < jobs; ++t) {
      workers.emplace_back([&, t] {
        compute_action_value_range(*pool_[t], belief, depth, leaf, options, t, jobs, out);
      });
    }
    for (auto& w : workers) w.join();
  }
  note_expansion_finished();
}

ActionValue ExpansionEngine::best_action(std::span<const double> belief, int depth,
                                         const SpanLeaf& leaf,
                                         const ExpansionOptions& options) {
  action_values(belief, depth, leaf, options, scratch_values_);
  RD_EXPECTS(options.skip_action != 0 || scratch_values_.size() > 1,
             "ExpansionEngine::best_action: cannot mask the only action");
  ActionValue best =
      options.skip_action == 0 ? scratch_values_[1] : scratch_values_.front();
  for (const auto& av : scratch_values_) {
    if (av.action == options.skip_action) continue;
    if (av.value > best.value) best = av;
  }
  return best;
}

std::size_t ExpansionEngine::arena_bytes() const {
  std::size_t total = main_->bytes();
  for (const auto& ws : pool_) total += ws->bytes();
  return total;
}

void ExpansionEngine::note_expansion_finished() {
  const std::size_t bytes = arena_bytes();
  if (bytes > peak_arena_bytes_) {
    peak_arena_bytes_ = bytes;
    // The gauge tracks the high-water mark across every engine in the
    // process (last-writer on ties is irrelevant for a max).
    if (bytes > arena_peak_bytes_gauge().value()) {
      arena_peak_bytes_gauge().set(static_cast<double>(bytes));
    }
  }
}

}  // namespace recoverd
