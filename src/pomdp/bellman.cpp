#include "pomdp/bellman.hpp"

#include <algorithm>
#include <limits>

#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace recoverd {

namespace {
// Tree-shape instruments: a "node" is a belief at which the max over
// actions is taken (the Max nodes of Fig. 1(b)); leaves are the bound
// evaluations at depth 0.
obs::Counter& nodes_expanded_counter() {
  static obs::Counter& c = obs::metrics().counter("pomdp.bellman.nodes_expanded");
  return c;
}

obs::Counter& leaf_evaluations_counter() {
  static obs::Counter& c = obs::metrics().counter("pomdp.bellman.leaf_evaluations");
  return c;
}

struct ExpandContext {
  const Pomdp& pomdp;
  const LeafEvaluator& leaf;
  double beta;
  ActionId skip_action;
  double branch_floor;
};

// Future value of taking `a` at `belief`: β Σ_o γ(o) V_{d-1}(π^o), with
// sub-floor branches pruned and the kept mass renormalised.
double action_future_value(const ExpandContext& ctx, const Belief& belief, ActionId a,
                           int depth);

double expand(const ExpandContext& ctx, const Belief& belief, int depth) {
  if (depth <= 0) {
    leaf_evaluations_counter().add();
    return ctx.leaf(belief);
  }
  nodes_expanded_counter().add();
  double best = -std::numeric_limits<double>::infinity();
  for (ActionId a = 0; a < ctx.pomdp.num_actions(); ++a) {
    if (a == ctx.skip_action) continue;
    const double value =
        linalg::dot(ctx.pomdp.mdp().rewards(a), belief.probabilities()) +
        action_future_value(ctx, belief, a, depth);
    best = std::max(best, value);
  }
  return best;
}

double action_future_value(const ExpandContext& ctx, const Belief& belief, ActionId a,
                           int depth) {
  double value = 0.0;
  double kept_mass = 0.0;
  for (const auto& branch :
       belief_successors(ctx.pomdp, belief, a, ctx.branch_floor)) {
    kept_mass += branch.probability;
    value += ctx.beta * branch.probability *
             expand(ctx, branch.posterior, depth - 1);
  }
  if (kept_mass <= 0.0) return 0.0;  // everything pruned: treat future as the floor 0
  return value / kept_mass;
}
}  // namespace

double bellman_value(const Pomdp& pomdp, const Belief& belief, int depth,
                     const LeafEvaluator& leaf, double beta, ActionId skip_action,
                     double branch_floor) {
  RD_EXPECTS(depth >= 0, "bellman_value: depth must be >= 0");
  RD_EXPECTS(beta >= 0.0 && beta <= 1.0, "bellman_value: beta must lie in [0,1]");
  RD_EXPECTS(static_cast<bool>(leaf), "bellman_value: leaf evaluator required");
  RD_EXPECTS(belief.size() == pomdp.num_states(), "bellman_value: belief dimension mismatch");
  RD_EXPECTS(skip_action == kInvalidId || pomdp.num_actions() > 1,
             "bellman_value: cannot mask the only action");
  RD_EXPECTS(branch_floor >= 0.0 && branch_floor < 1.0,
             "bellman_value: branch floor must lie in [0,1)");
  const ExpandContext ctx{pomdp, leaf, beta, skip_action, branch_floor};
  return expand(ctx, belief, depth);
}

std::vector<ActionValue> bellman_action_values(const Pomdp& pomdp, const Belief& belief,
                                               int depth, const LeafEvaluator& leaf,
                                               double beta, ActionId skip_action,
                                               double branch_floor) {
  RD_EXPECTS(depth >= 1, "bellman_action_values: depth must be >= 1");
  RD_EXPECTS(beta >= 0.0 && beta <= 1.0, "bellman_action_values: beta must lie in [0,1]");
  RD_EXPECTS(static_cast<bool>(leaf), "bellman_action_values: leaf evaluator required");
  RD_EXPECTS(belief.size() == pomdp.num_states(),
             "bellman_action_values: belief dimension mismatch");
  RD_EXPECTS(branch_floor >= 0.0 && branch_floor < 1.0,
             "bellman_action_values: branch floor must lie in [0,1)");

  const ExpandContext ctx{pomdp, leaf, beta, skip_action, branch_floor};
  nodes_expanded_counter().add();  // the root Max node
  std::vector<ActionValue> out;
  out.reserve(pomdp.num_actions());
  for (ActionId a = 0; a < pomdp.num_actions(); ++a) {
    if (a == skip_action) {
      out.push_back({a, -std::numeric_limits<double>::infinity()});
      continue;
    }
    const double value = linalg::dot(pomdp.mdp().rewards(a), belief.probabilities()) +
                         action_future_value(ctx, belief, a, depth);
    out.push_back({a, value});
  }
  return out;
}

ActionValue bellman_best_action(const Pomdp& pomdp, const Belief& belief, int depth,
                                const LeafEvaluator& leaf, double beta,
                                ActionId skip_action, double branch_floor) {
  const auto values =
      bellman_action_values(pomdp, belief, depth, leaf, beta, skip_action, branch_floor);
  RD_EXPECTS(skip_action != 0 || values.size() > 1,
             "bellman_best_action: cannot mask the only action");
  ActionValue best = skip_action == 0 ? values[1] : values.front();
  for (const auto& av : values) {
    if (av.action == skip_action) continue;
    if (av.value > best.value) best = av;
  }
  return best;
}

double apply_lp(const Pomdp& pomdp, const Belief& belief, const LeafEvaluator& leaf,
                double beta) {
  return bellman_value(pomdp, belief, 1, leaf, beta);
}

}  // namespace recoverd
