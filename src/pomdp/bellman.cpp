#include "pomdp/bellman.hpp"

#include <memory>

#include "pomdp/expansion.hpp"
#include "util/check.hpp"

namespace recoverd {

namespace {
// The wrappers below share one engine per thread, rebound lazily when the
// model changes: callers that interleave models (tests, solvers) pay only a
// pointer swap, while repeated calls on one model reuse the warm arena.
ExpansionEngine& engine_for(const Pomdp& pomdp) {
  thread_local const Pomdp* bound = nullptr;
  thread_local std::unique_ptr<ExpansionEngine> engine;
  if (!engine) {
    engine = std::make_unique<ExpansionEngine>(pomdp);
    bound = &pomdp;
  } else if (bound != &pomdp) {
    engine->rebind(pomdp);
    bound = &pomdp;
  }
  return *engine;
}

// Adapts the type-erased LeafEvaluator to the engine's span interface. The
// engine hands over the already-normalised posterior, so assign_normalized
// reconstructs a Belief with bit-identical probabilities to what the
// recursive implementation passed — into one reused allocation, since the
// leaf only sees the Belief for the duration of the call.
struct FunctionLeaf {
  const LeafEvaluator* leaf;
  mutable Belief scratch = Belief::uniform(1);
  double operator()(std::span<const double> pi) const {
    scratch.assign_normalized(pi);
    return (*leaf)(scratch);
  }
};
}  // namespace

double bellman_value(const Pomdp& pomdp, const Belief& belief, int depth,
                     const LeafEvaluator& leaf, double beta, ActionId skip_action,
                     double branch_floor) {
  RD_EXPECTS(depth >= 0, "bellman_value: depth must be >= 0");
  RD_EXPECTS(beta >= 0.0 && beta <= 1.0, "bellman_value: beta must lie in [0,1]");
  RD_EXPECTS(static_cast<bool>(leaf), "bellman_value: leaf evaluator required");
  RD_EXPECTS(belief.size() == pomdp.num_states(), "bellman_value: belief dimension mismatch");
  RD_EXPECTS(skip_action == kInvalidId || pomdp.num_actions() > 1,
             "bellman_value: cannot mask the only action");
  RD_EXPECTS(branch_floor >= 0.0 && branch_floor < 1.0,
             "bellman_value: branch floor must lie in [0,1)");
  const FunctionLeaf adapter{&leaf};
  const ExpansionOptions options{beta, skip_action, branch_floor, 1};
  return engine_for(pomdp).value(belief.probabilities(), depth, SpanLeaf::of(adapter),
                                 options);
}

std::vector<ActionValue> bellman_action_values(const Pomdp& pomdp, const Belief& belief,
                                               int depth, const LeafEvaluator& leaf,
                                               double beta, ActionId skip_action,
                                               double branch_floor) {
  RD_EXPECTS(depth >= 1, "bellman_action_values: depth must be >= 1");
  RD_EXPECTS(beta >= 0.0 && beta <= 1.0, "bellman_action_values: beta must lie in [0,1]");
  RD_EXPECTS(static_cast<bool>(leaf), "bellman_action_values: leaf evaluator required");
  RD_EXPECTS(belief.size() == pomdp.num_states(),
             "bellman_action_values: belief dimension mismatch");
  RD_EXPECTS(branch_floor >= 0.0 && branch_floor < 1.0,
             "bellman_action_values: branch floor must lie in [0,1)");
  const FunctionLeaf adapter{&leaf};
  const ExpansionOptions options{beta, skip_action, branch_floor, 1};
  std::vector<ActionValue> out;
  engine_for(pomdp).action_values(belief.probabilities(), depth, SpanLeaf::of(adapter),
                                  options, out);
  return out;
}

ActionValue bellman_best_action(const Pomdp& pomdp, const Belief& belief, int depth,
                                const LeafEvaluator& leaf, double beta,
                                ActionId skip_action, double branch_floor) {
  const auto values =
      bellman_action_values(pomdp, belief, depth, leaf, beta, skip_action, branch_floor);
  RD_EXPECTS(skip_action != 0 || values.size() > 1,
             "bellman_best_action: cannot mask the only action");
  ActionValue best = skip_action == 0 ? values[1] : values.front();
  for (const auto& av : values) {
    if (av.action == skip_action) continue;
    if (av.value > best.value) best = av;
  }
  return best;
}

double apply_lp(const Pomdp& pomdp, const Belief& belief, const LeafEvaluator& leaf,
                double beta) {
  return bellman_value(pomdp, belief, 1, leaf, beta);
}

}  // namespace recoverd
