// Sampling from the model's transition and observation distributions —
// shared by the environment simulator and the bootstrap phase.
#pragma once

#include "pomdp/belief.hpp"
#include "pomdp/pomdp.hpp"
#include "util/rng.hpp"

namespace recoverd {

/// Samples s' ~ p(·|s, a).
StateId sample_transition(const Mdp& mdp, StateId s, ActionId a, Rng& rng);

/// Samples o ~ q(·|next, a).
ObsId sample_observation(const Pomdp& pomdp, StateId next, ActionId a, Rng& rng);

/// Samples a state from a belief.
StateId sample_state(const Belief& belief, Rng& rng);

}  // namespace recoverd
