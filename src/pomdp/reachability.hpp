// Reachable belief-space enumeration (§2's observation that the reachable
// belief set is countable): breadth-first expansion of beliefs under all
// (action, observation) pairs with tolerance-based deduplication. Used for
// diagnostics (how big is the effective belief space a controller visits?)
// and by tests that want exhaustive small-model coverage.
#pragma once

#include <vector>

#include "pomdp/belief.hpp"
#include "pomdp/pomdp.hpp"

namespace recoverd {

struct ReachabilityOptions {
  std::size_t max_depth = 5;
  std::size_t max_beliefs = 10000;  ///< stop expanding beyond this many
  /// Beliefs closer than this (max-norm) to an already-enumerated one are
  /// considered duplicates.
  double dedup_tolerance = 1e-9;
  /// Skip observation branches below this probability.
  double branch_floor = 0.0;
};

struct ReachabilityResult {
  std::vector<Belief> beliefs;      ///< enumerated beliefs (root first)
  std::vector<std::size_t> depth_counts;  ///< new beliefs found per depth
  bool saturated = false;  ///< true when a full depth added nothing new
  bool truncated = false;  ///< hit max_beliefs before max_depth
};

/// Enumerates beliefs reachable from `root` within the options' budget.
ReachabilityResult enumerate_reachable_beliefs(const Pomdp& pomdp, const Belief& root,
                                               const ReachabilityOptions& options = {});

}  // namespace recoverd
