#include "pomdp/value_iteration.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/convergence.hpp"
#include "util/check.hpp"

namespace recoverd {

namespace {
void check_options(const ValueIterationOptions& options) {
  RD_EXPECTS(options.beta >= 0.0 && options.beta <= 1.0,
             "value_iteration: beta must lie in [0,1]");
  RD_EXPECTS(options.tolerance > 0.0, "value_iteration: tolerance must be positive");
}

bool out_of_range(const std::vector<double>& v, double threshold) {
  return std::any_of(v.begin(), v.end(), [&](double x) {
    return !std::isfinite(x) || std::abs(x) > threshold;
  });
}
}  // namespace

ValueIterationResult value_iteration(const Mdp& mdp, const ValueIterationOptions& options,
                                     Extremum extremum) {
  check_options(options);
  const std::size_t n = mdp.num_states();

  ValueIterationResult result;
  result.values.assign(n, 0.0);
  result.policy.assign(n, 0);
  std::vector<double> next(n, 0.0);
  linalg::StallDetector stall(options.stall_window);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    double delta = 0.0;
    for (StateId s = 0; s < n; ++s) {
      double best = extremum == Extremum::Max ? -std::numeric_limits<double>::infinity()
                                              : std::numeric_limits<double>::infinity();
      ActionId best_action = 0;
      for (ActionId a = 0; a < mdp.num_actions(); ++a) {
        double value = mdp.reward(s, a);
        for (const auto& e : mdp.transition(a).row(s)) {
          value += options.beta * e.value * result.values[e.col];
        }
        const bool better =
            extremum == Extremum::Max ? value > best : value < best;
        if (better) {
          best = value;
          best_action = a;
        }
      }
      next[s] = best;
      result.policy[s] = best_action;
      delta = std::max(delta, std::abs(next[s] - result.values[s]));
    }
    result.values.swap(next);
    result.iterations = iter + 1;
    if (!std::isfinite(delta) || out_of_range(result.values, options.divergence_threshold)) {
      result.status = linalg::SolveStatus::Diverged;
      return result;
    }
    if (delta <= options.tolerance) {
      result.status = linalg::SolveStatus::Converged;
      return result;
    }
    if (stall.stalled(iter, delta)) {
      result.status = linalg::SolveStatus::Diverged;
      return result;
    }
  }
  result.status = linalg::SolveStatus::MaxIterations;
  return result;
}

ValueIterationResult blind_policy_value(const Mdp& mdp, ActionId action,
                                        const ValueIterationOptions& options) {
  check_options(options);
  RD_EXPECTS(action < mdp.num_actions(), "blind_policy_value: action out of range");
  const std::size_t n = mdp.num_states();

  ValueIterationResult result;
  result.values.assign(n, 0.0);
  result.policy.assign(n, action);
  std::vector<double> next(n, 0.0);
  linalg::StallDetector stall(options.stall_window);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    double delta = 0.0;
    for (StateId s = 0; s < n; ++s) {
      double value = mdp.reward(s, action);
      for (const auto& e : mdp.transition(action).row(s)) {
        value += options.beta * e.value * result.values[e.col];
      }
      next[s] = value;
      delta = std::max(delta, std::abs(next[s] - result.values[s]));
    }
    result.values.swap(next);
    result.iterations = iter + 1;
    if (!std::isfinite(delta) || out_of_range(result.values, options.divergence_threshold)) {
      result.status = linalg::SolveStatus::Diverged;
      return result;
    }
    if (delta <= options.tolerance) {
      result.status = linalg::SolveStatus::Converged;
      return result;
    }
    if (stall.stalled(iter, delta)) {
      result.status = linalg::SolveStatus::Diverged;
      return result;
    }
  }
  result.status = linalg::SolveStatus::MaxIterations;
  return result;
}

}  // namespace recoverd
