#include "pomdp/conditions.hpp"

#include <queue>

#include "util/check.hpp"

namespace recoverd {

namespace {
// Marks every state that can reach a state in `targets` in the union graph
// by BFS on reversed edges from the target set.
std::vector<bool> can_reach(const Mdp& mdp, const std::vector<StateId>& targets) {
  const std::size_t n = mdp.num_states();
  // Reverse adjacency of the union of per-action graphs.
  std::vector<std::vector<StateId>> reverse(n);
  for (ActionId a = 0; a < mdp.num_actions(); ++a) {
    const auto& t = mdp.transition(a);
    for (StateId s = 0; s < n; ++s) {
      for (const auto& e : t.row(s)) {
        if (e.value > 0.0 && e.col != s) reverse[e.col].push_back(s);
      }
    }
  }
  std::vector<bool> reach(n, false);
  std::queue<StateId> frontier;
  for (StateId g : targets) {
    reach[g] = true;
    frontier.push(g);
  }
  while (!frontier.empty()) {
    const StateId v = frontier.front();
    frontier.pop();
    for (StateId u : reverse[v]) {
      if (!reach[u]) {
        reach[u] = true;
        frontier.push(u);
      }
    }
  }
  return reach;
}
}  // namespace

namespace {
ConditionReport condition1_with_targets(const Mdp& mdp,
                                        const std::vector<StateId>& targets) {
  if (mdp.goal_states().empty()) {
    return {false, "Condition 1 violated: the null-fault set Sphi is empty"};
  }
  const auto reach = can_reach(mdp, targets);
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    if (!reach[s]) {
      return {false, "Condition 1 violated: no action sequence recovers from state '" +
                         mdp.state_name(s) + "'"};
    }
  }
  return {true, ""};
}
}  // namespace

ConditionReport check_condition1(const Mdp& mdp) {
  const std::vector<StateId> targets(mdp.goal_states().begin(), mdp.goal_states().end());
  return condition1_with_targets(mdp, targets);
}

ConditionReport check_condition1(const Pomdp& pomdp) {
  const Mdp& mdp = pomdp.mdp();
  std::vector<StateId> targets(mdp.goal_states().begin(), mdp.goal_states().end());
  if (pomdp.has_terminate_action()) targets.push_back(pomdp.terminate_state());
  return condition1_with_targets(mdp, targets);
}

ConditionReport check_condition2(const Mdp& mdp) {
  for (ActionId a = 0; a < mdp.num_actions(); ++a) {
    for (StateId s = 0; s < mdp.num_states(); ++s) {
      if (mdp.reward(s, a) > 0.0) {
        return {false, "Condition 2 violated: r('" + mdp.state_name(s) + "', '" +
                           mdp.action_name(a) + "') = " +
                           std::to_string(mdp.reward(s, a)) + " > 0"};
      }
    }
  }
  return {true, ""};
}

std::vector<StateId> unrecoverable_states(const Mdp& mdp) {
  const std::vector<StateId> targets(mdp.goal_states().begin(), mdp.goal_states().end());
  const auto reach = can_reach(mdp, targets);
  std::vector<StateId> bad;
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    if (!reach[s]) bad.push_back(s);
  }
  return bad;
}

bool detect_recovery_notification(const Pomdp& pomdp) {
  const Mdp& mdp = pomdp.mdp();
  if (mdp.goal_states().empty()) return false;
  // Observations reachable (positive probability) from goal / non-goal
  // states across all actions must not overlap.
  std::vector<bool> from_goal(pomdp.num_observations(), false);
  std::vector<bool> from_fault(pomdp.num_observations(), false);
  for (ActionId a = 0; a < pomdp.num_actions(); ++a) {
    const auto& q = pomdp.observation(a);
    for (StateId s = 0; s < mdp.num_states(); ++s) {
      auto& mark = mdp.is_goal(s) ? from_goal : from_fault;
      for (const auto& e : q.row(s)) {
        if (e.value > 0.0) mark[e.col] = true;
      }
    }
  }
  for (ObsId o = 0; o < pomdp.num_observations(); ++o) {
    if (from_goal[o] && from_fault[o]) return false;
  }
  return true;
}

}  // namespace recoverd
