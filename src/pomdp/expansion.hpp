// Allocation-free engine for the finite-depth Max-Avg expansion (Eq. 2).
//
// The recursive implementation in bellman.cpp's history heap-allocated a
// fresh Belief at every tree node and went through a type-erased
// std::function at every leaf. This engine walks the same depth-d tree
// iteratively over a per-engine *workspace arena* — one reusable frame of
// scratch buffers per tree level — with span-based kernels underneath
// (SparseMatrix::multiply_transpose_into, expand_successors_into), so that
// after the first decision warms the arena, an expansion performs no heap
// allocation at all.
//
// On top of the iterative walk the engine keeps an exact, within-decision
// *transposition cache* (DESIGN.md §11): every successor belief is hashed
// bitwise and the value of its subtree memoized keyed by (belief bits,
// remaining depth), so beliefs reached along several (action, observation)
// paths — absorbing states, deterministic repairs, commuting histories —
// are expanded once. Because identical bit patterns at identical depth
// produce identical subtree values under the engine's fixed operation
// order, cache hits are bit-identical to the uncached walk; the cache is
// cleared at the start of every root-action subtree so values *and* every
// instrument stay invariant across root_jobs worker counts. Leaf frontiers
// (the children of depth-1 nodes) are additionally evaluated through the
// SpanLeaf batch entry point in one pass over the cache misses.
//
// Arithmetic is kept bit-identical to the recursive reference: the same
// operation order (immediate reward via linalg::dot, kept-mass accumulated
// before each child, (β·γ)·child products summed in ascending ObsId order,
// sum-then-divide renormalisation via linalg::normalize_probability), the
// same tie-breaks (std::max over actions in ascending ActionId order), the
// same skip_action masking and branch_floor semantics, and the same
// pomdp.bellman.* / pomdp.belief.* instrument updates. The parity test
// suite (tests/pomdp_expansion_parity_test.cpp) holds the two paths equal
// on randomized models, and tests/pomdp_memo_test.cpp holds memo-on equal
// to memo-off bitwise.
//
// bellman_value / bellman_action_values / bellman_best_action / apply_lp in
// bellman.hpp remain the convenient entry points; they are now thin
// wrappers over a thread-local engine. Controllers that decide repeatedly
// over the same model own an engine directly and pass a devirtualized
// SpanLeaf so bound evaluations run over raw spans without constructing
// Belief objects.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include <unordered_map>

#include "pomdp/pomdp.hpp"
#include "pomdp/types.hpp"

namespace recoverd {

class BeliefBatch;

/// Value of one root action after a depth-d expansion.
struct ActionValue {
  ActionId action = kInvalidId;
  double value = 0.0;
};

/// Work summary of one action_values_batch()/decide_batch() call: how much
/// of the batch was served by cross-session root canonicalization, and — on
/// the deep pipeline — how small the canonicalized tree actually was.
struct BatchExpansionStats {
  std::size_t sessions = 0;     ///< lanes in the batch
  std::size_t classes = 0;      ///< distinct (belief-bits) roots solved
  std::size_t shared_hits = 0;  ///< lanes that reused an earlier lane's solve
  /// Deep-pipeline tallies (action_values_batch_deep; zero on the classic
  /// path): distinct Max nodes expanded across every tree level, and
  /// distinct depth-0 beliefs evaluated in the single frontier leaf batch.
  std::size_t frontier_nodes = 0;
  std::size_t frontier_leaves = 0;
  /// True when the deep pipeline solved the batch; false when it fell back
  /// to the per-class walks (node budget exceeded) or was never asked.
  bool deep = false;
};

/// Devirtualized leaf evaluator: raw function pointers plus an opaque
/// context, called with the (already normalised) leaf belief as a span.
/// Cheaper than std::function on the hot path (no type erasure allocation,
/// trivially copyable, inlineable call through a known pointer pair) and
/// keeps the pomdp layer free of a dependency on bounds.
///
/// The engine passes a *leaf slot* with every call: the index of the
/// workspace performing the evaluation (0 for serial expansions; the
/// fan-out worker index under root_jobs, always < leaf_slots(options)).
/// Slot-aware evaluators (ScratchBoundLeaf) use it to give each worker a
/// private scratch; plain callables wrapped with of() ignore it.
///
/// An evaluator may additionally expose a *batch* entry point that
/// evaluates `count` beliefs stored row-major in one pass — the engine
/// routes whole leaf frontiers through it (all cache-miss children of a
/// depth-1 node at once). Each batch output must be bit-identical to the
/// corresponding single-belief call.
///
/// The referenced callable must outlive every engine call made with the
/// SpanLeaf (bind a local lambda with SpanLeaf::of and use it within the
/// enclosing scope).
///
/// The *cost hint* estimates one evaluation's cost in |S|-length passes
/// (a bound set costs about one dot per stored plane). The engine memoizes
/// leaf values only when the hint exceeds the cache's own probe+insert
/// cost (~3 passes) — caching a 1-plane evaluation would spend more on
/// hashing than it saves. Wrappers that can't know the cost (`of`,
/// `of_slotted`) default to kDefaultCostHint, i.e. "assume memoizing pays";
/// the hint never affects values, only whether depth-0 results are cached.
class SpanLeaf {
 public:
  using Fn = double (*)(const void*, std::span<const double>, std::size_t);
  using BatchFn = void (*)(const void*, const double* beliefs, std::size_t count,
                           std::size_t dim, double* out, std::size_t slot);

  static constexpr std::size_t kDefaultCostHint = 16;

  SpanLeaf(Fn fn, const void* ctx, BatchFn batch = nullptr,
           std::size_t cost_hint = kDefaultCostHint)
      : fn_(fn), batch_(batch), ctx_(ctx), cost_hint_(cost_hint) {}

  /// Wraps any callable `double(std::span<const double>)` by reference
  /// (slot-oblivious, no batch path).
  template <class F>
  static SpanLeaf of(const F& f) {
    return SpanLeaf(
        [](const void* ctx, std::span<const double> pi, std::size_t) {
          return (*static_cast<const F*>(ctx))(pi);
        },
        &f);
  }

  /// Wraps a callable `double(std::span<const double>, std::size_t slot)`.
  template <class F>
  static SpanLeaf of_slotted(const F& f) {
    return SpanLeaf(
        [](const void* ctx, std::span<const double> pi, std::size_t slot) {
          return (*static_cast<const F*>(ctx))(pi, slot);
        },
        &f);
  }

  /// Wraps an evaluator exposing both `operator()(span, slot)` and
  /// `batch(beliefs, count, dim, out, slot)` (e.g. bounds::ScratchBoundLeaf).
  /// Pass the per-evaluation cost in |S|-passes when known (a bound set:
  /// `set.size() + 1`).
  template <class F>
  static SpanLeaf of_batched(const F& f, std::size_t cost_hint = kDefaultCostHint) {
    return SpanLeaf(
        [](const void* ctx, std::span<const double> pi, std::size_t slot) {
          return (*static_cast<const F*>(ctx))(pi, slot);
        },
        &f,
        [](const void* ctx, const double* beliefs, std::size_t count, std::size_t dim,
           double* out, std::size_t slot) {
          static_cast<const F*>(ctx)->batch(beliefs, count, dim, out, slot);
        },
        cost_hint);
  }

  double operator()(std::span<const double> pi, std::size_t slot = 0) const {
    return fn_(ctx_, pi, slot);
  }

  bool has_batch() const { return batch_ != nullptr; }

  void batch(const double* beliefs, std::size_t count, std::size_t dim, double* out,
             std::size_t slot) const {
    batch_(ctx_, beliefs, count, dim, out, slot);
  }

  std::size_t cost_hint() const { return cost_hint_; }

 private:
  Fn fn_;
  BatchFn batch_;
  const void* ctx_;
  std::size_t cost_hint_ = kDefaultCostHint;
};

/// Per-expansion work tallies, opted into via ExpansionOptions::stats for
/// decision-provenance records (obs/provenance.hpp). Unlike the global
/// pomdp.bellman.* counters — which concurrent episodes under --jobs write
/// into simultaneously — these are tallied inside the engine's private
/// workspaces and folded in a fixed order (main workspace, then fan-out
/// workers by index) after any join, so they describe exactly one
/// expansion and are bit-identical across root_jobs worker counts.
struct ExpansionNodeStats {
  /// Per-level tallies cover root distance 0 (the root Max node) through
  /// kMaxLevels-1; deeper nodes fold into the last slot. Meaningful on the
  /// action_values() path, where frame index equals root distance.
  static constexpr std::size_t kMaxLevels = 8;

  std::uint64_t nodes = 0;             ///< Max nodes opened
  std::uint64_t leaf_evaluations = 0;  ///< bound evaluations performed
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  std::uint64_t memo_insertions = 0;
  /// Carry-over tallies (meaningful when ExpansionOptions::memo_carry is
  /// on): hits on entries inserted by an *earlier* expansion, misses while
  /// carrying, and carried caches discarded by a seed/context change.
  std::uint64_t memo_carry_hits = 0;
  std::uint64_t memo_carry_misses = 0;
  std::uint64_t memo_carry_invalidations = 0;
  std::array<std::uint64_t, kMaxLevels> nodes_per_level{};

  void reset() { *this = ExpansionNodeStats{}; }

  void note_node(std::size_t level) {
    ++nodes;
    ++nodes_per_level[std::min(level, kMaxLevels - 1)];
  }
};

/// Knobs of one expansion, mirroring the bellman_* parameters.
struct ExpansionOptions {
  double beta = 1.0;             ///< discount per tree level, in [0,1]
  ActionId skip_action = kInvalidId;  ///< mask one action out of every max
  double branch_floor = 0.0;     ///< prune branches below this likelihood
  /// Number of threads over which action_values() fans out the root
  /// actions (1 = serial). Child subtrees never share mutable state, so the
  /// fan-out is exact: each action's value is computed by the same serial
  /// code on a private workspace. Leaf evaluators must be thread-safe when
  /// root_jobs > 1 (BoundSet::evaluate and SawtoothUpperBound::evaluate
  /// are; slot-aware evaluators get a distinct slot per worker).
  int root_jobs = 1;
  /// Exact transposition cache over successor beliefs (DESIGN.md §11).
  /// Hits are bit-identical to re-expanding, so this is safe to leave on;
  /// turning it off recovers the PR 2 walk exactly (useful for parity
  /// tests and as the baseline of BM_ExpansionMemo).
  bool memo = true;
  /// Size cap for the cache (hash table + belief-key arena) per workspace.
  /// When reached, further insertions are dropped for the rest of the
  /// root-action subtree (lookups keep working); nothing is evicted, since
  /// entries only live until the next root action clears the cache.
  std::size_t memo_max_bytes = 64ull << 20;
  /// Cross-decide/cross-episode carry-over: keep memoized subtree values
  /// across root actions AND across engine calls instead of clearing per
  /// root-action subtree. Hits are bitwise-exact (an entry returns exactly
  /// what re-expanding its subtree would compute), so *decisions and
  /// values* stay bit-identical with carry on or off and for any root_jobs
  /// count — only the work tallies (hits/misses/leaf evaluations) may
  /// differ, since workers' carried caches depend on the actions they
  /// solved before. The carried cache is discarded exactly when the option
  /// seed (beta/branch_floor/skip_action) or `memo_context` changes.
  bool memo_carry = false;
  /// Identity of everything a carried value depends on beyond the options:
  /// callers MUST change it whenever the leaf evaluator's output may change
  /// (controllers pass the BoundSet generation, so any bound-set mutation
  /// invalidates the carried cache exactly). Ignored unless memo_carry.
  std::uint64_t memo_context = 0;
  /// Deep-pipeline node budget (action_values_batch_deep only): when any
  /// tree level's distinct-node count would exceed this, the pipeline
  /// abandons the level-wise expansion and falls back to the per-class
  /// walks. Values are bit-identical either way — the budget only bounds
  /// the deep scratch footprint (a node is |S| doubles plus its edges).
  /// The default admits the transient frontier of a 10^4-session fleet
  /// before its belief population converges (the steady state is an order
  /// of magnitude smaller); a fallback tick pays the partial deep work on
  /// top of the classic walks, so the budget should only bite when memory
  /// genuinely matters.
  std::size_t deep_node_budget = 1u << 20;
  /// When non-null, reset at the start of value()/action_values() and
  /// filled with that one expansion's work tallies (provenance). Purely
  /// observational: never read by the walk, so values are unchanged.
  ExpansionNodeStats* stats = nullptr;
};

/// Iterative Max-Avg expansion over a reusable workspace arena. One engine
/// per controller (or thread); an engine is not safe for concurrent use,
/// but action_values() may internally fan root actions out across threads
/// with private per-thread workspaces.
class ExpansionEngine {
 public:
  explicit ExpansionEngine(const Pomdp& pomdp);
  ExpansionEngine(const ExpansionEngine&) = delete;
  ExpansionEngine& operator=(const ExpansionEngine&) = delete;
  ~ExpansionEngine();

  /// Points the engine at another model (the arena is re-sized lazily on
  /// the next expansion). Used by the thread-local wrapper cache in
  /// bellman.cpp.
  void rebind(const Pomdp& pomdp) { pomdp_ = &pomdp; }
  const Pomdp& pomdp() const { return *pomdp_; }

  /// Number of distinct leaf slots calls with `options` can use — size
  /// slot-indexed evaluator scratch (one EvalScratch per slot) with this.
  static std::size_t leaf_slots(const ExpansionOptions& options) {
    return static_cast<std::size_t>(std::max(1, options.root_jobs));
  }

  /// Depth-d Bellman value V_d(π) (Eq. 2); depth 0 returns leaf(π).
  double value(std::span<const double> belief, int depth, const SpanLeaf& leaf,
               const ExpansionOptions& options = {});

  /// Values of every root action (depth ≥ 1) written into `out` (resized to
  /// num_actions(), element i is action i; a masked action gets -inf).
  void action_values(std::span<const double> belief, int depth, const SpanLeaf& leaf,
                     const ExpansionOptions& options, std::vector<ActionValue>& out);

  /// The maximising root action; ties break to the lowest ActionId exactly
  /// as bellman_best_action does.
  ActionValue best_action(std::span<const double> belief, int depth, const SpanLeaf& leaf,
                          const ExpansionOptions& options = {});

  /// Root-action values for every lane of a batch, written lane-major into
  /// `out` (lane L's values at out[L·num_actions .. +num_actions), element a
  /// is action a; masked actions get -inf) — the batch-first entry point of
  /// DESIGN.md §13.
  ///
  /// Lanes are *canonicalized* before any expansion: lanes whose beliefs
  /// are bitwise identical (hash over the belief's bit pattern, confirmed
  /// by memcmp) form one equivalence class, and each class is solved by a
  /// single action_values() call whose results are scattered to every
  /// member lane. Classes are solved in first-occurrence lane order, each
  /// against engine state identical to a standalone call (the memo cache is
  /// cleared per root action), so every lane's values are bit-identical to
  /// looping action_values() over the lanes — for any batch composition,
  /// SIMD mode, and root_jobs count. `options.stats`, when set, describes
  /// the last class solved (exactly the single call for a batch of one).
  void action_values_batch(const BeliefBatch& batch, int depth, const SpanLeaf& leaf,
                           const ExpansionOptions& options, std::vector<ActionValue>& out,
                           BatchExpansionStats* stats = nullptr);

  /// The maximising root action per lane (best[L] for lane L), with
  /// best_action()'s exact lowest-ActionId tie-break, atop
  /// action_values_batch()'s shared-subtree reuse.
  void decide_batch(const BeliefBatch& batch, int depth, const SpanLeaf& leaf,
                    const ExpansionOptions& options, std::vector<ActionValue>& best,
                    BatchExpansionStats* stats = nullptr);

  /// Deep-batched variant of action_values_batch() (DESIGN.md §16): instead
  /// of walking one per-class tree at a time, the whole action×observation
  /// frontier of every canonical root is expanded level by level in SoA
  /// passes (expand_successors_batch), with successors canonicalized
  /// *globally* — across actions, roots, and levels — so each distinct
  /// belief at each remaining depth is expanded exactly once and the entire
  /// depth-0 frontier is evaluated in one leaf batch call. Because a
  /// subtree's value is a pure function of (belief bits, remaining depth)
  /// under the engine's fixed operation order, the back-substituted values
  /// are bit-identical to action_values_batch() — for any batch
  /// composition, SIMD mode, root_jobs count, and memo setting. When a
  /// level would exceed options.deep_node_budget the call falls back to
  /// action_values_batch() (stats->deep reports which path ran).
  void action_values_batch_deep(const BeliefBatch& batch, int depth, const SpanLeaf& leaf,
                                const ExpansionOptions& options,
                                std::vector<ActionValue>& out,
                                BatchExpansionStats* stats = nullptr);

  /// decide_batch() atop action_values_batch_deep(): the same per-lane
  /// lowest-ActionId argmax over the deep pipeline's value rows.
  void decide_batch_deep(const BeliefBatch& batch, int depth, const SpanLeaf& leaf,
                         const ExpansionOptions& options, std::vector<ActionValue>& best,
                         BatchExpansionStats* stats = nullptr);

  /// Current arena footprint in bytes (sum of scratch-buffer and memo-cache
  /// capacities across all levels and worker workspaces).
  std::size_t arena_bytes() const;

 private:
  struct Frame;
  struct MemoCache;
  struct Workspace;
  struct DeepScratch;

  double expand_iterative(Workspace& ws, std::size_t base_level,
                          std::span<const double> belief, int depth, const SpanLeaf& leaf,
                          const ExpansionOptions& options);
  double root_action_future(Workspace& ws, std::span<const double> belief, ActionId action,
                            int depth, const SpanLeaf& leaf,
                            const ExpansionOptions& options);
  void compute_action_value_range(Workspace& ws, std::span<const double> belief, int depth,
                                  const SpanLeaf& leaf, const ExpansionOptions& options,
                                  std::size_t begin, std::size_t step,
                                  std::vector<ActionValue>& out);
  void evaluate_frontier(Workspace& ws, Frame& fr, const SpanLeaf& leaf,
                         const ExpansionOptions& options);
  void note_expansion_finished(ExpansionNodeStats* stats);

  // Batch plumbing shared by the classic and deep entry points.
  std::size_t canonicalize_roots(const BeliefBatch& batch);
  void solve_classes_classic(int depth, const SpanLeaf& leaf,
                             const ExpansionOptions& options);
  bool solve_classes_deep(int depth, const SpanLeaf& leaf,
                          const ExpansionOptions& options, BatchExpansionStats* stats);
  void scatter_class_values(std::size_t lanes, std::vector<ActionValue>& out);
  void select_best_lanes(std::size_t lanes, const ExpansionOptions& options,
                         std::vector<ActionValue>& best);

  const Pomdp* pomdp_;
  std::unique_ptr<Workspace> main_;
  std::vector<std::unique_ptr<Workspace>> pool_;  // root fan-out workers
  std::vector<ActionValue> scratch_values_;       // best_action() scratch
  std::size_t peak_arena_bytes_ = 0;

  // Batch canonicalization scratch (capacities persist across ticks).
  std::vector<double> batch_rows_;            // gathered lane beliefs, row-major
  std::vector<std::uint64_t> batch_hashes_;   // belief-bits hash per lane
  std::vector<std::size_t> batch_class_of_;   // lane -> equivalence class
  std::vector<std::size_t> batch_reps_;       // class -> first lane
  std::vector<ActionValue> batch_class_values_;  // class-major solve results
  std::vector<ActionValue> batch_best_scratch_;  // decide_batch() scratch
  std::vector<ActionValue> class_values_scratch_;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> batch_buckets_;
  std::unique_ptr<DeepScratch> deep_;  // lazily built by the deep pipeline
};

}  // namespace recoverd
