// Allocation-free engine for the finite-depth Max-Avg expansion (Eq. 2).
//
// The recursive implementation in bellman.cpp's history heap-allocated a
// fresh Belief at every tree node and went through a type-erased
// std::function at every leaf. This engine walks the same depth-d tree
// iteratively over a per-engine *workspace arena* — one reusable frame of
// scratch buffers per tree level — with span-based kernels underneath
// (SparseMatrix::multiply_transpose_into, expand_successors_into), so that
// after the first decision warms the arena, an expansion performs no heap
// allocation at all.
//
// Arithmetic is kept bit-identical to the recursive reference: the same
// operation order (immediate reward via linalg::dot, kept-mass accumulated
// before each child, (β·γ)·child products summed in ascending ObsId order,
// sum-then-divide renormalisation via linalg::normalize_probability), the
// same tie-breaks (std::max over actions in ascending ActionId order), the
// same skip_action masking and branch_floor semantics, and the same
// pomdp.bellman.* / pomdp.belief.* instrument updates. The parity test
// suite (tests/pomdp_expansion_parity_test.cpp) holds the two paths equal
// on randomized models.
//
// bellman_value / bellman_action_values / bellman_best_action / apply_lp in
// bellman.hpp remain the convenient entry points; they are now thin
// wrappers over a thread-local engine. Controllers that decide repeatedly
// over the same model own an engine directly and pass a devirtualized
// SpanLeaf so bound evaluations run over raw spans without constructing
// Belief objects.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "pomdp/pomdp.hpp"
#include "pomdp/types.hpp"

namespace recoverd {

/// Value of one root action after a depth-d expansion.
struct ActionValue {
  ActionId action = kInvalidId;
  double value = 0.0;
};

/// Devirtualized leaf evaluator: a raw function pointer plus an opaque
/// context, called with the (already normalised) leaf belief as a span.
/// Cheaper than std::function on the hot path (no type erasure allocation,
/// trivially copyable, inlineable call through a known pointer pair) and
/// keeps the pomdp layer free of a dependency on bounds.
///
/// The referenced callable must outlive every engine call made with the
/// SpanLeaf (bind a local lambda with SpanLeaf::of and use it within the
/// enclosing scope).
class SpanLeaf {
 public:
  using Fn = double (*)(const void*, std::span<const double>);

  SpanLeaf(Fn fn, const void* ctx) : fn_(fn), ctx_(ctx) {}

  /// Wraps any callable `double(std::span<const double>)` by reference.
  template <class F>
  static SpanLeaf of(const F& f) {
    return SpanLeaf(
        [](const void* ctx, std::span<const double> pi) {
          return (*static_cast<const F*>(ctx))(pi);
        },
        &f);
  }

  double operator()(std::span<const double> pi) const { return fn_(ctx_, pi); }

 private:
  Fn fn_;
  const void* ctx_;
};

/// Knobs of one expansion, mirroring the bellman_* parameters.
struct ExpansionOptions {
  double beta = 1.0;             ///< discount per tree level, in [0,1]
  ActionId skip_action = kInvalidId;  ///< mask one action out of every max
  double branch_floor = 0.0;     ///< prune branches below this likelihood
  /// Number of threads over which action_values() fans out the root
  /// actions (1 = serial). Child subtrees never share mutable state, so the
  /// fan-out is exact: each action's value is computed by the same serial
  /// code on a private workspace. Leaf evaluators must be thread-safe when
  /// root_jobs > 1 (BoundSet::evaluate and SawtoothUpperBound::evaluate
  /// are).
  int root_jobs = 1;
};

/// Iterative Max-Avg expansion over a reusable workspace arena. One engine
/// per controller (or thread); an engine is not safe for concurrent use,
/// but action_values() may internally fan root actions out across threads
/// with private per-thread workspaces.
class ExpansionEngine {
 public:
  explicit ExpansionEngine(const Pomdp& pomdp);
  ExpansionEngine(const ExpansionEngine&) = delete;
  ExpansionEngine& operator=(const ExpansionEngine&) = delete;
  ~ExpansionEngine();

  /// Points the engine at another model (the arena is re-sized lazily on
  /// the next expansion). Used by the thread-local wrapper cache in
  /// bellman.cpp.
  void rebind(const Pomdp& pomdp) { pomdp_ = &pomdp; }
  const Pomdp& pomdp() const { return *pomdp_; }

  /// Depth-d Bellman value V_d(π) (Eq. 2); depth 0 returns leaf(π).
  double value(std::span<const double> belief, int depth, const SpanLeaf& leaf,
               const ExpansionOptions& options = {});

  /// Values of every root action (depth ≥ 1) written into `out` (resized to
  /// num_actions(), element i is action i; a masked action gets -inf).
  void action_values(std::span<const double> belief, int depth, const SpanLeaf& leaf,
                     const ExpansionOptions& options, std::vector<ActionValue>& out);

  /// The maximising root action; ties break to the lowest ActionId exactly
  /// as bellman_best_action does.
  ActionValue best_action(std::span<const double> belief, int depth, const SpanLeaf& leaf,
                          const ExpansionOptions& options = {});

  /// Current arena footprint in bytes (sum of scratch-buffer capacities
  /// across all levels and worker workspaces).
  std::size_t arena_bytes() const;

 private:
  struct Frame;
  struct Workspace;

  double expand_iterative(Workspace& ws, std::size_t base_level,
                          std::span<const double> belief, int depth, const SpanLeaf& leaf,
                          const ExpansionOptions& options);
  double root_action_future(Workspace& ws, std::span<const double> belief, ActionId action,
                            int depth, const SpanLeaf& leaf,
                            const ExpansionOptions& options);
  void compute_action_value_range(Workspace& ws, std::span<const double> belief, int depth,
                                  const SpanLeaf& leaf, const ExpansionOptions& options,
                                  std::size_t begin, std::size_t step,
                                  std::vector<ActionValue>& out);
  void note_expansion_finished();

  const Pomdp* pomdp_;
  std::unique_ptr<Workspace> main_;
  std::vector<std::unique_ptr<Workspace>> pool_;  // root fan-out workers
  std::vector<ActionValue> scratch_values_;       // best_action() scratch
  std::size_t peak_arena_bytes_ = 0;
};

}  // namespace recoverd
