// Finite-depth expansion of the belief-state Bellman recursion (Eq. 2) —
// the Max-Avg tree of Fig. 1(b).
//
// The same expansion serves three masters:
//  - the online controllers (choose the root action that maximises the
//    depth-d value with a bound/heuristic at the leaves),
//  - the bounds module (the operator L_p, i.e. depth-1 expansion, used to
//    verify the V ≤ L_p V property of Property 1(b)),
//  - the tests' exact finite-horizon oracle (leaf value 0, large depth).
#pragma once

#include <functional>
#include <vector>

#include "pomdp/belief.hpp"
#include "pomdp/expansion.hpp"
#include "pomdp/pomdp.hpp"

namespace recoverd {

/// Evaluates the value assigned to a leaf belief of the recursion tree.
/// The functions below are convenience wrappers over ExpansionEngine
/// (pomdp/expansion.hpp) that accept this type-erased leaf; hot loops that
/// decide repeatedly should own an engine and pass a SpanLeaf instead.
/// ActionValue now lives in pomdp/expansion.hpp (re-exported here via the
/// include above).
using LeafEvaluator = std::function<double(const Belief&)>;

/// Depth-d Bellman value:
///   V_d(π) = max_a [ π·r(a) + β Σ_o γ^{π,a}(o) V_{d−1}(π^{π,a,o}) ],
///   V_0(π) = leaf(π).
/// `depth` ≥ 0; depth 0 returns leaf(π) directly. `skip_action` masks one
/// action out of every max (used by threshold controllers that must ignore
/// a terminate action present in the model); kInvalidId disables masking.
/// `branch_floor` prunes observation branches with probability below the
/// floor and renormalises the rest — the standard sparse-tree approximation
/// for models with large joint-observation alphabets (e.g. the EMN model's
/// 2^7 monitor outcomes); 0 keeps the expansion exact.
double bellman_value(const Pomdp& pomdp, const Belief& belief, int depth,
                     const LeafEvaluator& leaf, double beta = 1.0,
                     ActionId skip_action = kInvalidId, double branch_floor = 0.0);

/// Values of every action at the root of a depth-d expansion (depth ≥ 1).
/// Element i corresponds to action i; a masked action gets value -inf.
std::vector<ActionValue> bellman_action_values(const Pomdp& pomdp, const Belief& belief,
                                               int depth, const LeafEvaluator& leaf,
                                               double beta = 1.0,
                                               ActionId skip_action = kInvalidId,
                                               double branch_floor = 0.0);

/// The maximising root action (ties break to the lowest ActionId, which
/// gives deterministic controllers). Precondition: depth ≥ 1.
ActionValue bellman_best_action(const Pomdp& pomdp, const Belief& belief, int depth,
                                const LeafEvaluator& leaf, double beta = 1.0,
                                ActionId skip_action = kInvalidId,
                                double branch_floor = 0.0);

/// One application of the operator L_p of Eq. 2 to the function represented
/// by `leaf` at belief π (identical to bellman_value with depth 1; named for
/// readability at call sites that check V ≤ L_p V).
double apply_lp(const Pomdp& pomdp, const Belief& belief, const LeafEvaluator& leaf,
                double beta = 1.0);

}  // namespace recoverd
