#include "pomdp/policy.hpp"

#include <limits>

#include "util/check.hpp"

namespace recoverd {

PolicyEvaluationResult evaluate_policy(const Mdp& mdp, const Policy& policy, double beta,
                                       const linalg::GaussSeidelOptions& options) {
  RD_EXPECTS(policy.size() == mdp.num_states(),
             "evaluate_policy: one action per state required");
  RD_EXPECTS(beta > 0.0 && beta <= 1.0, "evaluate_policy: beta must lie in (0,1]");
  const std::size_t n = mdp.num_states();

  linalg::SparseMatrixBuilder qb(n, n);
  std::vector<double> c(n, 0.0);
  for (StateId s = 0; s < n; ++s) {
    RD_EXPECTS(policy[s] < mdp.num_actions(), "evaluate_policy: action out of range");
    for (const auto& e : mdp.transition(policy[s]).row(s)) {
      qb.add(s, e.col, beta * e.value);
    }
    c[s] = mdp.reward(s, policy[s]);
  }

  const auto solve = linalg::solve_fixed_point(qb.build(), c, options);
  PolicyEvaluationResult result;
  result.status = solve.status;
  result.iterations = solve.iterations;
  if (solve.converged()) result.values = solve.x;
  return result;
}

Policy greedy_policy(const Mdp& mdp, std::span<const double> values, double beta) {
  RD_EXPECTS(values.size() == mdp.num_states(), "greedy_policy: dimension mismatch");
  Policy policy(mdp.num_states(), 0);
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    double best = -std::numeric_limits<double>::infinity();
    for (ActionId a = 0; a < mdp.num_actions(); ++a) {
      double value = mdp.reward(s, a);
      for (const auto& e : mdp.transition(a).row(s)) value += beta * e.value * values[e.col];
      if (value > best) {
        best = value;
        policy[s] = a;
      }
    }
  }
  return policy;
}

PolicyIterationResult policy_iteration(const Mdp& mdp, Policy initial, double beta,
                                       std::size_t max_rounds) {
  RD_EXPECTS(max_rounds > 0, "policy_iteration: need at least one round");
  PolicyIterationResult result;
  result.policy = initial.empty() ? Policy(mdp.num_states(), 0) : std::move(initial);
  RD_EXPECTS(result.policy.size() == mdp.num_states(),
             "policy_iteration: initial policy must cover every state");

  for (std::size_t round = 0; round < max_rounds; ++round) {
    const auto eval = evaluate_policy(mdp, result.policy, beta);
    if (!eval.converged()) {
      // The current policy has no finite value (improper policy on an
      // undiscounted model): report it rather than iterating blindly.
      result.status = eval.status;
      return result;
    }
    result.values = eval.values;
    result.improvement_steps = round + 1;

    Policy improved = greedy_policy(mdp, result.values, beta);
    // Keep the incumbent action on ties to guarantee termination.
    bool changed = false;
    for (StateId s = 0; s < mdp.num_states(); ++s) {
      if (improved[s] == result.policy[s]) continue;
      double incumbent = mdp.reward(s, result.policy[s]);
      for (const auto& e : mdp.transition(result.policy[s]).row(s)) {
        incumbent += beta * e.value * result.values[e.col];
      }
      double challenger = mdp.reward(s, improved[s]);
      for (const auto& e : mdp.transition(improved[s]).row(s)) {
        challenger += beta * e.value * result.values[e.col];
      }
      if (challenger > incumbent + 1e-12) {
        result.policy[s] = improved[s];
        changed = true;
      }
    }
    if (!changed) {
      result.status = linalg::SolveStatus::Converged;
      return result;
    }
  }
  result.status = linalg::SolveStatus::MaxIterations;
  return result;
}

}  // namespace recoverd
