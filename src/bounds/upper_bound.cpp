#include "bounds/upper_bound.hpp"

#include "linalg/vector_ops.hpp"
#include "util/check.hpp"

namespace recoverd::bounds {

double QmdpBoundResult::evaluate(std::span<const double> belief) const {
  RD_EXPECTS(converged(), "QmdpBoundResult::evaluate: bound did not converge");
  return linalg::dot(values, belief);
}

QmdpBoundResult compute_qmdp_bound(const Mdp& mdp, const ValueIterationOptions& options) {
  const auto vi = value_iteration(mdp, options, Extremum::Max);
  QmdpBoundResult result;
  result.status = vi.status;
  if (vi.converged()) result.values = vi.values;
  return result;
}

}  // namespace recoverd::bounds
