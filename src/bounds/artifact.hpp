// Persistent bound artifacts: the offline RA-Bound/Eq. 6–7 state as a
// versioned, CRC-checked, mmap-friendly file (ROADMAP item 3, DESIGN.md §15).
//
// A bound artifact captures both reusable products of the offline phase —
// the assembled `RandomActionChain` (Q̄/c̄ CSR plus the SCC/level SolvePlan)
// and the seeded/improved `BoundSet` (planes, protection flags, use counts,
// generation) — so a process warm-starts by mapping a file instead of
// re-running assembly, Tarjan, and the Eq. 5 solve. At 10⁶ states that turns
// ~1 s of cold construction into milliseconds of load (gated ≥ 10× in
// bench/scaling_campaign).
//
// The restore is *lossless*: a loaded chain and set are bitwise-equal to the
// saved ones (same CSR bits, same plane coefficients and order, same use
// counters and generation), so every decision made on top of them is
// bitwise-identical to a cold-built run — the same contract as the fleet
// checkpoints.
//
// File format (`recoverd bound artifact v1`, little-endian):
//
//   [0]  magic       u64  "RDBNDAR1"
//   [8]  version     u32  kBoundArtifactVersion
//   [12] reserved    u32  zero (pads the payload to an 8-aligned offset)
//   [16] payload_len u64  bytes of payload following this field
//   [24] payload     ...  chain + plan + bound-set fields (see .cpp)
//   [..] crc64       u64  CRC-64/XZ over bytes [8, 24 + payload_len)
//
// The payload keeps every multi-byte field 8-byte aligned relative to the
// file start (u32 arrays are padded), so an mmap'd artifact could be walked
// in place; the loader nevertheless copies through memcpy everywhere, which
// makes it equally correct on truncated, odd-sized, or otherwise unaligned
// inputs — corruption is answered with a ModelError, never a fault.
//
// Writes are atomic (tmp + fsync + rename) and reads are paranoid, exactly
// like sim/checkpoint.cpp: truncation, foreign magic, unknown version,
// flipped bits, length drift, and model mismatch each map to a distinct
// actionable ModelError, and a rejected file never returns partial data.
#pragma once

#include <cstdint>
#include <string>

#include "bounds/ra_bound.hpp"
#include "pomdp/mdp.hpp"

namespace recoverd::bounds {

inline constexpr std::uint32_t kBoundArtifactVersion = 1;

/// A loaded bound artifact: the chain + bound set, plus the identity hashes.
struct BoundArtifact {
  RandomActionChain chain;  ///< Q̄/c̄ + SolvePlan, bitwise as saved
  BoundSet set;             ///< planes/uses/generation, bitwise as saved
  std::uint64_t model_hash = 0;    ///< hash_mdp of the model it was built for
  /// The file's CRC-64 — the artifact's content identity. Recorded in fleet
  /// checkpoints (FleetCheckpoint::bound_artifact_hash) so a checkpoint
  /// cannot be resumed on top of different bounds.
  std::uint64_t content_hash = 0;

  BoundArtifact(RandomActionChain chain_in, BoundSet set_in)
      : chain(std::move(chain_in)), set(std::move(set_in)) {}
};

/// Content hash of an MDP (dimensions, goal set, durations, reward bits,
/// transition CSR bits): the bounds-layer analogue of sim::hash_pomdp,
/// without the observation model (bounds are a function of the MDP alone).
/// Stored in the artifact and checked on load, so an artifact built for one
/// model is rejected — with an actionable message — when offered to another.
std::uint64_t hash_mdp(const Mdp& mdp);

/// Atomically serializes `chain` + `set` to `path` (tmp + fsync + rename).
/// `model_hash` should be hash_mdp of the model the bounds were built from.
/// Returns the artifact's content hash (the stored CRC-64). Throws
/// ModelError when the file cannot be created, fully written, or renamed.
/// Precondition: chain and set agree on the state dimension.
std::uint64_t save_bound_artifact(const std::string& path,
                                  const RandomActionChain& chain,
                                  const BoundSet& set, std::uint64_t model_hash);

/// Reads and fully validates an artifact (magic, version, length, CRC-64,
/// dimension consistency) through a read-only mmap (with a plain-read
/// fallback when mapping fails). When `expected_model_hash` is nonzero it
/// must match the stored model hash. Throws ModelError with an actionable
/// one-line message on any corruption or mismatch; never returns partial
/// data.
BoundArtifact load_bound_artifact(const std::string& path,
                                  std::uint64_t expected_model_hash = 0);

}  // namespace recoverd::bounds
