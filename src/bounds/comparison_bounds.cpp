#include "bounds/comparison_bounds.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace recoverd::bounds {

BiBoundResult compute_bi_bound(const Mdp& mdp, const ValueIterationOptions& options) {
  const auto vi = value_iteration(mdp, options, Extremum::Min);
  BiBoundResult result;
  result.status = vi.status;
  result.iterations = vi.iterations;
  if (vi.converged()) result.values = vi.values;
  return result;
}

bool BlindPolicyBoundResult::any_converged() const {
  return std::any_of(per_action.begin(), per_action.end(),
                     [](const BlindPolicyBound& b) { return b.converged(); });
}

bool BlindPolicyBoundResult::all_converged() const {
  return std::all_of(per_action.begin(), per_action.end(),
                     [](const BlindPolicyBound& b) { return b.converged(); });
}

BoundSet BlindPolicyBoundResult::to_bound_set() const {
  RD_EXPECTS(all_converged(),
             "BlindPolicyBoundResult::to_bound_set: some blind policies diverged");
  RD_EXPECTS(!per_action.empty(), "BlindPolicyBoundResult::to_bound_set: empty");
  BoundSet set(per_action.front().values.size());
  for (const auto& bound : per_action) set.add(bound.values);
  return set;
}

BlindPolicyBoundResult compute_blind_policy_bounds(const Mdp& mdp,
                                                   const ValueIterationOptions& options) {
  BlindPolicyBoundResult result;
  result.per_action.reserve(mdp.num_actions());
  for (ActionId a = 0; a < mdp.num_actions(); ++a) {
    const auto vi = blind_policy_value(mdp, a, options);
    BlindPolicyBound bound;
    bound.action = a;
    bound.status = vi.status;
    if (vi.converged()) bound.values = vi.values;
    result.per_action.push_back(std::move(bound));
  }
  return result;
}

BlindPolicyBoundResult compute_blind_policy_bounds_linear(
    const Mdp& mdp, double beta, const linalg::GaussSeidelOptions& options,
    const linalg::SccSolveOptions& scc_options) {
  RD_EXPECTS(beta > 0.0 && beta <= 1.0,
             "compute_blind_policy_bounds_linear: beta must lie in (0,1]");
  linalg::SccSolveOptions scc = scc_options;
  scc.scale = beta;
  BlindPolicyBoundResult result;
  result.per_action.reserve(mdp.num_actions());
  for (ActionId a = 0; a < mdp.num_actions(); ++a) {
    const auto solve =
        linalg::solve_fixed_point_scc(mdp.transition(a), mdp.rewards(a), options, scc);
    BlindPolicyBound bound;
    bound.action = a;
    bound.status = solve.status;
    if (solve.converged()) bound.values = solve.x;
    result.per_action.push_back(std::move(bound));
  }
  return result;
}

}  // namespace recoverd::bounds
