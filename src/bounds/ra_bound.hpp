// The random-action bound (RA-Bound, §3.1) — the paper's core contribution.
//
// V_m⁻ solves the linear system of Eq. 5:
//    V_m⁻(s) = (1/|A|) Σ_a [ r(s,a) + β Σ_{s'} p(s'|s,a) V_m⁻(s') ]
// i.e. the expected accumulated reward of the Markov chain obtained from the
// MDP by choosing actions uniformly at random. The POMDP bound is the single
// hyperplane V_p⁻(π) = Σ_s π(s)·V_m⁻(s).
//
// Convergence on undiscounted models requires the §3.1 transforms
// (with_recovery_notification or add_termination); compute_ra_bound reports
// a Diverged status otherwise instead of hanging.
#pragma once

#include "linalg/gauss_seidel.hpp"
#include "bounds/bound_set.hpp"
#include "pomdp/mdp.hpp"

namespace recoverd::bounds {

struct RaBoundResult {
  linalg::SolveStatus status = linalg::SolveStatus::MaxIterations;
  BoundVector values;          ///< V_m⁻(s) (meaningful when converged)
  std::size_t iterations = 0;  ///< deepest per-component solver sweep count
  std::string detail;          ///< solver diagnosis when not converged

  bool converged() const { return status == linalg::SolveStatus::Converged; }
};

/// The reusable offline artifact of Eq. 5: the random-action chain
/// Q̄ = (1/|A|) Σ_a P(a) and c̄ = (1/|A|) Σ_a r(·,a), plus the SCC
/// condensation and level schedule of Q̄'s dependency graph. The discount β
/// is *not* folded into Q̄, so one chain serves the undiscounted solve, every
/// discounted variant, and repeated solves — eliminating the per-call
/// O(|A|·nnz) rebuild the old entry points paid.
///
/// Assembly is a one-shot CSR construction (no triplet sort): rows are
/// merged independently with a fixed per-row action order, so the result is
/// bitwise identical for every assembly worker count.
struct RandomActionChain {
  linalg::SparseMatrix q;    ///< Q̄ (undiscounted averaged transition matrix)
  std::vector<double> c;     ///< c̄ (averaged one-step reward)
  linalg::SolvePlan plan;    ///< topology of Q̄ (shared by all solves)
  std::size_t num_actions = 0;

  std::size_t num_states() const { return c.size(); }
};

/// Assembles the chain in parallel over row ranges with `jobs` workers
/// (1 = serial; any value produces bitwise-identical output).
RandomActionChain build_random_action_chain(const Mdp& mdp,
                                            linalg::SolverJobs jobs = 1);

/// Default solver settings for Eq. 5: Gauss–Seidel with successive
/// over-relaxation (ω = 1.1), per the paper's implementation note.
linalg::GaussSeidelOptions default_ra_solver_options();

/// Computes V_m⁻ by solving Eq. 5 (β = 1, the undiscounted criterion)
/// through the topology-aware SCC solver. The Mdp overloads assemble a
/// RandomActionChain internally; pass a prebuilt chain to amortise assembly
/// across solves. `scc.scale` is owned by these functions (set from β) —
/// any caller-provided value is ignored.
RaBoundResult compute_ra_bound(const Mdp& mdp,
                               const linalg::GaussSeidelOptions& options =
                                   default_ra_solver_options(),
                               const linalg::SccSolveOptions& scc = {});
RaBoundResult compute_ra_bound(const RandomActionChain& chain,
                               const linalg::GaussSeidelOptions& options =
                                   default_ra_solver_options(),
                               const linalg::SccSolveOptions& scc = {});

/// Discounted variant (β < 1), used by comparison tests against the
/// literature bounds that only converge with discounting.
RaBoundResult compute_ra_bound_discounted(const Mdp& mdp, double beta,
                                          const linalg::GaussSeidelOptions& options =
                                              default_ra_solver_options(),
                                          const linalg::SccSolveOptions& scc = {});
RaBoundResult compute_ra_bound_discounted(const RandomActionChain& chain, double beta,
                                          const linalg::GaussSeidelOptions& options =
                                              default_ra_solver_options(),
                                          const linalg::SccSolveOptions& scc = {});

/// Convenience: computes the RA-Bound, throws ModelError when it does not
/// converge, and seeds a BoundSet with the resulting (protected) hyperplane.
BoundSet make_ra_bound_set(const Mdp& mdp, std::size_t capacity = 0,
                           const linalg::GaussSeidelOptions& options =
                               default_ra_solver_options(),
                           const linalg::SccSolveOptions& scc = {});
BoundSet make_ra_bound_set(const RandomActionChain& chain, std::size_t capacity = 0,
                           const linalg::GaussSeidelOptions& options =
                               default_ra_solver_options(),
                           const linalg::SccSolveOptions& scc = {});

}  // namespace recoverd::bounds
