// The random-action bound (RA-Bound, §3.1) — the paper's core contribution.
//
// V_m⁻ solves the linear system of Eq. 5:
//    V_m⁻(s) = (1/|A|) Σ_a [ r(s,a) + β Σ_{s'} p(s'|s,a) V_m⁻(s') ]
// i.e. the expected accumulated reward of the Markov chain obtained from the
// MDP by choosing actions uniformly at random. The POMDP bound is the single
// hyperplane V_p⁻(π) = Σ_s π(s)·V_m⁻(s).
//
// Convergence on undiscounted models requires the §3.1 transforms
// (with_recovery_notification or add_termination); compute_ra_bound reports
// a Diverged status otherwise instead of hanging.
#pragma once

#include "linalg/gauss_seidel.hpp"
#include "bounds/bound_set.hpp"
#include "pomdp/mdp.hpp"

namespace recoverd::bounds {

struct RaBoundResult {
  linalg::SolveStatus status = linalg::SolveStatus::MaxIterations;
  BoundVector values;          ///< V_m⁻(s) (meaningful when converged)
  std::size_t iterations = 0;  ///< Gauss–Seidel sweeps used

  bool converged() const { return status == linalg::SolveStatus::Converged; }
};

/// Default solver settings for Eq. 5: Gauss–Seidel with successive
/// over-relaxation (ω = 1.1), per the paper's implementation note.
linalg::GaussSeidelOptions default_ra_solver_options();

/// Computes V_m⁻ by iterating Eq. 5 (β = 1, the undiscounted criterion).
RaBoundResult compute_ra_bound(const Mdp& mdp,
                               const linalg::GaussSeidelOptions& options =
                                   default_ra_solver_options());

/// Discounted variant (β < 1), used by comparison tests against the
/// literature bounds that only converge with discounting.
RaBoundResult compute_ra_bound_discounted(const Mdp& mdp, double beta,
                                          const linalg::GaussSeidelOptions& options =
                                              default_ra_solver_options());

/// Convenience: computes the RA-Bound, throws ModelError when it does not
/// converge, and seeds a BoundSet with the resulting (protected) hyperplane.
BoundSet make_ra_bound_set(const Mdp& mdp, std::size_t capacity = 0,
                           const linalg::GaussSeidelOptions& options =
                               default_ra_solver_options());

}  // namespace recoverd::bounds
