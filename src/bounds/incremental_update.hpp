// Hauskrecht's incremental linear-function update (Eq. 7, §4.1):
// a point-based backup that creates one new bounding hyperplane tailored to
// a chosen belief π from the current set B:
//
//   b      = argmax_{b_a, a∈A}  Σ_s b_a(s)·π(s)
//   b_a(s) = r(s,a) + β Σ_o Σ_{s'} p(s',o|s,a) · b^{π,a,o}(s')
//   b^{π,a,o} = argmax_{b∈B} Σ_{s'} [Σ_s p(s',o|s,a)·π(s)] · b(s')
//
// where p(s',o|s,a) = q(o|s',a)·p(s'|s,a). The backed-up vector is itself a
// valid lower bound whenever every member of B is, so adding it to B keeps
// V_B⁻ a lower bound while (weakly) improving it at π.
#pragma once

#include "bounds/bound_set.hpp"
#include "pomdp/belief.hpp"
#include "pomdp/pomdp.hpp"

namespace recoverd::bounds {

/// Outcome of one incremental update step.
struct UpdateResult {
  bool added = false;       ///< a new hyperplane entered the set
  double value_before = 0;  ///< V_B⁻(π) before the update
  double value_after = 0;   ///< V_B⁻(π) after the update
  ActionId backing_action = kInvalidId;  ///< action attaining the outer argmax

  double improvement() const { return value_after - value_before; }
};

/// Computes the Eq. 7 backup of `set` at `belief` without modifying the set.
BoundVector backup_vector(const Pomdp& pomdp, const BoundSet& set, const Belief& belief,
                          ActionId* backing_action = nullptr, double beta = 1.0);

/// Performs one incremental update: computes the backup at `belief` and adds
/// it to `set` when it improves the bound there by more than `min_gain`.
UpdateResult improve_at(const Pomdp& pomdp, BoundSet& set, const Belief& belief,
                        double min_gain = 1e-12, double beta = 1.0);

}  // namespace recoverd::bounds
