#include "bounds/sawtooth_upper.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

#include "bounds/upper_bound.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/trace.hpp"
#include "pomdp/bellman.hpp"
#include "util/check.hpp"

namespace recoverd::bounds {

SawtoothUpperBound::SawtoothUpperBound(const Pomdp& pomdp, std::size_t capacity)
    : pomdp_(pomdp), capacity_(capacity) {
  const QmdpBoundResult qmdp = compute_qmdp_bound(pomdp.mdp());
  if (!qmdp.converged()) {
    throw ModelError(
        "SawtoothUpperBound: the underlying MDP has no finite optimal value; "
        "apply a §3.1 transform first");
  }
  corners_ = qmdp.values;
}

double SawtoothUpperBound::interpolate(const Point& point,
                                       std::span<const double> pi) const {
  // min_{s: π_i(s)>0} π(s)/π_i(s): how far toward the stored point the query
  // belief can be stretched while staying in the simplex.
  double ratio = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < pi.size(); ++s) {
    if (point.belief[s] > 0.0) ratio = std::min(ratio, pi[s] / point.belief[s]);
  }
  const double corner_part = linalg::dot(corners_, pi);
  return corner_part + (point.value - point.corner_mix) * ratio;
}

double SawtoothUpperBound::evaluate(const Belief& belief) const {
  return evaluate(belief.probabilities());
}

double SawtoothUpperBound::evaluate(std::span<const double> pi) const {
  RD_EXPECTS(pi.size() == corners_.size(),
             "SawtoothUpperBound::evaluate: belief dimension mismatch");
  double best = linalg::dot(corners_, pi);
  const Point* winner = nullptr;
  for (const auto& point : points_) {
    const double v = interpolate(point, pi);
    if (v < best) {
      best = v;
      winner = &point;
    }
  }
  // Relaxed atomic so concurrent evaluations during root fan-out race
  // benignly on the eviction statistic.
  if (winner != nullptr) {
    std::atomic_ref<std::size_t>(winner->uses).fetch_add(1, std::memory_order_relaxed);
  }
  return best;
}

void SawtoothUpperBound::add_point(const Belief& belief, double value) {
  if (capacity_ > 0 && points_.size() >= capacity_) {
    const auto victim = std::min_element(
        points_.begin(), points_.end(),
        [](const Point& a, const Point& b) { return a.uses < b.uses; });
    points_.erase(victim);
  }
  Point point;
  point.belief.assign(belief.probabilities().begin(), belief.probabilities().end());
  point.value = value;
  point.corner_mix = linalg::dot(corners_, point.belief);
  points_.push_back(std::move(point));
}

double SawtoothUpperBound::improve_at(const Belief& belief, double min_gain,
                                      double branch_floor) {
  obs::TraceSpan span("sawtooth.improve_at", obs::TraceLevel::Decide);
  span.arg("points", static_cast<double>(points_.size()));
  const double before = evaluate(belief);
  const LeafEvaluator leaf = [this](const Belief& b) { return evaluate(b); };
  const double backed_up =
      bellman_value(pomdp_, belief, 1, leaf, 1.0, kInvalidId, branch_floor);
  // L_p maps upper bounds to upper bounds; only store genuine improvements.
  if (backed_up < before - min_gain) {
    add_point(belief, backed_up);
    return before - backed_up;
  }
  return 0.0;
}

}  // namespace recoverd::bounds
