// Sawtooth upper bound on the POMDP value function — the paper's §6
// future-work extension ("generation of upper bounds in addition to the
// lower bounds to facilitate branch and bound techniques").
//
// Representation (Hauskrecht 2000): QMDP corner values v_c(s) at the simplex
// vertices plus a point set U = {(π_i, v_i)}. The bound at π interpolates
// each point against the corners:
//
//   f_i(π) = Σ_s π(s)·v_c(s) + (v_i − Σ_s π_i(s)·v_c(s)) · min_{s:π_i(s)>0} π(s)/π_i(s)
//   UB(π)  = min( Σ_s π(s)·v_c(s),  min_i f_i(π) )
//
// Validity: v_c upper-bounds V* at the corners (full observability can only
// help), each stored v_i upper-bounds V*(π_i), and the interpolation is a
// concave-majorant argument. Point-based updates apply L_p (Eq. 2 with this
// bound at the leaves), which maps upper bounds to upper bounds, so the
// bound only tightens.
#pragma once

#include <vector>

#include "pomdp/belief.hpp"
#include "pomdp/pomdp.hpp"

namespace recoverd::bounds {

class SawtoothUpperBound {
 public:
  /// Builds the initial bound from the QMDP corner values (computed
  /// internally via max value iteration). Throws ModelError when the
  /// underlying MDP has no finite optimal value (untransformed model).
  /// `capacity` limits the point set (0 = unlimited); least-used points are
  /// evicted.
  explicit SawtoothUpperBound(const Pomdp& pomdp, std::size_t capacity = 0);

  /// UB(π).
  double evaluate(const Belief& belief) const;

  /// UB(π) over a raw span — the expansion engine's leaf entry point (no
  /// Belief construction). Safe to call concurrently (the use-count bump is
  /// a relaxed atomic) as long as no thread mutates the point set.
  double evaluate(std::span<const double> pi) const;

  /// Corner (QMDP) values.
  const std::vector<double>& corner_values() const { return corners_; }

  /// Number of stored sawtooth points.
  std::size_t size() const { return points_.size(); }

  /// One point-based update at `belief`: computes the depth-1 Bellman value
  /// with this bound at the leaves and stores the point when it lowers the
  /// bound by more than `min_gain`. Returns the improvement (≥ 0).
  double improve_at(const Belief& belief, double min_gain = 1e-12,
                    double branch_floor = 0.0);

 private:
  struct Point {
    std::vector<double> belief;
    double value;
    double corner_mix;  ///< Σ_s π_i(s)·v_c(s), cached
    mutable std::size_t uses = 0;
  };

  double interpolate(const Point& point, std::span<const double> pi) const;
  void add_point(const Belief& belief, double value);

  const Pomdp& pomdp_;
  std::size_t capacity_;
  std::vector<double> corners_;
  std::vector<Point> points_;
};

}  // namespace recoverd::bounds
