#include "bounds/ra_bound.hpp"

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace recoverd::bounds {

linalg::GaussSeidelOptions default_ra_solver_options() {
  linalg::GaussSeidelOptions options;
  options.relaxation = 1.1;  // mild successive over-relaxation (§3.1)
  options.tolerance = 1e-10;
  return options;
}

namespace {
RaBoundResult solve_random_action_chain(const Mdp& mdp, double beta,
                                        const linalg::GaussSeidelOptions& options) {
  const std::size_t n = mdp.num_states();
  const double inv_actions = 1.0 / static_cast<double>(mdp.num_actions());

  // Q = β/|A| Σ_a P(a), c = 1/|A| Σ_a r(·,a).
  linalg::SparseMatrixBuilder qb(n, n);
  std::vector<double> c(n, 0.0);
  for (ActionId a = 0; a < mdp.num_actions(); ++a) {
    const auto& t = mdp.transition(a);
    for (StateId s = 0; s < n; ++s) {
      for (const auto& e : t.row(s)) qb.add(s, e.col, beta * inv_actions * e.value);
      c[s] += inv_actions * mdp.reward(s, a);
    }
  }

  const auto solve = linalg::solve_fixed_point(qb.build(), c, options);
  RaBoundResult result;
  result.status = solve.status;
  result.iterations = solve.iterations;
  if (solve.converged()) result.values = solve.x;

  static obs::Counter& solves = obs::metrics().counter("bounds.ra_bound.solves");
  static obs::Counter& diverged = obs::metrics().counter("bounds.ra_bound.diverged");
  static obs::Gauge& iterations = obs::metrics().gauge("bounds.ra_bound.iterations");
  solves.add();
  if (result.status == linalg::SolveStatus::Diverged) diverged.add();
  iterations.set(static_cast<double>(result.iterations));
  return result;
}
}  // namespace

RaBoundResult compute_ra_bound(const Mdp& mdp, const linalg::GaussSeidelOptions& options) {
  return solve_random_action_chain(mdp, 1.0, options);
}

RaBoundResult compute_ra_bound_discounted(const Mdp& mdp, double beta,
                                          const linalg::GaussSeidelOptions& options) {
  RD_EXPECTS(beta > 0.0 && beta < 1.0,
             "compute_ra_bound_discounted: beta must lie in (0,1)");
  return solve_random_action_chain(mdp, beta, options);
}

BoundSet make_ra_bound_set(const Mdp& mdp, std::size_t capacity,
                           const linalg::GaussSeidelOptions& options) {
  const RaBoundResult ra = compute_ra_bound(mdp, options);
  if (!ra.converged()) {
    throw ModelError(
        "make_ra_bound_set: the RA-Bound linear system did not converge (" +
        linalg::to_string(ra.status) +
        "); apply with_recovery_notification or add_termination first (see §3.1)");
  }
  BoundSet set(mdp.num_states(), capacity);
  set.add(ra.values);  // first vector: protected automatically
  return set;
}

}  // namespace recoverd::bounds
