#include "bounds/ra_bound.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/work_pool.hpp"

namespace recoverd::bounds {

linalg::GaussSeidelOptions default_ra_solver_options() {
  linalg::GaussSeidelOptions options;
  options.relaxation = 1.1;  // mild successive over-relaxation (§3.1)
  options.tolerance = 1e-10;
  return options;
}

namespace {
struct ChainInstruments {
  obs::Counter& assemblies;
  obs::Gauge& jobs;
  obs::Gauge& nnz;
  obs::Histogram& assembly_ms;
  obs::Histogram& plan_ms;

  static ChainInstruments& get() {
    static ChainInstruments instruments{
        obs::metrics().counter("bounds.ra_chain.assemblies"),
        obs::metrics().gauge("bounds.ra_chain.jobs"),
        obs::metrics().gauge("bounds.ra_chain.nnz"),
        obs::metrics().histogram("bounds.ra_chain.assembly_ms",
                                 obs::exponential_buckets(0.001, 2.0, 26)),
        obs::metrics().histogram("bounds.ra_chain.plan_ms",
                                 obs::exponential_buckets(0.001, 2.0, 26)),
    };
    return instruments;
  }
};

/// Stable insertion sort by column over one gathered row (rows are tiny —
/// |A|·branching entries — and nearly sorted, so this beats a general sort
/// and keeps equal columns in action order for a deterministic sum).
void sort_row_by_col(std::span<linalg::SparseEntry> row) {
  for (std::size_t i = 1; i < row.size(); ++i) {
    linalg::SparseEntry e = row[i];
    std::size_t j = i;
    while (j > 0 && row[j - 1].col > e.col) {
      row[j] = row[j - 1];
      --j;
    }
    row[j] = e;
  }
}
}  // namespace

RandomActionChain build_random_action_chain(const Mdp& mdp, linalg::SolverJobs jobs) {
  RD_EXPECTS(jobs >= 1, "build_random_action_chain: jobs must be >= 1");
  ChainInstruments& instruments = ChainInstruments::get();
  obs::TraceSpan span("ra_bound.assemble_chain", obs::TraceLevel::Decide);
  obs::ScopedTimer assembly_timer(instruments.assembly_ms);
  instruments.assemblies.add();
  instruments.jobs.set(static_cast<double>(jobs));

  const std::size_t n = mdp.num_states();
  const std::size_t num_actions = mdp.num_actions();
  const double inv_actions = 1.0 / static_cast<double>(num_actions);

  RandomActionChain chain;
  chain.num_actions = num_actions;
  chain.c.assign(n, 0.0);

  // Hoist the per-action accessors once; workers only read them.
  std::vector<const linalg::SparseMatrix*> transitions(num_actions);
  std::vector<std::span<const double>> rewards(num_actions);
  for (ActionId a = 0; a < num_actions; ++a) {
    transitions[a] = &mdp.transition(a);
    rewards[a] = mdp.rewards(a);
  }

  // Upper-bound CSR offsets: row s holds at most Σ_a nnz_a(s) entries
  // before duplicate columns merge.
  std::vector<std::size_t> upper(n + 1, 0);
  for (ActionId a = 0; a < num_actions; ++a) {
    for (std::size_t s = 0; s < n; ++s) upper[s + 1] += transitions[a]->row(s).size();
  }
  for (std::size_t s = 0; s < n; ++s) upper[s + 1] += upper[s];

  std::vector<linalg::SparseEntry> scratch(upper[n]);
  std::vector<std::size_t> counts(n, 0);

  // Each row merges its per-action entries independently (gather in action
  // order, stable sort by column, sum runs), so chunking rows across
  // workers cannot change a single bit of the output.
  const auto assemble_rows = [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      const std::size_t base = upper[s];
      std::size_t out = base;
      double reward_acc = 0.0;
      for (ActionId a = 0; a < num_actions; ++a) {
        for (const auto& e : transitions[a]->row(s)) {
          scratch[out++] = {e.col, inv_actions * e.value};
        }
        reward_acc += inv_actions * rewards[a][s];
      }
      chain.c[s] = reward_acc;
      const std::span<linalg::SparseEntry> row{scratch.data() + base, out - base};
      sort_row_by_col(row);
      std::size_t merged = 0;
      std::size_t i = 0;
      while (i < row.size()) {
        linalg::SparseEntry acc = row[i++];
        while (i < row.size() && row[i].col == acc.col) acc.value += row[i++].value;
        row[merged++] = acc;
      }
      counts[s] = merged;
    }
  };

  const std::size_t workers = std::max<std::size_t>(1, std::min(jobs, n));
  if (workers <= 1) {
    assemble_rows(0, n);
  } else {
    // Same contiguous row partition as the per-call thread team this
    // replaces; rows are assembled into disjoint scratch slices, so the
    // assembly is bit-identical for any worker count.
    util::WorkPool::instance().run(workers, [&](std::size_t t) {
      assemble_rows(n * t / workers, n * (t + 1) / workers);
    });
  }

  // Compact the merged rows into the final CSR arrays.
  std::vector<std::size_t> row_ptr(n + 1, 0);
  for (std::size_t s = 0; s < n; ++s) row_ptr[s + 1] = row_ptr[s] + counts[s];
  std::vector<linalg::SparseEntry> entries(row_ptr[n]);
  for (std::size_t s = 0; s < n; ++s) {
    std::copy_n(scratch.begin() + static_cast<std::ptrdiff_t>(upper[s]), counts[s],
                entries.begin() + static_cast<std::ptrdiff_t>(row_ptr[s]));
  }
  chain.q = linalg::SparseMatrix::from_csr(n, std::move(row_ptr), std::move(entries));
  instruments.nnz.set(static_cast<double>(chain.q.nonzeros()));
  assembly_timer.stop();

  obs::ScopedTimer plan_timer(instruments.plan_ms);
  chain.plan = linalg::build_solve_plan(chain.q);
  return chain;
}

namespace {
RaBoundResult solve_random_action_chain(const RandomActionChain& chain, double beta,
                                        const linalg::GaussSeidelOptions& options,
                                        const linalg::SccSolveOptions& scc_options) {
  linalg::SccSolveOptions scc = scc_options;
  scc.scale = beta;
  obs::TraceSpan span("ra_bound.solve_chain", obs::TraceLevel::Decide);
  const auto solve =
      linalg::solve_fixed_point_scc(chain.q, chain.c, options, scc, chain.plan);
  RaBoundResult result;
  result.status = solve.status;
  result.iterations = solve.iterations;
  result.detail = solve.detail;
  if (solve.converged()) result.values = solve.x;

  static obs::Counter& solves = obs::metrics().counter("bounds.ra_bound.solves");
  static obs::Counter& diverged = obs::metrics().counter("bounds.ra_bound.diverged");
  static obs::Gauge& iterations = obs::metrics().gauge("bounds.ra_bound.iterations");
  solves.add();
  if (result.status == linalg::SolveStatus::Diverged) diverged.add();
  iterations.set(static_cast<double>(result.iterations));
  return result;
}
}  // namespace

RaBoundResult compute_ra_bound(const Mdp& mdp, const linalg::GaussSeidelOptions& options,
                               const linalg::SccSolveOptions& scc) {
  return compute_ra_bound(build_random_action_chain(mdp, scc.jobs), options, scc);
}

RaBoundResult compute_ra_bound(const RandomActionChain& chain,
                               const linalg::GaussSeidelOptions& options,
                               const linalg::SccSolveOptions& scc) {
  return solve_random_action_chain(chain, 1.0, options, scc);
}

RaBoundResult compute_ra_bound_discounted(const Mdp& mdp, double beta,
                                          const linalg::GaussSeidelOptions& options,
                                          const linalg::SccSolveOptions& scc) {
  RD_EXPECTS(beta > 0.0 && beta < 1.0,
             "compute_ra_bound_discounted: beta must lie in (0,1)");
  return compute_ra_bound_discounted(build_random_action_chain(mdp, scc.jobs), beta,
                                     options, scc);
}

RaBoundResult compute_ra_bound_discounted(const RandomActionChain& chain, double beta,
                                          const linalg::GaussSeidelOptions& options,
                                          const linalg::SccSolveOptions& scc) {
  RD_EXPECTS(beta > 0.0 && beta < 1.0,
             "compute_ra_bound_discounted: beta must lie in (0,1)");
  return solve_random_action_chain(chain, beta, options, scc);
}

BoundSet make_ra_bound_set(const Mdp& mdp, std::size_t capacity,
                           const linalg::GaussSeidelOptions& options,
                           const linalg::SccSolveOptions& scc) {
  return make_ra_bound_set(build_random_action_chain(mdp, scc.jobs), capacity, options,
                           scc);
}

BoundSet make_ra_bound_set(const RandomActionChain& chain, std::size_t capacity,
                           const linalg::GaussSeidelOptions& options,
                           const linalg::SccSolveOptions& scc) {
  const RaBoundResult ra = compute_ra_bound(chain, options, scc);
  if (!ra.converged()) {
    throw ModelError(
        "make_ra_bound_set: the RA-Bound linear system did not converge (" +
        linalg::to_string(ra.status) +
        (ra.detail.empty() ? "" : ": " + ra.detail) +
        "); apply with_recovery_notification or add_termination first (see §3.1)");
  }
  BoundSet set(chain.num_states(), capacity);
  set.add(ra.values);  // first vector: protected automatically
  return set;
}

}  // namespace recoverd::bounds
