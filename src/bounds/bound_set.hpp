// Sets of lower-bound hyperplanes over the belief simplex (Eq. 6).
//
// Each bound vector b assigns value b(s) to the simplex vertex of state s;
// the set's value at a belief π is V_B⁻(π) = max_{b∈B} Σ_s b(s)·π(s).
// Adding vectors can only raise the pointwise maximum, which is how the
// iterative improvement of §4.1 monotonically tightens the bound.
//
// Storage is bounded (§4.3): when a capacity is set, the least-used
// unprotected vector is evicted. The first vector added is protected by
// default so the RA-Bound guarantee never degrades.
//
// evaluate() is the leaf of every Max-Avg expansion, so it is engineered as
// a hot kernel: each stored hyperplane carries a precomputed *prune key*
// (its maximum coefficient plus a rigorous rounding margin) that lets the
// scan skip — exactly, without changing the returned value or the winning
// index — any hyperplane whose best-possible dot product cannot beat the
// running maximum. Callers on the expansion hot path use the EvalScratch
// overloads, which add a warm start (the previous winner is tried first, so
// the running maximum starts high and the prune keys bite immediately) and
// accumulate use-counter wins locally, deferring the shared-counter update
// to one flush per decision (DESIGN.md §11).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace recoverd::bounds {

/// One bounding hyperplane: an entry per POMDP state.
using BoundVector = std::vector<double>;

class BoundSet {
 public:
  /// `dimension` = |S|; `capacity` = maximum number of stored vectors
  /// (0 = unlimited).
  explicit BoundSet(std::size_t dimension, std::size_t capacity = 0);

  std::size_t dimension() const { return dimension_; }
  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Mutation counter: bumped by every add() that stores or prunes,
  /// remove(), and capacity eviction. Decision-provenance records snapshot
  /// it so a decision can be tied to the exact bound-set revision that
  /// produced its values (two decisions with equal generation evaluated
  /// the same hyperplanes).
  std::uint64_t generation() const { return generation_; }

  /// Outcome of an add() call.
  enum class AddResult {
    Added,            ///< stored (possibly evicting or pruning others)
    Dominated,        ///< an existing vector pointwise-dominates it; dropped
  };

  /// Inserts a hyperplane. Vectors pointwise-dominated by the newcomer are
  /// pruned (they can never attain the max); a newcomer dominated by an
  /// existing vector is dropped. On overflow the least-used unprotected
  /// vector is evicted.
  AddResult add(BoundVector vector);

  /// Marks the vector at `index` as non-evictable (the RA-Bound base plane).
  void protect(std::size_t index);

  /// True when the vector at `index` is protected from eviction/removal.
  bool is_protected(std::size_t index) const;

  /// Removes the (unprotected) vector at `index` — the guard runtime's
  /// bound-consistency repair path. Indices past `index` shift down by one.
  void remove(std::size_t index);

  /// V_B⁻(π) = max_b ⟨b, π⟩, and records a "use" of the attaining vector
  /// (for least-used eviction). Precondition: at least one vector stored;
  /// `belief` has non-negative entries (the pruned scan's skip bound relies
  /// on it). Safe to call concurrently (the use-count bump is a relaxed
  /// atomic) as long as no thread mutates the set — the expansion engine
  /// relies on this for its root-action fan-out.
  double evaluate(std::span<const double> belief) const;

  /// Per-caller scratch for the hot-path evaluate() overloads: accumulates
  /// use-counter wins and bounds.eval.* tallies locally (no shared-memory
  /// RMW per leaf) and carries the warm-start winner between evaluations.
  /// One scratch per concurrently evaluating thread; begin_eval() before a
  /// batch of evaluations, flush_eval() once the set may mutate again.
  struct EvalScratch {
    static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

    std::vector<std::uint64_t> wins;  ///< per-entry evaluate() wins since begin
    std::size_t warm = kNone;         ///< previous winner, tried first
    std::uint64_t evaluations = 0;    ///< evaluate() calls since last flush
    std::uint64_t planes_skipped = 0;  ///< hyperplanes pruned by the key bound
    std::uint64_t warm_start_hits = 0;  ///< warm plane turned out to be the winner
    std::uint64_t batch_calls = 0;      ///< evaluate_batch() invocations

    /// 4-row transpose tile for the AVX2 batch kernel (scratch only).
    std::vector<double> tile;
  };

  /// Sizes `scratch` for this set (wins has one slot per stored vector,
  /// zeroed) and clamps a stale warm-start index. Call after any mutation
  /// (add/remove/evictions shift indices) and before the evaluations whose
  /// wins the scratch will accumulate.
  void begin_eval(EvalScratch& scratch) const;

  /// evaluate() without shared-memory writes: the winner's use count is
  /// accumulated in `scratch.wins` and the previous winner is tried first
  /// (warm start). Bit-identical value and winning index to evaluate().
  double evaluate(std::span<const double> belief, EvalScratch& scratch) const;

  /// Evaluates `count` beliefs stored row-major (count × dimension) in one
  /// pass, writing out[i] for row i. Bit-identical values and winners to
  /// `count` sequential evaluate() calls in every SIMD mode: under
  /// simd::Mode::Avx2 rows are transposed into 4-lane tiles and every
  /// hyperplane is scanned with a 4-wide dot whose per-lane term order is
  /// exactly linalg::dot's, so the full unpruned scan reproduces the pruned
  /// scalar scan's max and lowest-index winner (pruning and warm starts are
  /// value-invariant by construction — only the planes_skipped tally
  /// differs between modes). In scalar mode the warm start chains across
  /// rows — consecutive leaves of an expansion frontier are usually won by
  /// the same hyperplane.
  void evaluate_batch(const double* beliefs, std::size_t count, std::span<double> out,
                      EvalScratch& scratch) const;

  /// Applies the wins accumulated in `scratch` to the stored use counters
  /// (in ascending index order, so counts are deterministic for any caller
  /// structure), publishes the bounds.eval.* metric tallies, and zeroes the
  /// scratch tallies. The warm-start index survives the flush.
  void flush_eval(EvalScratch& scratch) const;

  /// Index of the hyperplane attaining the max at `belief`.
  std::size_t best_index(std::span<const double> belief) const;

  /// Read access to a stored hyperplane.
  const BoundVector& vector_at(std::size_t index) const;

  /// Number of evaluate() calls the vector at `index` has won.
  std::size_t use_count(std::size_t index) const;

  /// Lossless serialization image of a BoundSet — everything restore() needs
  /// to rebuild a set whose decisions, eviction order, and generation-based
  /// cache invalidation behave bitwise-identically to the original. Planes
  /// are stored in index order; prune keys are NOT stored (restore()
  /// recomputes them through make_entry, so they can never drift from the
  /// vector bits).
  struct Snapshot {
    struct Plane {
      BoundVector vector;
      bool is_protected = false;
      std::uint64_t uses = 0;
    };
    std::size_t dimension = 0;
    std::size_t capacity = 0;
    std::uint64_t generation = 0;
    /// Whether a first vector was ever added (controls whether the *next*
    /// add() is auto-protected); distinct from planes.empty() after prunes.
    bool first_added = false;
    std::vector<Plane> planes;
  };

  /// Captures the complete set state. Not safe against concurrent mutation
  /// (concurrent evaluate() is fine — use counts are read racily but each
  /// value read is a real count).
  Snapshot snapshot() const;

  /// Rebuilds a set from a snapshot, bypassing add(): no domination checks,
  /// no pruning, no eviction, no generation bumps — planes land at the same
  /// indices with the same protection flags, use counts, and generation as
  /// the captured set. Throws PreconditionError on inconsistent snapshots
  /// (zero dimension, plane length mismatch, non-finite coefficients).
  static BoundSet restore(const Snapshot& snapshot);

 private:
  struct Entry {
    BoundVector vector;
    /// Safe upper bound on ⟨b, π⟩ / Σπ for non-negative π: max_s b(s) plus a
    /// rounding margin (see make_entry). Lets the scan skip this plane when
    /// prune_key · Σπ is strictly below the running max — the skipped dot
    /// provably could neither win nor tie, so value AND winner are unchanged.
    double prune_key = 0.0;
    bool is_protected = false;
    mutable std::size_t uses = 0;
  };

  Entry make_entry(BoundVector vector) const;
  /// The shared pruned scan: returns the max dot product and stores the
  /// winning index (lowest index attaining the max, exactly the naive
  /// ascending scan's tie-break) in `*winner`. `warm` (kNone = cold) is
  /// evaluated first; `scratch` (may be null) receives the skip tallies.
  double scan(std::span<const double> belief, std::size_t warm, std::size_t* winner,
              EvalScratch* scratch) const;

  /// AVX2 batch scan over groups of 4 rows (full scan, lane-per-belief
  /// dot4). Returns the number of leading rows handled (a multiple of 4; 0
  /// when the build lacks the kernels). Remaining rows fall through to the
  /// scalar per-row path.
  std::size_t evaluate_batch_simd(const double* beliefs, std::size_t count, double* out,
                                  EvalScratch& scratch) const;

  void evict_least_used();

  std::size_t dimension_;
  std::size_t capacity_;
  bool first_added_ = false;
  std::uint64_t generation_ = 0;
  std::vector<Entry> entries_;
};

/// Devirtualized leaf binding for the expansion engine: evaluates a
/// BoundSet with one EvalScratch per engine leaf slot (see
/// ExpansionEngine::leaf_slots), giving every fan-out worker a private
/// warm start and win tally. Shaped for SpanLeaf::of_batched — the engine
/// calls operator() for single leaves and batch() for whole frontiers.
struct ScratchBoundLeaf {
  const BoundSet* set = nullptr;
  BoundSet::EvalScratch* scratches = nullptr;  ///< one per leaf slot

  double operator()(std::span<const double> pi, std::size_t slot) const {
    return set->evaluate(pi, scratches[slot]);
  }
  void batch(const double* beliefs, std::size_t count, std::size_t /*dim*/, double* out,
             std::size_t slot) const {
    set->evaluate_batch(beliefs, count, {out, count}, scratches[slot]);
  }
};

}  // namespace recoverd::bounds
