// Sets of lower-bound hyperplanes over the belief simplex (Eq. 6).
//
// Each bound vector b assigns value b(s) to the simplex vertex of state s;
// the set's value at a belief π is V_B⁻(π) = max_{b∈B} Σ_s b(s)·π(s).
// Adding vectors can only raise the pointwise maximum, which is how the
// iterative improvement of §4.1 monotonically tightens the bound.
//
// Storage is bounded (§4.3): when a capacity is set, the least-used
// unprotected vector is evicted. The first vector added is protected by
// default so the RA-Bound guarantee never degrades.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace recoverd::bounds {

/// One bounding hyperplane: an entry per POMDP state.
using BoundVector = std::vector<double>;

class BoundSet {
 public:
  /// `dimension` = |S|; `capacity` = maximum number of stored vectors
  /// (0 = unlimited).
  explicit BoundSet(std::size_t dimension, std::size_t capacity = 0);

  std::size_t dimension() const { return dimension_; }
  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Outcome of an add() call.
  enum class AddResult {
    Added,            ///< stored (possibly evicting or pruning others)
    Dominated,        ///< an existing vector pointwise-dominates it; dropped
  };

  /// Inserts a hyperplane. Vectors pointwise-dominated by the newcomer are
  /// pruned (they can never attain the max); a newcomer dominated by an
  /// existing vector is dropped. On overflow the least-used unprotected
  /// vector is evicted.
  AddResult add(BoundVector vector);

  /// Marks the vector at `index` as non-evictable (the RA-Bound base plane).
  void protect(std::size_t index);

  /// True when the vector at `index` is protected from eviction/removal.
  bool is_protected(std::size_t index) const;

  /// Removes the (unprotected) vector at `index` — the guard runtime's
  /// bound-consistency repair path. Indices past `index` shift down by one.
  void remove(std::size_t index);

  /// V_B⁻(π) = max_b ⟨b, π⟩, and records a "use" of the attaining vector
  /// (for least-used eviction). Precondition: at least one vector stored.
  /// Safe to call concurrently (the use-count bump is a relaxed atomic) as
  /// long as no thread mutates the set — the expansion engine relies on
  /// this for its root-action fan-out.
  double evaluate(std::span<const double> belief) const;

  /// Index of the hyperplane attaining the max at `belief`.
  std::size_t best_index(std::span<const double> belief) const;

  /// Read access to a stored hyperplane.
  const BoundVector& vector_at(std::size_t index) const;

  /// Number of evaluate() calls the vector at `index` has won.
  std::size_t use_count(std::size_t index) const;

 private:
  struct Entry {
    BoundVector vector;
    bool is_protected = false;
    mutable std::size_t uses = 0;
  };

  void evict_least_used();

  std::size_t dimension_;
  std::size_t capacity_;
  bool first_added_ = false;
  std::vector<Entry> entries_;
};

}  // namespace recoverd::bounds
