#include "bounds/incremental_update.hpp"

#include <limits>

#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace recoverd::bounds {

BoundVector backup_vector(const Pomdp& pomdp, const BoundSet& set, const Belief& belief,
                          ActionId* backing_action, double beta) {
  RD_EXPECTS(set.size() > 0, "backup_vector: the bound set is empty");
  RD_EXPECTS(set.dimension() == pomdp.num_states(),
             "backup_vector: bound set dimension mismatch");
  RD_EXPECTS(belief.size() == pomdp.num_states(), "backup_vector: belief dimension mismatch");
  RD_EXPECTS(beta > 0.0 && beta <= 1.0, "backup_vector: beta must lie in (0,1]");

  const Mdp& mdp = pomdp.mdp();
  const std::size_t n = pomdp.num_states();

  BoundVector best_vector;
  double best_value = -std::numeric_limits<double>::infinity();
  ActionId best_action = kInvalidId;

  for (ActionId a = 0; a < pomdp.num_actions(); ++a) {
    const auto pred = pomdp.mdp().transition(a).multiply_transpose(belief.probabilities());
    const auto& q = pomdp.observation(a);

    // For each observation o select b^{π,a,o} = argmax_b Σ_{s'}
    // q(o|s',a)·pred(s')·b(s'). The per-observation weight vectors are built
    // in one sparse pass over q's rows.
    std::vector<std::vector<double>> weights(pomdp.num_observations());
    for (StateId sp = 0; sp < n; ++sp) {
      if (pred[sp] <= 0.0) continue;
      for (const auto& e : q.row(sp)) {
        auto& w = weights[e.col];
        if (w.empty()) w.assign(n, 0.0);
        w[sp] += e.value * pred[sp];
      }
    }

    // z(s') = Σ_o q(o|s',a) · b^{π,a,o}(s'). Observations with zero weight
    // under π contribute through a default choice (index 0, the protected
    // RA plane) — any member of B keeps the backup a valid lower bound.
    std::vector<std::size_t> chosen(pomdp.num_observations(), 0);
    for (ObsId o = 0; o < pomdp.num_observations(); ++o) {
      if (!weights[o].empty()) chosen[o] = set.best_index(weights[o]);
    }
    std::vector<double> z(n, 0.0);
    for (StateId sp = 0; sp < n; ++sp) {
      for (const auto& e : q.row(sp)) {
        z[sp] += e.value * set.vector_at(chosen[e.col])[sp];
      }
    }

    // b_a = r(a) + β P(a) z.
    BoundVector ba(n, 0.0);
    const auto& t = mdp.transition(a);
    for (StateId s = 0; s < n; ++s) {
      double acc = mdp.reward(s, a);
      for (const auto& e : t.row(s)) acc += beta * e.value * z[e.col];
      ba[s] = acc;
    }

    const double value = linalg::dot(ba, belief.probabilities());
    if (value > best_value) {
      best_value = value;
      best_vector = std::move(ba);
      best_action = a;
    }
  }

  if (backing_action != nullptr) *backing_action = best_action;
  return best_vector;
}

UpdateResult improve_at(const Pomdp& pomdp, BoundSet& set, const Belief& belief,
                        double min_gain, double beta) {
  // Eq. 7 instrumentation: attempted = accepted + rejected; the improvement
  // histogram records how much each *accepted* backup tightened V_B⁻ at π.
  static obs::Counter& attempted = obs::metrics().counter("bounds.update.attempted");
  static obs::Counter& accepted = obs::metrics().counter("bounds.update.accepted");
  static obs::Counter& rejected = obs::metrics().counter("bounds.update.rejected");
  static obs::Histogram& improvement = obs::metrics().histogram(
      "bounds.update.improvement", obs::exponential_buckets(1e-6, 10.0, 12));

  obs::TraceSpan span("bounds.improve_at", obs::TraceLevel::Decide);
  span.arg("planes", static_cast<double>(set.size()));

  UpdateResult result;
  result.value_before = set.evaluate(belief.probabilities());

  ActionId action = kInvalidId;
  BoundVector backup = backup_vector(pomdp, set, belief, &action, beta);
  result.backing_action = action;

  const double backup_value = linalg::dot(backup, belief.probabilities());
  if (backup_value > result.value_before + min_gain) {
    result.added = set.add(std::move(backup)) == BoundSet::AddResult::Added;
  }
  result.value_after = set.evaluate(belief.probabilities());

  attempted.add();
  if (result.added) {
    accepted.add();
    improvement.observe(result.improvement());
  } else {
    rejected.add();
  }
  return result;
}

}  // namespace recoverd::bounds
