// The two literature lower bounds the paper compares against (§3.1):
//
//  - BI-POMDP [Washington 1997]: V_m^BI solves Eq. 1 with min instead of
//    max — the value of always choosing the worst action. On undiscounted
//    recovery models this diverges (the worst action loops while accruing
//    cost), with or without recovery notification.
//
//  - Blind-policy method [Hauskrecht 1997]: one vector per action,
//    V_m^{ba}(·,a) = value of always playing a; the POMDP bound is
//    max_a Σ_s π(s)·V^{ba}(s,a). On notification-transformed recovery
//    models this usually diverges too (no single action makes progress in
//    every state), but the terminate transform trivially repairs it: the
//    blind aT policy has finite value everywhere.
//
// Both report divergence as a status so the bench can reproduce the §3.1
// comparison table instead of hanging.
#pragma once

#include <vector>

#include "bounds/bound_set.hpp"
#include "linalg/gauss_seidel.hpp"
#include "pomdp/mdp.hpp"
#include "pomdp/value_iteration.hpp"

namespace recoverd::bounds {

struct BiBoundResult {
  linalg::SolveStatus status = linalg::SolveStatus::MaxIterations;
  BoundVector values;  ///< V_m^BI(s) (meaningful when converged)
  std::size_t iterations = 0;

  bool converged() const { return status == linalg::SolveStatus::Converged; }
};

/// Computes the BI-POMDP bound vector (min-action value iteration).
BiBoundResult compute_bi_bound(const Mdp& mdp, const ValueIterationOptions& options = {});

/// Per-action blind-policy bound.
struct BlindPolicyBound {
  ActionId action = kInvalidId;
  linalg::SolveStatus status = linalg::SolveStatus::MaxIterations;
  BoundVector values;  ///< V^{ba}(·, action) (meaningful when converged)

  bool converged() const { return status == linalg::SolveStatus::Converged; }
};

struct BlindPolicyBoundResult {
  std::vector<BlindPolicyBound> per_action;

  /// True when at least one blind policy has finite value (the set-max bound
  /// is then usable, although it is only a valid lower bound for the states
  /// where *every* component is finite — the paper's point is precisely that
  /// most recovery models leave it undefined).
  bool any_converged() const;

  /// True when every blind policy converged (the bound is defined simplex-wide).
  bool all_converged() const;

  /// Builds the max-of-hyperplanes bound from the converged vectors only.
  /// Precondition: all_converged().
  BoundSet to_bound_set() const;
};

/// Computes blind-policy bounds for every action.
BlindPolicyBoundResult compute_blind_policy_bounds(
    const Mdp& mdp, const ValueIterationOptions& options = {});

/// Same bounds through the topology-aware linear solver: V^{ba} solves the
/// *linear* system x = r(·,a) + β P(a) x, so each action is one SCC-scheduled
/// solve directly on P(a) — no value-iteration sweeps and no chain assembly.
/// `beta` ∈ (0, 1]; `scc.scale` is owned by this function (set from β).
BlindPolicyBoundResult compute_blind_policy_bounds_linear(
    const Mdp& mdp, double beta = 1.0, const linalg::GaussSeidelOptions& options = {},
    const linalg::SccSolveOptions& scc = {});

}  // namespace recoverd::bounds
