// Heuristic search value iteration (HSVI-style) offline solver: the natural
// consequence of having both bound families (§6's "branch and bound"
// direction taken to completion). Starting from a root belief, trials
// descend the Max-Avg tree — choosing actions optimistically by the upper
// bound and observations by weighted gap — and tighten both bounds on the
// way back up. The result is a certified interval [V_B⁻(π₀), UB(π₀)]
// around the optimal value of the recovery POMDP at the root.
#pragma once

#include "bounds/bound_set.hpp"
#include "bounds/sawtooth_upper.hpp"
#include "pomdp/belief.hpp"
#include "pomdp/pomdp.hpp"

namespace recoverd::bounds {

struct HsviOptions {
  /// Stop when upper − lower at the root drops below this.
  double epsilon = 1.0;
  /// Maximum exploration trials.
  std::size_t max_trials = 200;
  /// Depth cap per trial (the undiscounted criterion has no γ^t contraction
  /// to derive one from).
  std::size_t max_trial_depth = 60;
  /// Per-node gap threshold below which a trial stops descending.
  double node_epsilon = 1e-3;
};

struct HsviResult {
  double lower = 0.0;
  double upper = 0.0;
  std::size_t trials = 0;
  bool converged = false;  ///< gap ≤ epsilon reached

  double gap() const { return upper - lower; }
};

/// Runs HSVI on `pomdp`, refining `lower` and `upper` in place (both must
/// outlive the call; `lower` must be seeded, e.g. by make_ra_bound_set).
HsviResult hsvi_solve(const Pomdp& pomdp, BoundSet& lower, SawtoothUpperBound& upper,
                      const Belief& root, const HsviOptions& options = {});

}  // namespace recoverd::bounds
