#include "bounds/hsvi.hpp"

#include <limits>

#include "bounds/incremental_update.hpp"
#include "linalg/vector_ops.hpp"
#include "pomdp/bellman.hpp"
#include "util/check.hpp"

namespace recoverd::bounds {

namespace {

struct TrialContext {
  const Pomdp& pomdp;
  BoundSet& lower;
  SawtoothUpperBound& upper;
  const HsviOptions& options;
};

// One recursive trial: descend along the optimistic action and the
// largest-weighted-gap observation, then back up both bounds.
void trial(const TrialContext& ctx, const Belief& belief, std::size_t depth) {
  const double gap =
      ctx.upper.evaluate(belief) - ctx.lower.evaluate(belief.probabilities());
  if (depth >= ctx.options.max_trial_depth || gap <= ctx.options.node_epsilon) return;

  // Action selection: maximise the depth-1 value under the UPPER bound
  // (optimism in the face of uncertainty drives exploration).
  const LeafEvaluator upper_leaf = [&ctx](const Belief& b) {
    return ctx.upper.evaluate(b);
  };
  const auto upper_values = bellman_action_values(ctx.pomdp, belief, 1, upper_leaf);
  ActionId best_action = 0;
  double best_value = -std::numeric_limits<double>::infinity();
  for (const auto& av : upper_values) {
    if (av.value > best_value) {
      best_value = av.value;
      best_action = av.action;
    }
  }

  // Observation selection: the branch with the largest probability-weighted
  // residual gap.
  const auto branches = belief_successors(ctx.pomdp, belief, best_action);
  const Belief* chosen = nullptr;
  double best_score = 0.0;
  for (const auto& branch : branches) {
    const double branch_gap = ctx.upper.evaluate(branch.posterior) -
                              ctx.lower.evaluate(branch.posterior.probabilities());
    const double score = branch.probability * branch_gap;
    if (score > best_score) {
      best_score = score;
      chosen = &branch.posterior;
    }
  }
  if (chosen != nullptr && best_score > ctx.options.node_epsilon) {
    trial(ctx, *chosen, depth + 1);
  }

  // Back up both bounds at this belief on the way out.
  improve_at(ctx.pomdp, ctx.lower, belief);
  ctx.upper.improve_at(belief);
}

}  // namespace

HsviResult hsvi_solve(const Pomdp& pomdp, BoundSet& lower, SawtoothUpperBound& upper,
                      const Belief& root, const HsviOptions& options) {
  RD_EXPECTS(lower.size() > 0, "hsvi_solve: lower bound set must be seeded");
  RD_EXPECTS(lower.dimension() == pomdp.num_states(),
             "hsvi_solve: lower bound dimension mismatch");
  RD_EXPECTS(root.size() == pomdp.num_states(), "hsvi_solve: root dimension mismatch");
  RD_EXPECTS(options.epsilon > 0.0, "hsvi_solve: epsilon must be positive");

  const TrialContext ctx{pomdp, lower, upper, options};
  HsviResult result;
  for (std::size_t i = 0; i < options.max_trials; ++i) {
    result.lower = lower.evaluate(root.probabilities());
    result.upper = upper.evaluate(root);
    result.trials = i;
    if (result.gap() <= options.epsilon) {
      result.converged = true;
      return result;
    }
    trial(ctx, root, 0);
  }
  result.lower = lower.evaluate(root.probabilities());
  result.upper = upper.evaluate(root);
  result.trials = options.max_trials;
  result.converged = result.gap() <= options.epsilon;
  return result;
}

}  // namespace recoverd::bounds
