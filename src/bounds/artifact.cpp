#include "bounds/artifact.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/crc64.hpp"
#include "util/timer.hpp"

namespace recoverd::bounds {

namespace {

constexpr std::uint64_t kMagic = 0x315241444e424452ULL;  // "RDBNDAR1" LE
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8;  // magic+version+reserved+len

// The wholesale-memcpy array paths below depend on these layouts; a platform
// where they fail needs a per-element serializer instead.
static_assert(sizeof(linalg::SparseEntry) == 16,
              "SparseEntry must be {u64 col, f64 value} with no padding");
static_assert(sizeof(std::size_t) == 8, "artifact format assumes 64-bit size_t");
static_assert(sizeof(double) == 8, "artifact format assumes 64-bit double");

struct ArtifactInstruments {
  obs::Counter& saves;
  obs::Counter& loads;
  obs::Counter& load_rejects;
  obs::Counter& bytes_written;
  obs::Counter& bytes_read;
  obs::Gauge& save_ms;
  obs::Gauge& load_ms;

  static ArtifactInstruments& get() {
    static ArtifactInstruments instruments{
        obs::metrics().counter("bounds.artifact.saves"),
        obs::metrics().counter("bounds.artifact.loads"),
        obs::metrics().counter("bounds.artifact.load_rejects"),
        obs::metrics().counter("bounds.artifact.bytes_written"),
        obs::metrics().counter("bounds.artifact.bytes_read"),
        obs::metrics().gauge("bounds.artifact.save_ms"),
        obs::metrics().gauge("bounds.artifact.load_ms"),
    };
    return instruments;
  }
};

[[noreturn]] void fail(const std::string& path, const std::string& why) {
  throw ModelError("bound artifact '" + path + "': " + why);
}

// ---- byte-buffer writer -------------------------------------------------

struct Writer {
  std::vector<unsigned char> bytes;

  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    bytes.insert(bytes.end(), p, p + n);
  }
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void f64(double v) { raw(&v, 8); }
  /// Zero-pads to the next 8-byte boundary (keeps u64/f64 fields 8-aligned
  /// relative to the file start for in-place mmap walkers).
  void pad8() {
    static const unsigned char zeros[8] = {};
    raw(zeros, (8 - bytes.size() % 8) % 8);
  }
  void u32_array(const std::uint32_t* data, std::size_t count) {
    raw(data, count * 4);
    pad8();
  }
};

// ---- mmap'd (or fallback-read) input file -------------------------------

struct Mapping {
  const unsigned char* data = nullptr;
  std::size_t size = 0;
  void* base = nullptr;
  std::size_t map_len = 0;
  std::vector<unsigned char> fallback;

  explicit Mapping(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      fail(path, "cannot open — no bound artifact at this path (build one with "
                 "--bounds-out first)");
    }
    struct ::stat st = {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      fail(path, "cannot stat — the path is not a readable regular file");
    }
    size = static_cast<std::size_t>(st.st_size);
    if (size > 0) {
      // MAP_POPULATE prefaults the whole range in one readahead pass instead
      // of ~size/4096 minor faults during the CRC sweep.
      void* m = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE | MAP_POPULATE, fd, 0);
      if (m == MAP_FAILED) m = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      if (m != MAP_FAILED) {
        base = m;
        map_len = size;
        data = static_cast<const unsigned char*>(m);
      } else {
        // mmap can fail on exotic filesystems; a plain read is equivalent,
        // just without the zero-copy page cache sharing.
        fallback.resize(size);
        std::size_t got = 0;
        while (got < size) {
          const ::ssize_t r = ::pread(fd, fallback.data() + got, size - got,
                                      static_cast<::off_t>(got));
          if (r <= 0) break;
          got += static_cast<std::size_t>(r);
        }
        if (got != size) {
          ::close(fd);
          fail(path, "short read — the file shrank while loading");
        }
        data = fallback.data();
      }
    }
    ::close(fd);
  }
  ~Mapping() {
    if (base != nullptr) ::munmap(base, map_len);
  }
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;
};

// ---- payload reader -----------------------------------------------------
//
// Every read goes through memcpy, so the reader is correct at any byte
// offset — corruption that desynchronises the field layout surfaces as a
// need() failure or a trailing-bytes error, never as an unaligned access.

struct Reader {
  const std::string& path;
  const unsigned char* data;
  std::size_t size;
  std::size_t pos = 0;

  void need(std::size_t n, const char* what) {
    if (size - pos < n) {
      fail(path, std::string("truncated while reading ") + what + " (need " +
                     std::to_string(n) + " bytes at offset " + std::to_string(pos) +
                     ", file has " + std::to_string(size) + ") — the file was cut "
                     "short; rebuild the artifact with --bounds-out");
    }
  }
  /// Overflow-safe guard for count×elem_size array reads: a corrupted count
  /// field fails here with a size argument instead of wrapping the multiply.
  void need_array(std::uint64_t count, std::size_t elem_size, const char* what) {
    if (count > (size - pos) / elem_size) {
      fail(path, std::string("implausible ") + what + " count " +
                     std::to_string(count) + " (would need " +
                     std::to_string(count) + "×" + std::to_string(elem_size) +
                     " bytes, file has " + std::to_string(size - pos) +
                     " left) — the file is corrupted");
    }
  }
  std::uint8_t u8(const char* what) {
    need(1, what);
    return data[pos++];
  }
  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v;
    std::memcpy(&v, data + pos, 4);
    pos += 4;
    return v;
  }
  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v;
    std::memcpy(&v, data + pos, 8);
    pos += 8;
    return v;
  }
  void raw(void* out, std::size_t n, const char* what) {
    need(n, what);
    std::memcpy(out, data + pos, n);
    pos += n;
  }
  void pad8(const char* what) {
    const std::size_t n = (8 - pos % 8) % 8;
    need(n, what);
    pos += n;
  }
  std::vector<std::uint32_t> u32_array(std::uint64_t count, const char* what) {
    need_array(count, 4, what);
    std::vector<std::uint32_t> out(count);
    raw(out.data(), count * 4, what);
    pad8(what);
    return out;
  }
  std::vector<std::size_t> u64_array(std::uint64_t count, const char* what) {
    need_array(count, 8, what);
    std::vector<std::size_t> out(count);
    raw(out.data(), count * 8, what);
    return out;
  }
};

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t mix_in(std::uint64_t h, std::uint64_t v) { return mix64(h ^ v); }

std::uint64_t bits_of(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, 8);
  return b;
}

}  // namespace

std::uint64_t hash_mdp(const Mdp& mdp) {
  std::uint64_t h = 0x4c444d444e424452ULL;  // "RDBNDMDL"
  h = mix_in(h, mdp.num_states());
  h = mix_in(h, mdp.num_actions());
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    h = mix_in(h, mdp.is_goal(s) ? 1 : 0);
  }
  for (ActionId a = 0; a < mdp.num_actions(); ++a) {
    h = mix_in(h, bits_of(mdp.duration(a)));
    for (const double r : mdp.rewards(a)) h = mix_in(h, bits_of(r));
    const linalg::SparseMatrix& m = mdp.transition(a);
    h = mix_in(h, m.rows());
    h = mix_in(h, m.cols());
    for (const linalg::SparseEntry& e : m.entry_array()) {
      h = mix_in(h, e.col);
      h = mix_in(h, bits_of(e.value));
    }
  }
  return h;
}

std::uint64_t save_bound_artifact(const std::string& path,
                                  const RandomActionChain& chain,
                                  const BoundSet& set, std::uint64_t model_hash) {
  const std::size_t n = chain.num_states();
  RD_EXPECTS(n > 0, "save_bound_artifact: chain must be non-empty");
  RD_EXPECTS(chain.q.rows() == n && chain.q.cols() == n,
             "save_bound_artifact: chain matrix must be |S|×|S|");
  RD_EXPECTS(set.dimension() == n,
             "save_bound_artifact: bound set dimension must match the chain");
  const Timer timer;
  const linalg::SolvePlan& plan = chain.plan;
  const BoundSet::Snapshot snap = set.snapshot();

  Writer payload;
  // Rough size: the big blocks plus slack for the fixed fields; avoids
  // re-allocation churn at 10⁶ states where the payload is hundreds of MB.
  payload.bytes.reserve(chain.q.nonzeros() * sizeof(linalg::SparseEntry) +
                        (n + 1) * 8 + n * 8 + n * 16 + plan.members.size() * 8 +
                        snap.planes.size() * (n + 2) * 8 + 512);
  payload.u64(model_hash);
  payload.u64(n);
  payload.u64(chain.num_actions);

  // -- chain.q (CSR, wholesale) --
  payload.u64(chain.q.cols());
  payload.u64(chain.q.rows());
  payload.u64(chain.q.nonzeros());
  payload.raw(chain.q.row_offsets().data(), (chain.q.rows() + 1) * 8);
  payload.raw(chain.q.entry_array().data(),
              chain.q.nonzeros() * sizeof(linalg::SparseEntry));

  // -- chain.c --
  payload.raw(chain.c.data(), n * 8);

  // -- solve plan --
  payload.u64(plan.num_components);
  payload.u64(plan.num_singletons);
  payload.u64(plan.largest_component);
  payload.u32_array(plan.component.data(), plan.component.size());
  payload.u32_array(plan.members.data(), plan.members.size());
  payload.raw(plan.component_ptr.data(), plan.component_ptr.size() * 8);
  payload.u32_array(plan.level_of.data(), plan.level_of.size());
  payload.u64(plan.level_components.size());
  payload.u32_array(plan.level_components.data(), plan.level_components.size());
  payload.u64(plan.level_ptr.size());
  payload.raw(plan.level_ptr.data(), plan.level_ptr.size() * 8);

  // -- bound set --
  payload.u64(snap.dimension);
  payload.u64(snap.capacity);
  payload.u64(snap.generation);
  payload.u8(snap.first_added ? 1 : 0);
  payload.pad8();
  payload.u64(snap.planes.size());
  for (const BoundSet::Snapshot::Plane& p : snap.planes) {
    payload.u8(p.is_protected ? 1 : 0);
  }
  payload.pad8();
  for (const BoundSet::Snapshot::Plane& p : snap.planes) payload.u64(p.uses);
  for (const BoundSet::Snapshot::Plane& p : snap.planes) {
    payload.raw(p.vector.data(), p.vector.size() * 8);
  }

  Writer file;
  file.bytes.reserve(kHeaderBytes + payload.bytes.size() + 8);
  file.u64(kMagic);
  file.u32(kBoundArtifactVersion);
  file.u32(0);  // reserved: 8-aligns the payload
  file.u64(payload.bytes.size());
  file.raw(payload.bytes.data(), payload.bytes.size());
  const std::uint64_t crc = util::crc64(file.bytes.data() + 8, file.bytes.size() - 8);
  file.u64(crc);

  // Atomic write: tmp file in the same directory, fsync, rename over.
  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    fail(path, "cannot create '" + tmp + "' — check the directory exists and is "
               "writable");
  }
  const std::size_t written = std::fwrite(file.bytes.data(), 1, file.bytes.size(), out);
  const bool flushed = std::fflush(out) == 0;
  const bool synced = ::fsync(::fileno(out)) == 0;
  std::fclose(out);
  if (written != file.bytes.size() || !flushed || !synced) {
    std::remove(tmp.c_str());
    fail(path, "short write to '" + tmp + "' — disk full or I/O error; the previous "
               "artifact (if any) is untouched");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail(path, "cannot rename '" + tmp + "' into place");
  }

  ArtifactInstruments& instruments = ArtifactInstruments::get();
  instruments.saves.add();
  instruments.bytes_written.add(file.bytes.size());
  instruments.save_ms.set(timer.elapsed_ms());
  return crc;
}

BoundArtifact load_bound_artifact(const std::string& path,
                                  std::uint64_t expected_model_hash) {
  const Timer timer;
  try {
    // Shared so the loaded matrix can borrow CSR arrays straight out of the
    // mapping (view_csr_trusted keeps the mapping alive past this function).
    const auto map_owner = std::make_shared<const Mapping>(path);
    const Mapping& map = *map_owner;
    if (map.size == 0) {
      fail(path, "empty file — a bound artifact is at least " +
                 std::to_string(kHeaderBytes + 8) + " bytes; rebuild it with "
                 "--bounds-out");
    }
    if (map.size < kHeaderBytes + 8) {
      fail(path, "truncated header (" + std::to_string(map.size) + " bytes, need "
                 "at least " + std::to_string(kHeaderBytes + 8) + ") — the file "
                 "was cut short; rebuild the artifact with --bounds-out");
    }
    Reader r{path, map.data, map.size};
    const std::uint64_t magic = r.u64("magic");
    if (magic != kMagic) {
      fail(path, "not a recoverd bound artifact (bad magic) — was this file "
                 "written by save_bound_artifact?");
    }
    const std::uint32_t version = r.u32("version");
    if (version != kBoundArtifactVersion) {
      fail(path, "unsupported version " + std::to_string(version) + " (this build "
                 "reads version " + std::to_string(kBoundArtifactVersion) +
                 ") — rebuild the artifact with this build");
    }
    const std::uint32_t reserved = r.u32("reserved");
    if (reserved != 0) {
      fail(path, "nonzero reserved field — the file is corrupted or from a "
                 "newer format");
    }
    const std::uint64_t payload_len = r.u64("payload length");
    if (map.size != kHeaderBytes + payload_len + 8) {
      fail(path, "length mismatch (header says " + std::to_string(payload_len) +
                 " payload bytes, file holds " +
                 std::to_string(map.size >= kHeaderBytes + 8
                                    ? map.size - kHeaderBytes - 8
                                    : 0) +
                 ") — the file was truncated or grew; rebuild the artifact");
    }
    const std::uint64_t computed_crc = util::crc64(map.data + 8, map.size - 16);
    std::uint64_t stored_crc;
    std::memcpy(&stored_crc, map.data + map.size - 8, 8);
    if (computed_crc != stored_crc) {
      fail(path, "checksum mismatch (CRC-64 of contents does not match the stored "
                 "value) — the file is corrupted (bit flip or partial overwrite); "
                 "rebuild the artifact with --bounds-out");
    }

    const std::uint64_t model_hash = r.u64("model hash");
    if (expected_model_hash != 0 && model_hash != expected_model_hash) {
      fail(path, "built for a different model (artifact model hash " +
                 std::to_string(model_hash) + ", this model hashes to " +
                 std::to_string(expected_model_hash) + ") — bounds are only "
                 "valid for the exact model they were solved on; rebuild with "
                 "--bounds-out");
    }
    const std::uint64_t n = r.u64("num states");
    const std::uint64_t num_actions = r.u64("num actions");
    if (n == 0 || num_actions == 0) {
      fail(path, "empty model dimensions — the file is corrupted");
    }

    // -- chain.q --
    const std::uint64_t q_cols = r.u64("matrix cols");
    const std::uint64_t q_rows = r.u64("matrix rows");
    const std::uint64_t q_nnz = r.u64("matrix nonzeros");
    if (q_cols != n || q_rows != n) {
      fail(path, "chain matrix is " + std::to_string(q_rows) + "×" +
                 std::to_string(q_cols) + " but the model has " + std::to_string(n) +
                 " states — the file is corrupted");
    }
    r.need_array(q_rows + 1, 8, "row offset");
    r.need((q_rows + 1) * 8, "row offsets");
    const std::size_t row_ptr_off = r.pos;
    r.pos += (q_rows + 1) * 8;
    r.need_array(q_nnz, sizeof(linalg::SparseEntry), "matrix entry");
    r.need(q_nnz * sizeof(linalg::SparseEntry), "matrix entries");
    const std::size_t entries_off = r.pos;
    r.pos += q_nnz * sizeof(linalg::SparseEntry);

    RandomActionChain chain;
    chain.num_actions = num_actions;
    // The CRC above covers both arrays bit-for-bit and the writer only ever
    // serializes matrices that passed from_csr, so the O(nnz) re-validation
    // is skipped and the matrix borrows the mapped bytes outright instead of
    // copying them (the payload layout 8-aligns both arrays: a page-aligned
    // mapping plus a 24-byte header and u64-only preceding fields). This is
    // most of what makes a warm start milliseconds — at 10^6 states the
    // entry array alone is ~235 MB that never gets memcpy'd. The copy branch
    // only triggers for the pread fallback if its buffer lands unaligned.
    const auto aligned8 = [&](std::size_t off) {
      return reinterpret_cast<std::uintptr_t>(map.data + off) % 8 == 0;
    };
    if (aligned8(row_ptr_off) && aligned8(entries_off)) {
      const auto* rp = reinterpret_cast<const std::size_t*>(map.data + row_ptr_off);
      const auto* es =
          reinterpret_cast<const linalg::SparseEntry*>(map.data + entries_off);
      if (rp[0] != 0 || rp[q_rows] != q_nnz) {
        fail(path, "row offsets do not span the entry array — the file is corrupted");
      }
      chain.q = linalg::SparseMatrix::view_csr_trusted(
          q_cols, {rp, q_rows + 1}, {es, q_nnz}, map_owner);
    } else {
      std::vector<std::size_t> row_ptr(q_rows + 1);
      std::memcpy(row_ptr.data(), map.data + row_ptr_off, (q_rows + 1) * 8);
      std::vector<linalg::SparseEntry> entries(q_nnz);
      std::memcpy(entries.data(), map.data + entries_off,
                  q_nnz * sizeof(linalg::SparseEntry));
      if (row_ptr.front() != 0 || row_ptr.back() != q_nnz) {
        fail(path, "row offsets do not span the entry array — the file is corrupted");
      }
      chain.q = linalg::SparseMatrix::from_csr_trusted(q_cols, std::move(row_ptr),
                                                       std::move(entries));
    }

    // -- chain.c --
    chain.c.resize(n);
    r.raw(chain.c.data(), n * 8, "reward vector");

    // -- solve plan --
    linalg::SolvePlan& plan = chain.plan;
    plan.num_components = r.u64("component count");
    plan.num_singletons = r.u64("singleton count");
    plan.largest_component = r.u64("largest component");
    if (plan.num_components == 0 || plan.num_components > n) {
      fail(path, "implausible component count " +
                 std::to_string(plan.num_components) + " for " + std::to_string(n) +
                 " states — the file is corrupted");
    }
    plan.component = r.u32_array(n, "component map");
    plan.members = r.u32_array(n, "component members");
    plan.component_ptr = r.u64_array(plan.num_components + 1, "component offsets");
    plan.level_of = r.u32_array(plan.num_components, "component levels");
    const std::uint64_t num_level_components = r.u64("level component count");
    plan.level_components = r.u32_array(num_level_components, "level components");
    const std::uint64_t num_level_ptr = r.u64("level offset count");
    if (num_level_ptr == 0) {
      fail(path, "empty level schedule — the file is corrupted");
    }
    plan.level_ptr = r.u64_array(num_level_ptr, "level offsets");

    // -- bound set --
    BoundSet::Snapshot snap;
    snap.dimension = r.u64("set dimension");
    if (snap.dimension != n) {
      fail(path, "bound set dimension " + std::to_string(snap.dimension) +
                 " does not match the " + std::to_string(n) + "-state chain — "
                 "the file is corrupted");
    }
    snap.capacity = r.u64("set capacity");
    snap.generation = r.u64("set generation");
    snap.first_added = r.u8("set first-added flag") != 0;
    r.pad8("set padding");
    const std::uint64_t num_planes = r.u64("plane count");
    r.need_array(num_planes, n * 8, "plane");
    snap.planes.resize(num_planes);
    for (std::uint64_t i = 0; i < num_planes; ++i) {
      snap.planes[i].is_protected = r.u8("plane protection flag") != 0;
    }
    r.pad8("plane flag padding");
    for (std::uint64_t i = 0; i < num_planes; ++i) {
      snap.planes[i].uses = r.u64("plane use count");
    }
    for (std::uint64_t i = 0; i < num_planes; ++i) {
      snap.planes[i].vector.resize(n);
      r.raw(snap.planes[i].vector.data(), n * 8, "plane coefficients");
    }

    if (r.pos != map.size - 8) {
      fail(path, "trailing bytes after payload — the file is corrupted");
    }

    BoundArtifact artifact(std::move(chain), BoundSet::restore(snap));
    artifact.model_hash = model_hash;
    artifact.content_hash = stored_crc;

    ArtifactInstruments& instruments = ArtifactInstruments::get();
    instruments.loads.add();
    instruments.bytes_read.add(map.size);
    instruments.load_ms.set(timer.elapsed_ms());
    return artifact;
  } catch (...) {
    ArtifactInstruments::get().load_rejects.add();
    throw;
  }
}

}  // namespace recoverd::bounds
