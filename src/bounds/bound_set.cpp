#include "bounds/bound_set.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/vector_ops.hpp"
#include "util/check.hpp"

namespace recoverd::bounds {

BoundSet::BoundSet(std::size_t dimension, std::size_t capacity)
    : dimension_(dimension), capacity_(capacity) {
  RD_EXPECTS(dimension > 0, "BoundSet: dimension must be positive");
}

BoundSet::AddResult BoundSet::add(BoundVector vector) {
  RD_EXPECTS(vector.size() == dimension_, "BoundSet::add: dimension mismatch");
  for (double v : vector) {
    RD_EXPECTS(std::isfinite(v), "BoundSet::add: entries must be finite");
  }

  // Dropped if an existing hyperplane already dominates it everywhere.
  for (const auto& entry : entries_) {
    if (linalg::dominates(entry.vector, vector)) return AddResult::Dominated;
  }
  // Prune existing hyperplanes the newcomer dominates (never the protected
  // base plane: by the check above the newcomer is not *strictly* needed to
  // keep it, but the base plane carries the standalone RA guarantee).
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& e) {
                                  return !e.is_protected &&
                                         linalg::dominates(vector, e.vector);
                                }),
                 entries_.end());

  if (capacity_ > 0 && entries_.size() >= capacity_) evict_least_used();

  Entry entry;
  entry.vector = std::move(vector);
  entry.is_protected = !first_added_;  // the first vector (RA-Bound) is protected
  first_added_ = true;
  entries_.push_back(std::move(entry));
  return AddResult::Added;
}

void BoundSet::protect(std::size_t index) {
  RD_EXPECTS(index < entries_.size(), "BoundSet::protect: index out of range");
  entries_[index].is_protected = true;
}

double BoundSet::evaluate(std::span<const double> belief) const {
  const std::size_t best = best_index(belief);
  ++entries_[best].uses;
  return linalg::dot(entries_[best].vector, belief);
}

std::size_t BoundSet::best_index(std::span<const double> belief) const {
  RD_EXPECTS(!entries_.empty(), "BoundSet: no vectors stored");
  RD_EXPECTS(belief.size() == dimension_, "BoundSet: belief dimension mismatch");
  std::size_t best = 0;
  double best_value = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const double v = linalg::dot(entries_[i].vector, belief);
    if (v > best_value) {
      best_value = v;
      best = i;
    }
  }
  return best;
}

const BoundVector& BoundSet::vector_at(std::size_t index) const {
  RD_EXPECTS(index < entries_.size(), "BoundSet::vector_at: index out of range");
  return entries_[index].vector;
}

std::size_t BoundSet::use_count(std::size_t index) const {
  RD_EXPECTS(index < entries_.size(), "BoundSet::use_count: index out of range");
  return entries_[index].uses;
}

void BoundSet::evict_least_used() {
  std::size_t victim = entries_.size();
  std::size_t fewest = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].is_protected) continue;
    if (entries_[i].uses < fewest) {
      fewest = entries_[i].uses;
      victim = i;
    }
  }
  RD_ENSURES(victim < entries_.size(),
             "BoundSet: capacity exhausted by protected vectors");
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
}

}  // namespace recoverd::bounds
