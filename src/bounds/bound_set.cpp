#include "bounds/bound_set.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "linalg/simd_kernels.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/simd.hpp"

namespace recoverd::bounds {

namespace {
// Set-churn instruments. `bounds.set.size` is a gauge tracking the
// hyperplane count of the most recently mutated set — in the common
// single-controller setup that is *the* |B| of Eq. 6.
struct SetInstruments {
  obs::Counter& added;
  obs::Counter& dominated;
  obs::Counter& pruned;
  obs::Counter& evicted;
  obs::Gauge& size;

  static SetInstruments& get() {
    static SetInstruments instruments{
        obs::metrics().counter("bounds.set.added"),
        obs::metrics().counter("bounds.set.dominated"),
        obs::metrics().counter("bounds.set.pruned"),
        obs::metrics().counter("bounds.set.evicted"),
        obs::metrics().gauge("bounds.set.size"),
    };
    return instruments;
  }
};

// Evaluate-kernel instruments (DESIGN.md §11). The scratch overloads tally
// locally and publish through flush_eval(); the scratch-free evaluate()
// bumps them directly (it already pays an atomic for the use counter).
struct EvalInstruments {
  obs::Counter& calls;
  obs::Counter& planes_skipped;
  obs::Counter& warm_start_hits;
  obs::Counter& batches;
  obs::Counter& flushes;

  static EvalInstruments& get() {
    static EvalInstruments instruments{
        obs::metrics().counter("bounds.eval.calls"),
        obs::metrics().counter("bounds.eval.planes_skipped"),
        obs::metrics().counter("bounds.eval.warm_start_hits"),
        obs::metrics().counter("bounds.eval.batches"),
        obs::metrics().counter("bounds.eval.flushes"),
    };
    return instruments;
  }
};
}  // namespace

BoundSet::BoundSet(std::size_t dimension, std::size_t capacity)
    : dimension_(dimension), capacity_(capacity) {
  RD_EXPECTS(dimension > 0, "BoundSet: dimension must be positive");
}

BoundSet::Entry BoundSet::make_entry(BoundVector vector) const {
  Entry entry;
  double max_coef = -std::numeric_limits<double>::infinity();
  double max_abs = 0.0;
  for (double v : vector) {
    max_coef = std::max(max_coef, v);
    max_abs = std::max(max_abs, std::abs(v));
  }
  // Rigorous skip bound for the pruned scan. For a belief π with π(s) ≥ 0
  // and Σπ = S, the true dot obeys ⟨b, π⟩ ≤ max_coef · S (regardless of the
  // sign of max_coef, since each term π(s)·b(s) ≤ π(s)·max_coef). The
  // *floating-point* dot and the floating-point S each deviate from their
  // exact values by at most ~n·2⁻⁵³ relative to max_abs·S, so inflating the
  // key by n·2⁻⁴⁵·max_abs — a 256× safety factor over the worst-case
  // accumulation error — guarantees fl⟨b, π⟩ ≤ prune_key · fl(S). A plane
  // with prune_key·S strictly below the running max therefore cannot win
  // *or tie*: skipping it changes neither the value nor the winning index,
  // while costing only ~3·10⁻¹⁴·n relative pruning slack (DESIGN.md §11).
  const double margin =
      max_abs * static_cast<double>(dimension_) * 0x1p-45;
  entry.prune_key = max_coef + margin;
  entry.vector = std::move(vector);
  return entry;
}

BoundSet::AddResult BoundSet::add(BoundVector vector) {
  RD_EXPECTS(vector.size() == dimension_, "BoundSet::add: dimension mismatch");
  for (double v : vector) {
    RD_EXPECTS(std::isfinite(v), "BoundSet::add: entries must be finite");
  }

  // Dropped if an existing hyperplane already dominates it everywhere.
  for (const auto& entry : entries_) {
    if (linalg::dominates(entry.vector, vector)) {
      SetInstruments::get().dominated.add();
      return AddResult::Dominated;
    }
  }
  // Prune existing hyperplanes the newcomer dominates (never the protected
  // base plane: by the check above the newcomer is not *strictly* needed to
  // keep it, but the base plane carries the standalone RA guarantee).
  const std::size_t before = entries_.size();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& e) {
                                  return !e.is_protected &&
                                         linalg::dominates(vector, e.vector);
                                }),
                 entries_.end());
  if (before > entries_.size()) SetInstruments::get().pruned.add(before - entries_.size());

  if (capacity_ > 0 && entries_.size() >= capacity_) evict_least_used();

  Entry entry = make_entry(std::move(vector));
  entry.is_protected = !first_added_;  // the first vector (RA-Bound) is protected
  first_added_ = true;
  entries_.push_back(std::move(entry));
  ++generation_;  // covers the insert plus any prune/evict above
  SetInstruments::get().added.add();
  SetInstruments::get().size.set(static_cast<double>(entries_.size()));
  return AddResult::Added;
}

void BoundSet::protect(std::size_t index) {
  RD_EXPECTS(index < entries_.size(), "BoundSet::protect: index out of range");
  entries_[index].is_protected = true;
}

bool BoundSet::is_protected(std::size_t index) const {
  RD_EXPECTS(index < entries_.size(), "BoundSet::is_protected: index out of range");
  return entries_[index].is_protected;
}

void BoundSet::remove(std::size_t index) {
  RD_EXPECTS(index < entries_.size(), "BoundSet::remove: index out of range");
  RD_EXPECTS(!entries_[index].is_protected,
             "BoundSet::remove: cannot remove a protected vector");
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(index));
  ++generation_;
  SetInstruments::get().evicted.add();
  SetInstruments::get().size.set(static_cast<double>(entries_.size()));
}

double BoundSet::scan(std::span<const double> belief, std::size_t warm,
                      std::size_t* winner, EvalScratch* scratch) const {
  RD_EXPECTS(!entries_.empty(), "BoundSet: no vectors stored");
  RD_EXPECTS(belief.size() == dimension_, "BoundSet: belief dimension mismatch");
  const std::size_t n = entries_.size();

  // Σπ makes the skip bound independent of how well the caller normalised:
  // the prune key scales with the actual mass, so the scan is exact for any
  // non-negative belief (sum ≈ 1 on the engine path). It is computed lazily
  // at the first prune check so single-plane sets — where nothing can ever
  // be skipped — pay one dot per call, not two passes.
  double belief_sum = -1.0;

  double best_value = -std::numeric_limits<double>::infinity();
  std::size_t best = n;
  if (warm < n) {
    best_value = linalg::dot(entries_[warm].vector, belief);
    best = warm;
  }
  std::uint64_t skipped = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == warm) continue;
    const Entry& e = entries_[i];
    if (belief_sum < 0.0 && best != n) {
      belief_sum = 0.0;
      for (double v : belief) belief_sum += v;
    }
    if (best != n && e.prune_key * belief_sum < best_value) {
      ++skipped;
      continue;
    }
    const double v = linalg::dot(e.vector, belief);
    // `v == best_value && i < best` reproduces the naive ascending scan's
    // tie-break (lowest index attaining the max) when the warm start seeded
    // the running max from a higher index.
    if (v > best_value || (v == best_value && i < best)) {
      best_value = v;
      best = i;
    }
  }
  if (scratch != nullptr) {
    scratch->planes_skipped += skipped;
    if (warm < n && best == warm) ++scratch->warm_start_hits;
  }
  *winner = best;
  return best_value;
}

double BoundSet::evaluate(std::span<const double> belief) const {
  std::size_t best = 0;
  EvalScratch tally;  // local: publish the scan's skip count immediately
  const double value = scan(belief, EvalScratch::kNone, &best, &tally);
  EvalInstruments& instruments = EvalInstruments::get();
  instruments.calls.add();
  if (tally.planes_skipped > 0) instruments.planes_skipped.add(tally.planes_skipped);
  // Concurrent evaluations happen during the expansion engine's root
  // fan-out; the use-count bump is the only write, made atomic so the race
  // is benign. (Mutations — add/protect — still require exclusive access.)
  std::atomic_ref<std::size_t>(entries_[best].uses)
      .fetch_add(1, std::memory_order_relaxed);
  return value;
}

void BoundSet::begin_eval(EvalScratch& scratch) const {
  scratch.wins.assign(entries_.size(), 0);
  if (scratch.warm >= entries_.size()) scratch.warm = EvalScratch::kNone;
  scratch.evaluations = 0;
  scratch.planes_skipped = 0;
  scratch.warm_start_hits = 0;
  scratch.batch_calls = 0;
}

double BoundSet::evaluate(std::span<const double> belief, EvalScratch& scratch) const {
  RD_EXPECTS(scratch.wins.size() == entries_.size(),
             "BoundSet::evaluate: scratch not sized for this set (call begin_eval)");
  std::size_t best = 0;
  const double value = scan(belief, scratch.warm, &best, &scratch);
  ++scratch.wins[best];
  ++scratch.evaluations;
  scratch.warm = best;
  return value;
}

std::size_t BoundSet::evaluate_batch_simd(const double* beliefs, std::size_t count,
                                          double* out, EvalScratch& scratch) const {
#if RECOVERD_SIMD_KERNELS_X86
  if (simd::active_mode() == simd::Mode::Avx512) {
    // 8-row tiles through dot8: same full ascending scan as the 4-row AVX2
    // path below, two lanes wider. Lane arithmetic and the strict `>`
    // winner rule are unchanged, so values and win tallies stay bitwise
    // equal to the scalar scan.
    const std::size_t groups = count / 8;
    if (groups == 0) return 0;
    RD_EXPECTS(!entries_.empty(), "BoundSet: no vectors stored");
    RD_EXPECTS(scratch.wins.size() == entries_.size(),
               "BoundSet::evaluate_batch: scratch not sized for this set");
    const std::size_t n = entries_.size();
    scratch.tile.resize(8 * dimension_);
    double* tile = scratch.tile.data();
    for (std::size_t g = 0; g < groups; ++g) {
      const double* base = beliefs + 8 * g * dimension_;
      const double* rows[8];
      for (std::size_t l = 0; l < 8; ++l) rows[l] = base + l * dimension_;
      linalg::simd::transpose8(rows, dimension_, tile);
      double best[8];
      std::size_t win[8];
      for (std::size_t l = 0; l < 8; ++l) {
        best[l] = -std::numeric_limits<double>::infinity();
        win[l] = n;
      }
      for (std::size_t i = 0; i < n; ++i) {
        double vals[8];
        linalg::simd::dot8(entries_[i].vector.data(), tile, dimension_, vals);
        for (std::size_t l = 0; l < 8; ++l) {
          if (vals[l] > best[l]) {
            best[l] = vals[l];
            win[l] = i;
          }
        }
      }
      for (std::size_t l = 0; l < 8; ++l) {
        out[8 * g + l] = best[l];
        ++scratch.wins[win[l]];
        ++scratch.evaluations;
        if (win[l] == scratch.warm) ++scratch.warm_start_hits;
        scratch.warm = win[l];
      }
    }
    return groups * 8;
  }
  if (simd::active_mode() != simd::Mode::Avx2) return 0;
  const std::size_t groups = count / 4;
  if (groups == 0) return 0;
  RD_EXPECTS(!entries_.empty(), "BoundSet: no vectors stored");
  RD_EXPECTS(scratch.wins.size() == entries_.size(),
             "BoundSet::evaluate_batch: scratch not sized for this set");
  const std::size_t n = entries_.size();
  scratch.tile.resize(4 * dimension_);
  double* tile = scratch.tile.data();
  for (std::size_t g = 0; g < groups; ++g) {
    const double* rows = beliefs + 4 * g * dimension_;
    linalg::simd::transpose4(rows, rows + dimension_, rows + 2 * dimension_,
                             rows + 3 * dimension_, dimension_, tile);
    // Full ascending scan, four beliefs per pass. Each lane's dot is term-
    // for-term linalg::dot, and a strict `>` keeps the lowest index on
    // ties — exactly the pruned scalar scan's value and winner (the prune
    // key and warm start never change either; see scan()).
    double best[4] = {-std::numeric_limits<double>::infinity(),
                      -std::numeric_limits<double>::infinity(),
                      -std::numeric_limits<double>::infinity(),
                      -std::numeric_limits<double>::infinity()};
    std::size_t win[4] = {n, n, n, n};
    for (std::size_t i = 0; i < n; ++i) {
      double vals[4];
      linalg::simd::dot4(entries_[i].vector.data(), tile, dimension_, vals);
      for (std::size_t l = 0; l < 4; ++l) {
        if (vals[l] > best[l]) {
          best[l] = vals[l];
          win[l] = i;
        }
      }
    }
    for (std::size_t l = 0; l < 4; ++l) {
      out[4 * g + l] = best[l];
      ++scratch.wins[win[l]];
      ++scratch.evaluations;
      if (win[l] == scratch.warm) ++scratch.warm_start_hits;
      scratch.warm = win[l];
    }
  }
  return groups * 4;
#else
  (void)beliefs;
  (void)count;
  (void)out;
  (void)scratch;
  return 0;
#endif
}

void BoundSet::evaluate_batch(const double* beliefs, std::size_t count,
                              std::span<double> out, EvalScratch& scratch) const {
  RD_EXPECTS(out.size() >= count, "BoundSet::evaluate_batch: output too small");
  obs::TraceSpan span("bound_set.evaluate_batch", obs::TraceLevel::Full);
  span.arg("count", static_cast<double>(count));
  span.arg("planes", static_cast<double>(entries_.size()));
  ++scratch.batch_calls;
  const std::size_t done = evaluate_batch_simd(beliefs, count, out.data(), scratch);
  for (std::size_t i = done; i < count; ++i) {
    out[i] = evaluate({beliefs + i * dimension_, dimension_}, scratch);
  }
}

void BoundSet::flush_eval(EvalScratch& scratch) const {
  RD_EXPECTS(scratch.wins.size() <= entries_.size(),
             "BoundSet::flush_eval: set shrank since begin_eval");
  // Ascending index order, one add per entry: deterministic counts for any
  // mix of slots/workers, and |B| atomics per decide instead of one per leaf.
  for (std::size_t i = 0; i < scratch.wins.size(); ++i) {
    if (scratch.wins[i] == 0) continue;
    std::atomic_ref<std::size_t>(entries_[i].uses)
        .fetch_add(scratch.wins[i], std::memory_order_relaxed);
    scratch.wins[i] = 0;
  }
  EvalInstruments& instruments = EvalInstruments::get();
  if (scratch.evaluations > 0) instruments.calls.add(scratch.evaluations);
  if (scratch.planes_skipped > 0) instruments.planes_skipped.add(scratch.planes_skipped);
  if (scratch.warm_start_hits > 0) {
    instruments.warm_start_hits.add(scratch.warm_start_hits);
  }
  if (scratch.batch_calls > 0) instruments.batches.add(scratch.batch_calls);
  instruments.flushes.add();
  scratch.evaluations = 0;
  scratch.planes_skipped = 0;
  scratch.warm_start_hits = 0;
  scratch.batch_calls = 0;
}

std::size_t BoundSet::best_index(std::span<const double> belief) const {
  std::size_t best = 0;
  (void)scan(belief, EvalScratch::kNone, &best, nullptr);
  return best;
}

const BoundVector& BoundSet::vector_at(std::size_t index) const {
  RD_EXPECTS(index < entries_.size(), "BoundSet::vector_at: index out of range");
  return entries_[index].vector;
}

std::size_t BoundSet::use_count(std::size_t index) const {
  RD_EXPECTS(index < entries_.size(), "BoundSet::use_count: index out of range");
  return entries_[index].uses;
}

BoundSet::Snapshot BoundSet::snapshot() const {
  Snapshot snap;
  snap.dimension = dimension_;
  snap.capacity = capacity_;
  snap.generation = generation_;
  snap.first_added = first_added_;
  snap.planes.reserve(entries_.size());
  for (const Entry& e : entries_) {
    Snapshot::Plane plane;
    plane.vector = e.vector;
    plane.is_protected = e.is_protected;
    plane.uses = static_cast<std::uint64_t>(e.uses);
    snap.planes.push_back(std::move(plane));
  }
  return snap;
}

BoundSet BoundSet::restore(const Snapshot& snapshot) {
  BoundSet set(snapshot.dimension, snapshot.capacity);
  set.generation_ = snapshot.generation;
  set.first_added_ = snapshot.first_added;
  set.entries_.reserve(snapshot.planes.size());
  for (const Snapshot::Plane& plane : snapshot.planes) {
    RD_EXPECTS(plane.vector.size() == snapshot.dimension,
               "BoundSet::restore: plane dimension mismatch");
    for (double v : plane.vector) {
      RD_EXPECTS(std::isfinite(v), "BoundSet::restore: entries must be finite");
    }
    Entry entry = set.make_entry(plane.vector);
    entry.is_protected = plane.is_protected;
    entry.uses = static_cast<std::size_t>(plane.uses);
    set.entries_.push_back(std::move(entry));
  }
  return set;
}

void BoundSet::evict_least_used() {
  std::size_t victim = entries_.size();
  std::size_t fewest = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].is_protected) continue;
    if (entries_[i].uses < fewest) {
      fewest = entries_[i].uses;
      victim = i;
    }
  }
  RD_ENSURES(victim < entries_.size(),
             "BoundSet: capacity exhausted by protected vectors");
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
  SetInstruments::get().evicted.add();
}

}  // namespace recoverd::bounds
