#include "bounds/bound_set.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace recoverd::bounds {

namespace {
// Set-churn instruments. `bounds.set.size` is a gauge tracking the
// hyperplane count of the most recently mutated set — in the common
// single-controller setup that is *the* |B| of Eq. 6.
struct SetInstruments {
  obs::Counter& added;
  obs::Counter& dominated;
  obs::Counter& pruned;
  obs::Counter& evicted;
  obs::Gauge& size;

  static SetInstruments& get() {
    static SetInstruments instruments{
        obs::metrics().counter("bounds.set.added"),
        obs::metrics().counter("bounds.set.dominated"),
        obs::metrics().counter("bounds.set.pruned"),
        obs::metrics().counter("bounds.set.evicted"),
        obs::metrics().gauge("bounds.set.size"),
    };
    return instruments;
  }
};
}  // namespace

BoundSet::BoundSet(std::size_t dimension, std::size_t capacity)
    : dimension_(dimension), capacity_(capacity) {
  RD_EXPECTS(dimension > 0, "BoundSet: dimension must be positive");
}

BoundSet::AddResult BoundSet::add(BoundVector vector) {
  RD_EXPECTS(vector.size() == dimension_, "BoundSet::add: dimension mismatch");
  for (double v : vector) {
    RD_EXPECTS(std::isfinite(v), "BoundSet::add: entries must be finite");
  }

  // Dropped if an existing hyperplane already dominates it everywhere.
  for (const auto& entry : entries_) {
    if (linalg::dominates(entry.vector, vector)) {
      SetInstruments::get().dominated.add();
      return AddResult::Dominated;
    }
  }
  // Prune existing hyperplanes the newcomer dominates (never the protected
  // base plane: by the check above the newcomer is not *strictly* needed to
  // keep it, but the base plane carries the standalone RA guarantee).
  const std::size_t before = entries_.size();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& e) {
                                  return !e.is_protected &&
                                         linalg::dominates(vector, e.vector);
                                }),
                 entries_.end());
  if (before > entries_.size()) SetInstruments::get().pruned.add(before - entries_.size());

  if (capacity_ > 0 && entries_.size() >= capacity_) evict_least_used();

  Entry entry;
  entry.vector = std::move(vector);
  entry.is_protected = !first_added_;  // the first vector (RA-Bound) is protected
  first_added_ = true;
  entries_.push_back(std::move(entry));
  SetInstruments::get().added.add();
  SetInstruments::get().size.set(static_cast<double>(entries_.size()));
  return AddResult::Added;
}

void BoundSet::protect(std::size_t index) {
  RD_EXPECTS(index < entries_.size(), "BoundSet::protect: index out of range");
  entries_[index].is_protected = true;
}

bool BoundSet::is_protected(std::size_t index) const {
  RD_EXPECTS(index < entries_.size(), "BoundSet::is_protected: index out of range");
  return entries_[index].is_protected;
}

void BoundSet::remove(std::size_t index) {
  RD_EXPECTS(index < entries_.size(), "BoundSet::remove: index out of range");
  RD_EXPECTS(!entries_[index].is_protected,
             "BoundSet::remove: cannot remove a protected vector");
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(index));
  SetInstruments::get().evicted.add();
  SetInstruments::get().size.set(static_cast<double>(entries_.size()));
}

double BoundSet::evaluate(std::span<const double> belief) const {
  const std::size_t best = best_index(belief);
  // Concurrent evaluations happen during the expansion engine's root
  // fan-out; the use-count bump is the only write, made atomic so the race
  // is benign. (Mutations — add/protect — still require exclusive access.)
  std::atomic_ref<std::size_t>(entries_[best].uses)
      .fetch_add(1, std::memory_order_relaxed);
  return linalg::dot(entries_[best].vector, belief);
}

std::size_t BoundSet::best_index(std::span<const double> belief) const {
  RD_EXPECTS(!entries_.empty(), "BoundSet: no vectors stored");
  RD_EXPECTS(belief.size() == dimension_, "BoundSet: belief dimension mismatch");
  std::size_t best = 0;
  double best_value = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const double v = linalg::dot(entries_[i].vector, belief);
    if (v > best_value) {
      best_value = v;
      best = i;
    }
  }
  return best;
}

const BoundVector& BoundSet::vector_at(std::size_t index) const {
  RD_EXPECTS(index < entries_.size(), "BoundSet::vector_at: index out of range");
  return entries_[index].vector;
}

std::size_t BoundSet::use_count(std::size_t index) const {
  RD_EXPECTS(index < entries_.size(), "BoundSet::use_count: index out of range");
  return entries_[index].uses;
}

void BoundSet::evict_least_used() {
  std::size_t victim = entries_.size();
  std::size_t fewest = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].is_protected) continue;
    if (entries_[i].uses < fewest) {
      fewest = entries_[i].uses;
      victim = i;
    }
  }
  RD_ENSURES(victim < entries_.size(),
             "BoundSet: capacity exhausted by protected vectors");
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
  SetInstruments::get().evicted.add();
}

}  // namespace recoverd::bounds
