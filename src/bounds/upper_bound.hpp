// Upper bounds on the POMDP value (the paper's §6 future-work extension,
// implemented here to report bound gaps in Fig. 5-style output):
//
//  - the trivial bound 0 (Condition 2 makes all accumulated reward ≤ 0);
//    the paper's Fig. 5(a) x-axis note uses exactly this;
//  - the QMDP / full-observability bound: V*_p(π) ≤ Σ_s π(s)·V_m(s), where
//    V_m solves the underlying MDP (more information can only help).
#pragma once

#include "bounds/bound_set.hpp"
#include "linalg/gauss_seidel.hpp"
#include "pomdp/mdp.hpp"
#include "pomdp/value_iteration.hpp"

namespace recoverd::bounds {

struct QmdpBoundResult {
  linalg::SolveStatus status = linalg::SolveStatus::MaxIterations;
  BoundVector values;  ///< V_m(s) (meaningful when converged)

  bool converged() const { return status == linalg::SolveStatus::Converged; }

  /// Σ_s π(s)·V_m(s). Precondition: converged().
  double evaluate(std::span<const double> belief) const;
};

/// Solves the fully observable MDP (max value iteration).
QmdpBoundResult compute_qmdp_bound(const Mdp& mdp,
                                   const ValueIterationOptions& options = {});

/// The trivial upper bound of Condition 2 models.
inline double trivial_upper_bound() { return 0.0; }

}  // namespace recoverd::bounds
