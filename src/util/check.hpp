// Checked-precondition and invariant support for the recoverd library.
//
// The library follows the Core Guidelines I.5/I.6 style: public entry points
// state their preconditions with RD_EXPECTS, which throws (rather than
// aborting) so that callers embedding the controller in a long-running
// process can contain a misconfigured model.
#pragma once

#include <stdexcept>
#include <string>

namespace recoverd {

/// Error thrown when a caller violates a documented precondition.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Error thrown when an internal invariant fails (a library bug or numeric
/// breakdown, e.g. a divergent linear solve).
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Error thrown when a model fails validation (non-stochastic rows,
/// violated recovery-model conditions, ...).
class ModelError : public std::runtime_error {
 public:
  explicit ModelError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_precondition(const char* expr, const char* file, int line,
                                     const std::string& msg);
[[noreturn]] void throw_invariant(const char* expr, const char* file, int line,
                                  const std::string& msg);
}  // namespace detail

}  // namespace recoverd

/// Precondition check: throws recoverd::PreconditionError when `expr` is false.
#define RD_EXPECTS(expr, msg)                                                  \
  do {                                                                         \
    if (!(expr)) {                                                             \
      ::recoverd::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                           \
  } while (false)

/// Invariant check: throws recoverd::InvariantError when `expr` is false.
#define RD_ENSURES(expr, msg)                                                \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::recoverd::detail::throw_invariant(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                         \
  } while (false)
