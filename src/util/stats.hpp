// Streaming summary statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace recoverd {

/// Welford-style streaming accumulator: numerically stable mean/variance
/// plus min/max, without storing the samples.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Merges another accumulator (parallel-reduction friendly).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

  /// Half-width of the normal-approximation 95% confidence interval of the
  /// mean; 0 when fewer than two samples.
  double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp into the
/// edge bins. Used for per-fault metric distributions in EXPERIMENTS.md.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const;
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

  /// Approximate quantile (q in [0,1]) from bin midpoints.
  double quantile(double q) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace recoverd
