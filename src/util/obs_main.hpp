// The shared main() harness of the bench/example binaries.
//
// Every binary used to repeat the same boilerplate: collect its flag list,
// append the observability flags, require_known(), init_observability(),
// run, finish_observability(). run_obs_main() centralises that sequence —
// and adds the `--simd` kernel-selection flag (util/simd.hpp) and the
// `--pool-jobs` work-pool thread cap (util/work_pool.hpp), each with a
// one-line startup log — so a binary's main() is three lines:
//
//   int main(int argc, char** argv) {
//     return recoverd::run_obs_main(argc, argv, {"faults", "seed"},
//                                   [](const recoverd::CliArgs& args) {
//                                     return recoverd::bench::run(args);
//                                   });
//   }
//
// Header-only on purpose: recoverd_util cannot link recoverd_obs (obs sits
// above util in the layer graph), but a binary including this header links
// both already.
#pragma once

#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/shutdown.hpp"
#include "util/simd.hpp"
#include "util/work_pool.hpp"

namespace recoverd {

/// Parses flags, applies the shared observability + SIMD plumbing, and runs
/// `body`:
///   1. rejects flags outside `known` + the obs flags + `simd`/`pool-jobs`,
///   2. installs the SIGINT/SIGTERM shutdown-flag handlers (util/shutdown.hpp)
///      so an interrupted run still reaches step 5 and keeps its artifacts —
///      long-running bodies poll shutdown_requested() and wind down; a second
///      signal falls back to the default (terminating) disposition,
///   3. simd::configure(--simd) with a startup log line (stderr, Info) and
///      WorkPool::configure_threads(--pool-jobs) when the cap is passed
///      (thread caps never change results — every pool site is
///      worker-count invariant — so the flag is a pure resource knob),
///   4. obs::init_observability (--trace-out/--trace-level/--provenance-out),
///   5. exit code = body(args), 130 when the body returned because of a
///      shutdown signal,
///   6. obs::finish_observability (--metrics-out + trace/provenance drain).
/// Configuration errors (unknown flag, bad --simd, unwritable sink) print
/// one actionable line to stderr and return 2 instead of crashing.
template <typename Body>
int run_obs_main(int argc, const char* const* argv, std::vector<std::string> known,
                 const Body& body) {
  const CliArgs args(argc, argv);
  int code = 2;
  bool initialized = false;
  try {
    known.emplace_back("simd");
    known.emplace_back("pool-jobs");
    const std::vector<std::string> obs_flags = obs::obs_flag_names();
    known.insert(known.end(), obs_flags.begin(), obs_flags.end());
    args.require_known(known);

    install_shutdown_handlers();
    simd::configure(args.get_simd());
    log_info("simd kernels: ", simd::describe_active_mode());
    if (const std::size_t pool_jobs = args.get_pool_jobs(); pool_jobs != 0) {
      util::WorkPool::instance().configure_threads(pool_jobs);
      log_info("work pool capped at ", pool_jobs, " thread(s)");
    }

    obs::init_observability(args);
    initialized = true;
    code = body(args);
    if (shutdown_requested()) {
      log_warn("shutdown signal received — run ended early, flushing artifacts");
      code = 130;
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    code = 2;
  }
  if (initialized) {
    try {
      obs::finish_observability(args);
    } catch (const std::exception& error) {
      std::cerr << "error: " << error.what() << "\n";
      code = 2;
    }
  }
  return code;
}

}  // namespace recoverd
