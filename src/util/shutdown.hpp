// Signal-safe cooperative shutdown for the long-running binaries.
//
// A SIGINT/SIGTERM used to take the default disposition and kill a campaign
// mid-run, losing every artifact the run had accumulated (--metrics-out,
// --trace-out, --provenance-out, the fleet checkpoint). The shared harness
// (util/obs_main.hpp) now installs a handler whose only action is to set a
// process-wide atomic flag; long-running loops poll shutdown_requested()
// and wind down normally, so the harness epilogue still flushes every
// artifact. A *second* signal restores the default disposition, so a hung
// loop can still be killed with a repeated Ctrl-C.
//
// The handler itself is async-signal-safe (one relaxed atomic store plus a
// sigaction() re-arm); everything observable happens on the polling thread.
#pragma once

namespace recoverd {

/// Installs the SIGINT/SIGTERM flag handlers. Idempotent; safe to call from
/// every binary's startup path. First delivery of either signal sets the
/// shutdown flag; the next delivery of the same signal takes the default
/// (terminating) disposition.
void install_shutdown_handlers();

/// True once a shutdown signal arrived (or request_shutdown() was called).
/// Long-running loops should poll this between units of work and exit
/// cleanly, letting the caller flush artifacts.
bool shutdown_requested();

/// Programmatic trigger with the same effect as a first SIGINT/SIGTERM
/// (used by tests and by deadline-style wrappers).
void request_shutdown();

/// Clears the flag (tests only — a real shutdown request should stay latched
/// through the wind-down path).
void reset_shutdown_for_tests();

}  // namespace recoverd
