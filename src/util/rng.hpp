// Deterministic random number generation for simulations and bootstrapping.
//
// The library does not use std::mt19937 directly in its public surface so
// that experiment reproducibility is independent of standard-library
// distribution implementations: all sampling primitives used by the
// simulator (Bernoulli, discrete, uniform) are implemented here with fully
// specified semantics.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace recoverd {

/// xoshiro256++ generator (Blackman & Vigna). Fast, 256-bit state, suitable
/// for the millions of Bernoulli draws a 10,000-fault experiment performs.
/// Seeded through SplitMix64 so that nearby integer seeds give independent
/// streams.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed (expanded via SplitMix64).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// UniformRandomBitGenerator interface (usable with <random> if desired).
  std::uint64_t operator()() { return next_u64(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0. Uses rejection to avoid
  /// modulo bias.
  std::size_t uniform_index(std::size_t n);

  /// Bernoulli draw with success probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Samples an index proportionally to the (non-negative) weights.
  /// Precondition: weights non-empty with a strictly positive sum.
  std::size_t discrete(std::span<const double> weights);

  /// Creates a child generator with an independent stream; used to give each
  /// experiment replication its own deterministic stream.
  Rng split();

  /// The raw 256-bit generator state, for checkpointing. A generator
  /// restored via set_state() replays the exact draw sequence the original
  /// would have produced from this point on.
  std::array<std::uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }

  /// Restores a state captured with state(). Precondition: not all zero
  /// (the all-zero state is a fixed point of xoshiro256++).
  void set_state(const std::array<std::uint64_t, 4>& state);

 private:
  std::uint64_t s_[4];
};

/// Walker alias table for O(1) repeated sampling from a fixed discrete
/// distribution (used by the fault injector and the path-routing sampler).
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table from non-negative weights with a positive sum.
  explicit AliasTable(std::span<const double> weights);

  /// Number of outcomes (0 when default-constructed).
  std::size_t size() const { return prob_.size(); }

  /// Draws one outcome index.
  std::size_t sample(Rng& rng) const;

  /// Normalised probability of outcome i (for inspection/tests).
  double probability(std::size_t i) const;

 private:
  std::vector<double> prob_;        // threshold within each bucket
  std::vector<std::size_t> alias_;  // alternative outcome of each bucket
  std::vector<double> norm_;        // normalised input weights
};

}  // namespace recoverd
