#include "util/simd.hpp"

#include <atomic>

#include "util/check.hpp"

// The kernels themselves live in linalg/simd_kernels.hpp behind function-
// level `target("avx2")` / `target("avx512f")` attributes, so the build
// needs no global -mavx2/-mavx512f — this detection gate is what keeps
// them off unsupported hardware.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RECOVERD_SIMD_X86 1
#else
#define RECOVERD_SIMD_X86 0
#endif

namespace recoverd::simd {

namespace {
Mode auto_mode() {
  if (cpu_supports_avx512()) return Mode::Avx512;
  if (cpu_supports_avx2()) return Mode::Avx2;
  return Mode::Scalar;
}

// Mode plus provenance ("auto" vs "forced") for the startup log. Relaxed
// atomics: configure() runs once at startup before any kernel dispatch;
// later reads only need to see *a* consistent value.
std::atomic<Mode> g_mode{auto_mode()};
std::atomic<bool> g_forced{false};
}  // namespace

bool compiled_with_avx2() { return RECOVERD_SIMD_X86 != 0; }

bool compiled_with_avx512() { return RECOVERD_SIMD_X86 != 0; }

bool cpu_supports_avx2() {
#if RECOVERD_SIMD_X86
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
#else
  return false;
#endif
}

bool cpu_supports_avx512() {
#if RECOVERD_SIMD_X86
  static const bool supported = __builtin_cpu_supports("avx512f");
  return supported;
#else
  return false;
#endif
}

Mode active_mode() { return g_mode.load(std::memory_order_relaxed); }

void configure(const std::string& flag) {
  if (flag == "auto") {
    g_mode.store(auto_mode(), std::memory_order_relaxed);
    g_forced.store(false, std::memory_order_relaxed);
    return;
  }
  if (flag == "scalar") {
    g_mode.store(Mode::Scalar, std::memory_order_relaxed);
    g_forced.store(true, std::memory_order_relaxed);
    return;
  }
  if (flag == "avx2") {
    RD_EXPECTS(compiled_with_avx2(),
               "--simd=avx2: this build has no AVX2 kernels (non-x86-64 target); "
               "use --simd=auto or --simd=scalar");
    RD_EXPECTS(cpu_supports_avx2(),
               "--simd=avx2: this CPU does not support AVX2; "
               "use --simd=auto or --simd=scalar");
    g_mode.store(Mode::Avx2, std::memory_order_relaxed);
    g_forced.store(true, std::memory_order_relaxed);
    return;
  }
  if (flag == "avx512") {
    RD_EXPECTS(compiled_with_avx512(),
               "--simd=avx512: this build has no AVX-512 kernels (non-x86-64 "
               "target); use --simd=auto or --simd=scalar");
    RD_EXPECTS(cpu_supports_avx512(),
               "--simd=avx512: this CPU does not support AVX-512F; "
               "use --simd=auto, --simd=avx2 or --simd=scalar");
    g_mode.store(Mode::Avx512, std::memory_order_relaxed);
    g_forced.store(true, std::memory_order_relaxed);
    return;
  }
  RD_EXPECTS(false, "--simd: unknown value '" + flag +
                        "' (expected auto, avx512, avx2, scalar)");
}

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::Avx512: return "avx512";
    case Mode::Avx2: return "avx2";
    case Mode::Scalar: break;
  }
  return "scalar";
}

std::string describe_active_mode() {
  std::string out = mode_name(active_mode());
  out += g_forced.load(std::memory_order_relaxed) ? " (forced)" : " (auto)";
  return out;
}

}  // namespace recoverd::simd
