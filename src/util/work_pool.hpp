// Persistent, epoch-barriered work pool — the one thread team every
// parallel site in the repo shares.
//
// Before PR 10 each parallel region (`expansion.cpp` root fan-out, the
// RA-Bound CSR assembly, both SCC-solver sites, the experiment episode
// runner) constructed a `std::vector<std::thread>` per call and joined it
// before returning; the SCC solver even respawned its team once per
// condensation level. `WorkPool` replaces all five sites with a single
// process-wide team of persistent threads:
//
//  - `run(tasks, fn)` executes `fn(t)` for every index `t in [0, tasks)`
//    exactly once and returns only after all of them finished (an epoch
//    barrier, exactly like the join the call sites used to do). The caller
//    participates in the work itself, so `run(1, fn)` never touches a
//    thread and `run(n, fn)` needs at most `n - 1` pool threads.
//  - Task indices are claimed from an atomic cursor. Which *thread* runs
//    which index is scheduling-dependent, which is why every call site
//    keeps its pre-existing determinism discipline: tasks write disjoint
//    slices (or claim work through their own atomic cursor into
//    index-addressed slots) and the *caller* performs every floating-point
//    reduction in fixed index order after `run()` returns. The pool adds
//    no reduction of its own, so the bitwise contracts (`--jobs`,
//    `root_jobs`, `--solver-jobs` invariance) are untouched.
//  - Threads are created lazily, kept for the lifetime of the process and
//    capped by `configure_threads()` (the `--pool-jobs` flag). Running
//    with fewer threads than tasks is always correct — the team just
//    claims more indices each — so the cap is a resource knob, not a
//    semantics knob.
//  - Nested submission runs inline: a task that itself calls `run()`
//    (e.g. an experiment episode whose controller fans out root actions)
//    executes the nested indices serially on its own thread instead of
//    deadlocking on the shared team. Serial execution of all indices is
//    bit-identical by the worker-count invariance above.
//
// util sits below obs in the layer graph, so the pool cannot publish
// metrics itself; it keeps relaxed atomic tallies exposed via `stats()`
// and the obs exporter mirrors them into `pool.*` gauges at snapshot time.
#pragma once

#include <cstddef>
#include <cstdint>

namespace recoverd::util {

class WorkPool {
 public:
  /// Cumulative pool tallies since process start (relaxed atomics; exact
  /// once the pool is quiescent, e.g. after any `run()` returned).
  struct Stats {
    std::uint64_t dispatches = 0;      ///< run() calls that engaged the team
    std::uint64_t tasks = 0;           ///< task indices executed via dispatches
    std::uint64_t inline_tasks = 0;    ///< indices run inline (1-task or nested)
    std::uint64_t spawns_avoided = 0;  ///< threads a spawn-per-call design would have created
    std::uint64_t threads_created = 0; ///< pool threads actually created (ever)
    std::uint64_t threads_live = 0;    ///< pool threads currently alive
  };

  /// The process-wide pool. Thread-safe; concurrent external submitters
  /// serialize (the call sites at most nest, which runs inline).
  static WorkPool& instance();

  /// Caps the number of pool threads at `cap` (>= 1 meaning "caller plus
  /// up to cap - 1 helpers"). Affects future growth only; threads already
  /// created stay. Values are validated by the `--pool-jobs` CLI parser.
  void configure_threads(std::size_t cap);
  std::size_t thread_cap() const;

  /// Runs `fn(t)` for every `t in [0, tasks)` and returns once all
  /// completed. `fn` may be called concurrently from pool threads and from
  /// the calling thread; exceptions escaping `fn` terminate (same contract
  /// the raw `std::thread` sites had).
  template <typename Fn>
  void run(std::size_t tasks, Fn&& fn) {
    run_impl(tasks, [](void* ctx, std::size_t t) { (*static_cast<Fn*>(ctx))(t); }, &fn);
  }

  Stats stats() const;

  ~WorkPool();
  WorkPool(const WorkPool&) = delete;
  WorkPool& operator=(const WorkPool&) = delete;

 private:
  WorkPool();
  using TaskFn = void (*)(void* ctx, std::size_t task);
  void run_impl(std::size_t tasks, TaskFn fn, void* ctx);

  struct Impl;
  Impl* impl_;
};

}  // namespace recoverd::util
