#include "util/crc64.hpp"

#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RECOVERD_CRC64_CLMUL 1
#include <immintrin.h>
#else
#define RECOVERD_CRC64_CLMUL 0
#endif

namespace recoverd::util {

namespace {

struct Crc64Tables {
  std::uint64_t t[16][256];
};

const Crc64Tables& crc64_tables() {
  static const Crc64Tables tables = [] {
    Crc64Tables out;
    const std::uint64_t poly = 0xC96C5795D7870F42ULL;  // reflected polynomial
    for (std::uint64_t i = 0; i < 256; ++i) {
      std::uint64_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? poly : 0);
      }
      out.t[0][i] = crc;
    }
    // t[k][b] = CRC of byte b followed by k zero bytes; lets sixteen bytes
    // be folded with sixteen independent lookups per round (slice-by-16 —
    // twice the parallelism of slice-by-8, same polynomial, same result).
    for (int k = 1; k < 16; ++k) {
      for (std::uint64_t i = 0; i < 256; ++i) {
        const std::uint64_t prev = out.t[k - 1][i];
        out.t[k][i] = out.t[0][prev & 0xff] ^ (prev >> 8);
      }
    }
    return out;
  }();
  return tables;
}

// Table-driven update on the raw (pre-inversion) state. Serves three roles:
// the portable main path, the sub-block tail of the CLMUL path, and the
// reference the CLMUL kernel must match bit for bit.
std::uint64_t crc64_update_table(std::uint64_t crc, const unsigned char* p,
                                 std::size_t n) {
  const Crc64Tables& tb = crc64_tables();
  // Slice-by-16 main loop: the CRC folds into the first eight bytes, the
  // next eight are independent of it, so all sixteen table lookups can
  // issue in parallel. This is the integrity-check bottleneck of the mmap
  // bound-artifact loader, where every saved byte is verified per load.
  while (n >= 16) {
    std::uint64_t w0;
    std::uint64_t w1;
    std::memcpy(&w0, p, 8);
    std::memcpy(&w1, p + 8, 8);
    w0 ^= crc;  // little-endian: low byte of `w0` is the next input byte
    crc = tb.t[15][w0 & 0xff] ^ tb.t[14][(w0 >> 8) & 0xff] ^
          tb.t[13][(w0 >> 16) & 0xff] ^ tb.t[12][(w0 >> 24) & 0xff] ^
          tb.t[11][(w0 >> 32) & 0xff] ^ tb.t[10][(w0 >> 40) & 0xff] ^
          tb.t[9][(w0 >> 48) & 0xff] ^ tb.t[8][w0 >> 56] ^
          tb.t[7][w1 & 0xff] ^ tb.t[6][(w1 >> 8) & 0xff] ^
          tb.t[5][(w1 >> 16) & 0xff] ^ tb.t[4][(w1 >> 24) & 0xff] ^
          tb.t[3][(w1 >> 32) & 0xff] ^ tb.t[2][(w1 >> 40) & 0xff] ^
          tb.t[1][(w1 >> 48) & 0xff] ^ tb.t[0][w1 >> 56];
    p += 16;
    n -= 16;
  }
  if (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    crc ^= word;
    crc = tb.t[7][crc & 0xff] ^ tb.t[6][(crc >> 8) & 0xff] ^
          tb.t[5][(crc >> 16) & 0xff] ^ tb.t[4][(crc >> 24) & 0xff] ^
          tb.t[3][(crc >> 32) & 0xff] ^ tb.t[2][(crc >> 40) & 0xff] ^
          tb.t[1][(crc >> 48) & 0xff] ^ tb.t[0][crc >> 56];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return crc;
}

#if RECOVERD_CRC64_CLMUL

// ---------------------------------------------------------------------------
// PCLMULQDQ folding path. Carry-less multiplication folds 64 input bytes per
// iteration across four independent 128-bit accumulators, reaching memory-
// bound throughput (~3x the slice-by-16 tables on one core) — the difference
// between the artifact CRC being the dominant cost of a warm start and a
// rounding error. Same polynomial, bitwise-identical result; the table path
// remains the portable fallback and handles the sub-16-byte tail.
//
// Math, in the reflected convention the tables use (a 64-bit word w encodes
// the polynomial sum of bit_j(w) * x^(63-j); right-shift is multiply-by-x):
// a 128-bit accumulator A = (a_lo, a_hi) encodes p64(a_lo)*x^64 + p64(a_hi).
// Folding the next block D at stride S bits must produce A*x^S + D, i.e.
// p64(a_lo)*x^(S+64) + p64(a_hi)*x^S + D  (mod P). PCLMULQDQ of reflected
// operands yields the reflected product times one extra factor of x, so the
// fold constants are x^(S+64-1) mod P and x^(S-1) mod P, bit-reflected.
// ---------------------------------------------------------------------------

// Carry-less product, software (constant generation only — never on data).
inline unsigned __int128 clmul_soft(std::uint64_t a, std::uint64_t b) {
  unsigned __int128 r = 0;
  for (int i = 0; i < 64; ++i) {
    if ((b >> i) & 1) r ^= static_cast<unsigned __int128>(a) << i;
  }
  return r;
}

// Reduce a 128-bit polynomial modulo P_full = x^64 + P (normal encoding).
inline std::uint64_t polymod(unsigned __int128 v) {
  constexpr std::uint64_t kPoly = 0x42F0E1EBA9EA3693ULL;  // normal encoding
  for (int bit = 127; bit >= 64; --bit) {
    if ((v >> bit) & 1) {
      v ^= (static_cast<unsigned __int128>(kPoly) << (bit - 64)) |
           (static_cast<unsigned __int128>(1) << bit);
    }
  }
  return static_cast<std::uint64_t>(v);
}

// x^n mod P_full by square-and-multiply, normal encoding.
inline std::uint64_t xpow_mod(std::uint64_t n) {
  std::uint64_t r = 1;
  std::uint64_t b = 2;  // the polynomial x
  while (n != 0) {
    if (n & 1) r = polymod(clmul_soft(r, b));
    b = polymod(clmul_soft(b, b));
    n >>= 1;
  }
  return r;
}

inline std::uint64_t bit_reflect(std::uint64_t v) {
  std::uint64_t r = 0;
  for (int i = 0; i < 64; ++i) {
    if ((v >> i) & 1) r |= 1ULL << (63 - i);
  }
  return r;
}

struct ClmulConstants {
  std::uint64_t fold512_hi;  // x^(512+63) mod P, reflected: 64-byte stride
  std::uint64_t fold512_lo;  // x^(512-1)  mod P, reflected
  std::uint64_t fold128_hi;  // x^(128+63) mod P, reflected: 16-byte stride
  std::uint64_t fold128_lo;  // x^(128-1)  mod P, reflected
};

const ClmulConstants& clmul_constants() {
  static const ClmulConstants k = {
      bit_reflect(xpow_mod(575)),
      bit_reflect(xpow_mod(511)),
      bit_reflect(xpow_mod(191)),
      bit_reflect(xpow_mod(127)),
  };
  return k;
}

// One fold step: acc advanced by the stride `k` encodes, next block XOR'd in.
__attribute__((target("pclmul,sse2"))) inline __m128i fold_step(__m128i acc,
                                                                __m128i k,
                                                                __m128i data) {
  return _mm_xor_si128(_mm_xor_si128(_mm_clmulepi64_si128(acc, k, 0x00),
                                     _mm_clmulepi64_si128(acc, k, 0x11)),
                       data);
}

// Raw-state CRC over n >= 64 bytes. Folds with four accumulators at a
// 64-byte stride, collapses them with the 16-byte-stride constant, then
// finishes the 16 accumulator bytes and the tail through the table path.
__attribute__((target("pclmul,sse2"))) std::uint64_t crc64_update_clmul(
    std::uint64_t crc, const unsigned char* p, std::size_t n) {
  const ClmulConstants& kc = clmul_constants();
  const __m128i k512 = _mm_set_epi64x(static_cast<long long>(kc.fold512_lo),
                                      static_cast<long long>(kc.fold512_hi));
  const __m128i k128 = _mm_set_epi64x(static_cast<long long>(kc.fold128_lo),
                                      static_cast<long long>(kc.fold128_hi));
  const auto* q = reinterpret_cast<const __m128i*>(p);
  __m128i a0 = _mm_loadu_si128(q);
  __m128i a1 = _mm_loadu_si128(q + 1);
  __m128i a2 = _mm_loadu_si128(q + 2);
  __m128i a3 = _mm_loadu_si128(q + 3);
  a0 = _mm_xor_si128(a0, _mm_set_epi64x(0, static_cast<long long>(crc)));
  p += 64;
  n -= 64;
  while (n >= 64) {
    q = reinterpret_cast<const __m128i*>(p);
    a0 = fold_step(a0, k512, _mm_loadu_si128(q));
    a1 = fold_step(a1, k512, _mm_loadu_si128(q + 1));
    a2 = fold_step(a2, k512, _mm_loadu_si128(q + 2));
    a3 = fold_step(a3, k512, _mm_loadu_si128(q + 3));
    p += 64;
    n -= 64;
  }
  __m128i acc = fold_step(a0, k128, a1);  // collapse the lanes at 16-byte stride
  acc = fold_step(acc, k128, a2);
  acc = fold_step(acc, k128, a3);
  while (n >= 16) {
    acc = fold_step(acc, k128,
                    _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
    p += 16;
    n -= 16;
  }
  unsigned char folded[16];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(folded), acc);
  // The accumulator encodes the not-yet-reduced remainder; running its bytes
  // through the table step from state 0 performs the final reduction.
  return crc64_update_table(crc64_update_table(0, folded, 16), p, n);
}

bool cpu_has_clmul() {
  static const bool has = __builtin_cpu_supports("pclmul") != 0;
  return has;
}

#endif  // RECOVERD_CRC64_CLMUL

}  // namespace

std::uint64_t crc64(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t crc = ~0ULL;
#if RECOVERD_CRC64_CLMUL
  // Folding needs at least one 64-byte block; below that the table setup
  // dominates anyway.
  if (n >= 64 && cpu_has_clmul()) {
    return ~crc64_update_clmul(crc, p, n);
  }
#endif
  return ~crc64_update_table(crc, p, n);
}

}  // namespace recoverd::util
