// Process-wide SIMD kernel selection (`--simd={auto,avx2,scalar}`).
//
// The repo's vector kernels (the BoundSet leaf dot products and the
// successor-expansion / Bayes-update inner loops) each exist in two
// versions: a scalar reference and an AVX2 variant that is *bitwise
// identical* to it — the AVX2 kernels vectorize only across independent
// accumulators (one belief per lane, one observation per lane) or across
// elementwise operations, never inside a single floating-point reduction,
// so every accumulator sees its terms in exactly the scalar order and no
// FMA contraction is permitted (DESIGN.md §13). Which version runs is a
// process-global mode resolved here: `auto` picks AVX2 when the CPU has it,
// `scalar` forces the reference kernels (the parity-test baseline), `avx2`
// forces the vector kernels and fails with a clear error — not a crash —
// on hardware without them.
//
// Because the two versions produce the same bits, the mode is a pure
// performance knob: campaign outputs are byte-identical across modes.
#pragma once

#include <string>

namespace recoverd::simd {

/// The kernel families a build can dispatch between.
enum class Mode {
  Scalar,  ///< reference kernels, available everywhere
  Avx2,    ///< 4-lane double kernels (x86-64 AVX2)
};

/// True when this build carries the AVX2 kernels at all (x86-64 GCC/Clang).
bool compiled_with_avx2();

/// True when the CPU running this process supports AVX2 (false when the
/// build lacks the kernels, regardless of the hardware).
bool cpu_supports_avx2();

/// The currently selected mode. Defaults to the `auto` resolution (AVX2
/// when supported, scalar otherwise) until configure() overrides it.
Mode active_mode();

/// Resolves a `--simd` flag value: "auto" (default), "avx2", "scalar".
/// Throws PreconditionError with an actionable message when "avx2" is
/// requested on hardware (or a build) without it, and on unknown values.
void configure(const std::string& flag);

/// "scalar" / "avx2".
const char* mode_name(Mode mode);

/// One-line description for startup logs: the active kernel plus how it was
/// chosen, e.g. "avx2 (auto)" or "scalar (forced)".
std::string describe_active_mode();

}  // namespace recoverd::simd
