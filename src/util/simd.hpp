// Process-wide SIMD kernel selection (`--simd={auto,avx512,avx2,scalar}`).
//
// The repo's vector kernels (the BoundSet leaf dot products and the
// successor-expansion / Bayes-update inner loops) each exist in three
// versions: a scalar reference, an AVX2 variant and an AVX-512 variant
// that are *bitwise identical* to it — the vector kernels vectorize only
// across independent accumulators (one belief per lane, one observation
// per lane) or across elementwise operations, never inside a single
// floating-point reduction, so every accumulator sees its terms in exactly
// the scalar order and no FMA contraction is permitted (DESIGN.md §13,
// §16). Which version runs is a process-global mode resolved here: `auto`
// picks the widest tier the CPU has (AVX-512 > AVX2 > scalar), `scalar`
// forces the reference kernels (the parity-test baseline), `avx2`/`avx512`
// force a vector tier and fail with a clear error — not a crash — on
// hardware without it.
//
// Because all versions produce the same bits, the mode is a pure
// performance knob: campaign outputs are byte-identical across modes.
#pragma once

#include <string>

namespace recoverd::simd {

/// The kernel families a build can dispatch between.
enum class Mode {
  Scalar,  ///< reference kernels, available everywhere
  Avx2,    ///< 4-lane double kernels (x86-64 AVX2)
  Avx512,  ///< 8-lane double kernels (x86-64 AVX-512F)
};

/// True when this build carries the AVX2 kernels at all (x86-64 GCC/Clang).
bool compiled_with_avx2();

/// True when this build carries the AVX-512 kernels (same gate: the
/// kernels use function-level target attributes, so any x86-64 GCC/Clang
/// build has them compiled in).
bool compiled_with_avx512();

/// True when the CPU running this process supports AVX2 (false when the
/// build lacks the kernels, regardless of the hardware).
bool cpu_supports_avx2();

/// True when the CPU running this process supports AVX-512F.
bool cpu_supports_avx512();

/// The currently selected mode. Defaults to the `auto` resolution (the
/// widest supported tier) until configure() overrides it.
Mode active_mode();

/// Resolves a `--simd` flag value: "auto" (default), "avx512", "avx2",
/// "scalar". Throws PreconditionError with an actionable message when a
/// vector tier is requested on hardware (or a build) without it, and on
/// unknown values.
void configure(const std::string& flag);

/// "scalar" / "avx2" / "avx512".
const char* mode_name(Mode mode);

/// One-line description for startup logs: the active kernel plus how it was
/// chosen, e.g. "avx512 (auto)" or "scalar (forced)".
std::string describe_active_mode();

}  // namespace recoverd::simd
