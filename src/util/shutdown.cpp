#include "util/shutdown.hpp"

#include <atomic>
#include <csignal>

namespace recoverd {

namespace {

std::atomic<bool> g_shutdown{false};

extern "C" void shutdown_signal_handler(int sig) {
  g_shutdown.store(true, std::memory_order_relaxed);
  // Re-arm with the default disposition: a second signal must still be able
  // to kill a loop that ignores the flag. std::signal is async-signal-safe
  // for this use per POSIX (establishing a disposition).
  std::signal(sig, SIG_DFL);
}

}  // namespace

void install_shutdown_handlers() {
  std::signal(SIGINT, shutdown_signal_handler);
  std::signal(SIGTERM, shutdown_signal_handler);
}

bool shutdown_requested() { return g_shutdown.load(std::memory_order_relaxed); }

void request_shutdown() { g_shutdown.store(true, std::memory_order_relaxed); }

void reset_shutdown_for_tests() {
  g_shutdown.store(false, std::memory_order_relaxed);
  install_shutdown_handlers();
}

}  // namespace recoverd
