// ASCII table rendering for bench binaries (Table 1 style output).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace recoverd {

/// Right-pads/aligns cells and prints a header rule, e.g.
///
///   Algorithm    Depth  Cost     ...
///   -----------  -----  -------  ...
///   Most Likely  1      244.40   ...
class TextTable {
 public:
  /// Sets the column headers; must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Adds one row; must match the header arity.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats a double with fixed precision.
  static std::string num(double v, int precision = 2);

  /// Renders the table to `os`.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace recoverd
