// Minimal levelled logger. The controller logs decisions at Debug level so
// example binaries can show an episode trace without recompiling.
#pragma once

#include <sstream>
#include <string>

namespace recoverd {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr with a level prefix if `level` passes the
/// threshold.
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::Debug)
    log_message(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::Info)
    log_message(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::Warn)
    log_message(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::Error)
    log_message(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
}

}  // namespace recoverd
