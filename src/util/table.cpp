#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace recoverd {

void TextTable::set_header(std::vector<std::string> header) {
  RD_EXPECTS(!header.empty(), "TextTable: header must be non-empty");
  RD_EXPECTS(rows_.empty(), "TextTable: set_header must precede add_row");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  RD_EXPECTS(!header_.empty(), "TextTable: set_header first");
  RD_EXPECTS(row.size() == header_.size(), "TextTable: row arity must match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  RD_EXPECTS(!header_.empty(), "TextTable: nothing to print");
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  print_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c], '-');
    if (c + 1 < header_.size()) os << "  ";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace recoverd
