#include "util/work_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace recoverd::util {

namespace {
// Set while a thread is executing pool tasks; a nested run() on such a
// thread must execute inline (the team is busy with the outer epoch).
thread_local bool t_inside_pool = false;
}  // namespace

struct WorkPool::Impl {
  // Serializes external submitters: one epoch in flight at a time.
  std::mutex submit_mutex;

  // Guards the epoch hand-off state below. cv_work wakes workers on a new
  // epoch (or stop); cv_done wakes the submitter when the epoch quiesces.
  //
  // Epoch protocol: a worker *registers* (++active, under `mutex`) before
  // touching any epoch state and deregisters when its claims run dry. The
  // submitter only mutates `fn/ctx/total` while `active == 0` and waits for
  // `active == 0` again after draining its own share, so the epoch state is
  // stable for exactly the window in which registered workers read it —
  // plain mutex happens-before, nothing for TSan to object to. A worker
  // that wakes late for an already-drained epoch registers, finds the
  // cursor exhausted and deregisters without ever calling a task.
  std::mutex mutex;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::uint64_t epoch = 0;
  std::size_t active = 0;
  bool stop = false;
  TaskFn fn = nullptr;
  void* ctx = nullptr;
  std::size_t total = 0;
  std::atomic<std::size_t> cursor{0};

  std::vector<std::thread> threads;
  std::atomic<std::size_t> cap{std::numeric_limits<std::size_t>::max()};

  std::atomic<std::uint64_t> stat_dispatches{0};
  std::atomic<std::uint64_t> stat_tasks{0};
  std::atomic<std::uint64_t> stat_inline_tasks{0};
  std::atomic<std::uint64_t> stat_spawns_avoided{0};
  std::atomic<std::uint64_t> stat_threads_created{0};

  // Claim-and-run loop shared by registered workers and the submitter.
  void drain_current_epoch() {
    for (;;) {
      const std::size_t t = cursor.fetch_add(1, std::memory_order_relaxed);
      if (t >= total) return;
      fn(ctx, t);
    }
  }

  void worker_loop() {
    t_inside_pool = true;
    std::uint64_t seen_epoch = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv_work.wait(lock, [&] { return stop || epoch != seen_epoch; });
        if (stop) return;
        seen_epoch = epoch;
        ++active;
      }
      drain_current_epoch();
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (--active == 0) cv_done.notify_all();
      }
    }
  }
};

WorkPool::WorkPool() : impl_(new Impl) {}

WorkPool::~WorkPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (auto& t : impl_->threads) t.join();
  delete impl_;
}

WorkPool& WorkPool::instance() {
  static WorkPool pool;
  return pool;
}

void WorkPool::configure_threads(std::size_t cap) {
  RD_EXPECTS(cap >= 1, "WorkPool thread cap must be >= 1");
  impl_->cap.store(cap, std::memory_order_relaxed);
}

std::size_t WorkPool::thread_cap() const {
  return impl_->cap.load(std::memory_order_relaxed);
}

void WorkPool::run_impl(std::size_t tasks, TaskFn fn, void* ctx) {
  if (tasks == 0) return;
  if (tasks == 1 || t_inside_pool) {
    // Single-task regions and nested submissions execute inline; every
    // call site is worker-count invariant, so running all indices on one
    // thread is bit-identical to any team size.
    for (std::size_t t = 0; t < tasks; ++t) fn(ctx, t);
    impl_->stat_inline_tasks.fetch_add(tasks, std::memory_order_relaxed);
    return;
  }

  std::lock_guard<std::mutex> submit_lock(impl_->submit_mutex);

  // Grow the team towards `tasks - 1` helpers (the caller takes the
  // remaining share), bounded by the --pool-jobs cap. Fewer helpers than
  // tasks just means each claims more indices.
  const std::size_t cap = impl_->cap.load(std::memory_order_relaxed);
  const std::size_t want = std::min(tasks - 1, cap - 1);
  std::uint64_t created = 0;
  while (impl_->threads.size() < want) {
    impl_->threads.emplace_back([this] { impl_->worker_loop(); });
    ++created;
  }
  impl_->stat_threads_created.fetch_add(created, std::memory_order_relaxed);
  // A spawn-per-call design creates one thread per task index every call
  // (that is what all five pre-pool sites did); the persistent team only
  // pays for first-time growth.
  impl_->stat_spawns_avoided.fetch_add(tasks - created, std::memory_order_relaxed);
  impl_->stat_dispatches.fetch_add(1, std::memory_order_relaxed);
  impl_->stat_tasks.fetch_add(tasks, std::memory_order_relaxed);

  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    // Stale workers from a previous epoch may still be registered; epoch
    // state must not change under them.
    impl_->cv_done.wait(lock, [&] { return impl_->active == 0; });
    impl_->fn = fn;
    impl_->ctx = ctx;
    impl_->total = tasks;
    impl_->cursor.store(0, std::memory_order_relaxed);
    ++impl_->epoch;
  }
  impl_->cv_work.notify_all();

  // The caller works the epoch too (its drain exhausts the cursor before
  // returning), then blocks until every registered worker deregistered —
  // the barrier the old per-call join provided.
  t_inside_pool = true;
  impl_->drain_current_epoch();
  t_inside_pool = false;

  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->cv_done.wait(lock, [&] { return impl_->active == 0; });
}

WorkPool::Stats WorkPool::stats() const {
  Stats s;
  s.dispatches = impl_->stat_dispatches.load(std::memory_order_relaxed);
  s.tasks = impl_->stat_tasks.load(std::memory_order_relaxed);
  s.inline_tasks = impl_->stat_inline_tasks.load(std::memory_order_relaxed);
  s.spawns_avoided = impl_->stat_spawns_avoided.load(std::memory_order_relaxed);
  s.threads_created = impl_->stat_threads_created.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(impl_->submit_mutex);
    s.threads_live = impl_->threads.size();
  }
  return s;
}

}  // namespace recoverd::util
