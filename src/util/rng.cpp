#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace recoverd {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  RD_EXPECTS(lo <= hi, "uniform: lo must not exceed hi");
  return lo + (hi - lo) * uniform01();
}

std::size_t Rng::uniform_index(std::size_t n) {
  RD_EXPECTS(n > 0, "uniform_index: n must be positive");
  const std::uint64_t bound = n;
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return static_cast<std::size_t>(r % bound);
  }
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Rng::discrete(std::span<const double> weights) {
  RD_EXPECTS(!weights.empty(), "discrete: weights must be non-empty");
  double total = 0.0;
  for (double w : weights) {
    RD_EXPECTS(w >= 0.0 && std::isfinite(w), "discrete: weights must be finite and >= 0");
    total += w;
  }
  RD_EXPECTS(total > 0.0, "discrete: weights must have a positive sum");
  double u = uniform01() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    if (u < weights[i]) return i;
    u -= weights[i];
  }
  return weights.size() - 1;
}

void Rng::set_state(const std::array<std::uint64_t, 4>& state) {
  RD_EXPECTS((state[0] | state[1] | state[2] | state[3]) != 0,
             "Rng::set_state: the all-zero state is invalid");
  for (std::size_t i = 0; i < 4; ++i) s_[i] = state[i];
}

Rng Rng::split() {
  // Derive a child seed from two raw draws; the parent stream advances, so
  // successive splits produce distinct children.
  const std::uint64_t a = next_u64();
  const std::uint64_t b = next_u64();
  return Rng(a ^ rotl(b, 31));
}

AliasTable::AliasTable(std::span<const double> weights) {
  RD_EXPECTS(!weights.empty(), "AliasTable: weights must be non-empty");
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    RD_EXPECTS(w >= 0.0 && std::isfinite(w), "AliasTable: weights must be finite and >= 0");
    total += w;
  }
  RD_EXPECTS(total > 0.0, "AliasTable: weights must have a positive sum");

  norm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) norm_[i] = weights[i] / total;

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = norm_[i] * static_cast<double>(n);

  std::vector<std::size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::size_t i : large) prob_[i] = 1.0;
  for (std::size_t i : small) prob_[i] = 1.0;  // numeric leftovers are full buckets
}

std::size_t AliasTable::sample(Rng& rng) const {
  RD_EXPECTS(!prob_.empty(), "AliasTable: sampling from an empty table");
  const std::size_t bucket = rng.uniform_index(prob_.size());
  return rng.uniform01() < prob_[bucket] ? bucket : alias_[bucket];
}

double AliasTable::probability(std::size_t i) const {
  RD_EXPECTS(i < norm_.size(), "AliasTable: index out of range");
  return norm_[i];
}

}  // namespace recoverd
