#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace recoverd {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double ntot = na + nb;
  mean_ += delta * nb / ntot;
  m2_ += other.m2_ + delta * delta * na * nb / ntot;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  RD_EXPECTS(hi > lo, "Histogram: hi must exceed lo");
  RD_EXPECTS(bins > 0, "Histogram: need at least one bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  RD_EXPECTS(i < counts_.size(), "Histogram: bin index out of range");
  return counts_[i];
}

double Histogram::bin_low(std::size_t i) const {
  RD_EXPECTS(i < counts_.size(), "Histogram: bin index out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const {
  RD_EXPECTS(i < counts_.size(), "Histogram: bin index out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) / static_cast<double>(counts_.size());
}

double Histogram::quantile(double q) const {
  RD_EXPECTS(q >= 0.0 && q <= 1.0, "Histogram: quantile must be in [0,1]");
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= target) return 0.5 * (bin_low(i) + bin_high(i));
  }
  return hi_;
}

}  // namespace recoverd
