#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <mutex>

namespace recoverd {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}

// Monotonic seconds since the first log line, so interleaved bench logs can
// be ordered and correlated with metric timings.
double monotonic_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

std::mutex& log_mutex() {
  static std::mutex mutex;
  return mutex;
}

// Small stable per-thread index (0 = whichever thread logs first, usually
// main) — far more readable in interleaved --jobs output than the kernel's
// opaque thread id, and stable across a thread's lifetime.
int thread_log_id() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  char stamp[48];
  std::snprintf(stamp, sizeof(stamp), "%12.6f] [T%02d", monotonic_seconds(),
                thread_log_id());
  // One mutex-guarded write per line: concurrent bench runs must not
  // interleave characters of different messages.
  std::lock_guard<std::mutex> lock(log_mutex());
  std::cerr << '[' << stamp << "] [" << level_name(level) << "] " << message << '\n';
}

}  // namespace recoverd
