#include "util/csv.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace recoverd {

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& cells, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << std::fixed;
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) {
    os.str("");
    os << v;
    text.push_back(os.str());
  }
  write_row(text);
}

}  // namespace recoverd
