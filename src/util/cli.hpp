// Tiny --key=value flag parser shared by the bench/example binaries, so each
// experiment can expose the paper's parameters (fault count, seeds, t_op, …)
// without pulling in a heavyweight CLI dependency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace recoverd {

/// Parses `--key=value` and bare `--flag` arguments; anything else is kept
/// as a positional argument. Unknown keys are allowed (callers query what
/// they care about), but `require_known()` can reject typos.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key, const std::string& fallback) const;

  /// Like get_string(), but throws PreconditionError unless the value (or
  /// the fallback when absent) is one of `allowed`.
  std::string get_choice(const std::string& key, const std::string& fallback,
                         const std::vector<std::string>& allowed) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// get_int() validated to be >= 1 — for flags whose zero/negative values
  /// were previously accepted silently and then cast to std::size_t
  /// (--sessions=0 building an empty fleet, --memo-max-mb=-1 becoming an
  /// 18-exabyte cache cap). Throws PreconditionError with a one-line
  /// actionable message.
  std::size_t get_count(const std::string& key, std::size_t fallback) const;

  /// get_int() validated to be >= 0 (counts where zero is meaningful, e.g.
  /// --warmup=0). Rejects negatives before any size_t cast.
  std::size_t get_size(const std::string& key, std::size_t fallback) const;

  /// get_double() validated to be > 0 — for budgets/durations where zero or
  /// a negative is never meaningful when the flag is passed explicitly
  /// (--tick-budget-ms=0 should be "omit the flag", not "shed everything").
  double get_positive_double(const std::string& key, double fallback) const;

  /// Parses the shared `--jobs=N` worker-count flag (validated ≥ 1). The
  /// default of 1 keeps every binary serial — and hence byte-for-byte
  /// compatible with pre-`--jobs` runs — unless parallelism is requested.
  std::size_t get_jobs(std::size_t fallback = 1) const;

  /// Parses the shared `--simd={auto,avx512,avx2,scalar}` kernel-selection
  /// flag (default "auto"). Only validates the spelling here; pass the
  /// result to simd::configure(), which checks hardware support for a
  /// forced vector tier.
  std::string get_simd() const;

  /// Parses the shared `--pool-jobs=N` work-pool thread cap (validated
  /// ≥ 1: a zero/negative cap would mean "no thread may run", which is
  /// "don't pass the flag", not a usable pool). The fallback 0 means "flag
  /// absent — leave the pool uncapped"; callers check for it before
  /// calling util::WorkPool::configure_threads().
  std::size_t get_pool_jobs() const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Throws PreconditionError when an argument key is not in `known`.
  void require_known(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace recoverd
