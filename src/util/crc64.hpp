// CRC-64/XZ (reflected polynomial 0x42F0E1EBA9EA3693, init/final ~0).
//
// Shared by the fleet-checkpoint framing (sim/checkpoint.cpp) and the bound
// artifact format (bounds/artifact.cpp). The slice-by-8 kernel processes
// eight input bytes per table round, which matters for bound artifacts: a
// 10⁶-state artifact is hundreds of megabytes and the CRC pass is the single
// largest fixed cost of a warm start, so it has to run at memory speed, not
// at one table lookup per byte.
//
// crc64("123456789") == 0x995DC9BBDF1939FA (the CRC-64/XZ check value); the
// output is bitwise identical to the byte-at-a-time implementation the fleet
// checkpoints shipped with, so existing checkpoint files keep validating.
#pragma once

#include <cstddef>
#include <cstdint>

namespace recoverd::util {

/// One-shot CRC-64/XZ over `n` bytes.
std::uint64_t crc64(const void* data, std::size_t n);

}  // namespace recoverd::util
