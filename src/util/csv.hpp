// CSV emission so bench series (Fig. 5a/5b) can be re-plotted externally.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace recoverd {

/// Streams rows as RFC-4180-ish CSV (quotes cells containing separators).
class CsvWriter {
 public:
  /// Writes to `os`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_row(const std::vector<std::string>& cells);

  /// Numeric convenience row.
  void write_row(const std::vector<double>& cells, int precision = 6);

 private:
  static std::string escape(const std::string& cell);
  std::ostream& os_;
};

}  // namespace recoverd
