#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/check.hpp"

namespace recoverd {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq == std::string::npos) {
      kv_[body] = "true";
    } else {
      kv_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
}

bool CliArgs::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string CliArgs::get_string(const std::string& key, const std::string& fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

std::string CliArgs::get_choice(const std::string& key, const std::string& fallback,
                                const std::vector<std::string>& allowed) const {
  const std::string value = get_string(key, fallback);
  if (std::find(allowed.begin(), allowed.end(), value) != allowed.end()) return value;
  std::string expected;
  for (const auto& option : allowed) {
    if (!expected.empty()) expected += "|";
    expected += option;
  }
  RD_EXPECTS(false, "CliArgs: --" + key + " must be one of " + expected +
                        ", got '" + value + "'");
  return fallback;
}

std::int64_t CliArgs::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  RD_EXPECTS(end && *end == '\0', "CliArgs: --" + key + " expects an integer");
  return v;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  RD_EXPECTS(end && *end == '\0', "CliArgs: --" + key + " expects a number");
  return v;
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  RD_EXPECTS(false, "CliArgs: --" + key + " expects a boolean");
  return fallback;
}

std::size_t CliArgs::get_count(const std::string& key, std::size_t fallback) const {
  const std::int64_t v = get_int(key, static_cast<std::int64_t>(fallback));
  RD_EXPECTS(v >= 1, "CliArgs: --" + key + " must be a positive integer, got " +
                         std::to_string(v));
  return static_cast<std::size_t>(v);
}

std::size_t CliArgs::get_size(const std::string& key, std::size_t fallback) const {
  const std::int64_t v = get_int(key, static_cast<std::int64_t>(fallback));
  RD_EXPECTS(v >= 0, "CliArgs: --" + key + " must be >= 0, got " + std::to_string(v));
  return static_cast<std::size_t>(v);
}

double CliArgs::get_positive_double(const std::string& key, double fallback) const {
  const double v = get_double(key, fallback);
  RD_EXPECTS(v > 0.0, "CliArgs: --" + key + " must be > 0, got " + std::to_string(v));
  return v;
}

std::size_t CliArgs::get_jobs(std::size_t fallback) const {
  const std::int64_t jobs = get_int("jobs", static_cast<std::int64_t>(fallback));
  RD_EXPECTS(jobs >= 1, "CliArgs: --jobs must be >= 1");
  return static_cast<std::size_t>(jobs);
}

std::string CliArgs::get_simd() const {
  return get_choice("simd", "auto", {"auto", "avx512", "avx2", "scalar"});
}

std::size_t CliArgs::get_pool_jobs() const {
  if (!has("pool-jobs")) return 0;
  return get_count("pool-jobs", 1);
}

void CliArgs::require_known(const std::vector<std::string>& known) const {
  for (const auto& [key, value] : kv_) {
    (void)value;
    RD_EXPECTS(std::find(known.begin(), known.end(), key) != known.end(),
               "CliArgs: unknown flag --" + key);
  }
}

}  // namespace recoverd
