#include "linalg/dense_matrix.hpp"

#include <cmath>

#include "util/check.hpp"

namespace recoverd::linalg {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

double& DenseMatrix::at(std::size_t i, std::size_t j) {
  RD_EXPECTS(i < rows_ && j < cols_, "DenseMatrix::at: index out of range");
  return data_[i * cols_ + j];
}

double DenseMatrix::at(std::size_t i, std::size_t j) const {
  RD_EXPECTS(i < rows_ && j < cols_, "DenseMatrix::at: index out of range");
  return data_[i * cols_ + j];
}

std::vector<double> DenseMatrix::multiply(std::span<const double> x) const {
  RD_EXPECTS(x.size() == cols_, "DenseMatrix::multiply: dimension mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += data_[i * cols_ + j] * x[j];
    y[i] = acc;
  }
  return y;
}

DenseMatrix DenseMatrix::add(const DenseMatrix& other) const {
  RD_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_, "DenseMatrix::add: shape mismatch");
  DenseMatrix out(rows_, cols_);
  for (std::size_t k = 0; k < data_.size(); ++k) out.data_[k] = data_[k] + other.data_[k];
  return out;
}

DenseMatrix DenseMatrix::subtract(const DenseMatrix& other) const {
  RD_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_,
             "DenseMatrix::subtract: shape mismatch");
  DenseMatrix out(rows_, cols_);
  for (std::size_t k = 0; k < data_.size(); ++k) out.data_[k] = data_[k] - other.data_[k];
  return out;
}

DenseMatrix DenseMatrix::scale(double alpha) const {
  DenseMatrix out(rows_, cols_);
  for (std::size_t k = 0; k < data_.size(); ++k) out.data_[k] = alpha * data_[k];
  return out;
}

LuFactorization::LuFactorization(const DenseMatrix& a) : n_(a.rows()) {
  RD_EXPECTS(a.rows() == a.cols(), "LuFactorization: matrix must be square");
  lu_.resize(n_ * n_);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) lu_[i * n_ + j] = a.at(i, j);
  }
  piv_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) piv_[i] = i;

  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivot.
    std::size_t pivot = k;
    double best = std::abs(lu_[k * n_ + k]);
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double v = std::abs(lu_[i * n_ + k]);
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    RD_ENSURES(best > 1e-300, "LuFactorization: matrix is singular");
    if (pivot != k) {
      for (std::size_t j = 0; j < n_; ++j) std::swap(lu_[k * n_ + j], lu_[pivot * n_ + j]);
      std::swap(piv_[k], piv_[pivot]);
    }
    const double inv = 1.0 / lu_[k * n_ + k];
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double factor = lu_[i * n_ + k] * inv;
      lu_[i * n_ + k] = factor;
      for (std::size_t j = k + 1; j < n_; ++j) lu_[i * n_ + j] -= factor * lu_[k * n_ + j];
    }
  }
}

std::vector<double> LuFactorization::solve(std::span<const double> b) const {
  RD_EXPECTS(b.size() == n_, "LuFactorization::solve: dimension mismatch");
  std::vector<double> x(n_);
  for (std::size_t i = 0; i < n_; ++i) x[i] = b[piv_[i]];
  // Forward substitution (unit lower triangle).
  for (std::size_t i = 1; i < n_; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_[i * n_ + j] * x[j];
    x[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) acc -= lu_[ii * n_ + j] * x[j];
    x[ii] = acc / lu_[ii * n_ + ii];
  }
  return x;
}

double LuFactorization::abs_determinant() const {
  double det = 1.0;
  for (std::size_t i = 0; i < n_; ++i) det *= lu_[i * n_ + i];
  return std::abs(det);
}

}  // namespace recoverd::linalg
