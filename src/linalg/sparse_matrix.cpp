#include "linalg/sparse_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace recoverd::linalg {

std::span<const SparseEntry> SparseMatrix::row(std::size_t i) const {
  RD_EXPECTS(i < rows(), "SparseMatrix::row: index out of range");
  const std::span<const std::size_t> rp = row_offsets();
  return entry_array().subspan(rp[i], rp[i + 1] - rp[i]);
}

double SparseMatrix::at(std::size_t i, std::size_t j) const {
  RD_EXPECTS(j < cols_, "SparseMatrix::at: column out of range");
  const auto r = row(i);
  const auto it = std::lower_bound(
      r.begin(), r.end(), j,
      [](const SparseEntry& e, std::size_t col) { return e.col < col; });
  return (it != r.end() && it->col == j) ? it->value : 0.0;
}

std::vector<double> SparseMatrix::multiply(std::span<const double> x) const {
  std::vector<double> y(rows(), 0.0);
  multiply_into(x, y);
  return y;
}

void SparseMatrix::multiply_into(std::span<const double> x, std::span<double> y) const {
  RD_EXPECTS(x.size() == cols_, "SparseMatrix::multiply_into: dimension mismatch");
  RD_EXPECTS(y.size() == rows(), "SparseMatrix::multiply_into: output size mismatch");
  // Storage-mode dispatch hoisted out of the loop; the accumulation order is
  // unchanged, so results stay bit-identical to the pre-view kernel.
  const std::span<const std::size_t> rp = row_offsets();
  const SparseEntry* const es = entry_array().data();
  const std::size_t n = rows();
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) acc += es[k].value * x[es[k].col];
    y[i] = acc;
  }
}

std::vector<double> SparseMatrix::multiply_transpose(std::span<const double> x) const {
  std::vector<double> y(cols_, 0.0);
  multiply_transpose_into(x, y);
  return y;
}

void SparseMatrix::multiply_transpose_into(std::span<const double> x,
                                           std::span<double> y) const {
  RD_EXPECTS(x.size() == rows(),
             "SparseMatrix::multiply_transpose_into: dimension mismatch");
  RD_EXPECTS(y.size() == cols_,
             "SparseMatrix::multiply_transpose_into: output size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  const std::span<const std::size_t> rp = row_offsets();
  const SparseEntry* const es = entry_array().data();
  const std::size_t n = rows();
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) y[es[k].col] += es[k].value * xi;
  }
}

std::vector<double> SparseMatrix::row_sums() const {
  std::vector<double> sums(rows(), 0.0);
  for (std::size_t i = 0; i < rows(); ++i) {
    for (const auto& e : row(i)) sums[i] += e.value;
  }
  return sums;
}

SparseMatrix SparseMatrix::transpose() const {
  SparseMatrixBuilder builder(cols_, rows());
  for (std::size_t i = 0; i < rows(); ++i) {
    for (const auto& e : row(i)) builder.add(e.col, i, e.value);
  }
  return builder.build();
}

SparseMatrix SparseMatrix::from_csr(std::size_t cols, std::vector<std::size_t> row_ptr,
                                    std::vector<SparseEntry> entries) {
  RD_EXPECTS(!row_ptr.empty(), "SparseMatrix::from_csr: row_ptr must have rows+1 entries");
  RD_EXPECTS(row_ptr.front() == 0 && row_ptr.back() == entries.size(),
             "SparseMatrix::from_csr: row_ptr must span the entry array");
  for (std::size_t r = 0; r + 1 < row_ptr.size(); ++r) {
    RD_EXPECTS(row_ptr[r] <= row_ptr[r + 1],
               "SparseMatrix::from_csr: row_ptr must be monotone");
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      RD_EXPECTS(entries[k].col < cols, "SparseMatrix::from_csr: column out of range");
      RD_EXPECTS(std::isfinite(entries[k].value),
                 "SparseMatrix::from_csr: value must be finite");
      RD_EXPECTS(k == row_ptr[r] || entries[k - 1].col < entries[k].col,
                 "SparseMatrix::from_csr: row columns must be strictly ascending");
    }
  }
  return from_csr_trusted(cols, std::move(row_ptr), std::move(entries));
}

SparseMatrix SparseMatrix::from_csr_trusted(std::size_t cols,
                                            std::vector<std::size_t> row_ptr,
                                            std::vector<SparseEntry> entries) {
  SparseMatrix out;
  out.cols_ = cols;
  out.row_ptr_ = std::move(row_ptr);
  out.entries_ = std::move(entries);
  return out;
}

SparseMatrix SparseMatrix::view_csr_trusted(std::size_t cols,
                                            std::span<const std::size_t> row_ptr,
                                            std::span<const SparseEntry> entries,
                                            std::shared_ptr<const void> storage) {
  RD_EXPECTS(!row_ptr.empty(),
             "SparseMatrix::view_csr_trusted: row_ptr must have rows+1 entries");
  SparseMatrix out;
  out.cols_ = cols;
  out.ext_row_ptr_ = row_ptr.data();
  out.ext_rows_ = row_ptr.size() - 1;
  out.ext_entries_ = entries.data();
  out.ext_nnz_ = entries.size();
  out.storage_ = std::move(storage);
  return out;
}

SparseMatrixBuilder::SparseMatrixBuilder(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {}

void SparseMatrixBuilder::add(std::size_t row, std::size_t col, double value) {
  RD_EXPECTS(row < rows_, "SparseMatrixBuilder::add: row out of range");
  RD_EXPECTS(col < cols_, "SparseMatrixBuilder::add: column out of range");
  RD_EXPECTS(std::isfinite(value), "SparseMatrixBuilder::add: value must be finite");
  if (value == 0.0) return;
  triplets_.push_back({row, col, value});
}

SparseMatrix SparseMatrixBuilder::build(double drop_tol) const {
  std::vector<Triplet> sorted = triplets_;
  std::sort(sorted.begin(), sorted.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  SparseMatrix out;
  out.cols_ = cols_;
  out.row_ptr_.assign(rows_ + 1, 0);
  out.entries_.reserve(sorted.size());

  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    double acc = 0.0;
    while (j < sorted.size() && sorted[j].row == sorted[i].row &&
           sorted[j].col == sorted[i].col) {
      acc += sorted[j].value;
      ++j;
    }
    if (std::abs(acc) > drop_tol) {
      out.entries_.push_back({sorted[i].col, acc});
      ++out.row_ptr_[sorted[i].row + 1];
    }
    i = j;
  }
  for (std::size_t r = 0; r < rows_; ++r) out.row_ptr_[r + 1] += out.row_ptr_[r];
  return out;
}

}  // namespace recoverd::linalg
