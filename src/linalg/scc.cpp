#include "linalg/scc.hpp"

#include <limits>

#include "util/check.hpp"

namespace recoverd::linalg {

SccDecomposition tarjan_scc(const SparseMatrix& q) {
  RD_EXPECTS(q.rows() == q.cols(), "tarjan_scc: matrix must be square");
  RD_EXPECTS(q.rows() < std::numeric_limits<std::uint32_t>::max(),
             "tarjan_scc: graph too large for 32-bit component ids");
  const std::uint32_t n = static_cast<std::uint32_t>(q.rows());
  constexpr std::uint32_t kUnset = std::numeric_limits<std::uint32_t>::max();

  SccDecomposition out;
  out.component.assign(n, kUnset);

  std::vector<std::uint32_t> index(n, kUnset);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::uint32_t> stack;  // Tarjan's component stack

  // Explicit DFS frames: vertex plus the offset of the next out-edge to
  // examine within its row span.
  struct Frame {
    std::uint32_t vertex;
    std::size_t next_edge;
  };
  std::vector<Frame> frames;

  std::uint32_t next_index = 0;
  std::uint32_t next_component = 0;

  for (std::uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUnset) continue;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const std::uint32_t v = frame.vertex;
      const auto row = q.row(v);
      if (frame.next_edge < row.size()) {
        const std::uint32_t w = static_cast<std::uint32_t>(row[frame.next_edge].col);
        ++frame.next_edge;
        if (index[w] == kUnset) {
          frames.push_back({w, 0});
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
        } else if (on_stack[w]) {
          if (index[w] < lowlink[v]) lowlink[v] = index[w];
        }
        continue;
      }
      // Row exhausted: pop the frame, fold the lowlink into the parent and
      // emit a component when v is a root.
      if (lowlink[v] == index[v]) {
        for (;;) {
          const std::uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          out.component[w] = next_component;
          if (w == v) break;
        }
        ++next_component;
      }
      frames.pop_back();
      if (!frames.empty()) {
        const std::uint32_t parent = frames.back().vertex;
        if (lowlink[v] < lowlink[parent]) lowlink[parent] = lowlink[v];
      }
    }
  }

  out.num_components = next_component;
  return out;
}

}  // namespace recoverd::linalg
