// Dense vector helpers shared by the POMDP and bounds code.
//
// Beliefs, reward vectors, and bound hyperplanes are all std::vector<double>
// of |S| entries; these free functions keep that code at the mathematical
// level of Eq. 2–7 in the paper.
#pragma once

#include <span>
#include <vector>

namespace recoverd::linalg {

/// Inner product <a, b>. Precondition: equal lengths.
double dot(std::span<const double> a, std::span<const double> b);

/// y += alpha * x. Precondition: equal lengths.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// Element-wise max over two vectors, returned as a new vector.
std::vector<double> elementwise_max(std::span<const double> a, std::span<const double> b);

/// max_i |a(i)|.
double max_abs(std::span<const double> a);

/// max_i |a(i) - b(i)|. Precondition: equal lengths.
double max_abs_diff(std::span<const double> a, std::span<const double> b);

/// Sum of entries.
double sum(std::span<const double> a);

/// Scales `a` in place so its entries sum to 1. Precondition: positive sum.
void normalize_probability(std::span<double> a);

/// True when every |a(i) - b(i)| <= tol.
bool approx_equal(std::span<const double> a, std::span<const double> b, double tol);

/// True when a(i) >= b(i) - tol for every i (a dominates b up to tolerance).
bool dominates(std::span<const double> a, std::span<const double> b, double tol = 0.0);

}  // namespace recoverd::linalg
