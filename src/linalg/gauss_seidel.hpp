// Gauss–Seidel / successive over-relaxation solver for fixed points
//   x = c + Q x     (equivalently (I − Q) x = c),
// the form taken by the RA-Bound linear system of Eq. 5 and by the
// blind-policy / BI-POMDP bound recursions.
//
// Q is a (sub)stochastic matrix; when its non-absorbing part is transient
// the iteration converges geometrically. The solver *detects divergence*
// instead of looping forever, because the paper's §3.1 comparisons hinge on
// exactly this: competitor bounds fail to converge on undiscounted recovery
// models, and we want to demonstrate that rather than hang.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "linalg/sparse_matrix.hpp"

namespace recoverd::linalg {

/// Tuning knobs for the iteration.
struct GaussSeidelOptions {
  double relaxation = 1.0;       ///< SOR factor ω ∈ (0, 2); 1.0 = plain Gauss–Seidel.
  double tolerance = 1e-10;      ///< stop when max |x_new − x_old| ≤ tolerance
  std::size_t max_iterations = 100000;
  double divergence_threshold = 1e12;  ///< |x|∞ beyond this ⇒ diverged
  /// Stall detection: when the sweep delta has not strictly decreased over
  /// this many iterations, the iteration is classified as Diverged. This
  /// catches the *linear* cost drift of recurrent nonzero-reward chains
  /// (the §3.1 failure mode of competitor bounds), which would otherwise
  /// take ~divergence_threshold iterations to detect. Set to 0 to disable.
  std::size_t stall_window = 1000;
};

enum class SolveStatus { Converged, MaxIterations, Diverged };

/// Outcome of an iterative solve.
struct SolveResult {
  SolveStatus status = SolveStatus::MaxIterations;
  std::vector<double> x;          ///< last iterate (the solution when Converged)
  std::size_t iterations = 0;
  double final_delta = 0.0;       ///< max-norm change of the last sweep

  bool converged() const { return status == SolveStatus::Converged; }
};

/// Human-readable status label (for logs and bench output).
std::string to_string(SolveStatus status);

/// Solves x = c + Q x by forward Gauss–Seidel sweeps with relaxation.
///
/// Preconditions: Q square, c.size() == Q.rows(), diagonal entries
/// Q(i,i) < 1 (an absorbing state must carry c(i) = 0 and is then fixed at
/// x(i) = c(i)/(1−Q(i,i)) — encode absorbing rows as Q(i,i) = 0 instead).
SolveResult solve_fixed_point(const SparseMatrix& q, std::span<const double> c,
                              const GaussSeidelOptions& options = {});

/// Jacobi variant (used by tests to cross-check sweep ordering effects).
SolveResult solve_fixed_point_jacobi(const SparseMatrix& q, std::span<const double> c,
                                     const GaussSeidelOptions& options = {});

}  // namespace recoverd::linalg
