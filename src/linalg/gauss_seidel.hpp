// Gauss–Seidel / successive over-relaxation solver for fixed points
//   x = c + Q x     (equivalently (I − Q) x = c),
// the form taken by the RA-Bound linear system of Eq. 5 and by the
// blind-policy / BI-POMDP bound recursions.
//
// Q is a (sub)stochastic matrix; when its non-absorbing part is transient
// the iteration converges geometrically. The solver *detects divergence*
// instead of looping forever, because the paper's §3.1 comparisons hinge on
// exactly this: competitor bounds fail to converge on undiscounted recovery
// models, and we want to demonstrate that rather than hang.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "linalg/level_schedule.hpp"
#include "linalg/sparse_matrix.hpp"

namespace recoverd::linalg {

/// Tuning knobs for the iteration.
struct GaussSeidelOptions {
  double relaxation = 1.0;       ///< SOR factor ω ∈ (0, 2); 1.0 = plain Gauss–Seidel.
  double tolerance = 1e-10;      ///< stop when max |x_new − x_old| ≤ tolerance
  std::size_t max_iterations = 100000;
  double divergence_threshold = 1e12;  ///< |x|∞ beyond this ⇒ diverged
  /// Stall detection: when the sweep delta has not strictly decreased over
  /// this many iterations, the iteration is classified as Diverged. This
  /// catches the *linear* cost drift of recurrent nonzero-reward chains
  /// (the §3.1 failure mode of competitor bounds), which would otherwise
  /// take ~divergence_threshold iterations to detect. Set to 0 to disable.
  std::size_t stall_window = 1000;
  /// When a solve with ω ≠ 1.0 diverges *non-structurally* (the iteration
  /// blew up or stalled, not the absorbing-row-with-source case that no ω
  /// can fix), retry once at ω = 1.0. Over-relaxation amplifies along long
  /// dependency chains — the small recovery models' ω = 1.1 diverges
  /// outright on large near-DAG chains (DESIGN.md §10) — and plain
  /// Gauss–Seidel converges whenever the system has a solution at all, so
  /// the retry turns a latent configuration trap into a logged slow path
  /// (counter: linalg.gauss_seidel.relaxation_fallbacks).
  bool relaxation_fallback = true;
};

enum class SolveStatus { Converged, MaxIterations, Diverged };

/// Outcome of an iterative solve.
struct SolveResult {
  SolveStatus status = SolveStatus::MaxIterations;
  std::vector<double> x;          ///< last iterate (the solution when Converged)
  std::size_t iterations = 0;
  double final_delta = 0.0;       ///< max-norm change of the last sweep
  /// Human-readable diagnosis of a non-Converged outcome (names the
  /// offending state for the absorbing-row check, the stalled window for
  /// stall detection); empty on success.
  std::string detail;

  bool converged() const { return status == SolveStatus::Converged; }
};

/// Shared structural prepass over a fixed-point system x = c + scale·Q x:
/// caches the diagonal of Q (for the implicit (I − Q) split) and runs the
/// absorbing-row check — a row with scale·Q(i,i) ≥ 1 and c(i) ≠ 0 pins
/// x(i) = c(i) + x(i), which has no finite solution. Every solver variant
/// (Gauss–Seidel, Jacobi, the SCC-scheduled path) runs this once up front
/// instead of duplicating the scan.
struct SystemPrepass {
  std::vector<double> diag;       ///< diag[i] = Q(i,i) (unscaled)
  bool ok = true;                 ///< false ⇒ the system provably diverges
  std::size_t offending_state = 0;  ///< the absorbing row with nonzero source
  std::string message() const;    ///< diagnostic naming offending_state
};

/// Runs the prepass; O(nnz).
SystemPrepass analyze_fixed_point_system(const SparseMatrix& q,
                                         std::span<const double> c,
                                         double scale = 1.0);

/// Human-readable status label (for logs and bench output).
std::string to_string(SolveStatus status);

/// Solves x = c + Q x by forward Gauss–Seidel sweeps with relaxation.
///
/// Preconditions: Q square, c.size() == Q.rows(), diagonal entries
/// Q(i,i) < 1 (an absorbing state must carry c(i) = 0 and is then fixed at
/// x(i) = c(i)/(1−Q(i,i)) — encode absorbing rows as Q(i,i) = 0 instead).
SolveResult solve_fixed_point(const SparseMatrix& q, std::span<const double> c,
                              const GaussSeidelOptions& options = {});

/// Jacobi variant (used by tests to cross-check sweep ordering effects).
SolveResult solve_fixed_point_jacobi(const SparseMatrix& q, std::span<const double> c,
                                     const GaussSeidelOptions& options = {});

/// Worker count for the topology-aware solver (the `--solver-jobs` CLI
/// knob). 1 keeps the solve serial; larger values fan independent SCCs of a
/// level — and the rows of block-Jacobi components — across threads.
using SolverJobs = std::size_t;

/// Knobs of the SCC-scheduled solve. Every setting is chosen so the result
/// is bitwise identical across `jobs` values: components write disjoint
/// slices of x, levels are barriers, statuses reduce in component-id order,
/// and the per-component algorithm choice depends only on the component
/// (never on the worker count).
struct SccSolveOptions {
  SolverJobs jobs = 1;
  /// Components at least this large switch from plain block Gauss–Seidel to
  /// chunked sweeps: SOR Gauss–Seidel inside fixed chunks of this many
  /// rows, block Jacobi across chunks — the parallelisable scheme whose
  /// chunk grid keys on component size alone, so jobs = 1 and jobs = N run
  /// the same arithmetic.
  std::size_t block_jacobi_threshold = 4096;
  /// Solves x = c + scale·Q x (scale = β folds the discount into the solve
  /// so one assembled chain serves every discount factor).
  double scale = 1.0;
};

/// Topology-aware solve of x = c + scale·Q x: singleton SCCs (the common
/// case in recovery models) are substituted in closed form, nontrivial SCCs
/// run block Gauss–Seidel (chunked past the size threshold), and
/// independent components within a condensation level execute in parallel.
/// `iterations` reports the deepest per-component sweep count (closed-form
/// substitution counts as one). Builds the SolvePlan internally; use the
/// plan overload to amortise topology analysis across solves.
SolveResult solve_fixed_point_scc(const SparseMatrix& q, std::span<const double> c,
                                  const GaussSeidelOptions& options = {},
                                  const SccSolveOptions& scc = {});

/// Plan-reusing overload: `plan` must be build_solve_plan(q) for this exact
/// q (same sparsity). The hot path of the RandomActionChain artifact.
SolveResult solve_fixed_point_scc(const SparseMatrix& q, std::span<const double> c,
                                  const GaussSeidelOptions& options,
                                  const SccSolveOptions& scc, const SolvePlan& plan);

namespace detail {
/// Bumps linalg.gauss_seidel.relaxation_fallbacks and logs the warning
/// (out-of-line so the fallback driver below stays header-only without
/// pulling in the metrics registry).
void note_relaxation_fallback(double relaxation, const std::string& detail);

/// Shared ω-fallback driver for every solver wrapper: runs `solve` with the
/// given options, and on a non-structural divergence with ω ≠ 1.0 (and
/// relaxation_fallback set) bumps the fallback counter, warns, and retries
/// once at ω = 1.0. Structural divergence (absorbing row with a nonzero
/// source, re-checked via analyze_fixed_point_system) is returned as-is —
/// no relaxation factor can fix it.
template <class Solve>
SolveResult run_with_relaxation_fallback(const SparseMatrix& q, std::span<const double> c,
                                         const GaussSeidelOptions& options, double scale,
                                         const Solve& solve) {
  SolveResult result = solve(options);
  if (result.status != SolveStatus::Diverged || !options.relaxation_fallback ||
      options.relaxation == 1.0) {
    return result;
  }
  if (!analyze_fixed_point_system(q, c, scale).ok) return result;
  note_relaxation_fallback(options.relaxation, result.detail);
  GaussSeidelOptions retry = options;
  retry.relaxation = 1.0;
  return solve(retry);
}
}  // namespace detail

}  // namespace recoverd::linalg
