// Compressed sparse row matrices for transition and observation functions.
//
// Recovery models are very sparse (a recovery action reaches a handful of
// next states), so every per-action transition matrix P(a) and observation
// matrix Q(a) is stored in CSR form; §4.3 of the paper relies on exactly
// this structure for the O(|S||A||O||B|) incremental-update cost.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

namespace recoverd::linalg {

/// One stored entry of a sparse row: column index plus value.
struct SparseEntry {
  std::size_t col;
  double value;
};

/// Immutable CSR matrix. Build with SparseMatrixBuilder.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  std::size_t rows() const {
    if (ext_row_ptr_ != nullptr) return ext_rows_;
    return row_ptr_.empty() ? 0 : row_ptr_.size() - 1;
  }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const {
    return ext_row_ptr_ != nullptr ? ext_nnz_ : entries_.size();
  }

  /// Entries of row i, ordered by column.
  std::span<const SparseEntry> row(std::size_t i) const;

  /// Dense lookup (O(log nnz(row))). Returns 0 for absent entries.
  double at(std::size_t i, std::size_t j) const;

  /// y = A x  (y sized to rows()).
  std::vector<double> multiply(std::span<const double> x) const;

  /// y = A x written into caller-owned storage (`y.size() == rows()`),
  /// overwriting it. The allocation-free kernel behind multiply(); identical
  /// arithmetic (same accumulation order), so results are bit-identical.
  void multiply_into(std::span<const double> x, std::span<double> y) const;

  /// y = Aᵀ x  (y sized to cols()). Used for belief propagation, where the
  /// next belief is πᵀP(a).
  std::vector<double> multiply_transpose(std::span<const double> x) const;

  /// y = Aᵀ x written into caller-owned storage (`y.size() == cols()`),
  /// overwriting it. The hot-path kernel of the Max-Avg expansion engine:
  /// belief propagation pred = πᵀP(a) without allocating. Bit-identical to
  /// multiply_transpose().
  void multiply_transpose_into(std::span<const double> x, std::span<double> y) const;

  /// Sum of each row (useful for checking stochasticity).
  std::vector<double> row_sums() const;

  /// Materialised transpose (also CSR). Used by solvers that need fast
  /// column access.
  SparseMatrix transpose() const;

  /// One-shot construction from pre-assembled CSR arrays: `row_ptr` has
  /// rows+1 monotone offsets into `entries`, and each row's entries are
  /// strictly ascending by column. Validates those invariants in O(nnz) and
  /// throws PreconditionError on violation. This is the zero-sort path used
  /// by bulk assemblers (MdpBuilder, the random-action chain), which produce
  /// per-row sorted entries directly instead of paying the triplet
  /// builder's global sort.
  static SparseMatrix from_csr(std::size_t cols, std::vector<std::size_t> row_ptr,
                               std::vector<SparseEntry> entries);

  /// from_csr without the O(nnz) invariant validation, for callers that
  /// already hold an integrity proof over the exact bytes — the bound-
  /// artifact loader, whose CRC-64 covers both arrays and whose writer only
  /// ever serializes matrices that passed from_csr. Feeding unvalidated
  /// arrays through this is undefined behaviour downstream.
  static SparseMatrix from_csr_trusted(std::size_t cols,
                                       std::vector<std::size_t> row_ptr,
                                       std::vector<SparseEntry> entries);

  /// Zero-copy variant of from_csr_trusted: the matrix *borrows* the CSR
  /// arrays instead of owning them, and `storage` keeps whatever owns the
  /// bytes (e.g. a file mapping) alive for the matrix's lifetime. The bound-
  /// artifact mmap loader uses this so a 10^6-state chain warm-starts
  /// without copying its ~hundreds of MB of entries. Same trust contract as
  /// from_csr_trusted; the spans must stay valid (and immutable) as long as
  /// `storage` is held. Copies of the matrix share `storage`.
  static SparseMatrix view_csr_trusted(std::size_t cols,
                                       std::span<const std::size_t> row_ptr,
                                       std::span<const SparseEntry> entries,
                                       std::shared_ptr<const void> storage);

  /// Raw CSR row offsets (size rows()+1) for serialization.
  std::span<const std::size_t> row_offsets() const {
    if (ext_row_ptr_ != nullptr) return {ext_row_ptr_, ext_rows_ + 1};
    return row_ptr_;
  }

  /// Raw CSR entry array (row-major, ascending column within each row) for
  /// serialization.
  std::span<const SparseEntry> entry_array() const {
    if (ext_row_ptr_ != nullptr) return {ext_entries_, ext_nnz_};
    return entries_;
  }

 private:
  friend class SparseMatrixBuilder;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;  // size rows()+1; owning mode only
  std::vector<SparseEntry> entries_;  // owning mode only
  // View mode (view_csr_trusted): borrowed CSR arrays plus the keep-alive
  // owning their bytes. Raw pointers (not spans into the vectors above) so
  // the defaulted copy/move members stay correct in both modes.
  const std::size_t* ext_row_ptr_ = nullptr;  // size ext_rows_ + 1
  const SparseEntry* ext_entries_ = nullptr;  // size ext_nnz_
  std::size_t ext_rows_ = 0;
  std::size_t ext_nnz_ = 0;
  std::shared_ptr<const void> storage_;
};

/// Accumulating triplet builder: duplicate (row, col) contributions are
/// summed, zero results dropped.
class SparseMatrixBuilder {
 public:
  SparseMatrixBuilder(std::size_t rows, std::size_t cols);

  /// Adds `value` to entry (row, col).
  void add(std::size_t row, std::size_t col, double value);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Finalises into CSR; entries below `drop_tol` in magnitude are dropped.
  SparseMatrix build(double drop_tol = 0.0) const;

 private:
  struct Triplet {
    std::size_t row, col;
    double value;
  };
  std::size_t rows_, cols_;
  std::vector<Triplet> triplets_;
};

}  // namespace recoverd::linalg
