#include "linalg/level_schedule.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace recoverd::linalg {

SolvePlan build_solve_plan(const SparseMatrix& q) {
  RD_EXPECTS(q.rows() == q.cols(), "build_solve_plan: matrix must be square");
  const std::size_t n = q.rows();

  SolvePlan plan;
  SccDecomposition scc = tarjan_scc(q);
  plan.component = std::move(scc.component);
  plan.num_components = scc.num_components;
  const std::size_t m = plan.num_components;

  // Group states by component (counting sort keeps state ids ascending
  // within each component).
  plan.component_ptr.assign(m + 1, 0);
  for (std::size_t s = 0; s < n; ++s) ++plan.component_ptr[plan.component[s] + 1];
  for (std::size_t k = 0; k < m; ++k) plan.component_ptr[k + 1] += plan.component_ptr[k];
  plan.members.resize(n);
  {
    std::vector<std::size_t> fill(plan.component_ptr.begin(), plan.component_ptr.end() - 1);
    for (std::size_t s = 0; s < n; ++s) {
      plan.members[fill[plan.component[s]]++] = static_cast<std::uint32_t>(s);
    }
  }

  // Levels: dependencies have smaller component ids, so one ascending pass
  // suffices: level(k) = 1 + max level over cross-component successors.
  plan.level_of.assign(m, 0);
  std::uint32_t max_level = 0;
  for (std::size_t k = 0; k < m; ++k) {
    std::uint32_t level = 0;
    for (const std::uint32_t s : plan.component_members(k)) {
      for (const auto& e : q.row(s)) {
        const std::uint32_t target = plan.component[e.col];
        if (target != k) level = std::max(level, plan.level_of[target] + 1);
      }
    }
    plan.level_of[k] = level;
    max_level = std::max(max_level, level);
  }

  const std::size_t num_levels = m == 0 ? 0 : static_cast<std::size_t>(max_level) + 1;
  plan.level_ptr.assign(num_levels + 1, 0);
  for (std::size_t k = 0; k < m; ++k) ++plan.level_ptr[plan.level_of[k] + 1];
  for (std::size_t l = 0; l < num_levels; ++l) plan.level_ptr[l + 1] += plan.level_ptr[l];
  plan.level_components.resize(m);
  {
    std::vector<std::size_t> fill(plan.level_ptr.begin(), plan.level_ptr.end() - 1);
    for (std::size_t k = 0; k < m; ++k) {
      plan.level_components[fill[plan.level_of[k]]++] = static_cast<std::uint32_t>(k);
    }
  }

  for (std::size_t k = 0; k < m; ++k) {
    const std::size_t size = plan.component_size(k);
    if (size == 1) ++plan.num_singletons;
    plan.largest_component = std::max(plan.largest_component, size);
  }

  static obs::Counter& plans = obs::metrics().counter("linalg.scc.plans");
  static obs::Gauge& components = obs::metrics().gauge("linalg.scc.components");
  static obs::Gauge& singletons = obs::metrics().gauge("linalg.scc.singletons");
  static obs::Gauge& largest = obs::metrics().gauge("linalg.scc.largest_component");
  static obs::Gauge& levels = obs::metrics().gauge("linalg.scc.levels");
  plans.add();
  components.set(static_cast<double>(m));
  singletons.set(static_cast<double>(plan.num_singletons));
  largest.set(static_cast<double>(plan.largest_component));
  levels.set(static_cast<double>(num_levels));
  return plan;
}

}  // namespace recoverd::linalg
