// Strongly connected components of a sparse fixed-point system.
//
// The dependency graph of x = c + Q x has an edge i → j for every stored
// entry Q(i,j) ≠ 0: row i cannot be finalised before x(j) is known. Recovery
// models (Condition 1) funnel into the absorbing Sφ/sT states, so this graph
// is a near-DAG: almost every SCC is a singleton, and the handful of
// nontrivial components are small. The topology-aware solver exploits that
// by solving singleton components in closed form (forward substitution) and
// reserving iterative sweeps for the nontrivial blocks — the standard trick
// of probabilistic model checkers (Hahn & Hartmanns; Bork, Katoen &
// Quatmann).
//
// tarjan_scc is a non-recursive Tarjan decomposition (an explicit frame
// stack, so million-state chains do not overflow the call stack). Component
// ids are assigned in *pop order*, which for Tarjan means reverse
// topological order of the condensation: every edge that leaves a component
// lands in a component with a strictly smaller id. Processing components in
// ascending id order therefore visits dependencies first — exactly the
// order forward substitution needs.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/sparse_matrix.hpp"

namespace recoverd::linalg {

/// Result of the Tarjan decomposition over a square sparse matrix viewed as
/// a directed graph (edge i → j per stored entry; self-loops are allowed
/// and do not make a singleton "nontrivial").
struct SccDecomposition {
  /// state → component id; ids are dense in [0, num_components) and sorted
  /// dependencies-first: an edge i → j with component[i] ≠ component[j]
  /// always has component[j] < component[i].
  std::vector<std::uint32_t> component;
  std::size_t num_components = 0;
};

/// Decomposes the dependency graph of `q` (must be square, < 2^32 rows).
SccDecomposition tarjan_scc(const SparseMatrix& q);

}  // namespace recoverd::linalg
