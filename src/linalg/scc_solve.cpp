// Topology-aware solve of x = c + scale·Q x (declared in gauss_seidel.hpp).
//
// Execution model, and why it is deterministic across worker counts:
//  - levels run strictly in order (a level is a barrier);
//  - within a level, every component touches only its own slice of x and
//    reads states of lower levels, which are final — so components can run
//    on any worker in any order without changing a single bit;
//  - per-component algorithm choice (closed form / block Gauss–Seidel /
//    chunked sweeps) keys on the component size alone, never on `jobs`;
//  - the chunked solver's grid is fixed by the component size, chunks read
//    other chunks' previous iterate, and each writes a disjoint slice of
//    the next one — so distributing chunks across workers cannot change
//    the arithmetic;
//  - statuses/iterations/deltas reduce over components in id order.
#include <algorithm>
#include <cmath>

#include "linalg/convergence.hpp"
#include "linalg/gauss_seidel.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/work_pool.hpp"

namespace recoverd::linalg {
namespace {

struct ComponentOutcome {
  SolveStatus status = SolveStatus::Converged;
  std::size_t iterations = 0;
  double final_delta = 0.0;
  std::string detail;  // set only on failure
};

/// Closed-form forward substitution for a singleton component {i}: every
/// off-diagonal dependency is already final, so
///   x(i) = (c(i) + scale·Σ_{j≠i} Q(i,j)·x(j)) / (1 − scale·Q(i,i)).
/// A fully absorbing self-loop row (denominator ≈ 0) is pinned to 0 — the
/// prepass guarantees c(i) = 0 there, and substochasticity guarantees the
/// row has no other entries.
void solve_singleton(const SparseMatrix& q, std::span<const double> c, double scale,
                     double diag, std::uint32_t i, std::vector<double>& x) {
  const double denom = 1.0 - scale * diag;
  if (denom <= 1e-15) {
    x[i] = 0.0;
    return;
  }
  double acc = c[i];
  for (const auto& e : q.row(i)) {
    if (e.col != i) acc += scale * e.value * x[e.col];
  }
  x[i] = acc / denom;
}

bool block_out_of_range(const std::vector<double>& x,
                        std::span<const std::uint32_t> members, double threshold) {
  return std::any_of(members.begin(), members.end(), [&](std::uint32_t i) {
    return std::abs(x[i]) > threshold;
  });
}

/// Gauss–Seidel sweeps restricted to one nontrivial component. States
/// outside the component act as constants (they are final), states inside
/// update in ascending id order — the same arithmetic as the global solver
/// confined to the block's rows.
ComponentOutcome solve_block_gauss_seidel(const SparseMatrix& q, std::span<const double> c,
                                          double scale, std::span<const double> diag,
                                          std::span<const std::uint32_t> members,
                                          const GaussSeidelOptions& options,
                                          std::vector<double>& x) {
  ComponentOutcome out;
  StallDetector stall(options.stall_window);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    double delta = 0.0;
    for (const std::uint32_t i : members) {
      const double denom = 1.0 - scale * diag[i];
      double candidate;
      if (denom <= 1e-15) {
        candidate = 0.0;
      } else {
        double acc = c[i];
        for (const auto& e : q.row(i)) {
          if (e.col != i) acc += scale * e.value * x[e.col];
        }
        candidate = acc / denom;
      }
      const double updated = x[i] + options.relaxation * (candidate - x[i]);
      delta = std::max(delta, std::abs(updated - x[i]));
      x[i] = updated;
    }
    out.iterations = iter + 1;
    out.final_delta = delta;
    if (!std::isfinite(delta) ||
        block_out_of_range(x, members, options.divergence_threshold)) {
      out.status = SolveStatus::Diverged;
      out.detail = "component iterate exceeded the divergence threshold";
      return out;
    }
    if (delta <= options.tolerance) {
      out.status = SolveStatus::Converged;
      return out;
    }
    if (stall.stalled(iter, delta)) {
      out.status = SolveStatus::Diverged;
      out.detail = "sweep delta stalled over " + std::to_string(options.stall_window) +
                   " iterations";
      return out;
    }
  }
  out.status = SolveStatus::MaxIterations;
  out.detail = "component hit max_iterations";
  return out;
}

/// Chunked sweeps for one large component: Gauss–Seidel (with SOR) inside
/// fixed `chunk`-row chunks of the member list, Jacobi across chunks — i.e.
/// block Jacobi whose diagonal blocks are solved by one in-place GS pass.
/// Retains most of Gauss–Seidel's convergence rate (everything a chunk has
/// already updated this sweep is used immediately) while staying bitwise
/// deterministic under parallel execution: the chunk grid depends only on
/// the component size, chunks read other chunks' *previous* iterate, and
/// each chunk writes a disjoint slice of `next`.
///
/// `rank` is caller-owned scratch of q.rows() entries; rank[i] is filled
/// here with the position of member i inside this component.
ComponentOutcome solve_block_chunked(const SparseMatrix& q, std::span<const double> c,
                                     double scale, std::span<const double> diag,
                                     std::span<const std::uint32_t> members,
                                     std::uint32_t component_id,
                                     std::span<const std::uint32_t> component_of,
                                     const GaussSeidelOptions& options,
                                     std::size_t chunk, std::size_t jobs,
                                     std::vector<std::uint32_t>& rank,
                                     std::vector<double>& x) {
  ComponentOutcome out;
  const std::size_t size = members.size();
  for (std::size_t pos = 0; pos < size; ++pos) {
    rank[members[pos]] = static_cast<std::uint32_t>(pos);
  }
  std::vector<double> next(size, 0.0);
  StallDetector stall(options.stall_window);
  const std::size_t num_chunks = (size + chunk - 1) / chunk;
  const std::size_t workers = std::max<std::size_t>(1, std::min(jobs, num_chunks));
  std::vector<double> chunk_delta(num_chunks, 0.0);

  // Whether a dependency reads this sweep's values ("fresh": same chunk,
  // smaller rank — Gauss–Seidel order within the chunk) or the previous
  // iterate ("stale": everything else) is a static property of the chunk
  // grid, so the split is precomputed once. The sweep loop then runs two
  // tight indexed passes with no branches or rank lookups — the same
  // per-nonzero cost as the global solver.
  struct BlockEntry {
    std::uint32_t idx;  ///< fresh: position in next[]; stale: state id in x
    double value;
  };
  std::vector<BlockEntry> fresh;
  std::vector<BlockEntry> stale;
  std::vector<std::size_t> fresh_ptr(size + 1, 0);
  std::vector<std::size_t> stale_ptr(size + 1, 0);
  for (std::size_t pos = 0; pos < size; ++pos) {
    const std::uint32_t i = members[pos];
    const std::size_t chunk_begin = (pos / chunk) * chunk;
    for (const auto& e : q.row(i)) {
      if (e.col == i) continue;
      const bool is_fresh = component_of[e.col] == component_id &&
                            rank[e.col] >= chunk_begin && rank[e.col] < pos;
      if (is_fresh) {
        fresh.push_back({rank[e.col], e.value});
      } else {
        stale.push_back({static_cast<std::uint32_t>(e.col), e.value});
      }
    }
    fresh_ptr[pos + 1] = fresh.size();
    stale_ptr[pos + 1] = stale.size();
  }

  const auto sweep_chunk = [&](std::size_t ci) {
    double local_delta = 0.0;
    const std::size_t begin = ci * chunk;
    const std::size_t end = std::min(size, begin + chunk);
    for (std::size_t pos = begin; pos < end; ++pos) {
      const std::uint32_t i = members[pos];
      const double denom = 1.0 - scale * diag[i];
      double candidate;
      if (denom <= 1e-15) {
        candidate = 0.0;
      } else {
        double acc = c[i];
        for (std::size_t f = fresh_ptr[pos]; f < fresh_ptr[pos + 1]; ++f) {
          acc += scale * fresh[f].value * next[fresh[f].idx];
        }
        for (std::size_t s = stale_ptr[pos]; s < stale_ptr[pos + 1]; ++s) {
          acc += scale * stale[s].value * x[stale[s].idx];
        }
        candidate = acc / denom;
      }
      const double updated = x[i] + options.relaxation * (candidate - x[i]);
      next[pos] = updated;
      local_delta = std::max(local_delta, std::abs(updated - x[i]));
    }
    chunk_delta[ci] = local_delta;
  };

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    if (workers <= 1) {
      for (std::size_t ci = 0; ci < num_chunks; ++ci) sweep_chunk(ci);
    } else {
      // One shared-pool dispatch per sweep instead of a thread team per
      // sweep; the strided chunk→task assignment is unchanged and chunks
      // write disjoint `next`/`chunk_delta` slices, so iterates stay
      // bit-identical across --solver-jobs (the delta reduction below runs
      // on the caller in fixed chunk order).
      util::WorkPool::instance().run(workers, [&](std::size_t t) {
        for (std::size_t ci = t; ci < num_chunks; ci += workers) sweep_chunk(ci);
      });
    }
    double delta = 0.0;
    for (std::size_t ci = 0; ci < num_chunks; ++ci) {
      delta = std::max(delta, chunk_delta[ci]);
    }
    for (std::size_t pos = 0; pos < size; ++pos) x[members[pos]] = next[pos];
    out.iterations = iter + 1;
    out.final_delta = delta;
    if (!std::isfinite(delta) ||
        block_out_of_range(x, members, options.divergence_threshold)) {
      out.status = SolveStatus::Diverged;
      out.detail = "component iterate exceeded the divergence threshold";
      return out;
    }
    if (delta <= options.tolerance) {
      out.status = SolveStatus::Converged;
      return out;
    }
    if (stall.stalled(iter, delta)) {
      out.status = SolveStatus::Diverged;
      out.detail = "sweep delta stalled over " + std::to_string(options.stall_window) +
                   " iterations";
      return out;
    }
  }
  out.status = SolveStatus::MaxIterations;
  out.detail = "component hit max_iterations";
  return out;
}

struct SccSolveInstruments {
  obs::Counter& solves;
  obs::Counter& closed_form_states;
  obs::Counter& iterative_states;
  obs::Counter& block_jacobi_components;
  obs::Gauge& jobs;
  obs::Gauge& levels;
  obs::Histogram& solve_ms;

  static SccSolveInstruments& get() {
    static SccSolveInstruments instruments{
        obs::metrics().counter("linalg.scc_solve.solves"),
        obs::metrics().counter("linalg.scc_solve.closed_form_states"),
        obs::metrics().counter("linalg.scc_solve.iterative_states"),
        obs::metrics().counter("linalg.scc_solve.block_jacobi_components"),
        obs::metrics().gauge("linalg.scc_solve.jobs"),
        obs::metrics().gauge("linalg.scc_solve.levels"),
        obs::metrics().histogram("linalg.scc_solve.ms",
                                 obs::exponential_buckets(0.001, 2.0, 26)),
    };
    return instruments;
  }
};

void check_scc_inputs(const SparseMatrix& q, std::span<const double> c,
                      const GaussSeidelOptions& options, const SccSolveOptions& scc,
                      const SolvePlan& plan) {
  RD_EXPECTS(q.rows() == q.cols(), "solve_fixed_point_scc: Q must be square");
  RD_EXPECTS(c.size() == q.rows(), "solve_fixed_point_scc: dimension mismatch");
  RD_EXPECTS(options.relaxation > 0.0 && options.relaxation < 2.0,
             "solve_fixed_point_scc: relaxation must lie in (0, 2)");
  RD_EXPECTS(options.tolerance > 0.0, "solve_fixed_point_scc: tolerance must be positive");
  RD_EXPECTS(scc.jobs >= 1, "solve_fixed_point_scc: jobs must be >= 1");
  RD_EXPECTS(scc.scale > 0.0 && scc.scale <= 1.0,
             "solve_fixed_point_scc: scale must lie in (0, 1]");
  RD_EXPECTS(scc.block_jacobi_threshold >= 2,
             "solve_fixed_point_scc: block_jacobi_threshold must be >= 2");
  RD_EXPECTS(plan.component.size() == q.rows() && plan.members.size() == q.rows(),
             "solve_fixed_point_scc: plan does not match the matrix");
}

SolveResult solve_fixed_point_scc_impl(const SparseMatrix& q, std::span<const double> c,
                                       const GaussSeidelOptions& options,
                                       const SccSolveOptions& scc, const SolvePlan& plan) {
  SccSolveInstruments& instruments = SccSolveInstruments::get();
  obs::TraceSpan solve_span("scc.solve", obs::TraceLevel::Decide);
  solve_span.arg("levels", static_cast<double>(plan.num_levels()));
  solve_span.arg("components", static_cast<double>(plan.num_components));
  obs::ScopedTimer timer(instruments.solve_ms);
  instruments.solves.add();
  instruments.jobs.set(static_cast<double>(scc.jobs));
  instruments.levels.set(static_cast<double>(plan.num_levels()));

  const std::size_t n = q.rows();
  SolveResult result;
  result.x.assign(n, 0.0);
  result.status = SolveStatus::Converged;
  if (n == 0) return result;

  const SystemPrepass prepass = analyze_fixed_point_system(q, c, scc.scale);
  if (!prepass.ok) {
    result.status = SolveStatus::Diverged;
    result.detail = prepass.message();
    return result;
  }

  std::vector<ComponentOutcome> outcomes(plan.num_components);
  std::uint64_t closed_form = 0;
  std::uint64_t iterative = 0;
  std::uint64_t jacobi_components = 0;
  // Scratch for the chunked solver's member-rank lookup; shared across the
  // (sequentially executed) large components.
  std::vector<std::uint32_t> rank;

  const auto solve_component = [&](std::uint32_t k) {
    const auto members = plan.component_members(k);
    if (members.size() == 1) {
      solve_singleton(q, c, scc.scale, prepass.diag[members[0]], members[0], result.x);
      outcomes[k].iterations = 1;
    } else if (members.size() < scc.block_jacobi_threshold) {
      outcomes[k] = solve_block_gauss_seidel(q, c, scc.scale, prepass.diag, members,
                                             options, result.x);
    } else {
      if (rank.empty()) rank.assign(n, 0);
      outcomes[k] = solve_block_chunked(q, c, scc.scale, prepass.diag, members, k,
                                        plan.component, options,
                                        scc.block_jacobi_threshold, scc.jobs, rank,
                                        result.x);
    }
  };

  for (std::size_t l = 0; l < plan.num_levels(); ++l) {
    const auto level = plan.level(l);
    // Per-level spans carry the SCC count; Full level only, since near-DAG
    // plans have tens of thousands of levels (the ring buffer keeps the
    // most recent window if they overflow).
    obs::TraceSpan level_span("scc.level", obs::TraceLevel::Full);
    level_span.arg("level", static_cast<double>(l));
    level_span.arg("components", static_cast<double>(level.size()));
    // Large block-Jacobi components parallelise internally, so they run one
    // at a time; everything else fans across the level's workers.
    std::vector<std::uint32_t> small;
    std::vector<std::uint32_t> large;
    for (const std::uint32_t k : level) {
      (plan.component_size(k) >= scc.block_jacobi_threshold ? large : small).push_back(k);
    }

    // Fan a level across threads only when it carries enough components to
    // amortise the spawn cost — near-DAG plans have tens of thousands of
    // narrow levels, where per-level threads would dominate the solve. The
    // gate depends only on the plan, never on `jobs`, and workers partition
    // the component list without touching the arithmetic, so results stay
    // bitwise identical either way.
    const std::size_t workers =
        small.size() >= 128 ? std::min(scc.jobs, small.size() / 64) : 1;
    if (workers <= 1) {
      for (const std::uint32_t k : small) solve_component(k);
    } else {
      // The shared pool keeps its team across the (often tens of thousands
      // of) condensation levels — this site used to respawn a thread team
      // per level. Task→component striding is unchanged; components write
      // disjoint x/outcome slices and the level reduction below stays on
      // the caller in component-id order.
      util::WorkPool::instance().run(workers, [&](std::size_t t) {
        for (std::size_t idx = t; idx < small.size(); idx += workers) {
          solve_component(small[idx]);
        }
      });
    }
    for (const std::uint32_t k : large) solve_component(k);

    // Deterministic level reduction in component-id order (levels list
    // components ascending).
    bool failed = false;
    for (const std::uint32_t k : level) {
      const std::size_t size = plan.component_size(k);
      (size == 1 ? closed_form : iterative) += size;
      if (size >= scc.block_jacobi_threshold) ++jacobi_components;
      result.iterations = std::max(result.iterations, outcomes[k].iterations);
      result.final_delta = std::max(result.final_delta, outcomes[k].final_delta);
      if (!failed && outcomes[k].status != SolveStatus::Converged) {
        failed = true;
        result.status = outcomes[k].status;
        result.detail = "component " + std::to_string(k) + " (size " +
                        std::to_string(size) + ", level " + std::to_string(l) +
                        "): " + outcomes[k].detail;
      }
    }
    if (failed) break;  // dependents of a failed component would be garbage
  }

  instruments.closed_form_states.add(closed_form);
  instruments.iterative_states.add(iterative);
  instruments.block_jacobi_components.add(jacobi_components);
  return result;
}

}  // namespace

SolveResult solve_fixed_point_scc(const SparseMatrix& q, std::span<const double> c,
                                  const GaussSeidelOptions& options,
                                  const SccSolveOptions& scc, const SolvePlan& plan) {
  check_scc_inputs(q, c, options, scc, plan);
  return detail::run_with_relaxation_fallback(
      q, c, options, scc.scale, [&](const GaussSeidelOptions& attempt) {
        return solve_fixed_point_scc_impl(q, c, attempt, scc, plan);
      });
}

SolveResult solve_fixed_point_scc(const SparseMatrix& q, std::span<const double> c,
                                  const GaussSeidelOptions& options,
                                  const SccSolveOptions& scc) {
  const SolvePlan plan = build_solve_plan(q);
  check_scc_inputs(q, c, options, scc, plan);
  return detail::run_with_relaxation_fallback(
      q, c, options, scc.scale, [&](const GaussSeidelOptions& attempt) {
        return solve_fixed_point_scc_impl(q, c, attempt, scc, plan);
      });
}

}  // namespace recoverd::linalg
