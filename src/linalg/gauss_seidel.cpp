#include "linalg/gauss_seidel.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/convergence.hpp"
#include "util/check.hpp"

namespace recoverd::linalg {

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::Converged: return "converged";
    case SolveStatus::MaxIterations: return "max-iterations";
    case SolveStatus::Diverged: return "diverged";
  }
  return "unknown";
}

namespace {
void check_inputs(const SparseMatrix& q, std::span<const double> c,
                  const GaussSeidelOptions& options) {
  RD_EXPECTS(q.rows() == q.cols(), "solve_fixed_point: Q must be square");
  RD_EXPECTS(c.size() == q.rows(), "solve_fixed_point: dimension mismatch");
  RD_EXPECTS(options.relaxation > 0.0 && options.relaxation < 2.0,
             "solve_fixed_point: relaxation must lie in (0, 2)");
  RD_EXPECTS(options.tolerance > 0.0, "solve_fixed_point: tolerance must be positive");
}
}  // namespace

SolveResult solve_fixed_point(const SparseMatrix& q, std::span<const double> c,
                              const GaussSeidelOptions& options) {
  check_inputs(q, c, options);
  const std::size_t n = q.rows();

  SolveResult result;
  result.x.assign(n, 0.0);

  // Cache diagonal to apply the implicit (I − Q) split. A fully absorbing
  // row with a nonzero source (x_i = c_i + x_i, c_i ≠ 0) has no finite
  // solution — report Diverged immediately, the §3.1 signal that the model
  // needs a convergence transform.
  std::vector<double> diag(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& e : q.row(i)) {
      if (e.col == i) diag[i] = e.value;
    }
    if (diag[i] >= 1.0 - 1e-15 && c[i] != 0.0) {
      result.status = SolveStatus::Diverged;
      return result;
    }
  }
  auto& x = result.x;
  StallDetector stall(options.stall_window);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double denom = 1.0 - diag[i];
      double candidate;
      if (denom <= 1e-15) {
        // Fully absorbing self-loop row: the fixed point is forced to 0
        // (checked above that c(i) == 0).
        candidate = 0.0;
      } else {
        double acc = c[i];
        for (const auto& e : q.row(i)) {
          if (e.col != i) acc += e.value * x[e.col];
        }
        candidate = acc / denom;
      }
      const double updated = x[i] + options.relaxation * (candidate - x[i]);
      delta = std::max(delta, std::abs(updated - x[i]));
      x[i] = updated;
    }
    result.iterations = iter + 1;
    result.final_delta = delta;
    if (!std::isfinite(delta) ||
        std::any_of(x.begin(), x.end(),
                    [&](double v) { return std::abs(v) > options.divergence_threshold; })) {
      result.status = SolveStatus::Diverged;
      return result;
    }
    if (delta <= options.tolerance) {
      result.status = SolveStatus::Converged;
      return result;
    }
    if (stall.stalled(iter, delta)) {
      result.status = SolveStatus::Diverged;
      return result;
    }
  }
  result.status = SolveStatus::MaxIterations;
  return result;
}

SolveResult solve_fixed_point_jacobi(const SparseMatrix& q, std::span<const double> c,
                                     const GaussSeidelOptions& options) {
  check_inputs(q, c, options);
  const std::size_t n = q.rows();

  SolveResult result;
  result.x.assign(n, 0.0);
  std::vector<double> next(n, 0.0);
  StallDetector stall(options.stall_window);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double acc = c[i];
      for (const auto& e : q.row(i)) acc += e.value * result.x[e.col];
      next[i] = acc;
      delta = std::max(delta, std::abs(next[i] - result.x[i]));
    }
    result.x.swap(next);
    result.iterations = iter + 1;
    result.final_delta = delta;
    if (!std::isfinite(delta) ||
        std::any_of(result.x.begin(), result.x.end(), [&](double v) {
          return std::abs(v) > options.divergence_threshold;
        })) {
      result.status = SolveStatus::Diverged;
      return result;
    }
    if (delta <= options.tolerance) {
      result.status = SolveStatus::Converged;
      return result;
    }
    if (stall.stalled(iter, delta)) {
      result.status = SolveStatus::Diverged;
      return result;
    }
  }
  result.status = SolveStatus::MaxIterations;
  return result;
}

}  // namespace recoverd::linalg
