#include "linalg/gauss_seidel.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/convergence.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace recoverd::linalg {

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::Converged: return "converged";
    case SolveStatus::MaxIterations: return "max-iterations";
    case SolveStatus::Diverged: return "diverged";
  }
  return "unknown";
}

namespace {
// Solver instruments (metric names in DESIGN.md §7). The residual
// trajectory histogram records log10 of every sweep's max-norm delta, which
// reconstructs the convergence curve of Fig. 5-style analyses without
// storing per-sweep arrays.
struct SolverInstruments {
  obs::Counter& solves;
  obs::Counter& sweeps;
  obs::Counter& converged;
  obs::Counter& diverged;
  obs::Counter& exhausted;
  obs::Histogram& sweeps_per_solve;
  obs::Histogram& residual_log10;
  obs::Gauge& relaxation;
  obs::Gauge& final_delta;

  static SolverInstruments& get() {
    static SolverInstruments instruments{
        obs::metrics().counter("linalg.gauss_seidel.solves"),
        obs::metrics().counter("linalg.gauss_seidel.sweeps"),
        obs::metrics().counter("linalg.gauss_seidel.converged"),
        obs::metrics().counter("linalg.gauss_seidel.diverged"),
        obs::metrics().counter("linalg.gauss_seidel.max_iterations"),
        obs::metrics().histogram("linalg.gauss_seidel.sweeps_per_solve",
                                 obs::exponential_buckets(1.0, 2.0, 20)),
        obs::metrics().histogram("linalg.gauss_seidel.residual_log10",
                                 obs::linear_buckets(-14.0, 1.0, 18)),
        obs::metrics().gauge("linalg.gauss_seidel.relaxation"),
        obs::metrics().gauge("linalg.gauss_seidel.final_delta"),
    };
    return instruments;
  }

  void record_sweep(double delta) {
    sweeps.add();
    residual_log10.observe(delta > 0.0 && std::isfinite(delta) ? std::log10(delta)
                                                               : -20.0);
  }

  void record_solve(const SolveResult& result, const GaussSeidelOptions& options) {
    solves.add();
    sweeps_per_solve.observe(static_cast<double>(result.iterations));
    relaxation.set(options.relaxation);
    final_delta.set(result.final_delta);
    switch (result.status) {
      case SolveStatus::Converged: converged.add(); break;
      case SolveStatus::Diverged: diverged.add(); break;
      case SolveStatus::MaxIterations: exhausted.add(); break;
    }
  }
};

void check_inputs(const SparseMatrix& q, std::span<const double> c,
                  const GaussSeidelOptions& options) {
  RD_EXPECTS(q.rows() == q.cols(), "solve_fixed_point: Q must be square");
  RD_EXPECTS(c.size() == q.rows(), "solve_fixed_point: dimension mismatch");
  RD_EXPECTS(options.relaxation > 0.0 && options.relaxation < 2.0,
             "solve_fixed_point: relaxation must lie in (0, 2)");
  RD_EXPECTS(options.tolerance > 0.0, "solve_fixed_point: tolerance must be positive");
}

std::string stall_detail(const GaussSeidelOptions& options) {
  return "sweep delta stalled over " + std::to_string(options.stall_window) +
         " iterations";
}
}  // namespace

std::string SystemPrepass::message() const {
  if (ok) return {};
  return "absorbing row with nonzero source at state " +
         std::to_string(offending_state) +
         " (x = c + x has no finite solution; apply a convergence transform, "
         "see §3.1)";
}

SystemPrepass analyze_fixed_point_system(const SparseMatrix& q,
                                         std::span<const double> c, double scale) {
  RD_EXPECTS(q.rows() == q.cols(), "analyze_fixed_point_system: Q must be square");
  RD_EXPECTS(c.size() == q.rows(), "analyze_fixed_point_system: dimension mismatch");
  const std::size_t n = q.rows();
  SystemPrepass prepass;
  prepass.diag.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& e : q.row(i)) {
      if (e.col == i) prepass.diag[i] = e.value;
    }
    if (prepass.ok && scale * prepass.diag[i] >= 1.0 - 1e-15 && c[i] != 0.0) {
      prepass.ok = false;
      prepass.offending_state = i;
    }
  }
  return prepass;
}

namespace {
SolveResult solve_fixed_point_impl(const SparseMatrix& q, std::span<const double> c,
                                   const GaussSeidelOptions& options) {
  const std::size_t n = q.rows();

  SolveResult result;
  result.x.assign(n, 0.0);

  // The shared prepass caches the diagonal for the implicit (I − Q) split
  // and rejects absorbing rows with a nonzero source (x_i = c_i + x_i has no
  // finite solution) — the §3.1 signal that the model needs a convergence
  // transform.
  const SystemPrepass prepass = analyze_fixed_point_system(q, c);
  if (!prepass.ok) {
    result.status = SolveStatus::Diverged;
    result.detail = prepass.message();
    return result;
  }
  const std::vector<double>& diag = prepass.diag;
  auto& x = result.x;
  StallDetector stall(options.stall_window);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double denom = 1.0 - diag[i];
      double candidate;
      if (denom <= 1e-15) {
        // Fully absorbing self-loop row: the fixed point is forced to 0
        // (checked above that c(i) == 0).
        candidate = 0.0;
      } else {
        double acc = c[i];
        for (const auto& e : q.row(i)) {
          if (e.col != i) acc += e.value * x[e.col];
        }
        candidate = acc / denom;
      }
      const double updated = x[i] + options.relaxation * (candidate - x[i]);
      delta = std::max(delta, std::abs(updated - x[i]));
      x[i] = updated;
    }
    result.iterations = iter + 1;
    result.final_delta = delta;
    SolverInstruments::get().record_sweep(delta);
    if (!std::isfinite(delta) ||
        std::any_of(x.begin(), x.end(),
                    [&](double v) { return std::abs(v) > options.divergence_threshold; })) {
      result.status = SolveStatus::Diverged;
      return result;
    }
    if (delta <= options.tolerance) {
      result.status = SolveStatus::Converged;
      return result;
    }
    if (stall.stalled(iter, delta)) {
      result.status = SolveStatus::Diverged;
      result.detail = stall_detail(options);
      return result;
    }
  }
  result.status = SolveStatus::MaxIterations;
  return result;
}
}  // namespace

SolveResult solve_fixed_point(const SparseMatrix& q, std::span<const double> c,
                              const GaussSeidelOptions& options) {
  check_inputs(q, c, options);
  return detail::run_with_relaxation_fallback(
      q, c, options, 1.0, [&](const GaussSeidelOptions& attempt) {
        SolveResult result = solve_fixed_point_impl(q, c, attempt);
        SolverInstruments::get().record_solve(result, attempt);
        return result;
      });
}

namespace {
SolveResult solve_fixed_point_jacobi_impl(const SparseMatrix& q,
                                          std::span<const double> c,
                                          const GaussSeidelOptions& options) {
  const std::size_t n = q.rows();

  SolveResult result;
  result.x.assign(n, 0.0);

  // Same shared prepass as the Gauss–Seidel path: the Jacobi sweep keeps the
  // diagonal inside the sum, but an absorbing row with a nonzero source
  // still has no finite solution — detect it up front instead of drifting
  // until the stall window fires.
  const SystemPrepass prepass = analyze_fixed_point_system(q, c);
  if (!prepass.ok) {
    result.status = SolveStatus::Diverged;
    result.detail = prepass.message();
    return result;
  }

  std::vector<double> next(n, 0.0);
  StallDetector stall(options.stall_window);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double acc = c[i];
      for (const auto& e : q.row(i)) acc += e.value * result.x[e.col];
      next[i] = acc;
      delta = std::max(delta, std::abs(next[i] - result.x[i]));
    }
    result.x.swap(next);
    result.iterations = iter + 1;
    result.final_delta = delta;
    SolverInstruments::get().record_sweep(delta);
    if (!std::isfinite(delta) ||
        std::any_of(result.x.begin(), result.x.end(), [&](double v) {
          return std::abs(v) > options.divergence_threshold;
        })) {
      result.status = SolveStatus::Diverged;
      return result;
    }
    if (delta <= options.tolerance) {
      result.status = SolveStatus::Converged;
      return result;
    }
    if (stall.stalled(iter, delta)) {
      result.status = SolveStatus::Diverged;
      result.detail = stall_detail(options);
      return result;
    }
  }
  result.status = SolveStatus::MaxIterations;
  return result;
}
}  // namespace

SolveResult solve_fixed_point_jacobi(const SparseMatrix& q, std::span<const double> c,
                                     const GaussSeidelOptions& options) {
  check_inputs(q, c, options);
  return detail::run_with_relaxation_fallback(
      q, c, options, 1.0, [&](const GaussSeidelOptions& attempt) {
        SolveResult result = solve_fixed_point_jacobi_impl(q, c, attempt);
        SolverInstruments::get().record_solve(result, attempt);
        return result;
      });
}

namespace detail {
void note_relaxation_fallback(double relaxation, const std::string& detail) {
  static obs::Counter& fallbacks =
      obs::metrics().counter("linalg.gauss_seidel.relaxation_fallbacks");
  fallbacks.add();
  log_warn("gauss-seidel: solve with relaxation ", relaxation, " diverged (",
           detail.empty() ? "iterate exceeded the divergence threshold" : detail,
           "); retrying with relaxation 1.0");
}
}  // namespace detail

}  // namespace recoverd::linalg
