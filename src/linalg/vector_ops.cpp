#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace recoverd::linalg {

double dot(std::span<const double> a, std::span<const double> b) {
  RD_EXPECTS(a.size() == b.size(), "dot: length mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  RD_EXPECTS(x.size() == y.size(), "axpy: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

std::vector<double> elementwise_max(std::span<const double> a, std::span<const double> b) {
  RD_EXPECTS(a.size() == b.size(), "elementwise_max: length mismatch");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::max(a[i], b[i]);
  return out;
}

double max_abs(std::span<const double> a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::abs(v));
  return m;
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  RD_EXPECTS(a.size() == b.size(), "max_abs_diff: length mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

double sum(std::span<const double> a) {
  double acc = 0.0;
  for (double v : a) acc += v;
  return acc;
}

void normalize_probability(std::span<double> a) {
  const double total = sum(a);
  RD_EXPECTS(total > 0.0 && std::isfinite(total),
             "normalize_probability: entries must have a positive finite sum");
  for (double& v : a) v /= total;
}

bool approx_equal(std::span<const double> a, std::span<const double> b, double tol) {
  if (a.size() != b.size()) return false;
  return max_abs_diff(a, b) <= tol;
}

bool dominates(std::span<const double> a, std::span<const double> b, double tol) {
  RD_EXPECTS(a.size() == b.size(), "dominates: length mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i] - tol) return false;
  }
  return true;
}

}  // namespace recoverd::linalg
