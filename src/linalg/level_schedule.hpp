// Topological level scheduling of an SCC condensation.
//
// A SolvePlan is the reusable topology artifact of a fixed-point system
// x = c + Q x: the Tarjan decomposition of Q's dependency graph plus a level
// schedule of its (acyclic) condensation. Level 0 holds the components with
// no cross-component dependencies (the absorbing Sφ/sT sinks of recovery
// models); level L holds components whose deepest dependency sits at level
// L − 1. Components within one level are mutually independent, so the solver
// can run them on parallel workers — each writes a disjoint slice of x and
// reads only levels already finalised, which keeps the result bitwise
// identical for every worker count.
//
// The plan depends only on Q's sparsity pattern, not its values, so one plan
// serves every discount factor β and every right-hand side c — assemble
// once, solve many times.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/scc.hpp"
#include "linalg/sparse_matrix.hpp"

namespace recoverd::linalg {

/// Reusable topology of a fixed-point system (see file comment).
struct SolvePlan {
  /// state → component id, dependencies-first (see SccDecomposition).
  std::vector<std::uint32_t> component;
  std::size_t num_components = 0;

  /// States grouped by component: members of component k are
  /// members[component_ptr[k] .. component_ptr[k+1]), ascending state id.
  std::vector<std::uint32_t> members;
  std::vector<std::size_t> component_ptr;  ///< num_components + 1 offsets

  /// component → level in the condensation schedule.
  std::vector<std::uint32_t> level_of;
  /// Components grouped by level: level L spans
  /// level_components[level_ptr[L] .. level_ptr[L+1]), ascending id.
  std::vector<std::uint32_t> level_components;
  std::vector<std::size_t> level_ptr;  ///< num_levels() + 1 offsets

  std::size_t num_singletons = 0;     ///< components of size 1 (closed form)
  std::size_t largest_component = 0;  ///< size of the biggest SCC

  std::size_t num_levels() const {
    return level_ptr.empty() ? 0 : level_ptr.size() - 1;
  }
  std::size_t component_size(std::size_t k) const {
    return component_ptr[k + 1] - component_ptr[k];
  }
  std::span<const std::uint32_t> component_members(std::size_t k) const {
    return {members.data() + component_ptr[k], component_size(k)};
  }
  std::span<const std::uint32_t> level(std::size_t l) const {
    return {level_components.data() + level_ptr[l], level_ptr[l + 1] - level_ptr[l]};
  }
};

/// Builds the SCC condensation and level schedule of `q` (square). Cost is
/// O(nnz); records component/level statistics in the `linalg.scc.*` metrics.
SolvePlan build_solve_plan(const SparseMatrix& q);

}  // namespace recoverd::linalg
