// Small dense matrices with LU factorisation.
//
// Used as a verification oracle for the iterative Gauss–Seidel solver and
// for exact solves of tiny textbook models (Figure 1(a)/2 of the paper).
// Not intended for the large state spaces of §4.3 — those go through the
// sparse iterative path.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace recoverd::linalg {

/// Row-major dense matrix.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static DenseMatrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t i, std::size_t j);
  double at(std::size_t i, std::size_t j) const;

  std::vector<double> multiply(std::span<const double> x) const;

  DenseMatrix add(const DenseMatrix& other) const;
  DenseMatrix subtract(const DenseMatrix& other) const;
  DenseMatrix scale(double alpha) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// LU factorisation with partial pivoting of a square matrix.
/// Throws InvariantError on (numerical) singularity.
class LuFactorization {
 public:
  explicit LuFactorization(const DenseMatrix& a);

  /// Solves A x = b.
  std::vector<double> solve(std::span<const double> b) const;

  /// |det A| as a byproduct of the factorisation (for conditioning tests).
  double abs_determinant() const;

 private:
  std::size_t n_;
  std::vector<double> lu_;       // packed LU, row-major
  std::vector<std::size_t> piv_; // row permutation
};

}  // namespace recoverd::linalg
