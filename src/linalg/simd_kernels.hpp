// AVX2 variants of the hot vector kernels, bitwise identical to their
// scalar references (DESIGN.md §13).
//
// The parity argument, shared by every kernel here: IEEE-754 requires each
// individual +, ×, ÷ to be correctly rounded, so a vector lane performing
// the same operations on the same values in the same order as a scalar
// loop produces the same bits. These kernels therefore vectorize only
//
//  - across *independent accumulators* — four beliefs' dot products, or
//    four observations' likelihood sums, each lane owning one accumulator
//    whose terms arrive in exactly the scalar order — or
//  - across *elementwise* maps (products, divisions) with no reduction at
//    all.
//
// Nothing reassociates a single sum, and no FMA can be contracted: the
// functions are compiled with `target("avx2")` only (no FMA ISA), so the
// compiler has no fused instruction to emit. The scalar tails inside run
// the same double arithmetic as the reference loops.
//
// Callers dispatch on simd::active_mode() and must keep their scalar path
// as the reference; tests/util_simd_test.cpp holds each pair equal bitwise
// on random inputs.
#pragma once

#include <cstddef>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RECOVERD_SIMD_KERNELS_X86 1
#include <immintrin.h>
#else
#define RECOVERD_SIMD_KERNELS_X86 0
#endif

namespace recoverd::linalg::simd {

#if RECOVERD_SIMD_KERNELS_X86

/// Four dot products against one shared vector: out[l] = Σ_i a[i]·tile[4i+l]
/// for lanes l = 0..3. `tile` is an interleaved 4-lane layout (element i of
/// lane l at tile[4i+l], e.g. four transposed beliefs); each lane's sum
/// accumulates in ascending i — the exact order of linalg::dot.
__attribute__((target("avx2"))) inline void dot4(const double* a, const double* tile,
                                                 std::size_t n, double out[4]) {
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n; ++i) {
    const __m256d lanes = _mm256_loadu_pd(tile + 4 * i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(a[i]), lanes));
  }
  _mm256_storeu_pd(out, acc);
}

/// w[o] += row[o] · scale for o = 0..n-1 — the successor-expansion inner
/// loop (one predicted-state term added into every observation likelihood at
/// once). Each w[o] is an independent accumulator, so vectorizing across o
/// keeps every sum in its scalar order.
__attribute__((target("avx2"))) inline void accumulate_scaled(double* w, const double* row,
                                                              double scale,
                                                              std::size_t n) {
  const __m256d vs = _mm256_set1_pd(scale);
  std::size_t o = 0;
  for (; o + 4 <= n; o += 4) {
    const __m256d cur = _mm256_loadu_pd(w + o);
    const __m256d term = _mm256_mul_pd(_mm256_loadu_pd(row + o), vs);
    _mm256_storeu_pd(w + o, _mm256_add_pd(cur, term));
  }
  for (; o < n; ++o) w[o] += row[o] * scale;
}

/// out[i] = a[i] · b[i] — elementwise, no reduction (posterior mass rows).
__attribute__((target("avx2"))) inline void multiply_elementwise(double* out,
                                                                 const double* a,
                                                                 const double* b,
                                                                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

/// v[i] /= divisor — elementwise, correctly rounded per element exactly as
/// the scalar division (Bayes-update normalisation).
__attribute__((target("avx2"))) inline void divide_in_place(double* v, double divisor,
                                                            std::size_t n) {
  const __m256d vd = _mm256_set1_pd(divisor);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(v + i, _mm256_div_pd(_mm256_loadu_pd(v + i), vd));
  }
  for (; i < n; ++i) v[i] /= divisor;
}

#endif  // RECOVERD_SIMD_KERNELS_X86

/// Gathers four row-major rows into the dot4() interleaved tile:
/// tile[4i+l] = rows[l][i]. Pure data movement (no arithmetic), so it needs
/// no AVX2 gate.
inline void transpose4(const double* r0, const double* r1, const double* r2,
                       const double* r3, std::size_t n, double* tile) {
  for (std::size_t i = 0; i < n; ++i) {
    tile[4 * i + 0] = r0[i];
    tile[4 * i + 1] = r1[i];
    tile[4 * i + 2] = r2[i];
    tile[4 * i + 3] = r3[i];
  }
}

}  // namespace recoverd::linalg::simd
