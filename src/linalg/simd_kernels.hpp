// AVX2 and AVX-512 variants of the hot vector kernels, bitwise identical
// to their scalar references (DESIGN.md §13, §16).
//
// The parity argument, shared by every kernel here: IEEE-754 requires each
// individual +, ×, ÷ to be correctly rounded, so a vector lane performing
// the same operations on the same values in the same order as a scalar
// loop produces the same bits. These kernels therefore vectorize only
//
//  - across *independent accumulators* — four (AVX2) or eight (AVX-512)
//    beliefs' dot products, or as many observations' likelihood sums, each
//    lane owning one accumulator whose terms arrive in exactly the scalar
//    order — or
//  - across *elementwise* maps (products, divisions) with no reduction at
//    all.
//
// Nothing reassociates a single sum, and no FMA can be contracted: the
// functions are compiled with `target("avx2")` / `target("avx512f")` only
// (no FMA contraction is licensed at -O2 without -ffast-math, and the AVX2
// functions lack the FMA ISA outright). The scalar tails inside run the
// same double arithmetic as the reference loops.
//
// Callers dispatch on simd::active_mode() and must keep their scalar path
// as the reference; tests/util_simd_test.cpp holds each pair equal bitwise
// on random inputs.
#pragma once

#include <cstddef>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RECOVERD_SIMD_KERNELS_X86 1
#include <immintrin.h>
#else
#define RECOVERD_SIMD_KERNELS_X86 0
#endif

// AVX-512F carries fused multiply-add instructions (plain AVX2 does not),
// so the avx512 functions must explicitly forbid contraction of their
// mul+add intrinsic chains — GCC at -O2 otherwise emits vfmadd and breaks
// bitwise parity with the scalar reference. GCC takes a function-level
// optimize attribute; Clang takes `#pragma clang fp contract(off)` in the
// body (RECOVERD_FP_NO_CONTRACT below).
#if defined(__clang__)
#define RECOVERD_AVX512_TARGET __attribute__((target("avx512f")))
#define RECOVERD_FP_NO_CONTRACT _Pragma("clang fp contract(off)")
#elif defined(__GNUC__)
#define RECOVERD_AVX512_TARGET \
  __attribute__((target("avx512f"), optimize("fp-contract=off")))
#define RECOVERD_FP_NO_CONTRACT
#else
#define RECOVERD_AVX512_TARGET
#define RECOVERD_FP_NO_CONTRACT
#endif

namespace recoverd::linalg::simd {

#if RECOVERD_SIMD_KERNELS_X86

/// Four dot products against one shared vector: out[l] = Σ_i a[i]·tile[4i+l]
/// for lanes l = 0..3. `tile` is an interleaved 4-lane layout (element i of
/// lane l at tile[4i+l], e.g. four transposed beliefs); each lane's sum
/// accumulates in ascending i — the exact order of linalg::dot.
__attribute__((target("avx2"))) inline void dot4(const double* a, const double* tile,
                                                 std::size_t n, double out[4]) {
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n; ++i) {
    const __m256d lanes = _mm256_loadu_pd(tile + 4 * i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(a[i]), lanes));
  }
  _mm256_storeu_pd(out, acc);
}

/// w[o] += row[o] · scale for o = 0..n-1 — the successor-expansion inner
/// loop (one predicted-state term added into every observation likelihood at
/// once). Each w[o] is an independent accumulator, so vectorizing across o
/// keeps every sum in its scalar order.
__attribute__((target("avx2"))) inline void accumulate_scaled(double* w, const double* row,
                                                              double scale,
                                                              std::size_t n) {
  const __m256d vs = _mm256_set1_pd(scale);
  std::size_t o = 0;
  for (; o + 4 <= n; o += 4) {
    const __m256d cur = _mm256_loadu_pd(w + o);
    const __m256d term = _mm256_mul_pd(_mm256_loadu_pd(row + o), vs);
    _mm256_storeu_pd(w + o, _mm256_add_pd(cur, term));
  }
  for (; o < n; ++o) w[o] += row[o] * scale;
}

/// out[i] = a[i] · b[i] — elementwise, no reduction (posterior mass rows).
__attribute__((target("avx2"))) inline void multiply_elementwise(double* out,
                                                                 const double* a,
                                                                 const double* b,
                                                                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

/// v[i] /= divisor — elementwise, correctly rounded per element exactly as
/// the scalar division (Bayes-update normalisation).
__attribute__((target("avx2"))) inline void divide_in_place(double* v, double divisor,
                                                            std::size_t n) {
  const __m256d vd = _mm256_set1_pd(divisor);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(v + i, _mm256_div_pd(_mm256_loadu_pd(v + i), vd));
  }
  for (; i < n; ++i) v[i] /= divisor;
}

/// Eight dot products against one shared vector: out[l] = Σ_i a[i]·tile[8i+l]
/// for lanes l = 0..7 — the AVX-512 widening of dot4(). Each lane's sum
/// accumulates in ascending i, the exact order of linalg::dot.
RECOVERD_AVX512_TARGET inline void dot8(const double* a, const double* tile,
                                        std::size_t n, double out[8]) {
  RECOVERD_FP_NO_CONTRACT
  __m512d acc = _mm512_setzero_pd();
  for (std::size_t i = 0; i < n; ++i) {
    const __m512d lanes = _mm512_loadu_pd(tile + 8 * i);
    acc = _mm512_add_pd(acc, _mm512_mul_pd(_mm512_set1_pd(a[i]), lanes));
  }
  _mm512_storeu_pd(out, acc);
}

/// AVX-512 widening of accumulate_scaled(): w[o] += row[o] · scale, eight
/// independent accumulators per step.
RECOVERD_AVX512_TARGET inline void accumulate_scaled_avx512(double* w,
                                                            const double* row,
                                                            double scale,
                                                            std::size_t n) {
  RECOVERD_FP_NO_CONTRACT
  const __m512d vs = _mm512_set1_pd(scale);
  std::size_t o = 0;
  for (; o + 8 <= n; o += 8) {
    const __m512d cur = _mm512_loadu_pd(w + o);
    const __m512d term = _mm512_mul_pd(_mm512_loadu_pd(row + o), vs);
    _mm512_storeu_pd(w + o, _mm512_add_pd(cur, term));
  }
  for (; o < n; ++o) w[o] += row[o] * scale;
}

/// AVX-512 widening of multiply_elementwise(): out[i] = a[i] · b[i].
RECOVERD_AVX512_TARGET inline void multiply_elementwise_avx512(double* out,
                                                               const double* a,
                                                               const double* b,
                                                               std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(out + i,
                     _mm512_mul_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

/// AVX-512 widening of divide_in_place(): v[i] /= divisor.
RECOVERD_AVX512_TARGET inline void divide_in_place_avx512(double* v, double divisor,
                                                          std::size_t n) {
  const __m512d vd = _mm512_set1_pd(divisor);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(v + i, _mm512_div_pd(_mm512_loadu_pd(v + i), vd));
  }
  for (; i < n; ++i) v[i] /= divisor;
}

#endif  // RECOVERD_SIMD_KERNELS_X86

/// Gathers four row-major rows into the dot4() interleaved tile:
/// tile[4i+l] = rows[l][i]. Pure data movement (no arithmetic), so it needs
/// no AVX2 gate.
inline void transpose4(const double* r0, const double* r1, const double* r2,
                       const double* r3, std::size_t n, double* tile) {
  for (std::size_t i = 0; i < n; ++i) {
    tile[4 * i + 0] = r0[i];
    tile[4 * i + 1] = r1[i];
    tile[4 * i + 2] = r2[i];
    tile[4 * i + 3] = r3[i];
  }
}

/// Gathers eight row-major rows into the dot8() interleaved tile:
/// tile[8i+l] = rows[l][i]. Pure data movement, so no ISA gate.
inline void transpose8(const double* const rows[8], std::size_t n, double* tile) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t l = 0; l < 8; ++l) tile[8 * i + l] = rows[l][i];
  }
}

}  // namespace recoverd::linalg::simd
