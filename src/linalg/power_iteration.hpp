// Power iteration for spectral-radius estimates.
//
// Diagnostics: the Gauss–Seidel fixed point x = c + Qx converges iff the
// spectral radius of the transient part of Q is below 1. The RA-Bound
// transforms of §3.1 guarantee that; this estimator lets tests and the
// scaling bench verify it numerically on generated models.
#pragma once

#include <cstddef>

#include "linalg/sparse_matrix.hpp"

namespace recoverd::linalg {

struct PowerIterationResult {
  double spectral_radius_estimate = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Estimates ρ(Q) for a non-negative square matrix Q by power iteration on a
/// strictly positive start vector. For substochastic matrices this converges
/// to the dominant eigenvalue magnitude.
PowerIterationResult estimate_spectral_radius(const SparseMatrix& q,
                                              std::size_t max_iterations = 10000,
                                              double tolerance = 1e-10);

}  // namespace recoverd::linalg
