#include "linalg/power_iteration.hpp"

#include <cmath>

#include "linalg/vector_ops.hpp"
#include "util/check.hpp"

namespace recoverd::linalg {

PowerIterationResult estimate_spectral_radius(const SparseMatrix& q,
                                              std::size_t max_iterations,
                                              double tolerance) {
  RD_EXPECTS(q.rows() == q.cols(), "estimate_spectral_radius: Q must be square");
  const std::size_t n = q.rows();
  PowerIterationResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }

  std::vector<double> x(n, 1.0 / static_cast<double>(n));
  double prev_estimate = 0.0;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    std::vector<double> y = q.multiply(x);
    const double norm = max_abs(y);
    result.iterations = iter + 1;
    if (norm == 0.0) {
      // Q is nilpotent along this vector: radius estimate 0.
      result.spectral_radius_estimate = 0.0;
      result.converged = true;
      return result;
    }
    for (double& v : y) v /= norm;
    result.spectral_radius_estimate = norm;
    if (std::abs(norm - prev_estimate) <= tolerance) {
      result.converged = true;
      result.spectral_radius_estimate = norm;
      x.swap(y);
      return result;
    }
    prev_estimate = norm;
    x.swap(y);
  }
  return result;
}

}  // namespace recoverd::linalg
