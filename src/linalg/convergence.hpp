// Shared stall detection for the iterative solvers.
#pragma once

#include <cstddef>
#include <vector>

namespace recoverd::linalg {

/// Tracks sweep deltas over a circular window and flags iterations whose
/// delta fails to strictly decrease across the window — the signature of a
/// fixed-point iteration that is drifting linearly (no finite solution)
/// rather than converging geometrically.
class StallDetector {
 public:
  /// window == 0 disables detection.
  explicit StallDetector(std::size_t window) : window_(window), history_(window, 0.0) {}

  /// Records the delta of iteration `iter` (0-based) and returns true when a
  /// stall is detected.
  bool stalled(std::size_t iter, double delta) {
    if (window_ == 0) return false;
    const std::size_t slot = iter % window_;
    bool result = false;
    if (iter >= window_) {
      result = delta >= history_[slot];
    }
    history_[slot] = delta;
    return result;
  }

 private:
  std::size_t window_;
  std::vector<double> history_;
};

}  // namespace recoverd::linalg
