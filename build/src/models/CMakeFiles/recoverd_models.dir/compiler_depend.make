# Empty compiler generated dependencies file for recoverd_models.
# This may be replaced when dependencies are built.
