file(REMOVE_RECURSE
  "librecoverd_models.a"
)
