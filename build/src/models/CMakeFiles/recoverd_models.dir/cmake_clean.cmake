file(REMOVE_RECURSE
  "CMakeFiles/recoverd_models.dir/emn.cpp.o"
  "CMakeFiles/recoverd_models.dir/emn.cpp.o.d"
  "CMakeFiles/recoverd_models.dir/pipeline.cpp.o"
  "CMakeFiles/recoverd_models.dir/pipeline.cpp.o.d"
  "CMakeFiles/recoverd_models.dir/synthetic.cpp.o"
  "CMakeFiles/recoverd_models.dir/synthetic.cpp.o.d"
  "CMakeFiles/recoverd_models.dir/topology.cpp.o"
  "CMakeFiles/recoverd_models.dir/topology.cpp.o.d"
  "CMakeFiles/recoverd_models.dir/two_server.cpp.o"
  "CMakeFiles/recoverd_models.dir/two_server.cpp.o.d"
  "librecoverd_models.a"
  "librecoverd_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recoverd_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
