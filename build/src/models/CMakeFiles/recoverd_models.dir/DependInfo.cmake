
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/emn.cpp" "src/models/CMakeFiles/recoverd_models.dir/emn.cpp.o" "gcc" "src/models/CMakeFiles/recoverd_models.dir/emn.cpp.o.d"
  "/root/repo/src/models/pipeline.cpp" "src/models/CMakeFiles/recoverd_models.dir/pipeline.cpp.o" "gcc" "src/models/CMakeFiles/recoverd_models.dir/pipeline.cpp.o.d"
  "/root/repo/src/models/synthetic.cpp" "src/models/CMakeFiles/recoverd_models.dir/synthetic.cpp.o" "gcc" "src/models/CMakeFiles/recoverd_models.dir/synthetic.cpp.o.d"
  "/root/repo/src/models/topology.cpp" "src/models/CMakeFiles/recoverd_models.dir/topology.cpp.o" "gcc" "src/models/CMakeFiles/recoverd_models.dir/topology.cpp.o.d"
  "/root/repo/src/models/two_server.cpp" "src/models/CMakeFiles/recoverd_models.dir/two_server.cpp.o" "gcc" "src/models/CMakeFiles/recoverd_models.dir/two_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pomdp/CMakeFiles/recoverd_pomdp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/recoverd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/recoverd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
