file(REMOVE_RECURSE
  "librecoverd_linalg.a"
)
