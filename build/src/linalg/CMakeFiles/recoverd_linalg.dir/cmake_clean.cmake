file(REMOVE_RECURSE
  "CMakeFiles/recoverd_linalg.dir/dense_matrix.cpp.o"
  "CMakeFiles/recoverd_linalg.dir/dense_matrix.cpp.o.d"
  "CMakeFiles/recoverd_linalg.dir/gauss_seidel.cpp.o"
  "CMakeFiles/recoverd_linalg.dir/gauss_seidel.cpp.o.d"
  "CMakeFiles/recoverd_linalg.dir/power_iteration.cpp.o"
  "CMakeFiles/recoverd_linalg.dir/power_iteration.cpp.o.d"
  "CMakeFiles/recoverd_linalg.dir/sparse_matrix.cpp.o"
  "CMakeFiles/recoverd_linalg.dir/sparse_matrix.cpp.o.d"
  "CMakeFiles/recoverd_linalg.dir/vector_ops.cpp.o"
  "CMakeFiles/recoverd_linalg.dir/vector_ops.cpp.o.d"
  "librecoverd_linalg.a"
  "librecoverd_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recoverd_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
