# Empty dependencies file for recoverd_linalg.
# This may be replaced when dependencies are built.
