file(REMOVE_RECURSE
  "librecoverd_bounds.a"
)
