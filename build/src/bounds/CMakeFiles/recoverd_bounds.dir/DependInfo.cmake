
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bounds/bound_set.cpp" "src/bounds/CMakeFiles/recoverd_bounds.dir/bound_set.cpp.o" "gcc" "src/bounds/CMakeFiles/recoverd_bounds.dir/bound_set.cpp.o.d"
  "/root/repo/src/bounds/comparison_bounds.cpp" "src/bounds/CMakeFiles/recoverd_bounds.dir/comparison_bounds.cpp.o" "gcc" "src/bounds/CMakeFiles/recoverd_bounds.dir/comparison_bounds.cpp.o.d"
  "/root/repo/src/bounds/hsvi.cpp" "src/bounds/CMakeFiles/recoverd_bounds.dir/hsvi.cpp.o" "gcc" "src/bounds/CMakeFiles/recoverd_bounds.dir/hsvi.cpp.o.d"
  "/root/repo/src/bounds/incremental_update.cpp" "src/bounds/CMakeFiles/recoverd_bounds.dir/incremental_update.cpp.o" "gcc" "src/bounds/CMakeFiles/recoverd_bounds.dir/incremental_update.cpp.o.d"
  "/root/repo/src/bounds/ra_bound.cpp" "src/bounds/CMakeFiles/recoverd_bounds.dir/ra_bound.cpp.o" "gcc" "src/bounds/CMakeFiles/recoverd_bounds.dir/ra_bound.cpp.o.d"
  "/root/repo/src/bounds/sawtooth_upper.cpp" "src/bounds/CMakeFiles/recoverd_bounds.dir/sawtooth_upper.cpp.o" "gcc" "src/bounds/CMakeFiles/recoverd_bounds.dir/sawtooth_upper.cpp.o.d"
  "/root/repo/src/bounds/upper_bound.cpp" "src/bounds/CMakeFiles/recoverd_bounds.dir/upper_bound.cpp.o" "gcc" "src/bounds/CMakeFiles/recoverd_bounds.dir/upper_bound.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pomdp/CMakeFiles/recoverd_pomdp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/recoverd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/recoverd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
