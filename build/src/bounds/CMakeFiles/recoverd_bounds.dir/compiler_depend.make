# Empty compiler generated dependencies file for recoverd_bounds.
# This may be replaced when dependencies are built.
