file(REMOVE_RECURSE
  "CMakeFiles/recoverd_bounds.dir/bound_set.cpp.o"
  "CMakeFiles/recoverd_bounds.dir/bound_set.cpp.o.d"
  "CMakeFiles/recoverd_bounds.dir/comparison_bounds.cpp.o"
  "CMakeFiles/recoverd_bounds.dir/comparison_bounds.cpp.o.d"
  "CMakeFiles/recoverd_bounds.dir/hsvi.cpp.o"
  "CMakeFiles/recoverd_bounds.dir/hsvi.cpp.o.d"
  "CMakeFiles/recoverd_bounds.dir/incremental_update.cpp.o"
  "CMakeFiles/recoverd_bounds.dir/incremental_update.cpp.o.d"
  "CMakeFiles/recoverd_bounds.dir/ra_bound.cpp.o"
  "CMakeFiles/recoverd_bounds.dir/ra_bound.cpp.o.d"
  "CMakeFiles/recoverd_bounds.dir/sawtooth_upper.cpp.o"
  "CMakeFiles/recoverd_bounds.dir/sawtooth_upper.cpp.o.d"
  "CMakeFiles/recoverd_bounds.dir/upper_bound.cpp.o"
  "CMakeFiles/recoverd_bounds.dir/upper_bound.cpp.o.d"
  "librecoverd_bounds.a"
  "librecoverd_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recoverd_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
