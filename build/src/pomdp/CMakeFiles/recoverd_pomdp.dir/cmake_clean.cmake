file(REMOVE_RECURSE
  "CMakeFiles/recoverd_pomdp.dir/belief.cpp.o"
  "CMakeFiles/recoverd_pomdp.dir/belief.cpp.o.d"
  "CMakeFiles/recoverd_pomdp.dir/bellman.cpp.o"
  "CMakeFiles/recoverd_pomdp.dir/bellman.cpp.o.d"
  "CMakeFiles/recoverd_pomdp.dir/conditions.cpp.o"
  "CMakeFiles/recoverd_pomdp.dir/conditions.cpp.o.d"
  "CMakeFiles/recoverd_pomdp.dir/exact_solver.cpp.o"
  "CMakeFiles/recoverd_pomdp.dir/exact_solver.cpp.o.d"
  "CMakeFiles/recoverd_pomdp.dir/io.cpp.o"
  "CMakeFiles/recoverd_pomdp.dir/io.cpp.o.d"
  "CMakeFiles/recoverd_pomdp.dir/mdp.cpp.o"
  "CMakeFiles/recoverd_pomdp.dir/mdp.cpp.o.d"
  "CMakeFiles/recoverd_pomdp.dir/policy.cpp.o"
  "CMakeFiles/recoverd_pomdp.dir/policy.cpp.o.d"
  "CMakeFiles/recoverd_pomdp.dir/pomdp.cpp.o"
  "CMakeFiles/recoverd_pomdp.dir/pomdp.cpp.o.d"
  "CMakeFiles/recoverd_pomdp.dir/reachability.cpp.o"
  "CMakeFiles/recoverd_pomdp.dir/reachability.cpp.o.d"
  "CMakeFiles/recoverd_pomdp.dir/sampling.cpp.o"
  "CMakeFiles/recoverd_pomdp.dir/sampling.cpp.o.d"
  "CMakeFiles/recoverd_pomdp.dir/transforms.cpp.o"
  "CMakeFiles/recoverd_pomdp.dir/transforms.cpp.o.d"
  "CMakeFiles/recoverd_pomdp.dir/value_iteration.cpp.o"
  "CMakeFiles/recoverd_pomdp.dir/value_iteration.cpp.o.d"
  "librecoverd_pomdp.a"
  "librecoverd_pomdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recoverd_pomdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
