file(REMOVE_RECURSE
  "librecoverd_pomdp.a"
)
