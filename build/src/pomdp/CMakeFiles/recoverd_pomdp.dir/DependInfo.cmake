
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pomdp/belief.cpp" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/belief.cpp.o" "gcc" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/belief.cpp.o.d"
  "/root/repo/src/pomdp/bellman.cpp" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/bellman.cpp.o" "gcc" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/bellman.cpp.o.d"
  "/root/repo/src/pomdp/conditions.cpp" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/conditions.cpp.o" "gcc" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/conditions.cpp.o.d"
  "/root/repo/src/pomdp/exact_solver.cpp" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/exact_solver.cpp.o" "gcc" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/exact_solver.cpp.o.d"
  "/root/repo/src/pomdp/io.cpp" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/io.cpp.o" "gcc" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/io.cpp.o.d"
  "/root/repo/src/pomdp/mdp.cpp" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/mdp.cpp.o" "gcc" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/mdp.cpp.o.d"
  "/root/repo/src/pomdp/policy.cpp" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/policy.cpp.o" "gcc" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/policy.cpp.o.d"
  "/root/repo/src/pomdp/pomdp.cpp" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/pomdp.cpp.o" "gcc" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/pomdp.cpp.o.d"
  "/root/repo/src/pomdp/reachability.cpp" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/reachability.cpp.o" "gcc" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/reachability.cpp.o.d"
  "/root/repo/src/pomdp/sampling.cpp" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/sampling.cpp.o" "gcc" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/sampling.cpp.o.d"
  "/root/repo/src/pomdp/transforms.cpp" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/transforms.cpp.o" "gcc" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/transforms.cpp.o.d"
  "/root/repo/src/pomdp/value_iteration.cpp" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/value_iteration.cpp.o" "gcc" "src/pomdp/CMakeFiles/recoverd_pomdp.dir/value_iteration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/recoverd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/recoverd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
