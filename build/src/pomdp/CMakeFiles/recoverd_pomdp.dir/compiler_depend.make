# Empty compiler generated dependencies file for recoverd_pomdp.
# This may be replaced when dependencies are built.
