
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/controller/bootstrap.cpp" "src/controller/CMakeFiles/recoverd_controller.dir/bootstrap.cpp.o" "gcc" "src/controller/CMakeFiles/recoverd_controller.dir/bootstrap.cpp.o.d"
  "/root/repo/src/controller/bounded_controller.cpp" "src/controller/CMakeFiles/recoverd_controller.dir/bounded_controller.cpp.o" "gcc" "src/controller/CMakeFiles/recoverd_controller.dir/bounded_controller.cpp.o.d"
  "/root/repo/src/controller/controller.cpp" "src/controller/CMakeFiles/recoverd_controller.dir/controller.cpp.o" "gcc" "src/controller/CMakeFiles/recoverd_controller.dir/controller.cpp.o.d"
  "/root/repo/src/controller/heuristic_controller.cpp" "src/controller/CMakeFiles/recoverd_controller.dir/heuristic_controller.cpp.o" "gcc" "src/controller/CMakeFiles/recoverd_controller.dir/heuristic_controller.cpp.o.d"
  "/root/repo/src/controller/interval_controller.cpp" "src/controller/CMakeFiles/recoverd_controller.dir/interval_controller.cpp.o" "gcc" "src/controller/CMakeFiles/recoverd_controller.dir/interval_controller.cpp.o.d"
  "/root/repo/src/controller/most_likely_controller.cpp" "src/controller/CMakeFiles/recoverd_controller.dir/most_likely_controller.cpp.o" "gcc" "src/controller/CMakeFiles/recoverd_controller.dir/most_likely_controller.cpp.o.d"
  "/root/repo/src/controller/oracle_controller.cpp" "src/controller/CMakeFiles/recoverd_controller.dir/oracle_controller.cpp.o" "gcc" "src/controller/CMakeFiles/recoverd_controller.dir/oracle_controller.cpp.o.d"
  "/root/repo/src/controller/policy_controller.cpp" "src/controller/CMakeFiles/recoverd_controller.dir/policy_controller.cpp.o" "gcc" "src/controller/CMakeFiles/recoverd_controller.dir/policy_controller.cpp.o.d"
  "/root/repo/src/controller/random_controller.cpp" "src/controller/CMakeFiles/recoverd_controller.dir/random_controller.cpp.o" "gcc" "src/controller/CMakeFiles/recoverd_controller.dir/random_controller.cpp.o.d"
  "/root/repo/src/controller/repair.cpp" "src/controller/CMakeFiles/recoverd_controller.dir/repair.cpp.o" "gcc" "src/controller/CMakeFiles/recoverd_controller.dir/repair.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bounds/CMakeFiles/recoverd_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/pomdp/CMakeFiles/recoverd_pomdp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/recoverd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/recoverd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
