# Empty compiler generated dependencies file for recoverd_controller.
# This may be replaced when dependencies are built.
