file(REMOVE_RECURSE
  "CMakeFiles/recoverd_controller.dir/bootstrap.cpp.o"
  "CMakeFiles/recoverd_controller.dir/bootstrap.cpp.o.d"
  "CMakeFiles/recoverd_controller.dir/bounded_controller.cpp.o"
  "CMakeFiles/recoverd_controller.dir/bounded_controller.cpp.o.d"
  "CMakeFiles/recoverd_controller.dir/controller.cpp.o"
  "CMakeFiles/recoverd_controller.dir/controller.cpp.o.d"
  "CMakeFiles/recoverd_controller.dir/heuristic_controller.cpp.o"
  "CMakeFiles/recoverd_controller.dir/heuristic_controller.cpp.o.d"
  "CMakeFiles/recoverd_controller.dir/interval_controller.cpp.o"
  "CMakeFiles/recoverd_controller.dir/interval_controller.cpp.o.d"
  "CMakeFiles/recoverd_controller.dir/most_likely_controller.cpp.o"
  "CMakeFiles/recoverd_controller.dir/most_likely_controller.cpp.o.d"
  "CMakeFiles/recoverd_controller.dir/oracle_controller.cpp.o"
  "CMakeFiles/recoverd_controller.dir/oracle_controller.cpp.o.d"
  "CMakeFiles/recoverd_controller.dir/policy_controller.cpp.o"
  "CMakeFiles/recoverd_controller.dir/policy_controller.cpp.o.d"
  "CMakeFiles/recoverd_controller.dir/random_controller.cpp.o"
  "CMakeFiles/recoverd_controller.dir/random_controller.cpp.o.d"
  "CMakeFiles/recoverd_controller.dir/repair.cpp.o"
  "CMakeFiles/recoverd_controller.dir/repair.cpp.o.d"
  "librecoverd_controller.a"
  "librecoverd_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recoverd_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
