file(REMOVE_RECURSE
  "librecoverd_controller.a"
)
