file(REMOVE_RECURSE
  "librecoverd_util.a"
)
