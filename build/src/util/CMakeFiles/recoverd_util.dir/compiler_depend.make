# Empty compiler generated dependencies file for recoverd_util.
# This may be replaced when dependencies are built.
