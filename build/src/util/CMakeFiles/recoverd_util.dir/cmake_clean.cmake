file(REMOVE_RECURSE
  "CMakeFiles/recoverd_util.dir/check.cpp.o"
  "CMakeFiles/recoverd_util.dir/check.cpp.o.d"
  "CMakeFiles/recoverd_util.dir/cli.cpp.o"
  "CMakeFiles/recoverd_util.dir/cli.cpp.o.d"
  "CMakeFiles/recoverd_util.dir/csv.cpp.o"
  "CMakeFiles/recoverd_util.dir/csv.cpp.o.d"
  "CMakeFiles/recoverd_util.dir/logging.cpp.o"
  "CMakeFiles/recoverd_util.dir/logging.cpp.o.d"
  "CMakeFiles/recoverd_util.dir/rng.cpp.o"
  "CMakeFiles/recoverd_util.dir/rng.cpp.o.d"
  "CMakeFiles/recoverd_util.dir/stats.cpp.o"
  "CMakeFiles/recoverd_util.dir/stats.cpp.o.d"
  "CMakeFiles/recoverd_util.dir/table.cpp.o"
  "CMakeFiles/recoverd_util.dir/table.cpp.o.d"
  "librecoverd_util.a"
  "librecoverd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recoverd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
