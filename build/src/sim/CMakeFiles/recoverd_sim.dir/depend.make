# Empty dependencies file for recoverd_sim.
# This may be replaced when dependencies are built.
