file(REMOVE_RECURSE
  "CMakeFiles/recoverd_sim.dir/environment.cpp.o"
  "CMakeFiles/recoverd_sim.dir/environment.cpp.o.d"
  "CMakeFiles/recoverd_sim.dir/experiment.cpp.o"
  "CMakeFiles/recoverd_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/recoverd_sim.dir/fault_injector.cpp.o"
  "CMakeFiles/recoverd_sim.dir/fault_injector.cpp.o.d"
  "CMakeFiles/recoverd_sim.dir/trace.cpp.o"
  "CMakeFiles/recoverd_sim.dir/trace.cpp.o.d"
  "librecoverd_sim.a"
  "librecoverd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recoverd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
