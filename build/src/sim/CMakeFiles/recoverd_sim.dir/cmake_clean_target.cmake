file(REMOVE_RECURSE
  "librecoverd_sim.a"
)
