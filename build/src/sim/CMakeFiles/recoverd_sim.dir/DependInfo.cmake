
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/environment.cpp" "src/sim/CMakeFiles/recoverd_sim.dir/environment.cpp.o" "gcc" "src/sim/CMakeFiles/recoverd_sim.dir/environment.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/sim/CMakeFiles/recoverd_sim.dir/experiment.cpp.o" "gcc" "src/sim/CMakeFiles/recoverd_sim.dir/experiment.cpp.o.d"
  "/root/repo/src/sim/fault_injector.cpp" "src/sim/CMakeFiles/recoverd_sim.dir/fault_injector.cpp.o" "gcc" "src/sim/CMakeFiles/recoverd_sim.dir/fault_injector.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/recoverd_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/recoverd_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/controller/CMakeFiles/recoverd_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/pomdp/CMakeFiles/recoverd_pomdp.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/recoverd_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/recoverd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/recoverd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
