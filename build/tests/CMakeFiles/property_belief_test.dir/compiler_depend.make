# Empty compiler generated dependencies file for property_belief_test.
# This may be replaced when dependencies are built.
