file(REMOVE_RECURSE
  "CMakeFiles/property_belief_test.dir/property_belief_test.cpp.o"
  "CMakeFiles/property_belief_test.dir/property_belief_test.cpp.o.d"
  "property_belief_test"
  "property_belief_test.pdb"
  "property_belief_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_belief_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
