# Empty compiler generated dependencies file for controller_bounded_test.
# This may be replaced when dependencies are built.
