file(REMOVE_RECURSE
  "CMakeFiles/controller_bounded_test.dir/controller_bounded_test.cpp.o"
  "CMakeFiles/controller_bounded_test.dir/controller_bounded_test.cpp.o.d"
  "controller_bounded_test"
  "controller_bounded_test.pdb"
  "controller_bounded_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_bounded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
