file(REMOVE_RECURSE
  "CMakeFiles/bounds_update_test.dir/bounds_update_test.cpp.o"
  "CMakeFiles/bounds_update_test.dir/bounds_update_test.cpp.o.d"
  "bounds_update_test"
  "bounds_update_test.pdb"
  "bounds_update_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounds_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
