# Empty dependencies file for bounds_update_test.
# This may be replaced when dependencies are built.
