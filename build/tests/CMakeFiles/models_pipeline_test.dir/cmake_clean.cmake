file(REMOVE_RECURSE
  "CMakeFiles/models_pipeline_test.dir/models_pipeline_test.cpp.o"
  "CMakeFiles/models_pipeline_test.dir/models_pipeline_test.cpp.o.d"
  "models_pipeline_test"
  "models_pipeline_test.pdb"
  "models_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
