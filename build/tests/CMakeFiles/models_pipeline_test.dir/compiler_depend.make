# Empty compiler generated dependencies file for models_pipeline_test.
# This may be replaced when dependencies are built.
