file(REMOVE_RECURSE
  "CMakeFiles/models_emn_test.dir/models_emn_test.cpp.o"
  "CMakeFiles/models_emn_test.dir/models_emn_test.cpp.o.d"
  "models_emn_test"
  "models_emn_test.pdb"
  "models_emn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_emn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
