# Empty dependencies file for models_emn_test.
# This may be replaced when dependencies are built.
