# Empty compiler generated dependencies file for sawtooth_upper_test.
# This may be replaced when dependencies are built.
