file(REMOVE_RECURSE
  "CMakeFiles/sawtooth_upper_test.dir/sawtooth_upper_test.cpp.o"
  "CMakeFiles/sawtooth_upper_test.dir/sawtooth_upper_test.cpp.o.d"
  "sawtooth_upper_test"
  "sawtooth_upper_test.pdb"
  "sawtooth_upper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sawtooth_upper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
