# Empty dependencies file for reachability_policy_controller_test.
# This may be replaced when dependencies are built.
