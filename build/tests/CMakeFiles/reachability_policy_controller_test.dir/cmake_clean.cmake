file(REMOVE_RECURSE
  "CMakeFiles/reachability_policy_controller_test.dir/reachability_policy_controller_test.cpp.o"
  "CMakeFiles/reachability_policy_controller_test.dir/reachability_policy_controller_test.cpp.o.d"
  "reachability_policy_controller_test"
  "reachability_policy_controller_test.pdb"
  "reachability_policy_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reachability_policy_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
