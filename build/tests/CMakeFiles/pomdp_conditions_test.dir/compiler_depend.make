# Empty compiler generated dependencies file for pomdp_conditions_test.
# This may be replaced when dependencies are built.
