file(REMOVE_RECURSE
  "CMakeFiles/pomdp_conditions_test.dir/pomdp_conditions_test.cpp.o"
  "CMakeFiles/pomdp_conditions_test.dir/pomdp_conditions_test.cpp.o.d"
  "pomdp_conditions_test"
  "pomdp_conditions_test.pdb"
  "pomdp_conditions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pomdp_conditions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
