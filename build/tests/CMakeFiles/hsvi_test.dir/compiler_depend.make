# Empty compiler generated dependencies file for hsvi_test.
# This may be replaced when dependencies are built.
