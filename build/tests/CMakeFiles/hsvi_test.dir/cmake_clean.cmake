file(REMOVE_RECURSE
  "CMakeFiles/hsvi_test.dir/hsvi_test.cpp.o"
  "CMakeFiles/hsvi_test.dir/hsvi_test.cpp.o.d"
  "hsvi_test"
  "hsvi_test.pdb"
  "hsvi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsvi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
