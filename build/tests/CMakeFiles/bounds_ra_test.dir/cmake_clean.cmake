file(REMOVE_RECURSE
  "CMakeFiles/bounds_ra_test.dir/bounds_ra_test.cpp.o"
  "CMakeFiles/bounds_ra_test.dir/bounds_ra_test.cpp.o.d"
  "bounds_ra_test"
  "bounds_ra_test.pdb"
  "bounds_ra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounds_ra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
