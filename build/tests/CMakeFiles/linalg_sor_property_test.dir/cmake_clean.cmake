file(REMOVE_RECURSE
  "CMakeFiles/linalg_sor_property_test.dir/linalg_sor_property_test.cpp.o"
  "CMakeFiles/linalg_sor_property_test.dir/linalg_sor_property_test.cpp.o.d"
  "linalg_sor_property_test"
  "linalg_sor_property_test.pdb"
  "linalg_sor_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_sor_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
