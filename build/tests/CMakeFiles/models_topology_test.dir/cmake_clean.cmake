file(REMOVE_RECURSE
  "CMakeFiles/models_topology_test.dir/models_topology_test.cpp.o"
  "CMakeFiles/models_topology_test.dir/models_topology_test.cpp.o.d"
  "models_topology_test"
  "models_topology_test.pdb"
  "models_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
