file(REMOVE_RECURSE
  "CMakeFiles/property_bounds_test.dir/property_bounds_test.cpp.o"
  "CMakeFiles/property_bounds_test.dir/property_bounds_test.cpp.o.d"
  "property_bounds_test"
  "property_bounds_test.pdb"
  "property_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
