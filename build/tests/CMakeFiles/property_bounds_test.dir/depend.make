# Empty dependencies file for property_bounds_test.
# This may be replaced when dependencies are built.
