# Empty dependencies file for pomdp_model_test.
# This may be replaced when dependencies are built.
