file(REMOVE_RECURSE
  "CMakeFiles/pomdp_model_test.dir/pomdp_model_test.cpp.o"
  "CMakeFiles/pomdp_model_test.dir/pomdp_model_test.cpp.o.d"
  "pomdp_model_test"
  "pomdp_model_test.pdb"
  "pomdp_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pomdp_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
