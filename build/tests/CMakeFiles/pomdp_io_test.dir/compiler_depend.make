# Empty compiler generated dependencies file for pomdp_io_test.
# This may be replaced when dependencies are built.
