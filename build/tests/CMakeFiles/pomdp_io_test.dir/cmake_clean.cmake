file(REMOVE_RECURSE
  "CMakeFiles/pomdp_io_test.dir/pomdp_io_test.cpp.o"
  "CMakeFiles/pomdp_io_test.dir/pomdp_io_test.cpp.o.d"
  "pomdp_io_test"
  "pomdp_io_test.pdb"
  "pomdp_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pomdp_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
