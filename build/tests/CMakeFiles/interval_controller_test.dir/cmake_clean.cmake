file(REMOVE_RECURSE
  "CMakeFiles/interval_controller_test.dir/interval_controller_test.cpp.o"
  "CMakeFiles/interval_controller_test.dir/interval_controller_test.cpp.o.d"
  "interval_controller_test"
  "interval_controller_test.pdb"
  "interval_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
