# Empty compiler generated dependencies file for interval_controller_test.
# This may be replaced when dependencies are built.
