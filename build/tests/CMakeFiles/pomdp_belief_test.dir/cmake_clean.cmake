file(REMOVE_RECURSE
  "CMakeFiles/pomdp_belief_test.dir/pomdp_belief_test.cpp.o"
  "CMakeFiles/pomdp_belief_test.dir/pomdp_belief_test.cpp.o.d"
  "pomdp_belief_test"
  "pomdp_belief_test.pdb"
  "pomdp_belief_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pomdp_belief_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
