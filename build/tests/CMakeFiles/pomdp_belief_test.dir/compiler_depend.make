# Empty compiler generated dependencies file for pomdp_belief_test.
# This may be replaced when dependencies are built.
