# Empty compiler generated dependencies file for pomdp_bellman_test.
# This may be replaced when dependencies are built.
