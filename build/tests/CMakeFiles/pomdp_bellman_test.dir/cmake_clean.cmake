file(REMOVE_RECURSE
  "CMakeFiles/pomdp_bellman_test.dir/pomdp_bellman_test.cpp.o"
  "CMakeFiles/pomdp_bellman_test.dir/pomdp_bellman_test.cpp.o.d"
  "pomdp_bellman_test"
  "pomdp_bellman_test.pdb"
  "pomdp_bellman_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pomdp_bellman_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
