# Empty dependencies file for emn_integration_test.
# This may be replaced when dependencies are built.
