file(REMOVE_RECURSE
  "CMakeFiles/emn_integration_test.dir/emn_integration_test.cpp.o"
  "CMakeFiles/emn_integration_test.dir/emn_integration_test.cpp.o.d"
  "emn_integration_test"
  "emn_integration_test.pdb"
  "emn_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emn_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
