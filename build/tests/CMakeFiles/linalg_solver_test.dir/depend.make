# Empty dependencies file for linalg_solver_test.
# This may be replaced when dependencies are built.
