
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/randomized_model_test.cpp" "tests/CMakeFiles/randomized_model_test.dir/randomized_model_test.cpp.o" "gcc" "tests/CMakeFiles/randomized_model_test.dir/randomized_model_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bounds/CMakeFiles/recoverd_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/pomdp/CMakeFiles/recoverd_pomdp.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/recoverd_models.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/recoverd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/recoverd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
