file(REMOVE_RECURSE
  "CMakeFiles/controller_basic_test.dir/controller_basic_test.cpp.o"
  "CMakeFiles/controller_basic_test.dir/controller_basic_test.cpp.o.d"
  "controller_basic_test"
  "controller_basic_test.pdb"
  "controller_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
