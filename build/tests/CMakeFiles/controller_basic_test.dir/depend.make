# Empty dependencies file for controller_basic_test.
# This may be replaced when dependencies are built.
