file(REMOVE_RECURSE
  "CMakeFiles/pomdp_policy_test.dir/pomdp_policy_test.cpp.o"
  "CMakeFiles/pomdp_policy_test.dir/pomdp_policy_test.cpp.o.d"
  "pomdp_policy_test"
  "pomdp_policy_test.pdb"
  "pomdp_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pomdp_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
