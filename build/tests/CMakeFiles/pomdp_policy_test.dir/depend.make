# Empty dependencies file for pomdp_policy_test.
# This may be replaced when dependencies are built.
