# Empty compiler generated dependencies file for pomdp_value_iteration_test.
# This may be replaced when dependencies are built.
