# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pomdp_value_iteration_test.
