file(REMOVE_RECURSE
  "CMakeFiles/pomdp_value_iteration_test.dir/pomdp_value_iteration_test.cpp.o"
  "CMakeFiles/pomdp_value_iteration_test.dir/pomdp_value_iteration_test.cpp.o.d"
  "pomdp_value_iteration_test"
  "pomdp_value_iteration_test.pdb"
  "pomdp_value_iteration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pomdp_value_iteration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
