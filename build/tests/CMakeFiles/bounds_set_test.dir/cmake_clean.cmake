file(REMOVE_RECURSE
  "CMakeFiles/bounds_set_test.dir/bounds_set_test.cpp.o"
  "CMakeFiles/bounds_set_test.dir/bounds_set_test.cpp.o.d"
  "bounds_set_test"
  "bounds_set_test.pdb"
  "bounds_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounds_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
