file(REMOVE_RECURSE
  "CMakeFiles/emn_recovery.dir/emn_recovery.cpp.o"
  "CMakeFiles/emn_recovery.dir/emn_recovery.cpp.o.d"
  "emn_recovery"
  "emn_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emn_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
