# Empty compiler generated dependencies file for emn_recovery.
# This may be replaced when dependencies are built.
