# Empty dependencies file for fig5a_bounds_improvement.
# This may be replaced when dependencies are built.
