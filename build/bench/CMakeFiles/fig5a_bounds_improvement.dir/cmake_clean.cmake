file(REMOVE_RECURSE
  "CMakeFiles/fig5a_bounds_improvement.dir/fig5a_bounds_improvement.cpp.o"
  "CMakeFiles/fig5a_bounds_improvement.dir/fig5a_bounds_improvement.cpp.o.d"
  "fig5a_bounds_improvement"
  "fig5a_bounds_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_bounds_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
