file(REMOVE_RECURSE
  "CMakeFiles/ablation_branch_floor.dir/ablation_branch_floor.cpp.o"
  "CMakeFiles/ablation_branch_floor.dir/ablation_branch_floor.cpp.o.d"
  "ablation_branch_floor"
  "ablation_branch_floor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_branch_floor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
