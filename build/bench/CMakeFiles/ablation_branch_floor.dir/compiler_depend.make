# Empty compiler generated dependencies file for ablation_branch_floor.
# This may be replaced when dependencies are built.
