file(REMOVE_RECURSE
  "CMakeFiles/bound_divergence.dir/bound_divergence.cpp.o"
  "CMakeFiles/bound_divergence.dir/bound_divergence.cpp.o.d"
  "bound_divergence"
  "bound_divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bound_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
