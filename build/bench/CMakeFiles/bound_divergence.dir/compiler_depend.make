# Empty compiler generated dependencies file for bound_divergence.
# This may be replaced when dependencies are built.
