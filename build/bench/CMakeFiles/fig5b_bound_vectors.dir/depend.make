# Empty dependencies file for fig5b_bound_vectors.
# This may be replaced when dependencies are built.
