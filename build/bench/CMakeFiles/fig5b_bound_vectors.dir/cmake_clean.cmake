file(REMOVE_RECURSE
  "CMakeFiles/fig5b_bound_vectors.dir/fig5b_bound_vectors.cpp.o"
  "CMakeFiles/fig5b_bound_vectors.dir/fig5b_bound_vectors.cpp.o.d"
  "fig5b_bound_vectors"
  "fig5b_bound_vectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_bound_vectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
