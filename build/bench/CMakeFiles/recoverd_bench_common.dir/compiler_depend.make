# Empty compiler generated dependencies file for recoverd_bench_common.
# This may be replaced when dependencies are built.
