file(REMOVE_RECURSE
  "CMakeFiles/recoverd_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/recoverd_bench_common.dir/bench_common.cpp.o.d"
  "librecoverd_bench_common.a"
  "librecoverd_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recoverd_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
