file(REMOVE_RECURSE
  "librecoverd_bench_common.a"
)
