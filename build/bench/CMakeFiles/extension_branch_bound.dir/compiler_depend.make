# Empty compiler generated dependencies file for extension_branch_bound.
# This may be replaced when dependencies are built.
