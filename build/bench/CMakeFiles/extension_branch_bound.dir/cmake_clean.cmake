file(REMOVE_RECURSE
  "CMakeFiles/extension_branch_bound.dir/extension_branch_bound.cpp.o"
  "CMakeFiles/extension_branch_bound.dir/extension_branch_bound.cpp.o.d"
  "extension_branch_bound"
  "extension_branch_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_branch_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
