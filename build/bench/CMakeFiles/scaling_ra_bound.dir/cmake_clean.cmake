file(REMOVE_RECURSE
  "CMakeFiles/scaling_ra_bound.dir/scaling_ra_bound.cpp.o"
  "CMakeFiles/scaling_ra_bound.dir/scaling_ra_bound.cpp.o.d"
  "scaling_ra_bound"
  "scaling_ra_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_ra_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
