# Empty dependencies file for scaling_ra_bound.
# This may be replaced when dependencies are built.
