file(REMOVE_RECURSE
  "CMakeFiles/ablation_top.dir/ablation_top.cpp.o"
  "CMakeFiles/ablation_top.dir/ablation_top.cpp.o.d"
  "ablation_top"
  "ablation_top.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_top.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
