# Empty dependencies file for ablation_top.
# This may be replaced when dependencies are built.
