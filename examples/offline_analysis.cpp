// Offline analysis workflow: everything you can do with a recovery model
// *before* deploying the online controller.
//
//   1. Serialize the model to the recoverd text format (and reload it).
//   2. Solve the fully observable relaxation: value iteration, policy
//      iteration, and the induced repair policy per state.
//   3. Run the exact finite-horizon solver (Monahan) for ground truth.
//   4. Run HSVI to certify a value interval at the uniform-fault belief.
//   5. Record one traced episode to CSV.
//
// Run: ./build/examples/offline_analysis [--out=/tmp/model.pomdp]
#include <fstream>
#include <iostream>

#include "bounds/hsvi.hpp"
#include "bounds/ra_bound.hpp"
#include "controller/bounded_controller.hpp"
#include "models/two_server.hpp"
#include "obs/export.hpp"
#include "pomdp/exact_solver.hpp"
#include "pomdp/io.hpp"
#include "pomdp/policy.hpp"
#include "sim/experiment.hpp"
#include "util/cli.hpp"
#include "util/obs_main.hpp"

namespace {
int run(const recoverd::CliArgs& args) {
  using namespace recoverd;
  const std::string out = args.get_string("out", "/tmp/recoverd_two_server.pomdp");

  const Pomdp base = models::make_two_server();
  const Pomdp model = models::make_two_server_without_notification(3600.0);
  const auto ids = models::two_server_ids(model);

  // --- 1. serialize / reload ----------------------------------------------
  save_pomdp_file(out, model);
  const Pomdp reloaded = load_pomdp_file(out);
  std::cout << "Serialized to " << out << " and reloaded: " << reloaded.num_states()
            << " states, " << reloaded.num_actions() << " actions\n";

  // --- 2. fully observable solution ---------------------------------------
  const auto vi = value_iteration(model.mdp());
  const auto pi_result =
      policy_iteration(model.mdp(), Policy(model.num_states(), model.terminate_action()));
  std::cout << "\nMDP solution (value iteration, " << vi.iterations << " sweeps; policy"
            << " iteration, " << pi_result.improvement_steps << " rounds):\n";
  for (StateId s = 0; s < model.num_states(); ++s) {
    std::cout << "  " << model.mdp().state_name(s) << ": V=" << vi.values[s]
              << ", best action = " << model.mdp().action_name(vi.policy[s]) << "\n";
  }

  // --- 3. exact finite-horizon value --------------------------------------
  ExactSolverOptions exact_opts;
  exact_opts.horizon = 6;
  const auto exact = solve_finite_horizon(model, exact_opts);
  const Belief uniform_faults = Belief::uniform_over(
      model.num_states(), std::vector<StateId>{ids.fault_a, ids.fault_b});
  std::cout << "\nExact horizon-6 value at the uniform-fault belief: "
            << evaluate_alpha_vectors(exact.alpha_vectors, uniform_faults) << " ("
            << exact.alpha_vectors.size() << " alpha vectors)\n";

  // --- 4. HSVI certificate -------------------------------------------------
  bounds::BoundSet lower = bounds::make_ra_bound_set(model.mdp());
  bounds::SawtoothUpperBound upper(model);
  bounds::HsviOptions hsvi_opts;
  hsvi_opts.epsilon = 0.05;
  const auto interval = bounds::hsvi_solve(model, lower, upper, uniform_faults, hsvi_opts);
  std::cout << "HSVI certificate after " << interval.trials << " trials: V* in ["
            << interval.lower << ", " << interval.upper << "] (gap " << interval.gap()
            << ", converged=" << (interval.converged ? "yes" : "no") << ")\n";

  // --- 5. one traced episode ----------------------------------------------
  controller::BoundedController controller(model, lower);
  sim::Environment env(base, Rng(3));
  sim::EpisodeConfig config;
  config.observe_action = ids.observe;
  config.fault_support = {ids.fault_a, ids.fault_b};
  sim::EpisodeTrace trace;
  const auto metrics = sim::run_episode(env, controller, ids.fault_b, config, &trace);
  std::cout << "\nTraced episode (cost " << metrics.cost << ", "
            << trace.size() << " steps):\n";
  trace.write_csv(std::cout);
  return metrics.recovered ? 0 : 1;
}
}  // namespace

int main(int argc, char** argv) {
  return recoverd::run_obs_main(argc, argv, {"out"}, run);
}
