// Bounds explorer: computes every bound discussed in §3 on the EMN model
// and shows the sandwich   RA ≤ improved lower bound ≤ V* ≤ QMDP ≤ 0
// narrowing as incremental updates run.
//
// Run: ./build/examples/bounds_explorer [--updates=N]
#include <iostream>

#include "bounds/comparison_bounds.hpp"
#include "bounds/incremental_update.hpp"
#include "bounds/ra_bound.hpp"
#include "bounds/upper_bound.hpp"
#include "models/emn.hpp"
#include "obs/export.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/obs_main.hpp"

namespace {
int run(const recoverd::CliArgs& args) {
  using namespace recoverd;
  const int updates = static_cast<int>(args.get_int("updates", 50));

  const Pomdp model = models::make_emn_recovery_model();
  const Mdp& mdp = model.mdp();

  const auto ra = bounds::compute_ra_bound(mdp);
  const auto qmdp = bounds::compute_qmdp_bound(mdp);
  const auto bi = bounds::compute_bi_bound(mdp);
  const auto blind = bounds::compute_blind_policy_bounds(mdp);

  std::cout << "=== Per-state bounds on the EMN recovery model ===\n"
            << "BI-POMDP: " << linalg::to_string(bi.status)
            << " (no finite undiscounted value, §3.1)\n\n";

  TextTable table;
  table.set_header({"State", "RA-Bound (lower)", "QMDP (upper)", "Blind aT"});
  const auto& blind_at = blind.per_action[model.terminate_action()];
  for (StateId s = 0; s < model.num_states(); ++s) {
    table.add_row({mdp.state_name(s), TextTable::num(ra.values[s]),
                   TextTable::num(qmdp.values[s]),
                   blind_at.converged() ? TextTable::num(blind_at.values[s]) : "-"});
  }
  table.print(std::cout);

  // Improve the lower bound at the uniform-fault belief and watch the gap.
  std::vector<StateId> faults;
  for (StateId s = 0; s < model.num_states(); ++s) {
    if (!mdp.is_goal(s) && s != model.terminate_state()) faults.push_back(s);
  }
  const Belief reference = Belief::uniform_over(model.num_states(), faults);
  bounds::BoundSet set = bounds::make_ra_bound_set(mdp);
  const double upper = qmdp.evaluate(reference.probabilities());

  std::cout << "\n=== Gap narrowing at the uniform-fault belief ===\n"
            << "QMDP upper bound: " << upper << "\n";
  Rng rng(9);
  for (int i = 0; i <= updates; ++i) {
    if (i % 10 == 0) {
      const double lower = set.evaluate(reference.probabilities());
      std::cout << "after " << i << " updates: lower " << lower << ", gap "
                << upper - lower << ", |B| = " << set.size() << "\n";
    }
    // Alternate between the reference belief and random probes so the new
    // hyperplanes generalise beyond one point.
    if (i % 2 == 0) {
      bounds::improve_at(model, set, reference);
    } else {
      std::vector<double> raw(model.num_states());
      for (auto& v : raw) v = rng.uniform01() + 1e-6;
      bounds::improve_at(model, set, Belief(raw));
    }
  }
  return 0;
}
}  // namespace

int main(int argc, char** argv) {
  return recoverd::run_obs_main(argc, argv, {"updates"}, run);
}
