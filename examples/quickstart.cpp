// Quickstart: the paper's running example (Fig. 1(a)) end to end.
//
//   1. Build the two-redundant-server recovery model.
//   2. Check the §3.1 recovery-model conditions.
//   3. Apply the terminate transform (no recovery notification).
//   4. Compute the RA-Bound (Eq. 5) and improve it at a few beliefs (Eq. 7).
//   5. Run one recovery episode with the bounded controller against a
//      simulated fault.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <iostream>

#include "bounds/incremental_update.hpp"
#include "bounds/ra_bound.hpp"
#include "controller/bounded_controller.hpp"
#include "models/two_server.hpp"
#include "obs/export.hpp"
#include "pomdp/conditions.hpp"
#include "pomdp/transforms.hpp"
#include "sim/experiment.hpp"
#include "util/cli.hpp"
#include "util/obs_main.hpp"

namespace {
int run(const recoverd::CliArgs& /*args*/) {
  using namespace recoverd;

  // --- 1. the model -------------------------------------------------------
  const Pomdp base = models::make_two_server();
  const auto ids = models::two_server_ids(base);
  std::cout << "Model: " << base.num_states() << " states, " << base.num_actions()
            << " actions, " << base.num_observations() << " observations\n";

  // --- 2. recovery-model conditions (§3.1) --------------------------------
  const auto c1 = check_condition1(base.mdp());
  const auto c2 = check_condition2(base.mdp());
  std::cout << "Condition 1 (recoverable): " << (c1.satisfied ? "yes" : c1.detail) << "\n"
            << "Condition 2 (non-positive rewards): " << (c2.satisfied ? "yes" : c2.detail)
            << "\n"
            << "Recovery notification detected: "
            << (detect_recovery_notification(base) ? "yes" : "no (terminate transform needed)")
            << "\n";

  // --- 3. terminate transform ---------------------------------------------
  const double operator_response_time = 3600.0;  // the designer-friendly knob
  const Pomdp model = add_termination(base, operator_response_time);

  // --- 4. RA-Bound and a little improvement -------------------------------
  bounds::BoundSet set = bounds::make_ra_bound_set(model.mdp());
  std::cout << "\nRA-Bound V_m^-(s):\n";
  for (StateId s = 0; s < model.num_states(); ++s) {
    std::cout << "  " << model.mdp().state_name(s) << ": " << set.vector_at(0)[s] << "\n";
  }
  const Belief faults = Belief::uniform_over(
      model.num_states(), std::vector<StateId>{ids.fault_a, ids.fault_b});
  for (int i = 0; i < 5; ++i) bounds::improve_at(model, set, faults);
  std::cout << "Bound at the uniform-fault belief after 5 updates: "
            << set.evaluate(faults.probabilities()) << "  (|B| = " << set.size() << ")\n";

  // --- 5. one recovery episode --------------------------------------------
  controller::BoundedController controller(model, set);
  sim::Environment env(base, Rng(7));
  sim::EpisodeConfig config;
  config.observe_action = ids.observe;
  config.fault_support = {ids.fault_a, ids.fault_b};

  const auto metrics = sim::run_episode(env, controller, ids.fault_b, config);
  std::cout << "\nEpisode: injected " << base.mdp().state_name(ids.fault_b)
            << "\n  recovered:       " << (metrics.recovered ? "yes" : "NO")
            << "\n  cost:            " << metrics.cost
            << "\n  recovery time:   " << metrics.recovery_time << " s"
            << "\n  residual time:   " << metrics.residual_time << " s"
            << "\n  recovery actions:" << metrics.recovery_actions
            << "\n  monitor calls:   " << metrics.monitor_calls << "\n";
  return metrics.recovered ? 0 : 1;
}
}  // namespace

int main(int argc, char** argv) {
  return recoverd::run_obs_main(argc, argv, {}, run);
}
