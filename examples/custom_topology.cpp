// Bring-your-own-system: model a different deployment with the topology DSL
// and get an automatic recovery controller for it.
//
// The example system is a two-datacenter web stack:
//   dc1: LB1 (load balancer), Web1, Cache
//   dc2: LB2, Web2, DBm (primary database)
// Traffic: 100% web requests enter through {LB1|LB2, 70/30}, hit
// {Web1|Web2, 50/50}, consult the Cache with weight 0.5 vs direct DB 0.5
// (modelled as an alternative stage), and finish at the database.
//
// Run: ./build/examples/custom_topology [--faults=N] [--seed=N]
#include <iostream>

#include "bounds/ra_bound.hpp"
#include "controller/bootstrap.hpp"
#include "controller/bounded_controller.hpp"
#include "models/topology.hpp"
#include "obs/export.hpp"
#include "pomdp/conditions.hpp"
#include "pomdp/transforms.hpp"
#include "sim/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/obs_main.hpp"

namespace {
int run(const recoverd::CliArgs& args) {
  using namespace recoverd;
  const auto episodes = static_cast<std::size_t>(args.get_int("faults", 200));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));
  const std::size_t jobs = args.get_jobs(1);

  // --- describe the system -------------------------------------------------
  models::Topology topo;
  const auto dc1 = topo.add_host("dc1", 600.0);
  const auto dc2 = topo.add_host("dc2", 600.0);
  const auto lb1 = topo.add_component("LB1", dc1, 30.0);
  const auto lb2 = topo.add_component("LB2", dc2, 30.0);
  const auto web1 = topo.add_component("Web1", dc1, 90.0);
  const auto web2 = topo.add_component("Web2", dc2, 90.0);
  const auto cache = topo.add_component("Cache", dc1, 45.0);
  const auto db = topo.add_component("DBm", dc2, 300.0);

  const auto web_path = topo.add_path("web", 1.0);
  topo.add_path_stage(web_path, {{lb1, 0.7}, {lb2, 0.3}});
  topo.add_path_stage(web_path, {{web1, 0.5}, {web2, 0.5}});
  topo.add_path_stage(web_path, {{cache, 0.5}, {db, 0.5}});
  topo.add_path_stage(web_path, {{db, 1.0}});

  for (models::ComponentId c = 0; c < topo.num_components(); ++c) {
    topo.add_ping_monitor(topo.component_name(c) + "Mon", c, 0.95, 0.01);
  }
  topo.add_path_monitor("WebPathMon", web_path, 0.9, 0.02);

  // --- compile to a recovery POMDP ----------------------------------------
  const Pomdp base = build_recovery_pomdp(topo);
  const models::TopologyIds ids = resolve_topology_ids(base, topo);
  std::cout << "Compiled model: " << base.num_states() << " states, "
            << base.num_actions() << " actions, " << base.num_observations()
            << " observations\n";
  std::cout << "Condition 1: " << (check_condition1(base.mdp()).satisfied ? "ok" : "FAIL")
            << ", Condition 2: "
            << (check_condition2(base.mdp()).satisfied ? "ok" : "FAIL")
            << ", recovery notification: "
            << (detect_recovery_notification(base) ? "yes" : "no") << "\n";

  const Pomdp recovery = add_termination(base, /*operator_response_time=*/7200.0);

  // --- bound set + bootstrap ----------------------------------------------
  bounds::BoundSet set = bounds::make_ra_bound_set(recovery.mdp());
  controller::BootstrapOptions boot;
  boot.iterations = 10;
  boot.tree_depth = 1;
  boot.observe_action = ids.observe_action;
  boot.seed = seed;
  boot.branch_floor = 1e-2;
  controller::bootstrap_bounds(recovery, set, Belief::uniform(recovery.num_states()), boot);

  // --- run a fault-injection campaign --------------------------------------
  controller::BoundedControllerOptions opts;
  opts.branch_floor = 1e-2;
  controller::BoundedController controller(recovery, set, opts);

  std::vector<StateId> all_faults;
  for (StateId s = 0; s < base.num_states(); ++s) {
    if (!base.mdp().is_goal(s)) all_faults.push_back(s);
  }
  sim::FaultInjector injector(all_faults);
  sim::EpisodeConfig config;
  config.observe_action = ids.observe_action;

  // --jobs=1 (default) keeps the paper's accumulating single-controller
  // setup; higher values run fresh-per-episode controllers in parallel,
  // each starting from a copy of the warm bootstrapped set.
  sim::ExperimentResult result;
  if (jobs <= 1) {
    result = sim::run_experiment(base, controller, injector, episodes, seed, config);
  } else {
    const sim::ControllerFactory factory = [&recovery, set, opts] {
      return recoverd::controller::BoundedController::make_owning(recovery, set, opts);
    };
    result = sim::run_experiment(base, factory, injector, episodes, seed, config, jobs);
  }

  TextTable table;
  table.set_header({"Metric", "Per-fault mean", "95% CI"});
  table.add_row({"cost (request-seconds)", TextTable::num(result.cost.mean()),
                 TextTable::num(result.cost.ci95_halfwidth())});
  table.add_row({"recovery time (s)", TextTable::num(result.recovery_time.mean()),
                 TextTable::num(result.recovery_time.ci95_halfwidth())});
  table.add_row({"residual time (s)", TextTable::num(result.residual_time.mean()),
                 TextTable::num(result.residual_time.ci95_halfwidth())});
  table.add_row({"monitor calls", TextTable::num(result.monitor_calls.mean()),
                 TextTable::num(result.monitor_calls.ci95_halfwidth())});
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "unrecovered: " << result.unrecovered << "/" << result.episodes << "\n";
  return result.unrecovered == 0 ? 0 : 1;
}
}  // namespace

int main(int argc, char** argv) {
  return recoverd::run_obs_main(argc, argv, {"faults", "seed", "jobs"}, run);
}
