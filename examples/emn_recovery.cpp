// EMN walkthrough: inject a zombie fault into the paper's 3-tier e-commerce
// system and watch the bounded controller diagnose and recover it, with a
// step-by-step trace of beliefs, chosen actions, and monitor readings.
//
// Run: ./build/examples/emn_recovery [--fault=S1|S2|HG|VG|DB] [--seed=N]
//                                    [--metrics-out=metrics.json]
//                                    [--trace-out=trace.json] [--trace-level=full]
//                                    [--provenance-out=decisions.jsonl]
//                                    [--episode-trace-out=episode.jsonl]
//                                    [--bounds-out=b.rdb] [--bounds-in=b.rdb]
//                                    [--memo-carry] [--anytime]
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>

#include "bounds/artifact.hpp"
#include "bounds/ra_bound.hpp"
#include "obs/export.hpp"
#include "controller/bootstrap.hpp"
#include "controller/bounded_controller.hpp"
#include "models/emn.hpp"
#include "pomdp/sampling.hpp"
#include "sim/environment.hpp"
#include "sim/trace.hpp"
#include "util/cli.hpp"
#include "util/obs_main.hpp"

namespace {
int run(const recoverd::CliArgs& args) {
  using namespace recoverd;
  const std::string fault_component = args.get_string("fault", "S1");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  const Pomdp base = models::make_emn_base();
  const Pomdp recovery = models::make_emn_recovery_model();
  const models::EmnIds ids = models::emn_ids(base);

  const StateId fault = base.mdp().find_state("Zombie(" + fault_component + ")");
  if (fault == kInvalidId) {
    std::cerr << "unknown component '" << fault_component << "' (use HG, VG, S1, S2, DB)\n";
    return 2;
  }

  // Bound provenance: --bounds-in warm-starts from a saved artifact
  // (skipping the Eq. 5 solve and the bootstrap entirely), --bounds-out
  // saves the warmed set for the next run. hash_mdp ties the artifact to
  // this exact recovery model — a stale file is rejected, not misused.
  const std::string bounds_in = args.get_string("bounds-in", "");
  const std::string bounds_out = args.get_string("bounds-out", "");
  const std::uint64_t model_hash = bounds::hash_mdp(recovery.mdp());

  std::optional<bounds::BoundArtifact> loaded;
  if (!bounds_in.empty()) {
    loaded.emplace(bounds::load_bound_artifact(bounds_in, model_hash));
  }
  bounds::RandomActionChain chain =
      loaded ? std::move(loaded->chain)
             : bounds::build_random_action_chain(recovery.mdp());
  bounds::BoundSet set =
      loaded ? std::move(loaded->set) : bounds::make_ra_bound_set(chain);
  if (loaded) {
    std::cout << "Warm-started bound set from '" << bounds_in
              << "': |B| = " << set.size() << " hyperplanes\n\n";
  } else {
    // Warm the bound set as the paper's controller does (§5: 10 runs, depth 2).
    controller::BootstrapOptions boot;
    boot.iterations = 10;
    boot.tree_depth = 2;
    boot.observe_action = ids.topo.observe_action;
    boot.seed = seed;
    boot.branch_floor = 1e-2;
    controller::bootstrap_bounds(recovery, set, Belief::uniform(recovery.num_states()), boot);
    std::cout << "Bootstrapped lower bound: |B| = " << set.size() << " hyperplanes\n\n";
  }
  if (!bounds_out.empty()) {
    bounds::save_bound_artifact(bounds_out, chain, set, model_hash);
    std::cout << "bound artifact written to " << bounds_out << "\n\n";
  }

  controller::BoundedControllerOptions opts;
  opts.branch_floor = 1e-2;
  opts.memo_carry = args.get_bool("memo-carry", false);
  opts.anytime = args.get_bool("anytime", false);
  controller::BoundedController controller(recovery, set, opts);

  sim::Environment env(base, Rng(seed));
  env.reset(fault);
  std::cout << "Injected fault: " << base.mdp().state_name(fault) << "\n\n";

  // Initial belief: all faults equally likely, refined by one monitor pass.
  std::vector<StateId> support;
  for (StateId s = 0; s < base.num_states(); ++s) {
    if (!base.mdp().is_goal(s)) support.push_back(s);
  }
  controller.begin_episode(Belief::uniform_over(recovery.num_states(), support));
  sim::EpisodeTrace trace;
  trace.set_injected_fault(fault);
  {
    const auto step = env.step(ids.topo.observe_action);
    controller.record(ids.topo.observe_action, step.obs);
    std::cout << "initial monitors -> " << base.observation_name(step.obs) << "\n";
    trace.add_step({0, fault, ids.topo.observe_action, step.next_state, step.obs,
                    step.reward, env.elapsed_time(), 0.0, controller.belief().entropy()});
  }

  auto print_belief = [&](const Belief& b) {
    std::cout << "  belief:";
    for (StateId s = 0; s < recovery.num_states(); ++s) {
      if (b[s] > 0.02) {
        std::cout << ' ' << recovery.mdp().state_name(s) << '='
                  << std::fixed << std::setprecision(3) << b[s];
      }
    }
    std::cout << '\n';
  };

  for (int step_no = 1; step_no <= 60; ++step_no) {
    print_belief(controller.belief());
    const controller::Decision decision = controller.decide();
    if (decision.terminate) {
      std::cout << "step " << step_no << ": controller terminates recovery\n";
      trace.set_terminated(true);
      break;
    }
    const double goal_prob =
        recovery.mdp().goal_probability(controller.belief().probabilities());
    const double entropy = controller.belief().entropy();
    const StateId before = env.true_state();
    const auto step = env.step(decision.action);
    controller.record(decision.action, step.obs);
    trace.add_step({0, before, decision.action, step.next_state, step.obs, step.reward,
                    env.elapsed_time(), goal_prob, entropy});
    std::cout << "step " << step_no << ": "
              << recovery.mdp().action_name(decision.action) << " ("
              << step.duration << " s) -> state " << base.mdp().state_name(step.next_state)
              << ", monitors " << base.observation_name(step.obs) << "\n";
  }

  std::cout << "\nSummary: recovered=" << (env.recovered() ? "yes" : "NO")
            << ", cost=" << env.accumulated_cost()
            << " request-seconds, elapsed=" << env.elapsed_time() << " s, residual="
            << env.recovery_entered_time() << " s\n";
  const std::string trace_path = args.get_string("episode-trace-out", "");
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot open episode trace file '" << trace_path << "'\n";
      return 2;
    }
    trace.write_jsonl(out);
    std::cout << "episode trace written to " << trace_path << "\n";
  }
  return env.recovered() ? 0 : 1;
}
}  // namespace

int main(int argc, char** argv) {
  return recoverd::run_obs_main(argc, argv,
                                {"fault", "seed", "episode-trace-out", "bounds-in",
                                 "bounds-out", "memo-carry", "anytime"},
                                run);
}
