#!/usr/bin/env python3
"""Fold a recoverd Chrome-trace JSON file into a per-phase time breakdown.

Reads the `--trace-out` file produced by any recoverd binary and prints, per
span name, the call count, total (inclusive) time, and *self* time — total
minus the time spent in spans nested inside it on the same thread. Nesting
is recovered from timestamp containment, exactly the way Perfetto renders
"X" complete events.

Usage:
    tools/trace2summary.py trace.json
    some_binary --trace-out=/dev/stdout | tools/trace2summary.py

Output is a TSV table sorted by self time (descending):
    name  count  total_ms  self_ms  avg_us  dropped appended as a footer

Exit status is non-zero when the file is not a recoverd trace (no
"traceEvents" array), which lets check.sh use it as a smoke test of the
trace pipeline.
"""

import json
import sys
from collections import defaultdict


def load(path):
    with open(path, "r", encoding="utf-8") if path != "-" else sys.stdin as fh:
        return json.load(fh)


def summarize(doc):
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise SystemExit("error: no 'traceEvents' array — not a trace file")

    # Group complete ("X") spans per thread; instants are counted separately.
    per_tid = defaultdict(list)
    instants = defaultdict(int)
    for ev in events:
        ph = ev.get("ph")
        if ph == "X":
            per_tid[ev.get("tid", 0)].append(ev)
        elif ph == "i":
            instants[ev.get("name", "?")] += 1

    stats = defaultdict(lambda: {"count": 0, "total_us": 0.0, "self_us": 0.0})
    for tid_events in per_tid.values():
        # Sort by start time, longest-first on ties, so a parent precedes the
        # children it contains; a stack then recovers the nesting.
        tid_events.sort(key=lambda e: (e["ts"], -e.get("dur", 0.0)))
        stack = []  # (end_ts, name) of currently open spans
        for ev in tid_events:
            start = ev["ts"]
            dur = ev.get("dur", 0.0)
            end = start + dur
            while stack and stack[-1][0] <= start:
                stack.pop()
            name = ev.get("name", "?")
            entry = stats[name]
            entry["count"] += 1
            entry["total_us"] += dur
            entry["self_us"] += dur
            if stack:  # subtract this span from the enclosing span's self time
                stats[stack[-1][1]]["self_us"] -= dur
            stack.append((end, name))

    return stats, instants, doc.get("otherData", {}).get("dropped_events", 0)


def main(argv):
    path = argv[1] if len(argv) > 1 else "-"
    stats, instants, dropped = summarize(load(path))

    rows = sorted(stats.items(), key=lambda kv: -kv[1]["self_us"])
    print("name\tcount\ttotal_ms\tself_ms\tavg_us")
    for name, s in rows:
        avg = s["total_us"] / s["count"] if s["count"] else 0.0
        print(
            f"{name}\t{s['count']}\t{s['total_us'] / 1000.0:.3f}"
            f"\t{s['self_us'] / 1000.0:.3f}\t{avg:.1f}"
        )
    for name, count in sorted(instants.items()):
        print(f"{name} [instant]\t{count}\t-\t-\t-")
    print(f"# dropped_events: {dropped}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
