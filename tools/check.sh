#!/usr/bin/env bash
# One-command verification gate for PRs:
#   1. tier-1: Release configure + build + full ctest run (the ROADMAP gate);
#   2. sanitize: RelWithDebInfo + ASan/UBSan build + full ctest run;
#   3. tsan: ThreadSanitizer build + the concurrency tests (names matching
#      "Parallel|Scc|Memo|Trace|Batch|Simd|Fleet|Checkpoint|Artifact|Carry|
#      Pool|DeepBatch": the parallel experiment runner, the engine's root
#      fan-out — including the per-worker transposition caches of DESIGN.md
#      §11 and their cross-decide carry-over of §15 — the topology-aware SCC
#      solver's level/chunk threading, the batched decision engine + fleet
#      driver of §13, the persistent work pool + deep-batch pipeline of §16,
#      and the bound-artifact round trip under threaded evaluation), which
#      exercise every cross-thread code path in the repo.
#
#   4. robustness: ASan/UBSan run of the guard/mismatch/fleet-guard/
#      checkpoint/bound-artifact test binaries (the checkpoint and artifact
#      corruption matrices under ASan are the buffer-overread soak for both
#      readers, the artifact one covering the zero-copy mmap path) plus a
#      mini chaos soak (robustness_campaign at --faults=50) that must finish
#      with zero crashes or livelocks.
#
#   5. scaling: a smoke run of the RA-Bound scaling campaign (10^5 states,
#      legacy-vs-SCC parity, bitwise determinism across --solver-jobs, and
#      the bound-artifact save/mmap-load round trip at every size), plus an
#      emn_recovery warm-start smoke: --bounds-out then --bounds-in must
#      replay the identical episode; exits nonzero if any check fails.
#
#   6. trace: emn_recovery with --trace-out/--provenance-out, folded through
#      tools/trace2summary.py — a smoke test that the span trace is valid
#      Chrome-trace JSON and the provenance JSONL parses.
#
#   7. throughput: a smoke run of the batched-decision fleet campaign (small
#      widths, Batch-vs-Loop bitwise parity; the binary exits nonzero on any
#      parity mismatch), plus a forced --simd=avx512 emn_recovery smoke: on
#      AVX-512F hosts the episode must run on the widest kernels and match
#      the --simd=scalar episode line-for-line; elsewhere the forced flag
#      must fail fast with the actionable error instead of crashing.
#
#   8. resilience: a smoke run of the fault-tolerant fleet campaign
#      (DESIGN.md §14: guard ladder under every chaos axis, overload
#      shedding, checkpoint round trip + corruption matrix; the binary exits
#      nonzero when any survival/parity/crash-safety gate fails).
#
# Usage: tools/check.sh            # all passes
#        SKIP_SANITIZE=1 tools/check.sh   # skip the ASan/UBSan pass
#        SKIP_TSAN=1 tools/check.sh       # skip the ThreadSanitizer pass
#        SKIP_ROBUSTNESS=1 tools/check.sh # skip the chaos soak
#        SKIP_SCALING=1 tools/check.sh    # skip the scaling smoke
#        SKIP_TRACE=1 tools/check.sh      # skip the trace smoke
#        SKIP_THROUGHPUT=1 tools/check.sh # skip the throughput smoke
#        SKIP_RESILIENCE=1 tools/check.sh # skip the resilience smoke
#        JOBS=8 tools/check.sh     # override parallelism
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: Release build + ctest =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${SKIP_SANITIZE:-0}" != "1" ]]; then
  echo "== sanitize: ASan/UBSan build + ctest (CMakePresets.json 'sanitize') =="
  cmake -B build-sanitize -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer -fno-sanitize-recover=all"
  cmake --build build-sanitize -j "$JOBS"
  ctest --test-dir build-sanitize --output-on-failure -j "$JOBS"
fi

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "== tsan: ThreadSanitizer build + concurrency tests (CMakePresets.json 'tsan') =="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer -fno-sanitize-recover=all"
  # Building only the test binaries that contain the threaded paths keeps
  # the pass fast; gtest_discover_tests registers their cases at build time.
  cmake --build build-tsan -j "$JOBS" \
    --target sim_parallel_experiment_test pomdp_expansion_parity_test \
             pomdp_memo_test pomdp_memo_carry_test linalg_scc_test \
             linalg_parallel_solve_test obs_trace_test trace_parity_test \
             util_simd_test pomdp_batch_parity_test sim_fleet_test \
             sim_fleet_guard_test sim_checkpoint_test bounds_artifact_test \
             util_pool_test pomdp_deep_batch_test
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R "Parallel|Scc|Memo|Trace|Batch|Simd|Fleet|Checkpoint|Artifact|Carry|Pool|DeepBatch"
fi

if [[ "${SKIP_ROBUSTNESS:-0}" != "1" ]]; then
  echo "== robustness: sanitized guard/mismatch tests + chaos mini soak =="
  # Reuses the build-sanitize tree (configured above unless the sanitize
  # pass was skipped) so the soak runs under ASan/UBSan.
  cmake -B build-sanitize -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer -fno-sanitize-recover=all"
  cmake --build build-sanitize -j "$JOBS" \
    --target controller_guard_test sim_mismatch_test sim_fault_injector_test \
             sim_fleet_guard_test sim_checkpoint_test bounds_artifact_test \
             robustness_campaign
  ctest --test-dir build-sanitize --output-on-failure -j "$JOBS" \
    -R "Guard|Mismatch|FaultInjector|Checkpoint|Artifact"
  ./build-sanitize/bench/robustness_campaign --faults=50 --max-steps=200
fi

if [[ "${SKIP_SCALING:-0}" != "1" ]]; then
  echo "== scaling: RA-Bound campaign smoke (10^5 states, parity + determinism) =="
  # Release tree from pass 1; --smoke caps the sweep at 10^5 states and the
  # binary exits nonzero when legacy/SCC parity or the bitwise
  # across-jobs check fails.
  cmake --build build -j "$JOBS" --target scaling_campaign
  ./build/bench/scaling_campaign --smoke --out=/tmp/recoverd_scaling_smoke.json

  echo "== scaling: bound-artifact warm-start smoke (cold and warm runs must match) =="
  # The warm run mmaps the artifact the cold run saved; a lossless restore
  # means the two episodes are step-for-step identical.
  cmake --build build -j "$JOBS" --target emn_recovery
  ./build/examples/emn_recovery --fault=DB \
    --bounds-out=/tmp/recoverd_warmstart_smoke.rdb > /tmp/recoverd_cold_smoke.txt
  ./build/examples/emn_recovery --fault=DB \
    --bounds-in=/tmp/recoverd_warmstart_smoke.rdb > /tmp/recoverd_warm_smoke.txt
  # Drop the bound-provenance banner lines (cold: "Bootstrapped lower
  # bound... / bound artifact written...", warm: "Warm-started bound
  # set...") and require everything else equal.
  diff <(grep -Ev "bound|^$" /tmp/recoverd_cold_smoke.txt) \
       <(grep -Ev "bound|^$" /tmp/recoverd_warm_smoke.txt)
fi

if [[ "${SKIP_TRACE:-0}" != "1" ]]; then
  echo "== trace: span trace + provenance smoke (emn_recovery → trace2summary) =="
  cmake --build build -j "$JOBS" --target emn_recovery
  ./build/examples/emn_recovery --trace-out=/tmp/recoverd_trace_smoke.json \
    --trace-level=full --provenance-out=/tmp/recoverd_provenance_smoke.jsonl \
    > /dev/null
  # trace2summary exits nonzero when the file is not valid trace JSON; the
  # grep asserts the decide() phase actually got instrumented.
  python3 tools/trace2summary.py /tmp/recoverd_trace_smoke.json \
    | grep -q "controller.decide"
  [[ -s /tmp/recoverd_provenance_smoke.jsonl ]]
fi

if [[ "${SKIP_THROUGHPUT:-0}" != "1" ]]; then
  echo "== throughput: batched fleet campaign smoke (Batch-vs-Loop bitwise parity) =="
  # Small widths, no speedup gate; the binary exits nonzero when a Batch
  # fleet and a Loop fleet from the same seed diverge by a single bit.
  cmake --build build -j "$JOBS" --target throughput_campaign
  ./build/bench/throughput_campaign --smoke --out=/tmp/recoverd_throughput_smoke.json

  echo "== throughput: forced --simd=avx512 smoke =="
  cmake --build build -j "$JOBS" --target emn_recovery
  if grep -q avx512f /proc/cpuinfo; then
    # AVX-512F host: the forced run must succeed AND be bitwise-identical
    # (line-for-line on stdout) to the scalar reference episode.
    ./build/examples/emn_recovery --fault=DB --simd=avx512 \
      > /tmp/recoverd_avx512_smoke.txt
    ./build/examples/emn_recovery --fault=DB --simd=scalar \
      > /tmp/recoverd_scalar_smoke.txt
    diff /tmp/recoverd_avx512_smoke.txt /tmp/recoverd_scalar_smoke.txt
  else
    # No AVX-512F: forcing the tier must fail fast with the actionable
    # message, not crash or silently fall back.
    if ./build/examples/emn_recovery --fault=DB --simd=avx512 \
        > /dev/null 2> /tmp/recoverd_avx512_err.txt; then
      echo "forced --simd=avx512 unexpectedly succeeded on a non-AVX-512 host" >&2
      exit 1
    fi
    grep -q -- "--simd=auto" /tmp/recoverd_avx512_err.txt
  fi
fi

if [[ "${SKIP_RESILIENCE:-0}" != "1" ]]; then
  echo "== resilience: fault-tolerant fleet campaign smoke (guards, chaos, checkpoints) =="
  # Small guarded fleets through every chaos axis plus the checkpoint
  # corruption matrix; the binary exits nonzero when any cell aborts, the
  # quota is exceeded, parity breaks, or a corrupted checkpoint is accepted.
  cmake --build build -j "$JOBS" --target resilience_campaign
  ./build/bench/resilience_campaign --smoke --out=/tmp/recoverd_resilience_smoke.json
fi

echo "All checks passed."
