#!/usr/bin/env bash
# One-command verification gate for PRs:
#   1. tier-1: Release configure + build + full ctest run (the ROADMAP gate);
#   2. sanitize: RelWithDebInfo + ASan/UBSan build + full ctest run.
#
# Usage: tools/check.sh            # both passes
#        SKIP_SANITIZE=1 tools/check.sh   # tier-1 only
#        JOBS=8 tools/check.sh     # override parallelism
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: Release build + ctest =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${SKIP_SANITIZE:-0}" != "1" ]]; then
  echo "== sanitize: ASan/UBSan build + ctest (CMakePresets.json 'sanitize') =="
  cmake -B build-sanitize -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer -fno-sanitize-recover=all"
  cmake --build build-sanitize -j "$JOBS"
  ctest --test-dir build-sanitize --output-on-failure -j "$JOBS"
fi

echo "All checks passed."
