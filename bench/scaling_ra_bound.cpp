// §4.3 scaling claim: the RA-Bound linear system (Eq. 5) is solvable with
// standard sparse iterative solvers for models with up to hundreds of
// thousands of states. Google-benchmark over synthetic recovery MDPs.
#include <benchmark/benchmark.h>

#include "gbench_main.hpp"

#include "bounds/ra_bound.hpp"
#include "models/synthetic.hpp"
#include "util/check.hpp"

namespace recoverd::bench {
namespace {

void BM_RaBoundSolve(benchmark::State& state) {
  models::SyntheticMdpParams params;
  params.num_states = static_cast<std::size_t>(state.range(0));
  params.num_actions = 10;
  params.branching = 4;
  params.seed = 17;
  const Mdp mdp = models::make_synthetic_recovery_mdp(params);

  std::size_t iterations = 0;
  for (auto _ : state) {
    const auto ra = bounds::compute_ra_bound(mdp);
    RD_ENSURES(ra.converged(), "scaling bench: RA-Bound must converge");
    iterations = ra.iterations;
    benchmark::DoNotOptimize(ra.values.data());
  }
  state.counters["states"] = static_cast<double>(params.num_states);
  state.counters["gs_sweeps"] = static_cast<double>(iterations);
  state.SetComplexityN(state.range(0));
}

BENCHMARK(BM_RaBoundSolve)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Arg(100000)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

void BM_SyntheticModelBuild(benchmark::State& state) {
  models::SyntheticMdpParams params;
  params.num_states = static_cast<std::size_t>(state.range(0));
  params.seed = 17;
  for (auto _ : state) {
    const Mdp mdp = models::make_synthetic_recovery_mdp(params);
    benchmark::DoNotOptimize(mdp.num_states());
  }
  state.SetComplexityN(state.range(0));
}

BENCHMARK(BM_SyntheticModelBuild)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace recoverd::bench

int main(int argc, char** argv) {
  return recoverd::bench::gbench_main_with_metrics(argc, argv);
}
