// §4.3 scaling claim: the RA-Bound linear system (Eq. 5) is solvable with
// standard sparse iterative solvers for models with up to hundreds of
// thousands of states. Google-benchmark over synthetic recovery MDPs.
//
// The offline pipeline has two phases with different scaling behaviour —
// chain assembly (O(|A|·nnz), embarrassingly parallel) and the linear solve
// (topology-dependent) — so they are benchmarked separately, plus an
// end-to-end series matching what a cold compute_ra_bound(mdp) call pays.
#include <benchmark/benchmark.h>

#include "gbench_main.hpp"

#include "bounds/ra_bound.hpp"
#include "models/synthetic.hpp"
#include "util/check.hpp"

namespace recoverd::bench {
namespace {

models::SyntheticMdpParams scaling_params(std::size_t num_states) {
  models::SyntheticMdpParams params;
  params.num_states = num_states;
  params.num_actions = 10;
  params.branching = 4;
  params.seed = 17;
  return params;
}

/// Phase 1: assemble the RandomActionChain artifact (Q̄, c̄, SCC plan).
void BM_RaChainAssembly(benchmark::State& state) {
  const Mdp mdp =
      models::make_synthetic_recovery_mdp(scaling_params(static_cast<std::size_t>(state.range(0))));

  std::size_t nnz = 0;
  std::size_t components = 0;
  for (auto _ : state) {
    const auto chain = bounds::build_random_action_chain(mdp);
    nnz = chain.q.nonzeros();
    components = chain.plan.num_components;
    benchmark::DoNotOptimize(chain.c.data());
  }
  state.counters["states"] = static_cast<double>(mdp.num_states());
  state.counters["nnz"] = static_cast<double>(nnz);
  state.counters["scc_components"] = static_cast<double>(components);
  state.SetComplexityN(state.range(0));
}

BENCHMARK(BM_RaChainAssembly)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Arg(100000)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

/// Phase 2: the linear solve alone, on a prebuilt chain (what repeated
/// solves — discounted variants, bound refreshes — pay after assembly is
/// amortised).
void BM_RaBoundSolve(benchmark::State& state) {
  const Mdp mdp =
      models::make_synthetic_recovery_mdp(scaling_params(static_cast<std::size_t>(state.range(0))));
  const bounds::RandomActionChain chain = bounds::build_random_action_chain(mdp);

  std::size_t iterations = 0;
  for (auto _ : state) {
    const auto ra = bounds::compute_ra_bound(chain);
    RD_ENSURES(ra.converged(), "scaling bench: RA-Bound must converge");
    iterations = ra.iterations;
    benchmark::DoNotOptimize(ra.values.data());
  }
  state.counters["states"] = static_cast<double>(mdp.num_states());
  state.counters["solver_sweeps"] = static_cast<double>(iterations);
  state.counters["scc_largest"] = static_cast<double>(chain.plan.largest_component);
  state.SetComplexityN(state.range(0));
}

BENCHMARK(BM_RaBoundSolve)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Arg(100000)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

/// Assembly + solve, the cost of a cold compute_ra_bound(mdp) call.
void BM_RaBoundEndToEnd(benchmark::State& state) {
  const Mdp mdp =
      models::make_synthetic_recovery_mdp(scaling_params(static_cast<std::size_t>(state.range(0))));

  for (auto _ : state) {
    const auto ra = bounds::compute_ra_bound(mdp);
    RD_ENSURES(ra.converged(), "scaling bench: RA-Bound must converge");
    benchmark::DoNotOptimize(ra.values.data());
  }
  state.counters["states"] = static_cast<double>(mdp.num_states());
  state.SetComplexityN(state.range(0));
}

BENCHMARK(BM_RaBoundEndToEnd)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Arg(100000)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

void BM_SyntheticModelBuild(benchmark::State& state) {
  models::SyntheticMdpParams params;
  params.num_states = static_cast<std::size_t>(state.range(0));
  params.seed = 17;
  for (auto _ : state) {
    const Mdp mdp = models::make_synthetic_recovery_mdp(params);
    benchmark::DoNotOptimize(mdp.num_states());
  }
  state.SetComplexityN(state.range(0));
}

BENCHMARK(BM_SyntheticModelBuild)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace recoverd::bench

int main(int argc, char** argv) {
  return recoverd::bench::gbench_main_with_metrics(argc, argv);
}
