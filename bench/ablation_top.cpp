// Ablation of the operator response time t_op (§3.1's "designer-friendly
// metric"): higher t_op makes terminating early costlier, so the bounded
// controller becomes more aggressive about verifying recovery — more
// monitor calls and longer recovery, but a lower risk of quitting with the
// fault still present.
//
// Flags: --faults=N (default 500) --seed plus common EMN flags. The t_op
// grid is fixed: 10 min, 1 h, 6 h (the paper's value), 24 h.
#include <iostream>

#include "bench_common.hpp"
#include "obs/export.hpp"
#include "bounds/ra_bound.hpp"
#include "controller/bootstrap.hpp"
#include "controller/bounded_controller.hpp"
#include "util/table.hpp"
#include "util/obs_main.hpp"

namespace recoverd::bench {
namespace {

int run(const CliArgs& args) {
  EmnExperimentSetup setup = parse_emn_setup(args);
  const auto faults = static_cast<std::size_t>(args.get_int("faults", 500));

  const double grid[] = {600.0, 3600.0, 21600.0, 86400.0};

  std::cout << "=== Ablation: operator response time t_op (bounded controller, EMN) ===\n\n";
  TextTable table;
  table.set_header({"t_op(s)", "Cost", "RecoveryTime(s)", "ResidualTime(s)",
                    "MonitorCalls", "Actions", "Unrecovered", "|B| final"});

  for (const double top : grid) {
    setup.emn.operator_response_time = top;
    const Pomdp base = models::make_emn_base(setup.emn);
    const Pomdp recovery = models::make_emn_recovery_model(setup.emn);
    const models::EmnIds ids = models::emn_ids(base, setup.emn);
    const sim::FaultInjector injector = make_zombie_injector(base, ids);
    const sim::EpisodeConfig config = make_emn_episode_config(base, ids);

    bounds::BoundSet set = bounds::make_ra_bound_set(recovery.mdp(), setup.bound_capacity);
    controller::BootstrapOptions boot;
    boot.iterations = setup.bootstrap_runs;
    boot.tree_depth = setup.bootstrap_depth;
    boot.observe_action = ids.topo.observe_action;
    boot.seed = setup.seed;
    boot.branch_floor = setup.branch_floor;
    controller::bootstrap_bounds(recovery, set,
                                 Belief::uniform(recovery.num_states()), boot);

    controller::BoundedControllerOptions opts;
    opts.branch_floor = setup.branch_floor;
    controller::BoundedController c(recovery, set, opts);
    const sim::ControllerFactory factory = [&recovery, set, opts] {
      return controller::BoundedController::make_owning(recovery, set, opts);
    };
    const auto result =
        run_campaign(base, c, factory, injector, faults, setup.seed, config, setup.jobs);

    table.add_row({TextTable::num(top, 0), TextTable::num(result.cost.mean()),
                   TextTable::num(result.recovery_time.mean()),
                   TextTable::num(result.residual_time.mean()),
                   TextTable::num(result.monitor_calls.mean()),
                   TextTable::num(result.recovery_actions.mean()),
                   std::to_string(result.unrecovered), std::to_string(set.size())});
    std::cerr << "t_op=" << top << " done\n";
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (§3.1): larger t_op => the controller verifies recovery\n"
            << "more aggressively before terminating (more monitor calls, longer\n"
            << "recovery time) in exchange for fewer/no premature terminations.\n";
  return 0;
}

}  // namespace
}  // namespace recoverd::bench

int main(int argc, char** argv) {
  std::vector<std::string> known =
      {"faults", "top", "seed", "capacity", "branch-floor",
       "termination-probability", "bootstrap-runs", "bootstrap-depth", "jobs"};
  return recoverd::run_obs_main(argc, argv, std::move(known),
                                [](const recoverd::CliArgs& args) {
                                  return recoverd::bench::run(args);
                                });
}
