// Million-state scaling campaign for the topology-aware RA-Bound pipeline.
//
// Sweeps synthetic recovery MDPs from 10^3 to 10^6 states and, for each
// size, measures the offline pipeline phase by phase:
//   - model build (MdpBuilder CSR path),
//   - legacy baseline: the pre-refactor solver — per-call triplet assembly
//     of βQ̄ followed by one global Gauss–Seidel iteration (capped by
//     --legacy-max-states; the point of the campaign is that this path
//     stops being usable long before 10^6),
//   - chain assembly (build_random_action_chain) and the SCC-scheduled
//     solve, for each worker count in the --solver-jobs sweep.
//
// Every cell cross-checks correctness, not just speed: the SCC solution
// must match the legacy solver within solver tolerance, and the solution
// must be bitwise identical across worker counts (the determinism contract
// of SccSolveOptions).
//
// Flags:
//   --max-states=N        largest model in the sweep (default 1000000)
//   --smoke               3-size mini sweep capped at 10^5 states (CI)
//   --solver-jobs=N       use exactly N workers (default 0 = sweep {1, max})
//   --legacy-max-states=N largest model the legacy baseline runs on
//                         (default 200000 — the acceptance comparison point)
//   --actions, --branching, --locality, --forward-probability, --seed
//                         synthetic-model shape (defaults: 4 actions,
//                         branching 4, locality 64, forward 0.005 — the
//                         near-DAG topology of real recovery models)
//   --relaxation=W        SOR factor for BOTH solvers (default 1.1, the
//                         paper's §3.1 choice; on large near-DAG chains the
//                         legacy baseline's global sweep diverges at 1.1
//                         and the solvers' automatic ω = 1.0 fallback kicks
//                         in — the campaign reports the fallback count so
//                         the retried solves are visible in the timings)
//   --out=FILE            write the sweep as JSON (schema recoverd.scaling.v1)
//   --metrics-out=FILE    dump the obs registry after the campaign
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>

#include "bounds/artifact.hpp"
#include "bounds/ra_bound.hpp"
#include "linalg/gauss_seidel.hpp"
#include "models/synthetic.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"
#include "util/obs_main.hpp"

namespace recoverd::bench {
namespace {

/// The pre-refactor compute_ra_bound: rebuild βQ̄ and c̄ through the triplet
/// builder (global sort), then run one global Gauss–Seidel solve. Kept here
/// verbatim as the campaign's baseline so BENCH_scaling.json always compares
/// against the same reference implementation.
struct LegacyOutcome {
  double assembly_ms = 0.0;
  double solve_ms = 0.0;
  std::size_t iterations = 0;
  std::vector<double> values;
};

LegacyOutcome legacy_ra_bound(const Mdp& mdp, const linalg::GaussSeidelOptions& options) {
  Timer timer;
  const std::size_t n = mdp.num_states();
  const double inv_actions = 1.0 / static_cast<double>(mdp.num_actions());
  linalg::SparseMatrixBuilder qb(n, n);
  std::vector<double> c(n, 0.0);
  for (ActionId a = 0; a < mdp.num_actions(); ++a) {
    const auto& p = mdp.transition(a);
    const auto rewards = mdp.rewards(a);
    for (std::size_t s = 0; s < n; ++s) {
      for (const auto& e : p.row(s)) qb.add(s, e.col, inv_actions * e.value);
      c[s] += inv_actions * rewards[s];
    }
  }
  const linalg::SparseMatrix q = qb.build();
  LegacyOutcome out;
  out.assembly_ms = timer.elapsed_ms();

  timer.reset();
  auto solve = linalg::solve_fixed_point(q, c, options);
  out.solve_ms = timer.elapsed_ms();
  RD_ENSURES(solve.converged(), "scaling campaign: legacy RA-Bound must converge (" +
                                    linalg::to_string(solve.status) +
                                    (solve.detail.empty() ? "" : ": " + solve.detail) +
                                    ")");
  out.iterations = solve.iterations;
  out.values = std::move(solve.x);
  return out;
}

struct SccOutcome {
  std::size_t jobs = 1;
  double assembly_ms = 0.0;
  double solve_ms = 0.0;
  std::size_t iterations = 0;
  std::vector<double> values;
  // Plan topology (identical for every jobs value — recorded once per size).
  std::size_t nnz = 0;
  std::size_t components = 0;
  std::size_t singletons = 0;
  std::size_t largest_component = 0;
  std::size_t levels = 0;
};

SccOutcome scc_ra_bound(const Mdp& mdp, std::size_t jobs,
                        const linalg::GaussSeidelOptions& options) {
  SccOutcome out;
  out.jobs = jobs;
  Timer timer;
  const bounds::RandomActionChain chain = bounds::build_random_action_chain(mdp, jobs);
  out.assembly_ms = timer.elapsed_ms();

  linalg::SccSolveOptions scc;
  scc.jobs = jobs;
  timer.reset();
  auto ra = bounds::compute_ra_bound(chain, options, scc);
  out.solve_ms = timer.elapsed_ms();
  RD_ENSURES(ra.converged(), "scaling campaign: SCC RA-Bound must converge");
  out.iterations = ra.iterations;
  out.values = std::move(ra.values);
  out.nnz = chain.q.nonzeros();
  out.components = chain.plan.num_components;
  out.singletons = chain.plan.num_singletons;
  out.largest_component = chain.plan.largest_component;
  out.levels = chain.plan.num_levels();
  return out;
}

/// Per-size bound-artifact measurement: cold construction (chain assembly +
/// Eq. 5 solve + set seeding) versus save + mmap warm start, with a bitwise
/// equality check between the cold-built and loaded state.
struct ArtifactOutcome {
  double cold_build_ms = 0.0;    ///< assembly + solve + seed, first eval incl. below
  double save_ms = 0.0;
  double load_ms = 0.0;
  double cold_first_eval_ms = 0.0;  ///< cold build + one V_B⁻ evaluation
  double warm_first_eval_ms = 0.0;  ///< artifact load + one V_B⁻ evaluation
  double warm_speedup = 0.0;        ///< cold_build_ms / load_ms
  std::uint64_t bytes = 0;
  bool bitwise_identical = false;
};

ArtifactOutcome artifact_warm_start(const Mdp& mdp, std::size_t jobs,
                                    const std::string& path) {
  ArtifactOutcome out;
  Timer timer;
  const bounds::RandomActionChain chain = bounds::build_random_action_chain(mdp, jobs);
  const bounds::BoundSet cold_set = bounds::make_ra_bound_set(chain);
  out.cold_build_ms = timer.elapsed_ms();

  const std::uint64_t model_hash = bounds::hash_mdp(mdp);
  timer.reset();
  bounds::save_bound_artifact(path, chain, cold_set, model_hash);
  out.save_ms = timer.elapsed_ms();

  timer.reset();
  const bounds::BoundArtifact warm = bounds::load_bound_artifact(path, model_hash);
  out.load_ms = timer.elapsed_ms();
  out.warm_speedup = out.cold_build_ms / std::max(out.load_ms, 1e-9);

  {
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    out.bytes = f.good() ? static_cast<std::uint64_t>(f.tellg()) : 0;
  }
  std::remove(path.c_str());

  // The evaluations below bump the winning plane's use counter, so the
  // snapshots for the lossless comparison are taken first, while both sets
  // still hold exactly the saved state.
  const std::size_t n = mdp.num_states();
  const std::vector<double> belief(n, 1.0 / static_cast<double>(n));
  const bool values_match = [&] {
    const bounds::BoundSet::Snapshot cold_pre = cold_set.snapshot();
    const bounds::BoundSet::Snapshot warm_pre = warm.set.snapshot();
    if (cold_pre.planes.size() != warm_pre.planes.size()) return false;
    for (std::size_t i = 0; i < cold_pre.planes.size(); ++i) {
      if (cold_pre.planes[i].vector != warm_pre.planes[i].vector ||
          cold_pre.planes[i].is_protected != warm_pre.planes[i].is_protected ||
          cold_pre.planes[i].uses != warm_pre.planes[i].uses) {
        return false;
      }
    }
    return cold_pre.generation == warm_pre.generation;
  }();

  timer.reset();
  const double cold_value = cold_set.evaluate(belief);
  out.cold_first_eval_ms = out.cold_build_ms + timer.elapsed_ms();
  timer.reset();
  const double warm_value = warm.set.evaluate(belief);
  out.warm_first_eval_ms = out.load_ms + timer.elapsed_ms();

  // Lossless contract: the loaded chain and set are the cold-built bits.
  bool same = values_match && warm_value == cold_value &&
              warm.chain.c == chain.c &&
              warm.chain.q.nonzeros() == chain.q.nonzeros();
  const auto a = chain.q.entry_array();
  const auto b = warm.chain.q.entry_array();
  same = same && a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size_bytes()) == 0;
  out.bitwise_identical = same;
  return out;
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  RD_EXPECTS(a.size() == b.size(), "scaling campaign: size mismatch in comparison");
  double max = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) max = std::max(max, std::abs(a[i] - b[i]));
  return max;
}

}  // namespace
}  // namespace recoverd::bench

namespace {
int run(const recoverd::CliArgs& args) {
  using namespace recoverd;
  using namespace recoverd::bench;

  const bool smoke = args.get_bool("smoke", false);
  const std::size_t max_states = static_cast<std::size_t>(
      args.get_int("max-states", smoke ? 100000 : 1000000));
  const std::size_t legacy_max_states =
      static_cast<std::size_t>(args.get_int("legacy-max-states", 200000));
  const std::size_t forced_jobs =
      static_cast<std::size_t>(args.get_int("solver-jobs", 0));

  models::SyntheticMdpParams params;
  params.num_actions = static_cast<std::size_t>(args.get_int("actions", 4));
  params.branching = static_cast<std::size_t>(args.get_int("branching", 4));
  params.locality = static_cast<std::size_t>(args.get_int("locality", 64));
  params.forward_probability = args.get_double("forward-probability", 0.005);
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 17));

  std::vector<std::size_t> sizes;
  for (std::size_t n : {std::size_t{1000}, std::size_t{10000}, std::size_t{50000},
                        std::size_t{100000}, std::size_t{200000}, std::size_t{500000},
                        std::size_t{1000000}}) {
    if (n <= max_states && !(smoke && n != 1000 && n != 10000 && n != 100000)) {
      sizes.push_back(n);
    }
  }
  RD_EXPECTS(!sizes.empty(), "scaling campaign: --max-states excludes every size");

  std::vector<std::size_t> jobs_sweep;
  if (forced_jobs > 0) {
    jobs_sweep.push_back(forced_jobs);
  } else {
    jobs_sweep = {1, std::max<std::size_t>(2, std::thread::hardware_concurrency())};
  }

  linalg::GaussSeidelOptions options = bounds::default_ra_solver_options();
  options.relaxation = args.get_double("relaxation", options.relaxation);

  std::printf("RA-Bound scaling campaign (actions=%zu branching=%zu locality=%zu "
              "forward=%.3f seed=%llu)\n",
              params.num_actions, params.branching, params.locality,
              params.forward_probability,
              static_cast<unsigned long long>(params.seed));
  std::printf("%9s %10s %9s %9s | %9s %9s | %7s %9s %9s | %8s %10s\n", "states",
              "nnz", "sccs", "levels", "legacy_ms", "(asm+slv)", "jobs", "scc_ms",
              "(asm+slv)", "speedup", "parity");

  obs::Json::Array rows;
  bool all_checks_passed = true;

  obs::Counter& fallback_counter =
      obs::metrics().counter("linalg.gauss_seidel.relaxation_fallbacks");

  for (const std::size_t n : sizes) {
    params.num_states = n;
    Timer build_timer;
    const Mdp mdp = models::make_synthetic_recovery_mdp(params);
    const double model_build_ms = build_timer.elapsed_ms();
    const std::uint64_t fallbacks_before = fallback_counter.value();

    obs::Json::Object row;
    row["states"] = static_cast<std::uint64_t>(n);
    row["model_build_ms"] = model_build_ms;

    LegacyOutcome legacy;
    const bool run_legacy = n <= legacy_max_states;
    if (run_legacy) {
      legacy = legacy_ra_bound(mdp, options);
      obs::Json::Object lj;
      lj["assembly_ms"] = legacy.assembly_ms;
      lj["solve_ms"] = legacy.solve_ms;
      lj["total_ms"] = legacy.assembly_ms + legacy.solve_ms;
      lj["iterations"] = static_cast<std::uint64_t>(legacy.iterations);
      row["legacy"] = obs::Json(std::move(lj));
    }

    obs::Json::Array per_jobs;
    std::vector<SccOutcome> outcomes;
    for (const std::size_t jobs : jobs_sweep) {
      outcomes.push_back(scc_ra_bound(mdp, jobs, options));
      const SccOutcome& o = outcomes.back();
      obs::Json::Object oj;
      oj["jobs"] = static_cast<std::uint64_t>(o.jobs);
      oj["assembly_ms"] = o.assembly_ms;
      oj["solve_ms"] = o.solve_ms;
      oj["total_ms"] = o.assembly_ms + o.solve_ms;
      oj["iterations"] = static_cast<std::uint64_t>(o.iterations);
      per_jobs.push_back(obs::Json(std::move(oj)));
    }
    const SccOutcome& first = outcomes.front();
    row["nnz"] = static_cast<std::uint64_t>(first.nnz);
    row["scc_components"] = static_cast<std::uint64_t>(first.components);
    row["scc_singletons"] = static_cast<std::uint64_t>(first.singletons);
    row["scc_largest_component"] = static_cast<std::uint64_t>(first.largest_component);
    row["scc_levels"] = static_cast<std::uint64_t>(first.levels);
    row["scc"] = obs::Json(std::move(per_jobs));

    // Determinism contract: the solution must be bitwise identical for
    // every worker count.
    bool bitwise_identical = true;
    for (const SccOutcome& o : outcomes) {
      for (std::size_t i = 0; i < n; ++i) {
        if (o.values[i] != first.values[i]) {
          bitwise_identical = false;
          break;
        }
      }
    }
    row["bitwise_identical_across_jobs"] = bitwise_identical;
    all_checks_passed = all_checks_passed && bitwise_identical;
    // Solves that diverged at the requested ω and were retried at 1.0 — the
    // legacy global sweep on large chains, typically. Non-zero counts mean
    // those timings include a wasted diverging attempt.
    row["relaxation_fallbacks"] =
        static_cast<std::uint64_t>(fallback_counter.value() - fallbacks_before);

    double parity = std::nan("");
    if (run_legacy) {
      parity = max_abs_diff(legacy.values, first.values);
      row["max_abs_diff_vs_legacy"] = parity;
      // Both solvers stop at |Δx|∞ ≤ 1e-10; the iterates agree to well
      // within the accumulated stopping error.
      const bool parity_ok = parity <= 1e-6;
      row["parity_ok"] = parity_ok;
      all_checks_passed = all_checks_passed && parity_ok;
      const double legacy_total = legacy.assembly_ms + legacy.solve_ms;
      const double scc_total = first.assembly_ms + first.solve_ms;
      row["end_to_end_speedup"] = legacy_total / scc_total;
    }

    // Bound-artifact warm start: save the cold-built chain + seeded set,
    // mmap it back, and compare against rebuilding from the model. The
    // acceptance gate (warm start ≥ 10x faster than cold construction at
    // 10^6 states) runs only on the full sweep — smoke runs still check the
    // lossless round-trip, just not the timing ratio.
    const ArtifactOutcome artifact = artifact_warm_start(
        mdp, jobs_sweep.back(), "bench_scaling_bounds.tmp.rdb");
    {
      obs::Json::Object aj;
      aj["save_ms"] = artifact.save_ms;
      aj["load_ms"] = artifact.load_ms;
      aj["bytes"] = artifact.bytes;
      aj["cold_build_ms"] = artifact.cold_build_ms;
      aj["cold_first_eval_ms"] = artifact.cold_first_eval_ms;
      aj["warm_first_eval_ms"] = artifact.warm_first_eval_ms;
      aj["warm_speedup"] = artifact.warm_speedup;
      aj["round_trip_bitwise"] = artifact.bitwise_identical;
      const bool gate = !smoke && n >= 1000000;
      if (gate) aj["warm_speedup_gate_10x"] = artifact.warm_speedup >= 10.0;
      row["artifact"] = obs::Json(std::move(aj));
      all_checks_passed = all_checks_passed && artifact.bitwise_identical &&
                          (!gate || artifact.warm_speedup >= 10.0);
    }

    for (std::size_t k = 0; k < outcomes.size(); ++k) {
      const SccOutcome& o = outcomes[k];
      const double scc_total = o.assembly_ms + o.solve_ms;
      if (k == 0 && run_legacy) {
        const double legacy_total = legacy.assembly_ms + legacy.solve_ms;
        std::printf("%9zu %10zu %9zu %9zu | %9.1f (%5.1f%%) | %7zu %9.1f (%5.1f%%) | "
                    "%7.2fx %10.2e\n",
                    n, first.nnz, first.components, first.levels, legacy_total,
                    100.0 * legacy.assembly_ms / std::max(legacy_total, 1e-12), o.jobs,
                    scc_total, 100.0 * o.assembly_ms / std::max(scc_total, 1e-12),
                    legacy_total / scc_total, parity);
      } else if (k == 0) {
        std::printf("%9zu %10zu %9zu %9zu | %9s %9s | %7zu %9.1f (%5.1f%%) | %8s %10s\n",
                    n, first.nnz, first.components, first.levels, "-", "", o.jobs,
                    scc_total, 100.0 * o.assembly_ms / std::max(scc_total, 1e-12), "-",
                    "-");
      } else {
        std::printf("%9s %10s %9s %9s | %9s %9s | %7zu %9.1f (%5.1f%%) | %8s %10s\n", "",
                    "", "", "", "", "", o.jobs, scc_total,
                    100.0 * o.assembly_ms / std::max(scc_total, 1e-12), "",
                    bitwise_identical ? "bitwise=" : "MISMATCH");
      }
    }
    std::printf("%9s artifact: save %.1f ms, load %.1f ms (%.1f MB) | cold build "
                "%.1f ms -> warm %.0fx | first eval cold %.1f ms / warm %.1f ms | %s\n",
                "", artifact.save_ms, artifact.load_ms,
                static_cast<double>(artifact.bytes) / (1024.0 * 1024.0),
                artifact.cold_build_ms, artifact.warm_speedup,
                artifact.cold_first_eval_ms, artifact.warm_first_eval_ms,
                artifact.bitwise_identical ? "bitwise=" : "MISMATCH");
    rows.push_back(obs::Json(std::move(row)));
  }

  const std::string out_path = args.get_string("out", "");
  if (!out_path.empty()) {
    obs::Json::Object doc;
    doc["schema"] = "recoverd.scaling.v1";
    doc["note"] =
        "RA-Bound offline pipeline scaling (bench/scaling_campaign). legacy = "
        "pre-refactor per-call triplet assembly + one global Gauss-Seidel solve; "
        "scc = RandomActionChain one-shot CSR assembly + SCC level-scheduled "
        "solve, per --solver-jobs worker count. Near-DAG synthetic recovery "
        "models (locality window, rare forward edges). Absolute times are "
        "machine-dependent; the committed claims are the legacy/scc ratio per "
        "size, max_abs_diff_vs_legacy within solver tolerance, "
        "bitwise_identical_across_jobs, the artifact round_trip_bitwise "
        "check, and the >=10x artifact warm_speedup gate at 10^6 states "
        "(mmap load of the saved chain + bound set vs cold assembly+solve).";
    doc["model"] = "synthetic-recovery";
    obs::Json::Object pj;
    pj["num_actions"] = static_cast<std::uint64_t>(params.num_actions);
    pj["branching"] = static_cast<std::uint64_t>(params.branching);
    pj["locality"] = static_cast<std::uint64_t>(params.locality);
    pj["forward_probability"] = params.forward_probability;
    pj["seed"] = static_cast<std::uint64_t>(params.seed);
    doc["params"] = obs::Json(std::move(pj));
    obs::Json::Object mj;
    mj["hardware_concurrency"] =
        static_cast<std::uint64_t>(std::thread::hardware_concurrency());
    doc["machine"] = obs::Json(std::move(mj));
    doc["legacy_max_states"] = static_cast<std::uint64_t>(legacy_max_states);
    doc["solver"] =
        "gauss-seidel tol=1e-10 (ω per --relaxation, auto-fallback to 1.0) / "
        "scc level-scheduled";
    doc["rows"] = obs::Json(std::move(rows));
    doc["all_checks_passed"] = all_checks_passed;
    std::ofstream out(out_path);
    RD_EXPECTS(out.good(), "scaling campaign: cannot open --out file");
    obs::Json(std::move(doc)).write(out);
    out << "\n";
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (!all_checks_passed) {
    std::fprintf(stderr, "scaling campaign: CORRECTNESS CHECK FAILED\n");
    return 1;
  }
  return 0;
}
}  // namespace

int main(int argc, char** argv) {
  return recoverd::run_obs_main(
      argc, argv,
      {"max-states", "smoke", "solver-jobs", "legacy-max-states", "actions",
       "branching", "locality", "forward-probability", "relaxation", "seed",
       "out"},
      run);
}
